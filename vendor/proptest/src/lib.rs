//! Offline, deterministic stand-in for [proptest](https://docs.rs/proptest).
//!
//! The workspace's build environment cannot reach a crates.io mirror, so the
//! real `proptest` cannot be downloaded. This crate vendors the subset of the
//! proptest 1.x API that the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   inner attribute) generating ordinary `#[test]` functions,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//! * strategies: integer ranges, [`any`](arbitrary::any),
//!   [`Just`](strategy::Just), tuples, [`prop_map`](strategy::Strategy::prop_map),
//!   weighted/unweighted [`prop_oneof!`], and
//!   [`collection::vec`],
//! * [`ProptestConfig::with_cases`](test_runner::ProptestConfig::with_cases).
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its inputs via the assertion
//!   message but is not minimized.
//! * **Fully deterministic.** Each test derives its RNG seed from its module
//!   path and test name, so runs are reproducible across machines and
//!   invocations; there is no `PROPTEST_` environment handling.

pub mod test_runner {
    //! Test configuration, deterministic RNG, and the failure type that
    //! `prop_assert*` produce.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property assertion (what `prop_assert!` returns as `Err`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure carrying `msg`.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic splitmix64 RNG seeded from the test's name.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Builds the RNG for the named test (FNV-1a of the name as seed).
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h)
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform-ish value in `[0, n)`; returns 0 when `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating random values of one type.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// just produces a value from the RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                func: f,
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        func: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.func)(self.source.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty range strategy");
                    (lo + rng.below((hi - lo) as u64) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    assert!(lo <= hi, "empty range strategy");
                    (lo + rng.below((hi - lo + 1) as u64) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// Weighted choice between heterogeneous strategies producing one value
    /// type — what [`prop_oneof!`](crate::prop_oneof) builds.
    pub struct Union<T> {
        arms: Vec<(u32, Rc<dyn Strategy<Value = T>>)>,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, Rc<dyn Strategy<Value = T>>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            assert!(arms.iter().any(|(w, _)| *w > 0), "all arm weights are zero");
            Union { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} arms)", self.arms.len())
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut pick = rng.below(total);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick out of range")
        }
    }

    /// Boxes one `prop_oneof!` arm (used by the macro expansion; the free
    /// function lets the compiler unify the arms' value types).
    pub fn arm<T, S>(weight: u32, strategy: S) -> (u32, Rc<dyn Strategy<Value = T>>)
    where
        S: Strategy<Value = T> + 'static,
    {
        (weight, Rc::new(strategy))
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy generating any value of `T` — see [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from a range — see [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::generate(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Mirrors proptest's macro of the same name:
/// an optional `#![proptest_config(..)]` followed by `fn` items whose
/// arguments use `name in strategy` binding syntax.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { @config ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @config ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@config ($config:expr)) => {};
    (
        @config ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    ::std::panic!(
                        "property failed at case {}/{}: {}",
                        __case + 1,
                        __config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { @config ($config) $($rest)* }
    };
}

/// Asserts inside a `proptest!` body, failing the current case (without
/// aborting the process) when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l != __r, $($fmt)+);
    }};
}

/// Weighted (`w => strategy`) or unweighted choice between strategies that
/// produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $( $crate::strategy::arm($weight as u32, $strat) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $( $crate::strategy::arm(1u32, $strat) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::for_test("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u8..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = Strategy::generate(&(-5i32..5), &mut rng);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn oneof_weights_respected() {
        let s = prop_oneof![9 => Just(1u8), 1 => Just(2u8)];
        let mut rng = TestRng::for_test("weights");
        let ones = (0..1000)
            .filter(|_| Strategy::generate(&s, &mut rng) == 1)
            .count();
        assert!(ones > 700, "{ones} ones out of 1000");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro surface itself: bindings, tuples, maps, collections.
        #[test]
        fn macro_smoke(
            x in 0u64..100,
            flags in crate::collection::vec(any::<bool>(), 0..10),
            pair in (0u8..4, 1u32..5).prop_map(|(a, b)| (a, b)),
        ) {
            prop_assert!(x < 100);
            prop_assert!(flags.len() < 10);
            prop_assert_eq!(pair.1 as u64 * 2 / 2, pair.1 as u64, "roundtrip {}", pair.1);
            prop_assert_ne!(pair.1, 0);
        }
    }
}
