//! Offline stand-in for [criterion](https://docs.rs/criterion).
//!
//! The workspace's build environment cannot reach a crates.io mirror, so the
//! real `criterion` cannot be downloaded. This crate vendors the small
//! subset of the criterion 0.5 API used by the workspace's
//! `benches/mechanism_micro.rs`: [`Criterion`], [`Criterion::benchmark_group`],
//! `bench_function`, [`Bencher::iter`], [`Bencher::iter_batched`],
//! [`BatchSize`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: each benchmark routine runs for a
//! short, bounded wall-clock window and the mean time per iteration is
//! printed as one plain-text line. There is no statistical analysis, HTML
//! report, or baseline comparison. Set `CRITERION_STUB_MS` to change the
//! per-benchmark measurement window (default 20 ms).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How batched inputs are grouped — accepted for API compatibility; the
/// stub times every batch size the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Collects timing for one benchmark routine.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

fn measurement_window() -> Duration {
    let ms = std::env::var("CRITERION_STUB_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(20);
    Duration::from_millis(ms)
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let window = measurement_window();
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= window {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs produced by `setup`; only the
    /// routine (not the setup) is counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let window = measurement_window();
        let begin = Instant::now();
        let mut timed = Duration::ZERO;
        let mut iters = 0u64;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            timed += start.elapsed();
            iters += 1;
            if begin.elapsed() >= window {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = timed;
    }

    fn report(&self, name: &str) {
        let per_iter = if self.iters == 0 {
            0.0
        } else {
            self.elapsed.as_nanos() as f64 / self.iters as f64
        };
        println!("{name:<48} {per_iter:>14.1} ns/iter ({} iters)", self.iters);
    }
}

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs `routine` as a named benchmark and prints its mean time.
    pub fn bench_function<R>(&mut self, name: impl Into<String>, routine: R) -> &mut Self
    where
        R: FnOnce(&mut Bencher),
    {
        let name = name.into();
        let mut b = Bencher::default();
        routine(&mut b);
        b.report(&name);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.into(),
            _criterion: self,
        }
    }
}

/// A named group of benchmarks; names are reported as `group/function`.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    prefix: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs `routine` as `group/name`.
    pub fn bench_function<R>(&mut self, name: impl Into<String>, routine: R) -> &mut Self
    where
        R: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, name.into());
        let mut b = Bencher::default();
        routine(&mut b);
        b.report(&full);
        self
    }

    /// Ends the group (reporting is per-function, so this is a no-op).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = { $config };
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_counts_and_reports() {
        std::env::set_var("CRITERION_STUB_MS", "1");
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("unit/spin", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran > 0);
        let mut group = c.benchmark_group("unit");
        let mut batches = 0u64;
        group.bench_function("batched", |b| {
            b.iter_batched(|| 7u64, |x| batches += x, BatchSize::SmallInput)
        });
        group.finish();
        assert!(batches > 0);
    }
}
