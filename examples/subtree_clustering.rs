//! Subtree clustering (paper Figure 9 / BH, §5.3): build a binary tree in
//! creation order, traverse it in a data-dependent order, then cluster
//! subtrees into cache-line-sized groups and traverse again.
//!
//! Run with: `cargo run --release --example subtree_clustering`

use memfwd_repro::core::{subtree_cluster, Machine, SimConfig, Token, TreeDesc};
use memfwd_repro::tagmem::Addr;

const DEPTH: u32 = 11; // 2^12 - 1 nodes
const NODE_WORDS: u64 = 4; // [left, right, payload, pad] = 32 B

fn build(m: &mut Machine, depth: u32, idx: u64) -> Addr {
    let _frag = m.malloc(8 + (idx % 7) * 24); // heap fragmentation
    let node = m.malloc(NODE_WORDS * 8);
    m.store_word(node + 16, idx);
    if depth > 0 {
        let l = build(m, depth - 1, idx * 2 + 1);
        let r = build(m, depth - 1, idx * 2 + 2);
        m.store_ptr(node, l);
        m.store_ptr(node + 8, r);
    }
    node
}

/// Random-ish root-to-leaf descents, as in BH's force phase.
fn probe_walks(m: &mut Machine, root: Addr, walks: u64) -> (u64, u64) {
    let before = m.now();
    let mut acc = 0u64;
    for w in 0..walks {
        let mut node = root;
        let mut bits = w.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut tok = Token::ready();
        while !node.is_null() {
            let (payload, t1) = m.load_word_dep(node + 16, tok);
            acc = acc.wrapping_add(payload);
            let side = (bits & 1) * 8;
            bits >>= 1;
            let (child, t2) = m.load_ptr_dep(node + side, t1);
            node = child;
            tok = t2;
        }
    }
    (acc, m.now() - before)
}

fn main() {
    // Clustering packs several 32-byte nodes per line once lines are long;
    // run the whole demo at 128-byte lines to show the effect clearly.
    let mut m = Machine::new(SimConfig::default().with_line_bytes(128));
    let root = build(&mut m, DEPTH, 0);

    let (sum_before, cycles_before) = probe_walks(&mut m, root, 2000);

    let desc = TreeDesc {
        node_words: NODE_WORDS,
        child_words: vec![0, 1],
    };
    let cap = desc.nodes_per_line(m.line_bytes());
    let mut pool = m.new_pool();
    let t0 = m.now();
    let new_root = subtree_cluster(&mut m, root, &desc, cap, &mut pool, &mut |_, _| true);
    let cluster_cycles = m.now() - t0;

    let (sum_after, cycles_after) = probe_walks(&mut m, new_root, 2000);
    assert_eq!(sum_before, sum_after, "clustering must preserve the tree");

    // A walk through the STALE root still works, via forwarding:
    let (sum_stale, _) = probe_walks(&mut m, root, 10);
    let (sum_fresh, _) = probe_walks(&mut m, new_root, 10);
    assert_eq!(sum_stale, sum_fresh);

    println!(
        "binary tree of {} nodes, {} nodes clustered per {}B line",
        (1u64 << (DEPTH + 1)) - 1,
        cap,
        m.line_bytes()
    );
    println!("2000 descents before clustering: {cycles_before:>9} cycles");
    println!("2000 descents after  clustering: {cycles_after:>9} cycles");
    println!(
        "speedup: {:.2}x   (clustering itself cost {} cycles)",
        cycles_before as f64 / cycles_after as f64,
        cluster_cycles
    );

    let stats = m.finish();
    println!(
        "stale-root walks took {} forwarded loads — still correct",
        stats.fwd.forwarded_loads
    );
}
