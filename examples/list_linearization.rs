//! List linearization (paper Figure 2 / §2.2): build a linked list whose
//! nodes are scattered across the heap, measure a traversal, linearize the
//! list into contiguous pool memory, and measure again.
//!
//! Run with: `cargo run --release --example list_linearization`

use memfwd_repro::core::{list_linearize, list_walk, ListDesc, Machine, SimConfig};
use memfwd_repro::tagmem::Addr;

const NODES: u64 = 12_000;
const DESC: ListDesc = ListDesc {
    node_words: 4,
    next_word: 0,
};

fn traverse_sum(m: &mut Machine, head: Addr) -> (u64, u64) {
    let before = m.now();
    let mut sum = 0u64;
    list_walk(m, head, 0, |m, node, tok| {
        let (v, t) = m.load_word_dep(node + 8, tok);
        sum = sum.wrapping_add(v);
        t
    });
    (sum, m.now() - before)
}

fn main() {
    // 32-byte nodes pack four to a line at 128-byte lines, which is where
    // linearization shines (paper Fig. 5's trend with line size).
    let mut m = Machine::new(SimConfig::default().with_line_bytes(128));

    // Build the list with interleaved "fragmentation" allocations, so that
    // consecutive nodes land on different cache lines (paper Fig. 2(a)).
    let head = m.malloc(8);
    m.store_ptr(head, Addr::NULL);
    for i in 0..NODES {
        let _frag = m.malloc(8 + (i * 40) % 160);
        let node = m.malloc(32);
        let first = m.load_ptr(head);
        m.store_ptr(node, first);
        m.store_word(node + 8, i);
        m.store_ptr(head, node);
    }

    let (sum_before, cycles_before) = traverse_sum(&mut m, head);

    // Linearize: nodes move to contiguous pool memory; the head and the
    // next-pointers are updated; anything else is covered by forwarding.
    let mut pool = m.new_pool();
    let t0 = m.now();
    let out = list_linearize(&mut m, head, DESC, &mut pool);
    let linearize_cycles = m.now() - t0;

    let (sum_after, cycles_after) = traverse_sum(&mut m, head);
    assert_eq!(
        sum_before, sum_after,
        "linearization must preserve the list"
    );

    println!("list of {} nodes (4 words each)", out.nodes);
    println!("traversal before linearization: {cycles_before:>9} cycles");
    println!("traversal after  linearization: {cycles_after:>9} cycles");
    println!(
        "speedup: {:.2}x   (linearization itself cost {} cycles)",
        cycles_before as f64 / cycles_after as f64,
        linearize_cycles
    );

    let stats = m.finish();
    println!(
        "relocated {} words into {} KB of contiguous pool space",
        stats.fwd.relocated_words,
        stats.fwd.relocation_space_bytes / 1024
    );
    println!(
        "head-based traversals never forwarded: {} forwarded loads total",
        stats.fwd.forwarded_loads
    );
}
