//! Dumps checksum + full RunStats (Debug) for every app × variant at smoke
//! scale, for bit-identity comparison across simulator-engine changes.

use memfwd_apps::{run_ok, App, RunConfig, Variant};

fn main() {
    let bench = std::env::args().any(|a| a == "--bench");
    for app in App::ALL {
        for variant in [Variant::Original, Variant::Optimized, Variant::Static] {
            let mut cfg = RunConfig::new(variant).smoke();
            if bench {
                cfg.scale = memfwd_apps::Scale::Bench;
            }
            let out = run_ok(app, &cfg);
            println!("{app} {variant:?} {:#018x} {:?}", out.checksum, out.stats);
        }
    }
}
