//! Reducing false sharing with safe relocation (paper §2.2).
//!
//! Four cores each own a handful of counters that happen to be packed into
//! shared cache lines. Every update ping-pongs the lines between the
//! cores' caches although no communication takes place. The fix relocates
//! each core's counters into per-core, line-aligned pool memory — safe
//! even though stray pointers to the old locations exist, because memory
//! forwarding covers them.
//!
//! Run with: `cargo run --release --example false_sharing`

use memfwd_repro::core::{SimConfig, SmpConfig, SmpMachine};
use memfwd_repro::tagmem::{Addr, Pool};

const CORES: usize = 4;
const COUNTERS_PER_CORE: usize = 8;
const ROUNDS: u64 = 400;

fn update_phase(m: &mut SmpMachine, counters: &[Vec<Addr>]) -> u64 {
    m.barrier();
    let start = m.cycles();
    for _ in 0..ROUNDS {
        for (core, mine) in counters.iter().enumerate() {
            for &c in mine {
                let v = m.load(core, c, 8);
                m.store(core, c, 8, v + 1);
                m.compute(core, 2);
            }
        }
    }
    m.barrier();
    m.cycles() - start
}

fn main() {
    let mut m = SmpMachine::new(
        SmpConfig {
            cores: CORES,
            ..SmpConfig::default()
        },
        SimConfig::default(),
    );

    // One flat array of counters, interleaved across cores: counter i
    // belongs to core i % CORES, so every 64-byte line is written by
    // several cores — classic false sharing.
    let arr = m.malloc((CORES * COUNTERS_PER_CORE * 8) as u64);
    let mut counters: Vec<Vec<Addr>> = vec![Vec::new(); CORES];
    for i in 0..CORES * COUNTERS_PER_CORE {
        counters[i % CORES].push(arr.add_words(i as u64));
    }
    let stale = counters.clone(); // aliases nobody will update

    let shared_cycles = update_phase(&mut m, &counters);
    let before = m.total_stats();

    // The fix: relocate each core's counters into its own line-aligned
    // pool. Stray pointers keep working via forwarding.
    let line = m.line_bytes();
    let mut pools: Vec<Pool> = (0..CORES).map(|_| Pool::new(4096)).collect();
    for core in 0..CORES {
        let chunk = m.pool_alloc_aligned(&mut pools[core], (COUNTERS_PER_CORE * 8) as u64, line);
        for (k, c) in counters[core].clone().into_iter().enumerate() {
            let tgt = chunk.add_words(k as u64);
            m.relocate(core, c, tgt, 1);
            counters[core][k] = tgt;
        }
    }

    let private_cycles = update_phase(&mut m, &counters);
    let after = m.total_stats();

    println!(
        "{} cores x {} counters, {} update rounds",
        CORES, COUNTERS_PER_CORE, ROUNDS
    );
    println!("interleaved layout : {shared_cycles:>9} cycles");
    println!("relocated layout   : {private_cycles:>9} cycles");
    println!(
        "speedup: {:.2}x",
        shared_cycles as f64 / private_cycles as f64
    );
    println!(
        "coherence misses: {} before fix, {} during fixed phase",
        before.coherence_misses,
        after.coherence_misses - before.coherence_misses
    );
    println!(
        "of which false sharing: {} before fix",
        before.false_sharing_misses
    );

    // Stray pointers to the old homes still see the live values.
    let v = m.load(0, stale[1][0], 8);
    assert_eq!(v, 2 * ROUNDS, "stale pointer forwarded to the live counter");
    println!("stale-pointer read through forwarding: {v} (correct)");
}
