//! User-level traps on forwarded references (paper §3.2): a profiling tool
//! records which references experience forwarding, and the application
//! fixes its stray pointers on the fly so the forwarding cost is paid only
//! once per pointer.
//!
//! Run with: `cargo run --release --example forwarding_traps`

use memfwd_repro::core::{relocate, Machine, SimConfig};

const OBJECTS: u64 = 512;

fn main() {
    let mut m = Machine::new(SimConfig::default());

    // An array of pointers to scattered objects — think of it as a stray
    // pointer table the relocation pass could not see.
    let ptrs = m.malloc(OBJECTS * 8);
    for i in 0..OBJECTS {
        let _frag = m.malloc(8 + (i % 9) * 16);
        let obj = m.malloc(16);
        m.store_word(obj, i * 3 + 1);
        m.store_ptr(ptrs.add_words(i), obj);
    }

    // Relocate every object (e.g. a compaction pass) WITHOUT updating the
    // pointer table.
    let mut pool = m.new_pool();
    for i in 0..OBJECTS {
        let obj = m.load_ptr(ptrs.add_words(i));
        let tgt = m.pool_alloc(&mut pool, 16);
        relocate(&mut m, obj, tgt, 2);
    }

    // Pass 1 with traps enabled: every dereference forwards (and pays the
    // trap penalty), but the trap log tells us which pointers are stale.
    m.set_traps_enabled(true);
    let t0 = m.now();
    let mut sum1 = 0u64;
    for i in 0..OBJECTS {
        let obj = m.load_ptr(ptrs.add_words(i));
        sum1 = sum1.wrapping_add(m.load_word(obj));
    }
    let pass1 = m.now() - t0;
    let traps = m.take_traps();
    println!(
        "pass 1: {} cycles, {} forwarded references trapped",
        pass1,
        traps.len()
    );

    // The fixup handler: rewrite each stray pointer to the final address
    // the trap reported (this needs application knowledge — we know the
    // pointer table slots).
    m.set_traps_enabled(false);
    let mut fixed = 0;
    for (i, t) in traps.iter().enumerate() {
        // Object i was accessed through slot i in this simple kernel.
        let slot = ptrs.add_words(i as u64);
        let stale = m.load_ptr(slot);
        if stale == t.initial {
            m.store_ptr(slot, t.final_addr);
            fixed += 1;
        }
    }
    println!("fixup: rewrote {fixed} stray pointers");

    // Pass 2: no forwarding at all.
    let t1 = m.now();
    let mut sum2 = 0u64;
    for i in 0..OBJECTS {
        let obj = m.load_ptr(ptrs.add_words(i));
        sum2 = sum2.wrapping_add(m.load_word(obj));
    }
    let pass2 = m.now() - t1;
    assert_eq!(sum1, sum2, "fixup must not change results");
    println!("pass 2: {pass2} cycles (forwarding optimized away)");
    println!("speedup from learning: {:.2}x", pass1 as f64 / pass2 as f64);

    let stats = m.finish();
    println!(
        "traps taken: {}, forwarded loads total: {}",
        stats.fwd.traps_taken, stats.fwd.forwarded_loads
    );
}
