//! Out-of-core page locality (paper §2.2): "we can apply data relocation
//! to improve the spatial locality within pages (and hence on disk) for
//! out-of-core applications."
//!
//! A linked list is scattered over far more pages than fit in memory, so
//! every traversal thrashes the resident set. Linearization packs the
//! nodes into a handful of pages; the same traversal then faults only on
//! its compulsory pages.
//!
//! Run with: `cargo run --release --example out_of_core`

use memfwd_repro::core::{list_linearize, list_walk, ListDesc, Machine, PagingConfig, SimConfig};
use memfwd_repro::tagmem::Addr;

const NODES: u64 = 3000;
const DESC: ListDesc = ListDesc {
    node_words: 4,
    next_word: 0,
};

fn traverse(m: &mut Machine, head: Addr) -> (u64, u64) {
    let before = m.now();
    let mut sum = 0u64;
    list_walk(m, head, 0, |m, node, tok| {
        let (v, t) = m.load_word_dep(node + 8, tok);
        sum = sum.wrapping_add(v);
        t
    });
    (sum, m.now() - before)
}

fn main() {
    let cfg = SimConfig {
        paging: Some(PagingConfig {
            page_bytes: 4096,
            resident_pages: 48,
            fault_penalty: 50_000,
        }),
        ..SimConfig::default()
    };
    let mut m = Machine::new(cfg);

    // Scatter the list across ~hundreds of pages: each node is pushed far
    // from its predecessor by large fragmentation gaps.
    let head = m.malloc(8);
    m.store_ptr(head, Addr::NULL);
    for i in 0..NODES {
        let _gap = m.malloc(2048 + (i % 5) * 1024);
        let node = m.malloc(32);
        let first = m.load_ptr(head);
        m.store_ptr(node, first);
        m.store_word(node + 8, i);
        m.store_ptr(head, node);
    }

    let (sum1, cold) = traverse(&mut m, head);
    let (_, thrash) = traverse(&mut m, head);

    let mut pool = m.new_pool();
    list_linearize(&mut m, head, DESC, &mut pool);

    let (_, warmup) = traverse(&mut m, head);
    let (sum2, packed) = traverse(&mut m, head);
    assert_eq!(sum1, sum2);

    let pages_needed = NODES * 32 / 4096 + 1;
    println!(
        "{NODES} nodes scattered over ~{} pages, {} resident",
        NODES * 3400 / 4096,
        48
    );
    println!("traversal (cold, scattered)   : {cold:>12} cycles");
    println!("traversal (repeat, scattered) : {thrash:>12} cycles  <- thrashing");
    println!(
        "traversal (repeat, linearized): {packed:>12} cycles  ({} pages now suffice)",
        pages_needed
    );
    println!("out-of-core speedup: {:.1}x", thrash as f64 / packed as f64);
    let _ = warmup;

    let stats = m.finish();
    println!("total page faults: {}", stats.fwd.page_faults);
}
