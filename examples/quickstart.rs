//! Quickstart: the paper's Figure 1 scenario.
//!
//! Relocates five 32-bit elements from one region to another, leaving
//! forwarding addresses behind, then shows that a *stray* access through
//! the old address still observes the data — and what it costs.
//!
//! Run with: `cargo run --example quickstart`

use memfwd_repro::core::{relocate, Machine, SimConfig};

fn main() {
    let mut m = Machine::new(SimConfig::default());

    // Five 32-bit elements: values 3, 47, 0, 12, 5 (paper Fig. 1(a)).
    let vals: [u64; 5] = [3, 47, 0, 12, 5];
    let old = m.malloc(3 * 8); // five 32-bit slots occupy 3 words
    for (i, v) in vals.iter().enumerate() {
        m.store(old + 4 * i as u64, 4, *v);
    }

    // Relocate to a new home. Relocating the fifth element drags its word
    // neighbour along: the unit of relocation is one 64-bit word.
    let new = m.malloc(3 * 8);
    relocate(&mut m, old, new, 3);
    println!("relocated 3 words from {old} to {new}");

    // A pointer that was updated reads the new location directly:
    let direct = m.load(new + 4, 4);
    // A stray pointer that was NOT updated is forwarded transparently:
    let stray = m.load(old + 4, 4);
    println!("direct load of element[1] at {new}+4 -> {direct}");
    println!("stray  load of element[1] at {old}+4 -> {stray} (forwarded)");
    assert_eq!(direct, 47);
    assert_eq!(stray, 47);

    // The forwarding bit of the old word is set; the new word's is clear.
    println!("fbit(old) = {}", m.mem().fbit(old));
    println!("fbit(new) = {}", m.mem().fbit(new));

    let stats = m.finish();
    println!();
    println!("-- run statistics --");
    println!("cycles                 {}", stats.cycles());
    println!("loads                  {}", stats.fwd.loads);
    println!("forwarded loads        {}", stats.fwd.forwarded_loads);
    println!(
        "avg load cycles        {:.1} forwarding + {:.1} ordinary",
        stats.fwd.avg_load_cycles().0,
        stats.fwd.avg_load_cycles().1
    );
    println!(
        "tag storage overhead   {} bytes for {} bytes of data (~1.5%)",
        stats.mem.tag_bytes(),
        stats.mem.data_bytes()
    );
}
