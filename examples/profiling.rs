//! Profiling workflow (paper §3.2): trace the program's references, find
//! the hot miss lines and the stray pointers that experience forwarding,
//! and inspect the layout — the information a tuning tool feeds back into
//! better relocation decisions.
//!
//! Run with: `cargo run --release --example profiling`

use memfwd_repro::core::{
    dump_chain, forwarding_sources, heap_summary, hot_miss_lines, line_map, relocate, Machine,
    SimConfig,
};
use memfwd_repro::tagmem::Addr;

fn main() {
    let mut m = Machine::new(SimConfig::default());

    // A little object graph: an array of slots pointing at scattered
    // records, some of which get relocated without updating the slots.
    let slots = m.malloc(512 * 8);
    let mut records = Vec::new();
    for i in 0..512u64 {
        let _pad = m.malloc(8 + (i % 5) * 256);
        let r = m.malloc(16);
        m.store_word(r, i * 7);
        m.store_ptr(slots.add_words(i), r);
        records.push(r);
    }
    let mut pool = m.new_pool();
    for &r in records.iter().take(64) {
        let tgt = m.pool_alloc(&mut pool, 16);
        relocate(&mut m, r, tgt, 2);
    }

    // Trace a sweep through the slots.
    m.enable_trace(1 << 16);
    let mut acc = 0u64;
    for round in 0..4 {
        for i in 0..512u64 {
            let r = m.load_ptr(slots.add_words(i));
            acc = acc.wrapping_add(m.load_word(r)).wrapping_add(round);
        }
    }
    let (records_tr, dropped) = m.take_trace();
    println!(
        "traced {} references ({} dropped)",
        records_tr.len(),
        dropped
    );

    println!("\nhot L1-miss lines (top 5):");
    for (line, misses) in hot_miss_lines(&records_tr, m.line_bytes(), 5) {
        println!("  line {:#x}: {} misses", line * m.line_bytes(), misses);
    }

    println!("\nstray pointers found by the forwarding profile:");
    let sources = forwarding_sources(&records_tr);
    for (addr, hops, count) in sources.iter().take(5) {
        println!("  {addr} forwarded {count} times ({hops} hop)");
    }
    println!("  ... {} distinct stray words in total", sources.len());

    println!("\nchain of the first relocated record:");
    println!("  {}", dump_chain(m.mem(), records[0]));

    println!("\n{}", heap_summary(&m));

    println!("\nlayout of the slot array's first lines ('d' data, 'F' forwarding):");
    let base = Addr(slots.0 / 32 * 32);
    print!("{}", line_map(m.mem(), base, 128, 32));
    let _ = acc;
}
