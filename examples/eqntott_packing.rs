//! Hash-chunk packing (paper Figure 8 / eqntott, §5.3): a hash table whose
//! slots point to records, each pointing to a separately-allocated array.
//! Packing relocates each record and its array into one chunk and lays the
//! chunks out in increasing hash order.
//!
//! Run with: `cargo run --release --example eqntott_packing`

use memfwd_repro::core::{relocate_adjacent, Machine, SimConfig, Token};
use memfwd_repro::tagmem::Addr;

const SLOTS: u64 = 6144;
const REC_WORDS: u64 = 4;
const ARR_WORDS: u64 = 8;

fn sweep(m: &mut Machine, table: Addr) -> (u64, u64) {
    let before = m.now();
    let mut acc = 0u64;
    for i in 0..SLOTS {
        let (rec, t0) = m.load_ptr_dep(table.add_words(i), Token::ready());
        if rec.is_null() {
            continue;
        }
        let (arr, t1) = m.load_ptr_dep(rec, t0);
        let mut tok = t1;
        for w in 0..ARR_WORDS {
            let (v, t) = m.load_word_dep(arr.add_words(w), tok);
            acc = acc.wrapping_add(v);
            tok = t;
        }
    }
    (acc, m.now() - before)
}

fn main() {
    let mut m = Machine::new(SimConfig::default().with_line_bytes(64));

    // Fig. 8(a): records and arrays scattered across the heap.
    let table = m.malloc(SLOTS * 8);
    for i in 0..SLOTS {
        if i % 5 == 3 {
            m.store_ptr(table.add_words(i), Addr::NULL);
            continue;
        }
        let _frag = m.malloc(8 + (i % 11) * 16);
        let rec = m.malloc(REC_WORDS * 8);
        let _frag2 = m.malloc(8 + (i % 7) * 24);
        let arr = m.malloc(ARR_WORDS * 8);
        for w in 0..ARR_WORDS {
            m.store_word(arr.add_words(w), i * 10 + w);
        }
        m.store_ptr(rec, arr);
        m.store_ptr(table.add_words(i), rec);
    }

    let (sum_before, cycles_before) = sweep(&mut m, table);

    // Fig. 8(b): one chunk per slot, chunks contiguous in hash order.
    let mut pool = m.new_pool();
    let t0 = m.now();
    for i in 0..SLOTS {
        let rec = m.load_ptr(table.add_words(i));
        if rec.is_null() {
            continue;
        }
        let arr = m.load_ptr(rec);
        let chunk = m.pool_alloc(&mut pool, (REC_WORDS + ARR_WORDS) * 8);
        let bases = relocate_adjacent(&mut m, &[(rec, REC_WORDS), (arr, ARR_WORDS)], chunk);
        m.store_ptr(table.add_words(i), bases[0]);
        m.store_ptr(bases[0], bases[1]);
    }
    let pack_cycles = m.now() - t0;

    let (sum_after, cycles_after) = sweep(&mut m, table);
    assert_eq!(sum_before, sum_after, "packing must preserve the table");

    println!("hash table of {SLOTS} slots, ~80% occupied");
    println!("sweep before packing: {cycles_before:>9} cycles");
    println!("sweep after  packing: {cycles_after:>9} cycles");
    println!(
        "speedup: {:.2}x   (one-shot packing cost {} cycles)",
        cycles_before as f64 / cycles_after as f64,
        pack_cycles
    );

    let stats = m.finish();
    println!(
        "space overhead of relocation: {} KB (paper Table 1 column)",
        stats.fwd.relocation_space_bytes / 1024
    );
}
