//! Data coloring (paper §2.2): relocating pointer-structure elements that
//! are accessed close together in time into logically separate cache
//! regions ("colors"), so they stop conflicting — with memory forwarding
//! guaranteeing that the relocation is safe.
//!
//! Eight records happen to sit exactly one L1-way apart, so they all map
//! to the same 2-way set: a round-robin traversal misses on every access.
//! Coloring relocates them into per-color pools at distinct set indices.
//!
//! Run with: `cargo run --release --example data_coloring`

use memfwd_repro::core::{color_relocate, Machine, SimConfig, Token};
use memfwd_repro::tagmem::Addr;

const OBJECTS: usize = 8;
const OBJ_WORDS: u64 = 4; // [next, payload, -, -]
const ROUNDS: u64 = 500;

/// Chase the ring of records for `ROUNDS` laps (dependent loads, as in the
/// pointer-based structures data coloring targets).
fn chase(m: &mut Machine, start: Addr) -> (u64, u64) {
    let t0 = m.now();
    let mut acc = 0u64;
    let mut node = start;
    let mut tok = Token::ready();
    for _ in 0..ROUNDS * OBJECTS as u64 {
        let (v, t1) = m.load_word_dep(node + 8, tok);
        acc = acc.wrapping_add(v);
        let (next, t2) = m.load_ptr_dep(node, t1);
        m.compute(2);
        node = next;
        tok = t2;
    }
    let cycles = m.now() - t0;
    (acc, cycles)
}

fn main() {
    // Default machine: 16 KB 2-way L1 => way size 8 KB. Objects placed
    // exactly 8 KB apart share one set.
    let mut m = Machine::new(SimConfig::default());
    let way_bytes = 8 * 1024;

    let mut objs: Vec<Addr> = Vec::new();
    for i in 0..OBJECTS {
        let o = m.malloc(OBJ_WORDS * 8);
        m.store_word(o + 8, (i as u64 + 1) * 100);
        objs.push(o);
        let _pad = m.malloc(way_bytes - OBJ_WORDS * 8); // force the stride
    }
    for i in 0..OBJECTS {
        m.store_ptr(objs[i], objs[(i + 1) % OBJECTS]); // link the ring
    }
    assert!(
        objs.windows(2).all(|w| (w[1].0 - w[0].0) % way_bytes == 0),
        "objects must alias in the cache for the demo"
    );
    let stale = objs.clone();

    let (sum1, conflicted) = chase(&mut m, objs[0]);

    // Color the objects: round-robin over two colors, each color backed by
    // its own pool (and therefore its own, non-conflicting region).
    let spec: Vec<(Addr, u64, usize)> = objs
        .iter()
        .enumerate()
        .map(|(i, &o)| (o, OBJ_WORDS, i % 2))
        .collect();
    let mut pools = vec![m.new_pool(), m.new_pool()];
    let new_homes = color_relocate(&mut m, &spec, &mut pools);
    // Update the ring links the optimizer knows about; any pointer it
    // missed is covered by forwarding.
    for i in 0..OBJECTS {
        m.store_ptr(new_homes[i], new_homes[(i + 1) % OBJECTS]);
    }

    let (sum2, colored) = chase(&mut m, new_homes[0]);
    assert_eq!(sum1, sum2, "coloring must not change results");

    println!("{OBJECTS} records aliased to one 2-way set, {ROUNDS} sweeps");
    println!("conflicting layout: {conflicted:>9} cycles");
    println!("colored layout    : {colored:>9} cycles");
    println!("speedup: {:.1}x", conflicted as f64 / colored as f64);

    // Stray pointers to the old, conflicting homes still work.
    assert_eq!(m.load_word(stale[3] + 8), 400);
    println!("stale-pointer read through forwarding: correct");

    let s = m.finish();
    println!(
        "load misses total: {} (the conflicted phase dominates)",
        s.cache.loads.misses()
    );
}
