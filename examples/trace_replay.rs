//! Trace-driven design-space exploration: record one run's reference
//! stream, then re-price it under a sweep of machine configurations
//! without re-running the program.
//!
//! Run with: `cargo run --release --example trace_replay`

use memfwd_repro::core::{replay_trace, Machine, SimConfig, Token};
use memfwd_repro::tagmem::Addr;

fn main() {
    // Record: a mixed workload — a pointer chase interleaved with array
    // sweeps (so both latency and bandwidth sensitivity show up).
    let mut m = Machine::new(SimConfig::default());
    let nodes: Vec<Addr> = (0..256).map(|_| m.malloc(2048)).collect();
    for w in nodes.windows(2) {
        m.poke_word(w[0], w[1].0);
    }
    let array = m.malloc(1 << 17);

    m.enable_trace(1 << 20);
    let mut p = nodes[0];
    let mut tok = Token::ready();
    for lap in 0..2u64 {
        for _ in 0..nodes.len() - 1 {
            let (v, t) = m.load_word_dep(p, tok);
            p = Addr(v);
            tok = t;
        }
        for off in (0..(1u64 << 17)).step_by(64) {
            m.load_word(array + off);
        }
        p = nodes[0];
        let _ = lap;
    }
    let (trace, dropped) = m.take_trace();
    println!("recorded {} references ({} dropped)", trace.len(), dropped);
    println!();
    println!("replaying the same trace across machine configurations:");
    println!("{:<34} {:>12} {:>10}", "configuration", "cycles", "vs base");

    let base = replay_trace(&trace, SimConfig::default());
    let show = |label: &str, stats: &memfwd_repro::core::RunStats| {
        println!(
            "{:<34} {:>12} {:>9.2}x",
            label,
            stats.cycles(),
            base.cycles() as f64 / stats.cycles() as f64
        );
    };
    show("base (32B lines, 75-cycle memory)", &base);

    for lb in [64u64, 128] {
        let s = replay_trace(&trace, SimConfig::default().with_line_bytes(lb));
        show(&format!("{lb}B lines"), &s);
    }
    for lat in [150u64, 300] {
        let mut cfg = SimConfig::default();
        cfg.hierarchy.mem_latency = lat;
        let s = replay_trace(&trace, cfg);
        show(&format!("{lat}-cycle memory"), &s);
    }
    {
        let mut cfg = SimConfig::default();
        cfg.hierarchy.l2.size_bytes = 1 << 20;
        let s = replay_trace(&trace, cfg);
        show("1 MB L2", &s);
    }
    {
        let mut cfg = SimConfig::default();
        cfg.hierarchy.next_line_prefetch = true;
        let s = replay_trace(&trace, cfg);
        show("hardware next-line prefetch", &s);
    }
    println!();
    println!(
        "(the chase half of the trace is latency-bound — it tracks memory\n\
         latency; the sweep half is line-size and prefetch sensitive)"
    );
}
