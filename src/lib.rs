//! Facade crate for the *Memory Forwarding* (Luk & Mowry, ISCA 1999)
//! reproduction.
//!
//! Re-exports the workspace crates so examples and downstream users can
//! depend on a single package:
//!
//! - [`tagmem`] — tagged 64-bit memory with per-word forwarding bits.
//! - [`cache`] — cache hierarchy timing model (L1D, unified L2, buses).
//! - [`cpu`] — out-of-order superscalar timing skeleton.
//! - [`core`] — the memory-forwarding machine and the layout-optimization
//!   library (relocation, list linearization, subtree clustering, packing).
//! - [`apps`] — the eight applications evaluated in the paper.
//!
//! # Quickstart
//!
//! ```
//! use memfwd_repro::core::{Machine, SimConfig};
//! use memfwd_repro::tagmem::Addr;
//!
//! let mut m = Machine::new(SimConfig::default());
//! let obj = m.malloc(16);
//! m.store(obj, 8, 123);
//! let new = m.malloc(16);
//! memfwd_repro::core::relocate(&mut m, obj, new, 2);
//! // A stray access through the old address is forwarded transparently.
//! assert_eq!(m.load(obj, 8), 123);
//! ```

#![forbid(unsafe_code)]

pub use memfwd as core;
pub use memfwd_apps as apps;
pub use memfwd_cache as cache;
pub use memfwd_cpu as cpu;
pub use memfwd_tagmem as tagmem;
