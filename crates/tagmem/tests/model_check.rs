//! Property-based checks of the tagged memory against reference models.

use memfwd_tagmem::{chain_words, resolve, resolve_unbounded, Addr, Heap, Pool, TaggedMemory};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The data plane behaves like a flat byte map, for arbitrary aligned
    /// access-size mixes, independent of forwarding-bit changes.
    #[test]
    fn data_plane_matches_byte_map(
        ops in proptest::collection::vec(
            (0u64..512, prop_oneof![Just(1u64), Just(2), Just(4), Just(8)], any::<u64>(), any::<bool>()),
            1..300,
        )
    ) {
        let mut mem = TaggedMemory::new();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for (slot, size, value, flip_fbit) in ops {
            let addr = Addr(0x4000 + (slot / size * size) * 8 % 4096);
            let addr = Addr(addr.0 / size * size);
            mem.write_data(addr, size, value);
            for b in 0..size {
                model.insert(addr.0 + b, value.to_le_bytes()[b as usize]);
            }
            if flip_fbit {
                mem.set_fbit(addr, slot % 2 == 0);
            }
            // Read back through every containing size.
            let got = mem.read_data(addr, size);
            let mut want = [0u8; 8];
            for b in 0..size {
                want[b as usize] = model.get(&(addr.0 + b)).copied().unwrap_or(0);
            }
            prop_assert_eq!(got, u64::from_le_bytes(want));
        }
    }

    /// Forwarding bits are per-word and survive any data writes.
    #[test]
    fn fbits_are_word_granular(words in proptest::collection::vec((0u64..64, any::<bool>()), 1..200)) {
        let mut mem = TaggedMemory::new();
        let mut model: HashMap<u64, bool> = HashMap::new();
        for (w, set) in words {
            let addr = Addr(0x8000 + w * 8);
            mem.set_fbit(addr + (w % 8), set); // any byte of the word
            model.insert(addr.0, set);
            mem.write_data(addr, 8, w); // data writes never touch fbits
        }
        for (a, want) in model {
            prop_assert_eq!(mem.fbit(Addr(a)), want);
            prop_assert_eq!(mem.fbit(Addr(a + 7)), want);
        }
    }

    /// `resolve` with any hop limit agrees with the unbounded resolver on
    /// acyclic chains, and both reject cyclic ones.
    #[test]
    fn hop_limit_is_semantics_free(len in 0usize..20, limit in 1u32..16, cyclic in any::<bool>()) {
        let mut mem = TaggedMemory::new();
        let nodes: Vec<u64> = (0..=len as u64).map(|i| 0x1000 + i * 64).collect();
        for w in nodes.windows(2) {
            mem.unforwarded_write(Addr(w[0]), w[1], true);
        }
        if cyclic && len > 0 {
            mem.unforwarded_write(Addr(*nodes.last().unwrap()), nodes[len / 2], true);
        }
        let bounded = resolve(&mem, Addr(nodes[0] + 4), limit);
        let unbounded = resolve_unbounded(&mem, Addr(nodes[0] + 4));
        match (bounded, unbounded) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a, b);
                prop_assert!(!cyclic || len == 0);
            }
            (Err(_), Err(_)) => prop_assert!(cyclic && len > 0),
            (a, b) => prop_assert!(false, "disagreement: {a:?} vs {b:?}"),
        }
    }

    /// `chain_words` lists exactly the words `resolve` walks through.
    #[test]
    fn chain_words_consistent_with_resolve(len in 0usize..16) {
        let mut mem = TaggedMemory::new();
        let nodes: Vec<u64> = (0..=len as u64).map(|i| 0x2000 + i * 32).collect();
        for w in nodes.windows(2) {
            mem.unforwarded_write(Addr(w[0]), w[1], true);
        }
        let words = chain_words(&mem, Addr(nodes[0])).unwrap();
        prop_assert_eq!(words.len(), len + 1);
        let r = resolve_unbounded(&mem, Addr(nodes[0])).unwrap();
        prop_assert_eq!(*words.last().unwrap(), r.final_addr);
        prop_assert_eq!(r.hops as usize, len);
    }

    /// Pools never overlap heap blocks or one another, even with mixed
    /// aligned/unaligned and oversize requests.
    #[test]
    fn pool_chunks_disjoint(
        reqs in proptest::collection::vec((1u64..600, prop_oneof![Just(8u64), Just(64), Just(128)]), 1..60)
    ) {
        let mut heap = Heap::new(Addr(0x1_0000), 1 << 22);
        let mut pool = Pool::new(1024);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for (bytes, align) in reqs {
            let a = pool.alloc_aligned(&mut heap, bytes, align).unwrap();
            prop_assert!(a.is_aligned(align));
            let rounded = bytes.div_ceil(8) * 8;
            for &(b, len) in &spans {
                let disjoint = a.0 + rounded <= b || b + len <= a.0;
                prop_assert!(disjoint, "chunk {a:?}+{rounded} overlaps {b:#x}+{len}");
            }
            spans.push((a.0, rounded));
        }
    }

    /// Heap blocks returned by interleaved alloc/free/alloc never alias a
    /// pool slab.
    #[test]
    fn heap_and_pool_share_arena_safely(seq in proptest::collection::vec(any::<bool>(), 1..80)) {
        let mut heap = Heap::new(Addr(0x1_0000), 1 << 22);
        let mut pool = Pool::new(256);
        let mut blocks: Vec<(u64, u64)> = Vec::new();
        for (i, pool_side) in seq.into_iter().enumerate() {
            let bytes = (i as u64 % 5 + 1) * 16;
            let a = if pool_side {
                pool.alloc(&mut heap, bytes).unwrap()
            } else {
                heap.alloc(bytes).unwrap()
            };
            let rounded = bytes.div_ceil(8) * 8;
            for &(b, len) in &blocks {
                let disjoint = a.0 + rounded <= b || b + len <= a.0;
                prop_assert!(disjoint, "{a:?} overlaps {b:#x}");
            }
            blocks.push((a.0, rounded));
        }
    }
}
