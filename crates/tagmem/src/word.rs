//! Byte addresses and word geometry.

use crate::error::TagMemError;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Width of a machine word in bytes.
///
/// The paper targets a 64-bit architecture: the minimum unit of relocation is
/// the width of a pointer, since a relocated word must be able to hold a
/// forwarding address. One forwarding bit is attached to each word, giving
/// the 1/64 ≈ 1.5 % space overhead quoted in the paper.
pub const WORD_BYTES: u64 = 8;

/// A byte address in the simulated 64-bit address space.
///
/// `Addr` is a transparent newtype over `u64`; address zero is the null
/// pointer of the simulated machine and is never backed by storage in
/// well-behaved programs.
///
/// # Example
///
/// ```
/// use memfwd_tagmem::Addr;
/// let a = Addr(0x1004);
/// assert_eq!(a.word_base(), Addr(0x1000));
/// assert_eq!(a.word_offset(), 4);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The null address of the simulated machine.
    pub const NULL: Addr = Addr(0);

    /// Returns `true` if this is the null address.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// The address of the word containing this byte (rounded down to a
    /// multiple of [`WORD_BYTES`]).
    #[inline]
    pub fn word_base(self) -> Addr {
        Addr(self.0 & !(WORD_BYTES - 1))
    }

    /// The byte offset of this address within its containing word.
    #[inline]
    pub fn word_offset(self) -> u64 {
        self.0 & (WORD_BYTES - 1)
    }

    /// Returns `true` if the address is aligned to `size` bytes.
    ///
    /// `size` must be a power of two.
    #[inline]
    pub fn is_aligned(self, size: u64) -> bool {
        debug_assert!(size.is_power_of_two());
        self.0 & (size - 1) == 0
    }

    /// The address advanced by `words` whole words.
    #[inline]
    pub fn add_words(self, words: u64) -> Addr {
        Addr(self.0 + words * WORD_BYTES)
    }

    /// Byte distance from `other` to `self` (may be negative).
    #[inline]
    pub fn distance_from(self, other: Addr) -> i64 {
        self.0 as i64 - other.0 as i64
    }
}

impl Add<u64> for Addr {
    type Output = Addr;
    #[inline]
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl AddAssign<u64> for Addr {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<u64> for Addr {
    type Output = Addr;
    #[inline]
    fn sub(self, rhs: u64) -> Addr {
        Addr(self.0 - rhs)
    }
}

impl From<u64> for Addr {
    #[inline]
    fn from(v: u64) -> Addr {
        Addr(v)
    }
}

impl From<Addr> for u64 {
    #[inline]
    fn from(a: Addr) -> u64 {
        a.0
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// Validates that an access of `size` bytes at `addr` is naturally aligned
/// and therefore contained within a single word.
///
/// # Errors
///
/// Returns [`TagMemError::Misaligned`] if `size` is not one of 1, 2, 4, 8 or
/// if `addr` is not a multiple of `size`. Misaligned accesses are a bug in
/// the simulated program, as they would be on the MIPS machines the paper
/// targets.
#[inline]
pub fn validate_access(addr: Addr, size: u64) -> Result<(), TagMemError> {
    if !matches!(size, 1 | 2 | 4 | 8) || !addr.is_aligned(size) {
        return Err(TagMemError::Misaligned { addr, size });
    }
    Ok(())
}

/// Panicking twin of [`validate_access`] used by the infallible data-access
/// API; the panic messages are the crate's historical ones.
#[inline]
#[track_caller]
pub(crate) fn check_access(addr: Addr, size: u64) {
    assert!(
        matches!(size, 1 | 2 | 4 | 8),
        "unsupported access size {size} at {addr}"
    );
    assert!(
        addr.is_aligned(size),
        "misaligned {size}-byte access at {addr}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_geometry() {
        let a = Addr(0x1007);
        assert_eq!(a.word_base(), Addr(0x1000));
        assert_eq!(a.word_offset(), 7);
        assert_eq!(Addr(0x1000).word_offset(), 0);
    }

    #[test]
    fn alignment() {
        assert!(Addr(0x1000).is_aligned(8));
        assert!(Addr(0x1004).is_aligned(4));
        assert!(!Addr(0x1004).is_aligned(8));
        assert!(Addr(0x1001).is_aligned(1));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Addr(8) + 8, Addr(16));
        assert_eq!(Addr(16) - 8, Addr(8));
        assert_eq!(Addr(0).add_words(3), Addr(24));
        assert_eq!(Addr(24).distance_from(Addr(8)), 16);
        assert_eq!(Addr(8).distance_from(Addr(24)), -16);
    }

    #[test]
    fn null() {
        assert!(Addr::NULL.is_null());
        assert!(!Addr(1).is_null());
        assert_eq!(Addr::default(), Addr::NULL);
    }

    #[test]
    fn conversions_and_format() {
        let a: Addr = 0x10u64.into();
        let v: u64 = a.into();
        assert_eq!(v, 0x10);
        assert_eq!(format!("{a}"), "0x10");
        assert_eq!(format!("{a:?}"), "Addr(0x10)");
        assert_eq!(format!("{a:x}"), "10");
    }

    #[test]
    fn check_access_ok() {
        check_access(Addr(0x1000), 8);
        check_access(Addr(0x1004), 4);
        check_access(Addr(0x1006), 2);
        check_access(Addr(0x1007), 1);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn check_access_misaligned() {
        check_access(Addr(0x1001), 4);
    }

    #[test]
    #[should_panic(expected = "unsupported access size")]
    fn check_access_bad_size() {
        check_access(Addr(0x1000), 3);
    }

    #[test]
    fn validate_access_matches_check_access() {
        assert!(validate_access(Addr(0x1000), 8).is_ok());
        assert!(validate_access(Addr(0x1007), 1).is_ok());
        assert_eq!(
            validate_access(Addr(0x1001), 4),
            Err(TagMemError::Misaligned {
                addr: Addr(0x1001),
                size: 4
            })
        );
        assert_eq!(
            validate_access(Addr(0x1000), 3),
            Err(TagMemError::Misaligned {
                addr: Addr(0x1000),
                size: 3
            })
        );
    }
}
