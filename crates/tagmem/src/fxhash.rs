//! Vendored FxHash: the deterministic, multiply-rotate hash used by rustc.
//!
//! The simulator's hot paths index small integer-keyed maps (page numbers,
//! cache line numbers) millions of times per second. `std`'s default SipHash
//! is DoS-resistant but costs tens of cycles per probe; Fx hashes a `u64`
//! key in a handful of ALU ops. The build environment cannot reach
//! crates.io, so the (tiny, public-domain-style) algorithm is vendored here
//! rather than pulled in as the `rustc-hash` crate.
//!
//! Determinism matters beyond speed: `FxBuildHasher` has no random per-map
//! seed, so map iteration order is stable across runs and threads. Nothing
//! in the simulator *depends* on iteration order (snapshots sort their
//! keys), but stable order keeps host behaviour reproducible when
//! debugging.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplicative constant from the Firefox/rustc implementation.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A streaming hasher implementing the Fx algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `BuildHasher` producing [`FxHasher`]s (no per-map random seed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_maps() {
        let mut a = FxHashMap::default();
        let mut b = FxHashMap::default();
        for i in 0..1000u64 {
            a.insert(i, i * 2);
            b.insert(i, i * 2);
        }
        // No random seed: identical insert sequences iterate identically.
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y));
    }

    #[test]
    fn hashes_spread_small_integers() {
        let mut seen = FxHashSet::default();
        for i in 0..4096u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 4096, "no collisions on consecutive keys");
    }

    #[test]
    fn write_bytes_matches_chunked_u64s() {
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut h2 = FxHasher::default();
        h2.write_u64(u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        assert_eq!(h1.finish(), h2.finish());
    }
}
