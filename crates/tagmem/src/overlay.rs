//! Copy-on-write speculation views over a [`TaggedMemory`].
//!
//! The epoch-parallel execution engine (the `memfwd` core crate) runs
//! application tasks *speculatively* on worker threads against a frozen
//! snapshot of memory, while the committer retires tasks strictly in
//! order. This module provides the two memory-side pieces:
//!
//! - [`SpecBase`]: a cheap, `Sync` view of a memory's materialized pages.
//!   [`TaggedMemory`] itself is not `Sync` (its micro-TLB is a `Cell`), so
//!   workers share this TLB-free projection instead.
//! - [`SpecView`]: a per-task copy-on-touch overlay. Reads fall through to
//!   the base (untouched pages read as zero, exactly like the real
//!   memory); the first write to a page clones it into the overlay. Every
//!   touched *word* is recorded in per-page read/write bitmaps
//!   ([`PageMask`]: one bit per 64-bit word, 8 limbs per 4 KiB page).
//!
//! Conflict detection and merge are **word-granular**. The committer asks
//! whether any word this task *read* was written by an earlier task in the
//! group ([`SpecDelta::disjoint_from`]); if not, the task's writes are
//! merged by patching exactly the written words onto the live page
//! ([`TaggedMemory::install_words`]). Word granularity is what lets tasks
//! that share 4 KiB pages — separate list nodes carved from one pool slab,
//! say — commit in parallel: write/write overlap on *different words* of a
//! page needs no serialization at all (in-order masked installs reproduce
//! the serial last-writer-wins state), and only a genuine read of an
//! earlier task's written word forces a replay.
//!
//! Forwarding bits never enter the merge: the speculative task surface has
//! no relocation or unforwarded-write operations, so a task can read fbits
//! (each probe marks the word read) but never change them.

use crate::fxhash::FxHashMap;
use crate::memory::TaggedMemory;
use crate::page::{Page, PAGE_BYTES, PAGE_WORDS};
use crate::word::{Addr, WORD_BYTES};

/// One dirty/touched bit per 64-bit word of a 4 KiB page.
pub type PageMask = [u64; PAGE_WORDS / 64];

/// The all-clear word mask.
pub const EMPTY_MASK: PageMask = [0u64; PAGE_WORDS / 64];

/// Sentinel page number that cannot correspond to any reachable address.
const NO_PAGE: u64 = u64::MAX;

/// `(limb index, bit)` of the word containing byte offset `off`.
#[inline]
pub(crate) fn word_mask_bit(off: usize) -> (usize, u64) {
    let w = off / WORD_BYTES as usize;
    (w / 64, 1u64 << (w % 64))
}

#[inline]
fn masks_overlap(a: &PageMask, b: &PageMask) -> bool {
    a.iter().zip(b.iter()).any(|(x, y)| x & y != 0)
}

/// ORs `mask` into the accumulator entry for page `pno` — the helper the
/// committer uses to grow its "words written by earlier tasks" map.
#[inline]
pub fn merge_mask(acc: &mut FxHashMap<u64, PageMask>, pno: u64, mask: &PageMask) {
    let e = acc.entry(pno).or_insert(EMPTY_MASK);
    for (d, s) in e.iter_mut().zip(mask.iter()) {
        *d |= s;
    }
}

/// A `Sync` read-only projection of a [`TaggedMemory`]'s pages, shared by
/// speculation workers. Created by [`TaggedMemory::spec_base`].
#[derive(Clone, Copy)]
pub struct SpecBase<'a> {
    pages: &'a [Page],
    index: &'a FxHashMap<u64, u32>,
}

impl<'a> SpecBase<'a> {
    pub(crate) fn new(pages: &'a [Page], index: &'a FxHashMap<u64, u32>) -> SpecBase<'a> {
        SpecBase { pages, index }
    }

    #[inline]
    fn page(&self, pno: u64) -> Option<&'a Page> {
        self.index.get(&pno).map(|&i| &self.pages[i as usize])
    }
}

/// Word-granular footprint of one speculative task, extracted from its
/// [`SpecView`] when execution finishes.
pub struct SpecDelta {
    /// Pages the task wrote: full private copies plus the bitmap of the
    /// words actually written, sorted by page number. Only the masked
    /// words are valid to merge — the rest of each copy is a stale
    /// snapshot of the epoch-start page.
    pub pages: Vec<(u64, Box<Page>, PageMask)>,
    /// Per-page bitmaps of the words whose *values* the task's execution
    /// depended on, sorted by page number: loaded words, plus the words
    /// subword stores byte-merge into. Full-word store probes and
    /// forwarding-chain hops are deliberately absent — their outcomes
    /// depend only on forwarding bits and fbit-set words, both of which
    /// are immutable within an epoch (tasks write only fbit-clear words
    /// and never touch fbits), so they cannot conflict with anything.
    pub reads: Vec<(u64, PageMask)>,
}

impl SpecDelta {
    /// True when no word this task read was written by an earlier task —
    /// the speculation saw exactly the state serial execution would have
    /// shown it, so its masked writes can merge cleanly. Write/write
    /// overlap needs no check: in-order masked installs reproduce the
    /// serial last-writer-wins state for every word.
    pub fn disjoint_from(&self, earlier_writes: &FxHashMap<u64, PageMask>) -> bool {
        self.reads
            .iter()
            .all(|(pno, m)| earlier_writes.get(pno).is_none_or(|w| !masks_overlap(m, w)))
    }

    /// True when a word the task *only read* (never wrote) was written by
    /// an earlier task — a pure read-after-write value dependence. An
    /// overlap confined to words the task also wrote is a read-modify-
    /// write collision instead: the task both misread and rewrote the
    /// word (e.g. a shared counter increment).
    pub fn pure_reads_overlap(&self, earlier_writes: &FxHashMap<u64, PageMask>) -> bool {
        self.reads.iter().any(|(pno, m)| {
            let Some(w) = earlier_writes.get(pno) else {
                return false;
            };
            let own = self
                .pages
                .binary_search_by_key(pno, |&(p, _, _)| p)
                .ok()
                .map(|i| &self.pages[i].2);
            m.iter().enumerate().any(|(l, &read)| {
                let pure = read & !own.map_or(0, |o| o[l]);
                pure & w[l] != 0
            })
        })
    }

    /// ORs every written word of this delta into `acc`.
    pub fn record_writes(&self, acc: &mut FxHashMap<u64, PageMask>) {
        for (pno, _, mask) in &self.pages {
            merge_mask(acc, *pno, mask);
        }
    }
}

/// A per-task copy-on-touch overlay over a [`SpecBase`].
///
/// Functional semantics match [`TaggedMemory`] exactly: untouched memory
/// reads as zero with forwarding bits clear, and pages materialize (here:
/// clone into the overlay) on first write. The view records every word it
/// touches in per-page bitmaps.
///
/// The hot read path is tuned for same-page runs (the overwhelmingly
/// common case): a one-entry cursor holds the current page's number, its
/// accumulated read mask, whether the page has an overlay copy, and the
/// resolved base page, so a run of same-page reads costs two compares and
/// a bit-OR on top of the word fetch.
pub struct SpecView<'a> {
    base: SpecBase<'a>,
    overlay: FxHashMap<u64, (Box<Page>, PageMask)>,
    reads: FxHashMap<u64, PageMask>,
    /// One-entry read cursor: page number, accumulated mask (flushed to
    /// `reads` on page change), whether `overlay` holds this page, and
    /// the base page resolution.
    cur_pno: u64,
    cur_mask: PageMask,
    cur_in_overlay: bool,
    cur_base: Option<&'a Page>,
}

impl<'a> SpecView<'a> {
    /// An empty overlay over `base`.
    pub fn new(base: SpecBase<'a>) -> SpecView<'a> {
        SpecView {
            base,
            overlay: FxHashMap::default(),
            reads: FxHashMap::default(),
            cur_pno: NO_PAGE,
            cur_mask: EMPTY_MASK,
            cur_in_overlay: false,
            cur_base: None,
        }
    }

    /// Flushes the read cursor's accumulated mask into the read map and
    /// re-aims the cursor at `pno`.
    #[cold]
    fn switch_page(&mut self, pno: u64) {
        if self.cur_pno != NO_PAGE && self.cur_mask != EMPTY_MASK {
            merge_mask(&mut self.reads, self.cur_pno, &self.cur_mask);
        }
        self.cur_pno = pno;
        self.cur_mask = EMPTY_MASK;
        self.cur_in_overlay = self.overlay.contains_key(&pno);
        self.cur_base = self.base.page(pno);
    }

    /// Reads the whole word containing `addr` together with its forwarding
    /// bit, through the overlay, **without** recording a read dependence.
    /// Functionally mirrors [`TaggedMemory::read_word_tagged`].
    ///
    /// This is the right accessor for reads whose outcome cannot depend on
    /// any other task in the epoch: a store's forwarding-bit probe of the
    /// word it overwrites, and forwarding-chain hops (tasks write only
    /// fbit-clear words and never touch fbits, so a hop word's data and
    /// every fbit are epoch-immutable). Reads whose *value* feeds the task
    /// must go through [`SpecView::read_word_tagged`] or be followed by
    /// [`SpecView::mark_read`].
    #[inline]
    pub fn peek_word_tagged(&mut self, addr: Addr) -> (u64, bool) {
        let base = addr.word_base();
        let pno = base.0 / PAGE_BYTES as u64;
        let off = (base.0 % PAGE_BYTES as u64) as usize;
        if self.cur_pno != pno {
            self.switch_page(pno);
        }
        if self.cur_in_overlay {
            let (p, _) = &self.overlay[&pno];
            return (p.word(off), p.fbit(off));
        }
        match self.cur_base {
            Some(p) => (p.word(off), p.fbit(off)),
            None => (0, false),
        }
    }

    /// Records a value-read dependence on the word containing `addr`.
    #[inline]
    pub fn mark_read(&mut self, addr: Addr) {
        let base = addr.word_base();
        let pno = base.0 / PAGE_BYTES as u64;
        let off = (base.0 % PAGE_BYTES as u64) as usize;
        if self.cur_pno != pno {
            self.switch_page(pno);
        }
        let (l, b) = word_mask_bit(off);
        self.cur_mask[l] |= b;
    }

    /// Reads the whole word containing `addr` together with its forwarding
    /// bit, through the overlay, recording the value-read dependence.
    /// Mirrors [`TaggedMemory::read_word_tagged`].
    #[inline]
    pub fn read_word_tagged(&mut self, addr: Addr) -> (u64, bool) {
        let out = self.peek_word_tagged(addr);
        let (l, b) = word_mask_bit((addr.word_base().0 % PAGE_BYTES as u64) as usize);
        self.cur_mask[l] |= b;
        out
    }

    /// Writes the low `size` bytes of `value` at `addr` (already validated
    /// by the caller), cloning the page into the overlay on first touch
    /// and marking the containing word dirty. Mirrors
    /// [`TaggedMemory::write_data`].
    pub fn write_data(&mut self, addr: Addr, size: u64, value: u64) {
        let pno = addr.0 / PAGE_BYTES as u64;
        let off = (addr.0 % PAGE_BYTES as u64) as usize;
        if pno == self.cur_pno {
            self.cur_in_overlay = true;
        }
        let base = self.base;
        let (p, mask) = self
            .overlay
            .entry(pno)
            .or_insert_with(|| match base.page(pno) {
                Some(p) => (Box::new(p.clone()), EMPTY_MASK),
                None => (Box::new(Page::new()), EMPTY_MASK),
            });
        let (l, b) = word_mask_bit(off);
        mask[l] |= b;
        if size == WORD_BYTES {
            p.set_word(off, value);
            return;
        }
        p.bytes_mut(off, size as usize)
            .copy_from_slice(&value.to_le_bytes()[..size as usize]);
    }

    /// Finishes the task: extracts the written page copies and the sorted
    /// per-page read/write bitmaps.
    pub fn into_delta(mut self) -> SpecDelta {
        if self.cur_pno != NO_PAGE && self.cur_mask != EMPTY_MASK {
            merge_mask(&mut self.reads, self.cur_pno, &self.cur_mask);
        }
        let mut pages: Vec<(u64, Box<Page>, PageMask)> = self
            .overlay
            .into_iter()
            .map(|(pno, (p, m))| (pno, p, m))
            .collect();
        pages.sort_unstable_by_key(|&(pno, _, _)| pno);
        let mut reads: Vec<(u64, PageMask)> = self.reads.into_iter().collect();
        reads.sort_unstable_by_key(|&(pno, _)| pno);
        SpecDelta { pages, reads }
    }
}

impl TaggedMemory {
    /// A `Sync` projection of this memory's pages for speculation workers.
    ///
    /// The projection borrows the memory immutably; the micro-TLB is not
    /// consulted or touched, which is what makes the projection shareable
    /// across threads.
    pub fn spec_base(&self) -> SpecBase<'_> {
        self.spec_base_parts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_pnos(d: &SpecDelta) -> Vec<u64> {
        d.reads.iter().map(|&(p, _)| p).collect()
    }

    fn mask_of(words: &[usize]) -> PageMask {
        let mut m = EMPTY_MASK;
        for &w in words {
            m[w / 64] |= 1 << (w % 64);
        }
        m
    }

    #[test]
    fn reads_fall_through_and_record_words() {
        let mut mem = TaggedMemory::new();
        mem.write_data(Addr(0x1000), 8, 77);
        mem.set_fbit(Addr(0x1000), true);
        let base = mem.spec_base();
        let mut v = SpecView::new(base);
        assert_eq!(v.read_word_tagged(Addr(0x1000)), (77, true));
        assert_eq!(v.read_word_tagged(Addr(0x1010)), (0, false));
        assert_eq!(v.read_word_tagged(Addr(0x9000)), (0, false), "cold page");
        let d = v.into_delta();
        assert_eq!(read_pnos(&d), vec![1, 9]);
        assert_eq!(d.reads[0].1, mask_of(&[0, 2]));
        assert_eq!(d.reads[1].1, mask_of(&[0]));
        assert!(d.pages.is_empty());
    }

    #[test]
    fn writes_copy_on_touch_and_shadow_base() {
        let mut mem = TaggedMemory::new();
        mem.write_data(Addr(0x1000), 8, 1);
        mem.write_data(Addr(0x1008), 8, 2);
        let base = mem.spec_base();
        let mut v = SpecView::new(base);
        v.write_data(Addr(0x1000), 8, 100);
        // Own write visible; neighbour word from the base copy.
        assert_eq!(v.read_word_tagged(Addr(0x1000)).0, 100);
        assert_eq!(v.read_word_tagged(Addr(0x1008)).0, 2);
        // Fresh page: zero-filled, not from base.
        v.write_data(Addr(0x5004), 4, 9);
        assert_eq!(v.read_word_tagged(Addr(0x5000)).0, 9 << 32);
        let d = v.into_delta();
        assert_eq!(d.pages.len(), 2);
        assert_eq!(d.pages[0].0, 1);
        assert_eq!(d.pages[0].2, mask_of(&[0]));
        assert_eq!(d.pages[1].0, 5);
        assert_eq!(d.pages[1].2, mask_of(&[0]));
        // Base memory untouched.
        assert_eq!(mem.read_data(Addr(0x1000), 8), 1);
        assert_eq!(mem.read_data(Addr(0x5004), 4), 0);
    }

    #[test]
    fn conflicts_are_word_granular() {
        let mem = TaggedMemory::new();
        let base = mem.spec_base();
        let mut v = SpecView::new(base);
        v.read_word_tagged(Addr(0x1000)); // page 1 word 0
        v.write_data(Addr(0x2008), 8, 1); // page 2 word 1
        let d = v.into_delta();

        let mut earlier = FxHashMap::default();
        assert!(d.disjoint_from(&earlier));
        // Earlier write to a *different word* of a read page: no conflict.
        merge_mask(&mut earlier, 1, &mask_of(&[3]));
        assert!(d.disjoint_from(&earlier));
        // Same word: conflict, and it is a pure read (value dependence).
        merge_mask(&mut earlier, 1, &mask_of(&[0]));
        assert!(!d.disjoint_from(&earlier));
        assert!(d.pure_reads_overlap(&earlier));
        // Write/write only (no read overlap): never a conflict.
        let mut ww = FxHashMap::default();
        merge_mask(&mut ww, 2, &mask_of(&[1]));
        assert!(d.disjoint_from(&ww));
        assert!(!d.pure_reads_overlap(&ww));
    }

    #[test]
    fn rmw_collision_classifies_as_ww_not_rw() {
        // A read-modify-write of a word an earlier task wrote conflicts,
        // but classifies as a write/write collision (the task rewrote the
        // word it misread), not a pure-read dependence.
        let mem = TaggedMemory::new();
        let base = mem.spec_base();
        let mut v = SpecView::new(base);
        v.read_word_tagged(Addr(0x3000)); // the value read...
        v.write_data(Addr(0x3000), 8, 9); // ...then the rewrite
        let d = v.into_delta();
        let mut earlier = FxHashMap::default();
        merge_mask(&mut earlier, 3, &mask_of(&[0]));
        assert!(!d.disjoint_from(&earlier));
        assert!(
            !d.pure_reads_overlap(&earlier),
            "own-written word: ww, not rw"
        );
    }

    #[test]
    fn peek_records_no_dependence() {
        let mut mem = TaggedMemory::new();
        mem.write_data(Addr(0x1000), 8, 7);
        let base = mem.spec_base();
        let mut v = SpecView::new(base);
        assert_eq!(v.peek_word_tagged(Addr(0x1000)), (7, false));
        let d = v.into_delta();
        assert!(d.reads.is_empty(), "peek must not mark a read");
    }

    #[test]
    fn masked_install_merges_disjoint_words() {
        // Two views write different words of the same page; both merge.
        let mut mem = TaggedMemory::new();
        mem.write_data(Addr(0x3000), 8, 5);
        mem.set_fbit(Addr(0x3008), true);
        let d1 = {
            let mut v = SpecView::new(mem.spec_base());
            v.write_data(Addr(0x3010), 8, 42);
            v.into_delta()
        };
        let d2 = {
            let mut v = SpecView::new(mem.spec_base());
            v.write_data(Addr(0x3018), 8, 43);
            v.write_data(Addr(0x7000), 8, 44);
            v.into_delta()
        };
        for d in [d1, d2] {
            for (pno, pg, mask) in &d.pages {
                mem.install_words(*pno, pg, mask);
            }
        }
        assert_eq!(mem.read_data(Addr(0x3000), 8), 5, "untouched word survives");
        assert_eq!(mem.read_data(Addr(0x3010), 8), 42);
        assert_eq!(mem.read_data(Addr(0x3018), 8), 43);
        assert_eq!(mem.read_data(Addr(0x7000), 8), 44);
        assert!(mem.fbit(Addr(0x3008)), "fbits survive the merge");
        assert_eq!(mem.stats().pages, 2);
    }

    #[test]
    fn in_order_installs_are_last_writer_wins() {
        let mut mem = TaggedMemory::new();
        let d1 = {
            let mut v = SpecView::new(mem.spec_base());
            v.write_data(Addr(0x4000), 8, 1);
            v.into_delta()
        };
        let d2 = {
            let mut v = SpecView::new(mem.spec_base());
            v.write_data(Addr(0x4000), 8, 2);
            v.into_delta()
        };
        for d in [d1, d2] {
            for (pno, pg, mask) in &d.pages {
                mem.install_words(*pno, pg, mask);
            }
        }
        assert_eq!(mem.read_data(Addr(0x4000), 8), 2);
    }
}
