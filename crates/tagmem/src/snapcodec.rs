//! Byte-level snapshot codec shared by every crate that serializes machine
//! state into a crash-safe checkpoint.
//!
//! The format is deliberately primitive: little-endian fixed-width integers
//! and length-prefixed sequences, written in a canonical (sorted) order so
//! that `save → restore → save` is byte-stable. There is no schema evolution
//! beyond the container's single version number — the snapshot layer in
//! `memfwd` rejects any version it does not know.
//!
//! Decoding is total: every read is bounds-checked and every enum tag is
//! validated, so a truncated or bit-flipped snapshot surfaces as a
//! [`SnapCodecError`], never a panic or a silently wrong value.

use crate::word::Addr;
use std::fmt;

/// Decoding failure: the byte stream ended early or held an invalid value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SnapCodecError {
    /// The stream ended before the value was complete.
    Truncated,
    /// A tag, length, or discriminant held an impossible value.
    BadValue,
}

impl fmt::Display for SnapCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapCodecError::Truncated => write!(f, "snapshot stream truncated"),
            SnapCodecError::BadValue => write!(f, "snapshot stream holds an invalid value"),
        }
    }
}

impl std::error::Error for SnapCodecError {}

/// Appends snapshot fields to a growing byte buffer.
#[derive(Debug, Default)]
pub struct SnapEncoder {
    buf: Vec<u8>,
}

impl SnapEncoder {
    /// Creates an empty encoder.
    pub fn new() -> SnapEncoder {
        SnapEncoder::default()
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a `u32` little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an [`Addr`] as its raw `u64`.
    pub fn addr(&mut self, a: Addr) {
        self.u64(a.0);
    }

    /// Writes raw bytes with no length prefix (fixed-size fields).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a length-prefixed sequence via a per-element closure.
    pub fn seq<T>(
        &mut self,
        items: impl ExactSizeIterator<Item = T>,
        mut f: impl FnMut(&mut Self, T),
    ) {
        self.usize(items.len());
        for item in items {
            f(self, item);
        }
    }
}

/// Reads snapshot fields back out of a byte slice, bounds-checked.
#[derive(Debug)]
pub struct SnapDecoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SnapDecoder<'a> {
    /// Creates a decoder over `data`.
    pub fn new(data: &'a [u8]) -> SnapDecoder<'a> {
        SnapDecoder { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapCodecError> {
        if self.remaining() < n {
            return Err(SnapCodecError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapCodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool`, rejecting anything but 0 or 1.
    pub fn bool(&mut self) -> Result<bool, SnapCodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapCodecError::BadValue),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapCodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapCodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a `usize` written by [`SnapEncoder::usize`], rejecting values
    /// that cannot possibly fit in the remaining stream (so a corrupted
    /// length cannot trigger an enormous allocation).
    pub fn usize(&mut self) -> Result<usize, SnapCodecError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapCodecError::BadValue)
    }

    /// Reads a sequence length, additionally checking that at least
    /// `min_bytes_per_item * len` bytes remain.
    pub fn seq_len(&mut self, min_bytes_per_item: usize) -> Result<usize, SnapCodecError> {
        let len = self.usize()?;
        if len
            .checked_mul(min_bytes_per_item.max(1))
            .is_none_or(|need| need > self.remaining())
        {
            return Err(SnapCodecError::BadValue);
        }
        Ok(len)
    }

    /// Reads an [`Addr`].
    pub fn addr(&mut self) -> Result<Addr, SnapCodecError> {
        Ok(Addr(self.u64()?))
    }

    /// Reads `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], SnapCodecError> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut e = SnapEncoder::new();
        e.u8(7);
        e.bool(true);
        e.bool(false);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX);
        e.usize(42);
        e.addr(Addr(0x1000));
        e.raw(&[1, 2, 3]);
        let bytes = e.into_bytes();
        let mut d = SnapDecoder::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.usize().unwrap(), 42);
        assert_eq!(d.addr().unwrap(), Addr(0x1000));
        assert_eq!(d.raw(3).unwrap(), &[1, 2, 3]);
        assert!(d.is_exhausted());
    }

    #[test]
    fn truncation_is_typed() {
        let mut e = SnapEncoder::new();
        e.u64(1);
        let bytes = e.into_bytes();
        let mut d = SnapDecoder::new(&bytes[..5]);
        assert_eq!(d.u64(), Err(SnapCodecError::Truncated));
    }

    #[test]
    fn bad_bool_is_typed() {
        let mut d = SnapDecoder::new(&[2]);
        assert_eq!(d.bool(), Err(SnapCodecError::BadValue));
    }

    #[test]
    fn absurd_seq_len_rejected() {
        let mut e = SnapEncoder::new();
        e.usize(usize::MAX / 2);
        let bytes = e.into_bytes();
        let mut d = SnapDecoder::new(&bytes);
        assert_eq!(d.seq_len(8), Err(SnapCodecError::BadValue));
    }

    #[test]
    fn seq_roundtrip() {
        let mut e = SnapEncoder::new();
        let v = vec![3u64, 1, 4, 1, 5];
        e.seq(v.iter(), |e, &x| e.u64(x));
        let bytes = e.into_bytes();
        let mut d = SnapDecoder::new(&bytes);
        let n = d.seq_len(8).unwrap();
        let got: Vec<u64> = (0..n).map(|_| d.u64().unwrap()).collect();
        assert_eq!(got, v);
    }
}
