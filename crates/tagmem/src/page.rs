//! Fixed-size pages backing the sparse simulated address space.

/// Bytes per simulated page.
pub const PAGE_BYTES: usize = 4096;

/// Words per simulated page.
pub const PAGE_WORDS: usize = PAGE_BYTES / 8;

/// Number of `u64` limbs needed for one forwarding bit per word.
pub(crate) const FBIT_LIMBS: usize = PAGE_WORDS / 64;

/// One 4 KiB page: raw data plus the forwarding-bit bitmap.
///
/// A freshly created page is zero-filled with all forwarding bits clear,
/// which models the paper's requirement (§3.3) that the operating system
/// perform `Unforwarded_Write(0, 0)` on every word of a region before
/// handing it to an application.
///
/// The data array lives inline (not behind a `Box`) so the memory's page
/// vector is one contiguous slab: materializing a page is a bump of the
/// vector, not a 4 KiB calloc — page-fault-heavy phases (fresh heap growth,
/// pool slabs) showed the per-page allocation as a top-3 host cost.
///
/// The type is public so the speculation overlay ([`crate::overlay`]) can
/// hand full page copies across crate boundaries, but its contents are
/// deliberately opaque: all access goes through [`crate::TaggedMemory`] or
/// [`crate::overlay::SpecView`].
#[derive(Clone)]
pub struct Page {
    data: [u8; PAGE_BYTES],
    fbits: [u64; FBIT_LIMBS],
}

impl Page {
    pub(crate) fn new() -> Page {
        Page {
            data: [0u8; PAGE_BYTES],
            fbits: [0u64; FBIT_LIMBS],
        }
    }

    #[inline]
    pub(crate) fn bytes(&self, off: usize, len: usize) -> &[u8] {
        &self.data[off..off + len]
    }

    #[inline]
    pub(crate) fn bytes_mut(&mut self, off: usize, len: usize) -> &mut [u8] {
        &mut self.data[off..off + len]
    }

    /// The 64-bit little-endian word at byte offset `off` (must be 8-aligned).
    #[inline]
    pub(crate) fn word(&self, off: usize) -> u64 {
        let base = off & !7;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&self.data[base..base + 8]);
        u64::from_le_bytes(buf)
    }

    /// Stores a full 64-bit little-endian word at byte offset `off`.
    #[inline]
    pub(crate) fn set_word(&mut self, off: usize, value: u64) {
        let base = off & !7;
        self.data[base..base + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Forwarding bit of the word at byte offset `off` (must be 8-aligned).
    #[inline]
    pub(crate) fn fbit(&self, off: usize) -> bool {
        let w = off / 8;
        self.fbits[w / 64] >> (w % 64) & 1 == 1
    }

    #[inline]
    pub(crate) fn set_fbit(&mut self, off: usize, set: bool) {
        let w = off / 8;
        let limb = &mut self.fbits[w / 64];
        if set {
            *limb |= 1 << (w % 64);
        } else {
            *limb &= !(1 << (w % 64));
        }
    }

    /// Number of forwarding bits currently set in this page.
    pub(crate) fn fbits_set(&self) -> u32 {
        self.fbits.iter().map(|l| l.count_ones()).sum()
    }

    /// True when none of the `n_words` words starting at word index `w0`
    /// have their forwarding bit set. Scans whole 64-word limbs with masked
    /// ends — the u64-lane kernel behind the batch path's walk-free check.
    #[inline]
    pub(crate) fn fbits_none_in(&self, w0: usize, n_words: usize) -> bool {
        crate::scan::bits_none_in(&self.fbits, w0, n_words)
    }

    /// Raw views of the page contents for snapshot encoding.
    pub(crate) fn raw(&self) -> (&[u8; PAGE_BYTES], &[u64; FBIT_LIMBS]) {
        (&self.data, &self.fbits)
    }

    /// Rebuilds a page from snapshot bytes. `data` must be exactly
    /// [`PAGE_BYTES`] long and `fbits` exactly [`FBIT_LIMBS`] limbs.
    pub(crate) fn from_raw(data: &[u8], fbits: &[u64]) -> Option<Page> {
        let mut p = Page::new();
        if data.len() != PAGE_BYTES || fbits.len() != FBIT_LIMBS {
            return None;
        }
        p.data.copy_from_slice(data);
        p.fbits.copy_from_slice(fbits);
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_page_is_clear() {
        let p = Page::new();
        assert_eq!(p.fbits_set(), 0);
        assert!(p.bytes(0, PAGE_BYTES).iter().all(|&b| b == 0));
        for off in (0..PAGE_BYTES).step_by(8) {
            assert!(!p.fbit(off));
        }
    }

    #[test]
    fn fbit_roundtrip() {
        let mut p = Page::new();
        p.set_fbit(0, true);
        p.set_fbit(4088, true);
        assert!(p.fbit(0));
        assert!(p.fbit(4088));
        assert!(!p.fbit(8));
        assert_eq!(p.fbits_set(), 2);
        p.set_fbit(0, false);
        assert!(!p.fbit(0));
        assert_eq!(p.fbits_set(), 1);
    }

    #[test]
    fn data_roundtrip() {
        let mut p = Page::new();
        p.bytes_mut(100, 4).copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(p.bytes(100, 4), &[1, 2, 3, 4]);
        assert_eq!(p.bytes(99, 1), &[0]);
    }
}
