//! Forwarding-chain resolution.
//!
//! When a memory word is accessed, its forwarding bit is tested; if set, the
//! word's contents replace the access address (plus the byte offset within
//! the word) and the access is relaunched. This repeats until a clear
//! forwarding bit is found (paper §3.2). The functions here perform that
//! walk, including the hop-limit counter and the accurate software cycle
//! check the paper describes for breaking forwarding cycles.
//!
//! The walks are **allocation-free** in the common case: the accurate cycle
//! check only engages after a hop-limit exception, and when it does it
//! records visited words in a caller-supplied scratch `Vec` (see
//! [`resolve_with_scratch`]) instead of building a fresh hash set per
//! resolution. Chains short enough to pass the accurate check are tiny, so a
//! linear `contains` scan over the scratch beats hashing.

use crate::error::CycleError;
use crate::memory::TaggedMemory;
use crate::word::Addr;

/// Default hardware hop-limit: how many forwarding hops an access may take
/// before the hop counter raises an exception and the accurate software
/// cycle check engages (paper §3.2). Shared by [`resolve_unbounded`] and the
/// core simulator's `SimConfig::hop_limit` default. The limit never changes
/// the *result* of a resolution — only when the cycle check switches on — so
/// any positive value is functionally equivalent.
pub const DEFAULT_HOP_LIMIT: u32 = 8;

/// Outcome of resolving an initial address to its final address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolution {
    /// The final address: where the data actually lives.
    pub final_addr: Addr,
    /// Number of forwarding hops performed (0 for a non-forwarded access).
    pub hops: u32,
}

impl Resolution {
    /// True if the access was forwarded at least once.
    pub fn forwarded(&self) -> bool {
        self.hops > 0
    }
}

/// Resolves `addr` through any forwarding chain to its final address.
///
/// `hop_limit` models the hardware hop counter: when the number of hops
/// exceeds the limit, an exception is raised and an accurate cycle check is
/// performed in software. A false alarm (a genuinely long chain) resets the
/// counter and resumes; a real cycle aborts with [`CycleError`].
///
/// # Errors
///
/// Returns [`CycleError`] if the chain revisits a word it already traversed.
///
/// # Example
///
/// ```
/// use memfwd_tagmem::{Addr, TaggedMemory, resolve};
/// let mut mem = TaggedMemory::new();
/// mem.unforwarded_write(Addr(0x10), 0x20, true);
/// mem.unforwarded_write(Addr(0x20), 0x30, true);
/// let r = resolve(&mem, Addr(0x14), 64)?;
/// assert_eq!(r.final_addr, Addr(0x34));
/// assert_eq!(r.hops, 2);
/// # Ok::<(), memfwd_tagmem::CycleError>(())
/// ```
pub fn resolve(mem: &TaggedMemory, addr: Addr, hop_limit: u32) -> Result<Resolution, CycleError> {
    let mut scratch = Vec::new();
    resolve_with_scratch(mem, addr, hop_limit, &mut scratch)
}

/// [`resolve`] with a caller-held scratch buffer for the cycle check, so hot
/// loops resolving many addresses perform no heap allocation at all.
///
/// The scratch is cleared on entry; its contents between calls are
/// meaningless. It is only written after a hop-limit exception engages the
/// accurate check, so for chains within `hop_limit` it stays untouched.
///
/// # Errors
///
/// Returns [`CycleError`] if the chain revisits a word it already traversed.
pub fn resolve_with_scratch(
    mem: &TaggedMemory,
    addr: Addr,
    hop_limit: u32,
    scratch: &mut Vec<Addr>,
) -> Result<Resolution, CycleError> {
    scratch.clear();
    let offset = addr.word_offset();
    let mut word = addr.word_base();
    let mut hops = 0u32;
    let mut counter = 0u32;
    let mut checking = false;

    loop {
        let (fwd, fbit) = mem.read_word_tagged(word);
        if !fbit {
            break;
        }
        let next = Addr(fwd).word_base();
        hops += 1;
        counter += 1;
        if checking {
            if scratch.contains(&next) {
                return Err(CycleError { at: next, hops });
            }
            scratch.push(next);
        } else if counter > hop_limit {
            // Hop-limit exception: switch to the accurate software check for
            // the remainder of the walk (paper §3.2). Re-walk is not needed:
            // from here on we remember every word we visit; a cycle must
            // eventually revisit one of them.
            scratch.push(word);
            scratch.push(next);
            checking = true;
            counter = 0;
        }
        word = next;
    }
    Ok(Resolution {
        final_addr: word + offset,
        hops,
    })
}

/// Resolves with the [`DEFAULT_HOP_LIMIT`]. Convenience for callers that do
/// not model the hardware counter. (The limit only controls when the
/// accurate cycle check engages — it never changes the result.)
///
/// # Errors
///
/// Returns [`CycleError`] on a genuine forwarding cycle.
pub fn resolve_unbounded(mem: &TaggedMemory, addr: Addr) -> Result<Resolution, CycleError> {
    resolve(mem, addr, DEFAULT_HOP_LIMIT)
}

/// Returns every word address on the forwarding chain starting at (and
/// including) the word containing `addr`, ending at the terminal word.
///
/// Used by the memory-deallocation wrapper (paper §3.3): when an object is
/// deallocated, all memory reachable via its forwarding chain must be
/// deallocated as well.
///
/// The cycle check is lazy, like [`resolve`]'s: it only engages once the
/// walk exceeds [`DEFAULT_HOP_LIMIT`] hops, and then scans `out` itself —
/// which already records every visited word — instead of maintaining a
/// separate hash set. Unforwarded words (the overwhelmingly common
/// deallocation case) cost one combined read and one `Vec` push.
///
/// # Errors
///
/// Returns [`CycleError`] on a genuine forwarding cycle.
pub fn chain_words(mem: &TaggedMemory, addr: Addr) -> Result<Vec<Addr>, CycleError> {
    let mut word = addr.word_base();
    let mut out = vec![word];
    let mut hops = 0;
    loop {
        let (fwd, fbit) = mem.read_word_tagged(word);
        if !fbit {
            break;
        }
        word = Addr(fwd).word_base();
        hops += 1;
        if hops > DEFAULT_HOP_LIMIT && out.contains(&word) {
            return Err(CycleError { at: word, hops });
        }
        out.push(word);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(mem: &mut TaggedMemory, hops: &[u64]) {
        // hops = [a, b, c] builds a -> b -> c (c terminal).
        for w in hops.windows(2) {
            mem.unforwarded_write(Addr(w[0]), w[1], true);
        }
    }

    #[test]
    fn non_forwarded_is_identity() {
        let mem = TaggedMemory::new();
        let r = resolve(&mem, Addr(0x1004), 8).unwrap();
        assert_eq!(r.final_addr, Addr(0x1004));
        assert_eq!(r.hops, 0);
        assert!(!r.forwarded());
    }

    #[test]
    fn single_hop_preserves_offset() {
        let mut mem = TaggedMemory::new();
        chain(&mut mem, &[0x800, 0x5800]);
        let r = resolve(&mem, Addr(0x804), 8).unwrap();
        assert_eq!(r.final_addr, Addr(0x5804));
        assert_eq!(r.hops, 1);
        assert!(r.forwarded());
    }

    #[test]
    fn multi_hop_chain() {
        let mut mem = TaggedMemory::new();
        chain(&mut mem, &[0x100, 0x200, 0x300, 0x400]);
        let r = resolve(&mem, Addr(0x101), 8).unwrap();
        assert_eq!(r.final_addr, Addr(0x401));
        assert_eq!(r.hops, 3);
    }

    #[test]
    fn long_chain_past_hop_limit_is_false_alarm() {
        let mut mem = TaggedMemory::new();
        let nodes: Vec<u64> = (0..50).map(|i| 0x1000 + i * 8).collect();
        chain(&mut mem, &nodes);
        // Limit of 4 forces the accurate check, which finds no cycle.
        let r = resolve(&mem, Addr(0x1000), 4).unwrap();
        assert_eq!(r.final_addr, Addr(0x1000 + 49 * 8));
        assert_eq!(r.hops, 49);
    }

    #[test]
    fn two_node_cycle_detected() {
        let mut mem = TaggedMemory::new();
        chain(&mut mem, &[0x100, 0x200, 0x100]);
        let err = resolve(&mem, Addr(0x100), 8).unwrap_err();
        assert!(err.hops >= 2);
    }

    #[test]
    fn self_cycle_detected() {
        let mut mem = TaggedMemory::new();
        mem.unforwarded_write(Addr(0x100), 0x100, true);
        assert!(resolve(&mem, Addr(0x104), 16).is_err());
        assert!(resolve_unbounded(&mem, Addr(0x104)).is_err());
    }

    #[test]
    fn cycle_not_at_head_detected() {
        let mut mem = TaggedMemory::new();
        chain(&mut mem, &[0x100, 0x200, 0x300, 0x200]);
        assert!(resolve(&mem, Addr(0x100), 2).is_err());
    }

    #[test]
    fn scratch_reuse_across_resolutions() {
        let mut mem = TaggedMemory::new();
        chain(&mut mem, &[0x100, 0x200, 0x300, 0x400]);
        chain(&mut mem, &[0x900, 0xA00]);
        let mut scratch = Vec::new();
        // Force the accurate check on the first walk so scratch is dirty.
        let r = resolve_with_scratch(&mem, Addr(0x100), 1, &mut scratch).unwrap();
        assert_eq!(r.final_addr, Addr(0x400));
        assert!(!scratch.is_empty());
        // Second walk must not be confused by leftovers.
        let r = resolve_with_scratch(&mem, Addr(0x900), 1, &mut scratch).unwrap();
        assert_eq!(r.final_addr, Addr(0xA00));
        assert_eq!(r.hops, 1);
    }

    #[test]
    fn scratch_untouched_within_hop_limit() {
        let mut mem = TaggedMemory::new();
        chain(&mut mem, &[0x100, 0x200, 0x300]);
        let mut scratch = Vec::new();
        let r = resolve_with_scratch(&mem, Addr(0x100), 8, &mut scratch).unwrap();
        assert_eq!(r.hops, 2);
        assert!(scratch.is_empty(), "accurate check never engaged");
    }

    #[test]
    fn chain_words_lists_whole_chain() {
        let mut mem = TaggedMemory::new();
        chain(&mut mem, &[0x100, 0x200, 0x300]);
        let words = chain_words(&mem, Addr(0x104)).unwrap();
        assert_eq!(words, vec![Addr(0x100), Addr(0x200), Addr(0x300)]);
    }

    #[test]
    fn chain_words_cycle() {
        let mut mem = TaggedMemory::new();
        chain(&mut mem, &[0x100, 0x200, 0x100]);
        assert!(chain_words(&mem, Addr(0x100)).is_err());
    }

    #[test]
    fn chain_words_long_chain_no_false_cycle() {
        let mut mem = TaggedMemory::new();
        let nodes: Vec<u64> = (0..40).map(|i| 0x2000 + i * 8).collect();
        chain(&mut mem, &nodes);
        let words = chain_words(&mem, Addr(0x2000)).unwrap();
        assert_eq!(words.len(), 40);
    }

    #[test]
    fn forwarding_address_mid_word_offsets() {
        // A 4-byte access at offset 4 of a forwarded word lands at
        // final word + 4 (paper Fig. 1: load of 0804 returns value at 5804).
        let mut mem = TaggedMemory::new();
        mem.unforwarded_write(Addr(0x800), 0x5800, true);
        mem.write_data(Addr(0x5804), 4, 47);
        let r = resolve(&mem, Addr(0x804), 8).unwrap();
        assert_eq!(mem.read_data(r.final_addr, 4), 47);
    }
}
