//! Simulated 64-bit tagged memory for *memory forwarding* (Luk & Mowry,
//! ISCA 1999).
//!
//! This crate is the lowest-level substrate of the reproduction: a sparse,
//! paged, byte-addressable memory in which every 64-bit word carries a
//! one-bit tag — the *forwarding bit*. When software relocates an object it
//! stores the object's new address into the old location and sets the bit;
//! the chain-resolution functions ([`resolve`], [`chain_words`]) then take any access to the old location to the
//! object's new home, guaranteeing that data relocation is always safe.
//!
//! The crate deliberately contains **no timing model**: it is the functional
//! half of the simulator. Timing lives in `memfwd-cache` / `memfwd-cpu` and
//! the two are combined by the `memfwd` core crate.
//!
//! # Example
//!
//! ```
//! use memfwd_tagmem::{Addr, TaggedMemory, resolve};
//!
//! let mut mem = TaggedMemory::new();
//! // Place a value at its "old" home, then relocate it to a new home.
//! mem.write_data(Addr(0x1000), 8, 42);
//! mem.write_data(Addr(0x8000), 8, 42);
//! mem.unforwarded_write(Addr(0x1000), 0x8000, true); // forwarding address
//!
//! let r = resolve(&mem, Addr(0x1000), 64).unwrap();
//! assert_eq!(r.final_addr, Addr(0x8000));
//! assert_eq!(mem.read_data(r.final_addr, 8), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code reports failures as typed errors (or records a typed fault
// before panicking); bare `unwrap()` stays confined to `#[cfg(test)]`.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod alloc;
mod chain;
mod error;
mod fxhash;
mod memory;
pub mod overlay;
mod page;
pub mod scan;
mod snapcodec;
mod word;

pub use alloc::{AllocPolicy, Heap, HeapStats, Pool};
pub use chain::{
    chain_words, resolve, resolve_unbounded, resolve_with_scratch, Resolution, DEFAULT_HOP_LIMIT,
};
pub use error::{CycleError, TagMemError};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use memory::{MemStats, PageCursor, TaggedMemory};
pub use overlay::{merge_mask, PageMask, SpecBase, SpecDelta, SpecView, EMPTY_MASK};
pub use page::{Page, PAGE_BYTES, PAGE_WORDS};
pub use snapcodec::{SnapCodecError, SnapDecoder, SnapEncoder};
pub use word::{validate_access, Addr, WORD_BYTES};
