//! Portable u64-lane bitmap scan kernels.
//!
//! The batched execution path needs one question answered fast: "is any
//! forwarding bit set in this word range?" — a clear range means every
//! reference in the window is walk-free and the per-reference chain-walk
//! machinery can be skipped wholesale. These kernels answer it by scanning
//! the bitmap limbs in explicit 4-lane chunks (one cache line of `u64`s per
//! step) so the compiler vectorizes them on any stable toolchain; no
//! nightly features, no target-specific intrinsics.

/// Lanes per chunk: four `u64`s = 32 bytes, half a cache line — wide enough
/// to vectorize, small enough that tail handling stays cheap for the 8-limb
/// page bitmaps.
const LANES: usize = 4;

/// True when every limb is zero, i.e. no bit is set anywhere.
///
/// OR-reduces `LANES` limbs at a time with a scalar tail.
#[inline]
pub fn all_zero(limbs: &[u64]) -> bool {
    let mut chunks = limbs.chunks_exact(LANES);
    let mut acc = 0u64;
    for c in &mut chunks {
        acc |= c[0] | c[1] | c[2] | c[3];
    }
    for &l in chunks.remainder() {
        acc |= l;
    }
    acc == 0
}

/// Total number of set bits, `LANES` limbs at a time.
#[inline]
pub fn count_ones(limbs: &[u64]) -> u64 {
    let mut chunks = limbs.chunks_exact(LANES);
    let mut acc = 0u64;
    for c in &mut chunks {
        acc += u64::from(c[0].count_ones())
            + u64::from(c[1].count_ones())
            + u64::from(c[2].count_ones())
            + u64::from(c[3].count_ones());
    }
    for &l in chunks.remainder() {
        acc += u64::from(l.count_ones());
    }
    acc
}

/// True when none of the `n_bits` bits starting at bit index `b0` are set.
///
/// Bits are LSB-first within each limb. The first and last limbs of the
/// range are masked; whole limbs in between go through [`all_zero`].
#[inline]
pub fn bits_none_in(limbs: &[u64], b0: usize, n_bits: usize) -> bool {
    if n_bits == 0 {
        return true;
    }
    let last = b0 + n_bits - 1;
    debug_assert!(last / 64 < limbs.len(), "bit range exceeds bitmap");
    let (first_limb, last_limb) = (b0 / 64, last / 64);
    let lo_mask = !0u64 << (b0 % 64);
    let hi_mask = !0u64 >> (63 - last % 64);
    if first_limb == last_limb {
        return limbs[first_limb] & lo_mask & hi_mask == 0;
    }
    if limbs[first_limb] & lo_mask != 0 || limbs[last_limb] & hi_mask != 0 {
        return false;
    }
    all_zero(&limbs[first_limb + 1..last_limb])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_zero_detects_any_bit() {
        assert!(all_zero(&[]));
        assert!(all_zero(&[0; 11]));
        for i in 0..11 {
            let mut v = [0u64; 11];
            v[i] = 1 << (i * 5 % 64);
            assert!(!all_zero(&v), "limb {i}");
        }
    }

    #[test]
    fn count_matches_reference() {
        let v: Vec<u64> = (0..13u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let want: u64 = v.iter().map(|l| u64::from(l.count_ones())).sum();
        assert_eq!(count_ones(&v), want);
    }

    #[test]
    fn range_scan_masks_ends() {
        let mut v = [0u64; 8];
        v[2] = 1 << 63; // bit 191
        assert!(bits_none_in(&v, 0, 191));
        assert!(!bits_none_in(&v, 0, 192));
        assert!(!bits_none_in(&v, 191, 1));
        assert!(bits_none_in(&v, 192, 8 * 64 - 192));
        assert!(bits_none_in(&v, 191, 0), "empty range");
    }

    #[test]
    fn range_scan_within_one_limb() {
        let v = [0b0110_0000u64, 0];
        assert!(bits_none_in(&v, 0, 5));
        assert!(!bits_none_in(&v, 5, 1));
        assert!(!bits_none_in(&v, 4, 3));
        assert!(bits_none_in(&v, 7, 64));
    }

    #[test]
    fn exhaustive_against_naive() {
        let limbs = [0xDEAD_BEEF_0123_4567u64, 0, 0xFFFF_0000_0000_0001];
        let bit = |b: usize| limbs[b / 64] >> (b % 64) & 1 == 1;
        for b0 in 0..192 {
            for n in 0..(192 - b0) {
                let want = (b0..b0 + n).all(|b| !bit(b));
                assert_eq!(bits_none_in(&limbs, b0, n), want, "b0={b0} n={n}");
            }
        }
    }
}
