//! The sparse tagged memory.

use crate::fxhash::FxHashMap;
use crate::page::{Page, PAGE_BYTES, PAGE_WORDS};
use crate::snapcodec::{SnapCodecError, SnapDecoder, SnapEncoder};
use crate::word::{check_access, Addr, WORD_BYTES};
use std::cell::Cell;

/// Occupancy statistics for a [`TaggedMemory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemStats {
    /// Number of 4 KiB pages materialized so far.
    pub pages: u64,
    /// Number of forwarding bits currently set across all pages.
    pub fbits_set: u64,
}

impl MemStats {
    /// Bytes of simulated data storage materialized.
    pub fn data_bytes(&self) -> u64 {
        self.pages * PAGE_BYTES as u64
    }

    /// Bytes of tag storage implied by the forwarding bits (1 bit per word),
    /// i.e. the paper's fixed 1.5 % overhead on a 64-bit architecture.
    pub fn tag_bytes(&self) -> u64 {
        self.data_bytes() / (WORD_BYTES * 8)
    }
}

/// Sentinel page number marking the micro-TLB as empty. No reachable page
/// can have this number: page `u64::MAX` would require a byte address above
/// `u64::MAX * PAGE_BYTES`, which does not exist.
const TLB_EMPTY: u64 = u64::MAX;

/// An explicit per-batch translation cursor: holds the last page
/// translation so a run of references to one page — the typical
/// basic-block window — pays a single map probe for the whole run.
///
/// Unlike the memory's built-in micro-TLB (which it complements), the
/// cursor is owned by the caller, so the batch executor keeps its
/// translation in a register across the window instead of re-reading a
/// shared `Cell`. Pages are never deallocated, so a cached index can never
/// go stale within a run; discard cursors across snapshot restores.
#[derive(Debug, Clone, Copy)]
pub struct PageCursor {
    pno: u64,
    idx: u32,
}

impl PageCursor {
    /// A cursor holding no translation.
    pub fn empty() -> PageCursor {
        PageCursor {
            pno: TLB_EMPTY,
            idx: 0,
        }
    }
}

impl Default for PageCursor {
    fn default() -> PageCursor {
        PageCursor::empty()
    }
}

/// A sparse, paged, byte-addressable 64-bit memory where every word carries
/// a forwarding bit.
///
/// All accesses must be naturally aligned (so they are contained within a
/// single word), mirroring the MIPS alignment rules assumed by the paper.
/// Multi-byte values are little-endian.
///
/// Pages are materialized on first touch, zero-filled with forwarding bits
/// clear — the initialization guarantee of paper §3.3.
///
/// Pages live in a dense `Vec` indexed through a page-number map, with a
/// single-entry micro-TLB caching the last translation: consecutive accesses
/// to the same 4 KiB page (the overwhelmingly common case) skip the hash
/// probe entirely. Pages are never deallocated, so a cached index can never
/// go stale; the TLB only resets when a whole image is rebuilt.
///
/// # Example
///
/// ```
/// use memfwd_tagmem::{Addr, TaggedMemory};
/// let mut mem = TaggedMemory::new();
/// mem.write_data(Addr(0x100), 4, 0xDEAD);
/// assert_eq!(mem.read_data(Addr(0x100), 4), 0xDEAD);
/// assert!(!mem.fbit(Addr(0x100)));
/// ```
pub struct TaggedMemory {
    pages: Vec<Page>,
    index: FxHashMap<u64, u32>,
    /// Micro-TLB: the last `(page number, index into pages)` translation.
    tlb: Cell<(u64, u32)>,
    /// When armed, records the per-page word bitmap of every mutating
    /// access — the epoch engine uses it to learn the write footprint of a
    /// task it had to re-execute directly. `None` (the default) costs one
    /// predictable branch on the write path.
    write_log: Option<Box<FxHashMap<u64, crate::overlay::PageMask>>>,
}

impl Default for TaggedMemory {
    fn default() -> TaggedMemory {
        TaggedMemory {
            pages: Vec::new(),
            index: FxHashMap::default(),
            tlb: Cell::new((TLB_EMPTY, 0)),
            write_log: None,
        }
    }
}

impl TaggedMemory {
    /// Creates an empty memory.
    pub fn new() -> TaggedMemory {
        TaggedMemory::default()
    }

    /// Translates a page number to its index in `pages`, consulting the
    /// micro-TLB first and refilling it on a map hit.
    #[inline]
    fn translate(&self, pno: u64) -> Option<u32> {
        let (cached_pno, cached_idx) = self.tlb.get();
        if cached_pno == pno {
            return Some(cached_idx);
        }
        let idx = *self.index.get(&pno)?;
        self.tlb.set((pno, idx));
        Some(idx)
    }

    #[inline]
    fn page(&mut self, addr: Addr) -> (&mut Page, usize) {
        let pno = addr.0 / PAGE_BYTES as u64;
        let off = (addr.0 % PAGE_BYTES as u64) as usize;
        if let Some(log) = self.write_log.as_mut() {
            let (l, b) = crate::overlay::word_mask_bit(off);
            log.entry(pno).or_insert(crate::overlay::EMPTY_MASK)[l] |= b;
        }
        let idx = match self.translate(pno) {
            Some(idx) => idx,
            None => {
                let idx = u32::try_from(self.pages.len()).expect("page count fits u32");
                self.pages.push(Page::new());
                self.index.insert(pno, idx);
                self.tlb.set((pno, idx));
                idx
            }
        };
        (&mut self.pages[idx as usize], off)
    }

    #[inline]
    fn page_ref(&self, addr: Addr) -> Option<(&Page, usize)> {
        let pno = addr.0 / PAGE_BYTES as u64;
        let off = (addr.0 % PAGE_BYTES as u64) as usize;
        self.translate(pno)
            .map(|idx| (&self.pages[idx as usize], off))
    }

    /// Reads `size` bytes (1, 2, 4, or 8) at `addr` as a little-endian
    /// value, ignoring forwarding bits.
    ///
    /// Untouched memory reads as zero.
    ///
    /// # Panics
    ///
    /// Panics if the access is misaligned or `size` is unsupported.
    #[track_caller]
    pub fn read_data(&self, addr: Addr, size: u64) -> u64 {
        check_access(addr, size);
        match self.page_ref(addr) {
            None => 0,
            Some((p, off)) => {
                if size == WORD_BYTES {
                    return p.word(off);
                }
                let mut buf = [0u8; 8];
                buf[..size as usize].copy_from_slice(p.bytes(off, size as usize));
                u64::from_le_bytes(buf)
            }
        }
    }

    /// Writes the low `size` bytes of `value` at `addr`, ignoring (and not
    /// touching) forwarding bits.
    ///
    /// # Panics
    ///
    /// Panics if the access is misaligned or `size` is unsupported.
    #[track_caller]
    pub fn write_data(&mut self, addr: Addr, size: u64, value: u64) {
        check_access(addr, size);
        let (p, off) = self.page(addr);
        if size == WORD_BYTES {
            p.set_word(off, value);
            return;
        }
        p.bytes_mut(off, size as usize)
            .copy_from_slice(&value.to_le_bytes()[..size as usize]);
    }

    /// Forwarding bit of the word containing `addr`.
    #[inline]
    pub fn fbit(&self, addr: Addr) -> bool {
        let base = addr.word_base();
        self.page_ref(base)
            .map(|(p, off)| p.fbit(off))
            .unwrap_or(false)
    }

    /// Sets or clears the forwarding bit of the word containing `addr`.
    pub fn set_fbit(&mut self, addr: Addr, set: bool) {
        let base = addr.word_base();
        let (p, off) = self.page(base);
        p.set_fbit(off, set);
    }

    /// Reads the whole word containing `addr` together with its forwarding
    /// bit in a **single** page lookup — the combined accessor the access
    /// pipeline's chain walk is built on. Functionally identical to
    /// [`TaggedMemory::unforwarded_read`].
    #[inline]
    pub fn read_word_tagged(&self, addr: Addr) -> (u64, bool) {
        match self.page_ref(addr.word_base()) {
            None => (0, false),
            Some((p, off)) => (p.word(off), p.fbit(off)),
        }
    }

    /// The `Unforwarded_Read` ISA extension (paper Fig. 3): reads the whole
    /// word containing `addr` and its forwarding bit, with the forwarding
    /// mechanism disabled.
    #[inline]
    pub fn unforwarded_read(&self, addr: Addr) -> (u64, bool) {
        self.read_word_tagged(addr)
    }

    /// [`TaggedMemory::read_word_tagged`] through a caller-owned
    /// [`PageCursor`]: a run of same-page reads translates once.
    #[inline]
    pub fn read_word_tagged_run(&self, addr: Addr, cur: &mut PageCursor) -> (u64, bool) {
        let base = addr.word_base();
        let pno = base.0 / PAGE_BYTES as u64;
        let off = (base.0 % PAGE_BYTES as u64) as usize;
        if cur.pno != pno {
            match self.translate(pno) {
                Some(idx) => *cur = PageCursor { pno, idx },
                None => return (0, false),
            }
        }
        let p = &self.pages[cur.idx as usize];
        (p.word(off), p.fbit(off))
    }

    /// True when none of the `n_words` words starting at the word containing
    /// `addr` have their forwarding bit set — the whole range is walk-free.
    ///
    /// Scans each touched page's bitmap with the u64-lane kernel in
    /// [`crate::scan`]; unmaterialized pages are clear by construction
    /// (§3.3 zero-initialization), so they pass without a probe.
    pub fn fbits_clear_range(&self, addr: Addr, n_words: u64) -> bool {
        let mut w = addr.word_base().0 / WORD_BYTES;
        let end = w + n_words; // first word past the range
        while w < end {
            let pno = w / PAGE_WORDS as u64;
            let w0 = (w % PAGE_WORDS as u64) as usize;
            let in_page = ((PAGE_WORDS as u64 - w0 as u64).min(end - w)) as usize;
            if let Some(idx) = self.translate(pno) {
                if !self.pages[idx as usize].fbits_none_in(w0, in_page) {
                    return false;
                }
            }
            w += in_page as u64;
        }
        true
    }

    /// The `Unforwarded_Write` ISA extension (paper Fig. 3): atomically
    /// writes a whole word and its forwarding bit, with the forwarding
    /// mechanism disabled.
    pub fn unforwarded_write(&mut self, addr: Addr, value: u64, fbit: bool) {
        let base = addr.word_base();
        let (p, off) = self.page(base);
        p.set_word(off, value);
        p.set_fbit(off, fbit);
    }

    /// Serializes the full memory image — every materialized page's data and
    /// forwarding bits — into `enc`, pages in ascending page-number order so
    /// the encoding is byte-stable across save/restore cycles.
    pub fn snapshot_encode(&self, enc: &mut SnapEncoder) {
        let mut pnos: Vec<u64> = self.index.keys().copied().collect();
        pnos.sort_unstable();
        enc.usize(pnos.len());
        for pno in pnos {
            let (data, fbits) = self.pages[self.index[&pno] as usize].raw();
            enc.u64(pno);
            enc.raw(&data[..]);
            for limb in fbits {
                enc.u64(*limb);
            }
        }
    }

    /// Rebuilds a memory image written by [`TaggedMemory::snapshot_encode`].
    ///
    /// Rejects duplicate or unsorted page numbers so a bit-flipped snapshot
    /// cannot silently drop or reorder pages.
    pub fn snapshot_decode(dec: &mut SnapDecoder<'_>) -> Result<TaggedMemory, SnapCodecError> {
        const PAGE_RECORD_BYTES: usize = 8 + PAGE_BYTES + PAGE_WORDS / 8;
        let n = dec.seq_len(PAGE_RECORD_BYTES)?;
        let mut pages = Vec::with_capacity(n);
        let mut index = FxHashMap::default();
        index.reserve(n);
        let mut last_pno = None;
        for i in 0..n {
            let pno = dec.u64()?;
            if last_pno.is_some_and(|prev| pno <= prev) {
                return Err(SnapCodecError::BadValue);
            }
            last_pno = Some(pno);
            let data = dec.raw(PAGE_BYTES)?;
            let mut fbits = [0u64; PAGE_WORDS / 64];
            for limb in &mut fbits {
                *limb = dec.u64()?;
            }
            let page = Page::from_raw(data, &fbits).ok_or(SnapCodecError::BadValue)?;
            pages.push(page);
            index.insert(pno, i as u32);
        }
        Ok(TaggedMemory {
            pages,
            index,
            tlb: Cell::new((TLB_EMPTY, 0)),
            write_log: None,
        })
    }

    /// The borrowed parts behind [`TaggedMemory::spec_base`] (kept here so
    /// the fields stay private to this module).
    pub(crate) fn spec_base_parts(&self) -> crate::overlay::SpecBase<'_> {
        crate::overlay::SpecBase::new(&self.pages, &self.index)
    }

    /// Patches the words of `src` selected by `mask` onto the page with
    /// number `pno` — the commit half of the copy-on-touch speculation
    /// protocol. Unmasked words (and all forwarding bits, which the
    /// speculative task surface cannot modify) keep their live values, so
    /// in-order installs from tasks that wrote *different* words of a
    /// shared page compose exactly like serial execution. A page that did
    /// not exist is materialized zero-filled first, exactly as a
    /// first-touch write would have materialized it.
    pub fn install_words(&mut self, pno: u64, src: &Page, mask: &crate::overlay::PageMask) {
        let idx = match self.translate(pno) {
            Some(idx) => idx,
            None => {
                let idx = u32::try_from(self.pages.len()).expect("page count fits u32");
                self.pages.push(Page::new());
                self.index.insert(pno, idx);
                self.tlb.set((pno, idx));
                idx
            }
        };
        let dst = &mut self.pages[idx as usize];
        for (li, &limb) in mask.iter().enumerate() {
            let mut m = limb;
            while m != 0 {
                let off = (li * 64 + m.trailing_zeros() as usize) * WORD_BYTES as usize;
                dst.set_word(off, src.word(off));
                m &= m - 1;
            }
        }
    }

    /// Arms or disarms the mutation word log (see [`TaggedMemory::take_write_log`]).
    pub fn set_write_log(&mut self, on: bool) {
        if on {
            if self.write_log.is_none() {
                self.write_log = Some(Box::default());
            }
        } else {
            self.write_log = None;
        }
    }

    /// Drains the per-page word bitmaps mutated since the log was armed,
    /// sorted by page number. Disarms the log.
    pub fn take_write_log(&mut self) -> Vec<(u64, crate::overlay::PageMask)> {
        let mut masks: Vec<(u64, crate::overlay::PageMask)> = self
            .write_log
            .take()
            .map(|s| s.into_iter().collect())
            .unwrap_or_default();
        masks.sort_unstable_by_key(|&(pno, _)| pno);
        masks
    }

    /// Current occupancy statistics.
    pub fn stats(&self) -> MemStats {
        MemStats {
            pages: self.pages.len() as u64,
            fbits_set: self.pages.iter().map(|p| u64::from(p.fbits_set())).sum(),
        }
    }
}

impl std::fmt::Debug for TaggedMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("TaggedMemory")
            .field("pages", &s.pages)
            .field("fbits_set", &s.fbits_set)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_on_first_touch() {
        let mem = TaggedMemory::new();
        assert_eq!(mem.read_data(Addr(0xDEAD_BEE8), 8), 0);
        assert!(!mem.fbit(Addr(0xDEAD_BEE8)));
    }

    #[test]
    fn little_endian_subword() {
        let mut mem = TaggedMemory::new();
        mem.write_data(Addr(0x100), 8, 0x0807_0605_0403_0201);
        assert_eq!(mem.read_data(Addr(0x100), 1), 0x01);
        assert_eq!(mem.read_data(Addr(0x104), 4), 0x0807_0605);
        assert_eq!(mem.read_data(Addr(0x106), 2), 0x0807);
        mem.write_data(Addr(0x102), 2, 0xFFFF);
        assert_eq!(mem.read_data(Addr(0x100), 8), 0x0807_0605_FFFF_0201);
    }

    #[test]
    fn data_write_preserves_fbit() {
        let mut mem = TaggedMemory::new();
        mem.set_fbit(Addr(0x200), true);
        mem.write_data(Addr(0x204), 4, 7);
        assert!(mem.fbit(Addr(0x200)));
        assert!(mem.fbit(Addr(0x207))); // any byte of the word
        assert!(!mem.fbit(Addr(0x208)));
    }

    #[test]
    fn unforwarded_ops_are_word_granular() {
        let mut mem = TaggedMemory::new();
        mem.unforwarded_write(Addr(0x304), 0x5800, true); // mid-word address
        assert_eq!(mem.unforwarded_read(Addr(0x300)), (0x5800, true));
        assert_eq!(mem.unforwarded_read(Addr(0x307)), (0x5800, true));
        mem.unforwarded_write(Addr(0x300), 0, false);
        assert_eq!(mem.unforwarded_read(Addr(0x300)), (0, false));
    }

    #[test]
    fn read_word_tagged_is_one_probe_combined_view() {
        let mut mem = TaggedMemory::new();
        assert_eq!(mem.read_word_tagged(Addr(0x400)), (0, false), "cold page");
        mem.write_data(Addr(0x400), 8, 77);
        assert_eq!(mem.read_word_tagged(Addr(0x404)), (77, false));
        mem.set_fbit(Addr(0x400), true);
        assert_eq!(mem.read_word_tagged(Addr(0x400)), (77, true));
    }

    #[test]
    fn micro_tlb_survives_cross_page_interleave() {
        let mut mem = TaggedMemory::new();
        // Alternate between two pages so the TLB refills constantly; every
        // read must still see its own page's data.
        for i in 0..64u64 {
            mem.write_data(Addr(0x1000 + i * 8), 8, i);
            mem.write_data(Addr(0x9000 + i * 8), 8, i + 1000);
        }
        for i in 0..64u64 {
            assert_eq!(mem.read_data(Addr(0x1000 + i * 8), 8), i);
            assert_eq!(mem.read_data(Addr(0x9000 + i * 8), 8), i + 1000);
        }
        assert_eq!(mem.stats().pages, 2);
    }

    #[test]
    fn stats_track_pages_and_fbits() {
        let mut mem = TaggedMemory::new();
        assert_eq!(mem.stats(), MemStats::default());
        mem.write_data(Addr(0), 8, 1);
        mem.write_data(Addr(8192), 8, 1);
        mem.set_fbit(Addr(8192), true);
        let s = mem.stats();
        assert_eq!(s.pages, 2);
        assert_eq!(s.fbits_set, 1);
        assert_eq!(s.data_bytes(), 8192);
        assert_eq!(s.tag_bytes(), 128); // 1.5625 % of data
    }

    #[test]
    fn paper_figure_1_scenario() {
        // Relocate five 32-bit elements (values 3, 47, 0, 12, 5 as in the
        // paper's Fig. 1) from their old home to a new one. After the
        // relocation, a 32-bit load of the subword at old+4 must be
        // forwarded to new+4 and return 47.
        let mut mem = TaggedMemory::new();
        let vals = [3u64, 47, 0, 12, 5];
        let old = Addr(0x800);
        let new = Addr(0x5800);
        for (i, v) in vals.iter().enumerate() {
            mem.write_data(old + 4 * i as u64, 4, *v);
        }
        // Relocating the subword at old+16 also drags old+20 along: 3 words.
        for w in 0..3u64 {
            let (val, _) = mem.unforwarded_read(old.add_words(w));
            mem.write_data(new.add_words(w), 8, val);
            mem.unforwarded_write(old.add_words(w), (new.add_words(w)).0, true);
        }
        // A 32-bit load of old+4 forwards to new+4 and returns 47.
        let probe = old + 4;
        assert!(mem.fbit(probe));
        let (fwd, _) = mem.unforwarded_read(probe);
        let final_addr = Addr(fwd) + probe.word_offset();
        assert_eq!(final_addr, new + 4);
        assert_eq!(mem.read_data(final_addr, 4), 47);
    }

    #[test]
    fn debug_nonempty() {
        let mem = TaggedMemory::new();
        assert!(!format!("{mem:?}").is_empty());
    }

    #[test]
    fn page_cursor_reads_match_plain_reads() {
        let mut mem = TaggedMemory::new();
        for i in 0..32u64 {
            mem.write_data(Addr(0x1000 + i * 8), 8, i * 3);
        }
        mem.set_fbit(Addr(0x1010), true);
        let mut cur = PageCursor::empty();
        // Same-page run, a cross-page hop, a cold page, and back.
        for a in [0x1000u64, 0x1008, 0x1010, 0x9000, 0x1018, 0x7_0000] {
            assert_eq!(
                mem.read_word_tagged_run(Addr(a), &mut cur),
                mem.read_word_tagged(Addr(a)),
                "addr {a:#x}"
            );
        }
    }

    #[test]
    fn fbits_clear_range_crosses_pages() {
        let mut mem = TaggedMemory::new();
        // Materialize two adjacent pages; set one bit near the boundary.
        mem.write_data(Addr(0x1000), 8, 1);
        mem.write_data(Addr(0x2000), 8, 1);
        assert!(mem.fbits_clear_range(Addr(0x1000), 1024));
        mem.set_fbit(Addr(0x1FF8), true);
        assert!(mem.fbits_clear_range(Addr(0x1000), 511));
        assert!(!mem.fbits_clear_range(Addr(0x1000), 512));
        assert!(!mem.fbits_clear_range(Addr(0x1FF8), 1));
        assert!(mem.fbits_clear_range(Addr(0x2000), 512));
        // Unmaterialized pages are clear by construction.
        assert!(mem.fbits_clear_range(Addr(0x100_0000), 4096));
        assert!(mem.fbits_clear_range(Addr(0x1FF8), 0), "empty range");
    }
}
