//! A simple word-aligned heap for the simulated address space, plus
//! contiguous pools used as relocation targets.
//!
//! Allocator metadata lives in host memory (not in the simulated address
//! space) so that it neither perturbs application data layout nor consumes
//! forwarding bits. This mirrors how the paper's experiments replace the
//! applications' `malloc`/`free` with instrumented versions.

use crate::error::TagMemError;
use crate::snapcodec::{SnapCodecError, SnapDecoder, SnapEncoder};
use crate::word::{Addr, WORD_BYTES};
use std::collections::BTreeMap;

/// Statistics for a [`Heap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeapStats {
    /// Bytes currently allocated.
    pub live_bytes: u64,
    /// High-water mark of live bytes.
    pub peak_bytes: u64,
    /// Total bytes ever allocated.
    pub total_allocated: u64,
    /// Number of successful allocations.
    pub allocations: u64,
    /// Number of successful frees.
    pub frees: u64,
}

/// Allocation placement policy.
///
/// The paper's original layouts arise from a first-fit `malloc` over a
/// fragmented heap. Modern allocators instead segregate allocations by
/// size class, which by itself co-locates same-sized objects — the
/// `SizeClass` policy lets experiments measure how much of the relocation
/// win survives such an allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocPolicy {
    /// Address-ordered first fit with eager coalescing (the default).
    #[default]
    FirstFit,
    /// Segregated free lists over per-class slabs; requests above the
    /// largest class fall back to first fit.
    SizeClass,
}

/// The segregated size classes, in bytes.
const SIZE_CLASSES: [u64; 8] = [16, 32, 48, 64, 96, 128, 192, 256];
/// Bytes carved per class slab.
const CLASS_SLAB: u64 = 16 * 1024;

/// A heap over a range of the simulated address space, with a pluggable
/// placement policy (see [`AllocPolicy`]).
///
/// All blocks are word-aligned (8 bytes), satisfying the paper's §3.3
/// requirement that relocatable objects never share a word.
///
/// # Example
///
/// ```
/// use memfwd_tagmem::{Addr, Heap};
/// let mut heap = Heap::new(Addr(0x1_0000), 1 << 20);
/// let a = heap.alloc(24)?;
/// let b = heap.alloc(100)?;
/// assert!(a.is_aligned(8) && b.is_aligned(8));
/// heap.free(a)?;
/// heap.free(b)?;
/// assert_eq!(heap.stats().live_bytes, 0);
/// # Ok::<(), memfwd_tagmem::TagMemError>(())
/// ```
#[derive(Debug)]
pub struct Heap {
    base: u64,
    capacity: u64,
    brk: u64,
    policy: AllocPolicy,
    /// Free blocks keyed by base address, value = size. Coalesced eagerly.
    free: BTreeMap<u64, u64>,
    /// Live blocks keyed by base address, value = size.
    live: BTreeMap<u64, u64>,
    /// Per-class free lists and bump regions (SizeClass policy).
    class_free: Vec<Vec<u64>>,
    class_bump: Vec<(u64, u64)>, // (cur, end) per class
    stats: HeapStats,
}

impl Heap {
    /// Creates a first-fit heap managing `[base, base + capacity)`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not word-aligned or the range would be empty.
    pub fn new(base: Addr, capacity: u64) -> Heap {
        Heap::with_policy(base, capacity, AllocPolicy::FirstFit)
    }

    /// Creates a heap with an explicit placement policy.
    ///
    /// # Panics
    ///
    /// As for [`Heap::new`].
    pub fn with_policy(base: Addr, capacity: u64, policy: AllocPolicy) -> Heap {
        assert!(
            base.is_aligned(WORD_BYTES),
            "heap base must be word-aligned"
        );
        assert!(capacity >= WORD_BYTES, "heap capacity too small");
        Heap {
            base: base.0,
            capacity,
            brk: base.0,
            policy,
            free: BTreeMap::new(),
            live: BTreeMap::new(),
            class_free: vec![Vec::new(); SIZE_CLASSES.len()],
            class_bump: vec![(0, 0); SIZE_CLASSES.len()],
            stats: HeapStats::default(),
        }
    }

    /// The placement policy in force.
    pub fn policy(&self) -> AllocPolicy {
        self.policy
    }

    fn round(bytes: u64) -> u64 {
        bytes.max(1).div_ceil(WORD_BYTES) * WORD_BYTES
    }

    fn class_of(size: u64) -> Option<usize> {
        SIZE_CLASSES.iter().position(|&c| size <= c)
    }

    fn record_alloc(&mut self, addr: u64, size: u64) {
        self.live.insert(addr, size);
        self.stats.allocations += 1;
        self.stats.total_allocated += size;
        self.stats.live_bytes += size;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.live_bytes);
    }

    /// Allocates `bytes` (rounded up to a whole number of words).
    ///
    /// # Errors
    ///
    /// Returns [`TagMemError::OutOfMemory`] when neither the free lists nor
    /// the unused tail of the arena can satisfy the request.
    pub fn alloc(&mut self, bytes: u64) -> Result<Addr, TagMemError> {
        let size = Self::round(bytes);
        if self.policy == AllocPolicy::SizeClass {
            if let Some(class) = Self::class_of(size) {
                return self.alloc_class(class, bytes);
            }
        }
        self.alloc_first_fit(size, bytes)
    }

    fn alloc_class(&mut self, class: usize, requested: u64) -> Result<Addr, TagMemError> {
        let csize = SIZE_CLASSES[class];
        if let Some(a) = self.class_free[class].pop() {
            self.record_alloc(a, csize);
            return Ok(Addr(a));
        }
        let (cur, end) = self.class_bump[class];
        if cur + csize > end {
            // Carve a fresh class slab from the shared arena tail.
            if self.brk + CLASS_SLAB > self.base + self.capacity {
                return Err(TagMemError::OutOfMemory { requested });
            }
            let slab = self.brk;
            self.brk += CLASS_SLAB;
            self.class_bump[class] = (slab, slab + CLASS_SLAB);
        }
        let (cur, end) = self.class_bump[class];
        self.class_bump[class] = (cur + csize, end);
        self.record_alloc(cur, csize);
        Ok(Addr(cur))
    }

    fn alloc_first_fit(&mut self, size: u64, requested: u64) -> Result<Addr, TagMemError> {
        // First fit in the free list.
        let hit = self
            .free
            .iter()
            .find(|(_, &sz)| sz >= size)
            .map(|(&a, &sz)| (a, sz));
        let addr = if let Some((a, sz)) = hit {
            self.free.remove(&a);
            if sz > size {
                self.free.insert(a + size, sz - size);
            }
            a
        } else {
            if self.brk + size > self.base + self.capacity {
                return Err(TagMemError::OutOfMemory { requested });
            }
            let a = self.brk;
            self.brk += size;
            a
        };
        self.record_alloc(addr, size);
        Ok(Addr(addr))
    }

    /// Frees a block previously returned by [`Heap::alloc`].
    ///
    /// # Errors
    ///
    /// Returns [`TagMemError::InvalidFree`] if `addr` is not the base of a
    /// live block.
    pub fn free(&mut self, addr: Addr) -> Result<(), TagMemError> {
        let size = self
            .live
            .remove(&addr.0)
            .ok_or(TagMemError::InvalidFree { addr })?;
        self.stats.frees += 1;
        self.stats.live_bytes -= size;
        if self.policy == AllocPolicy::SizeClass {
            if let Some(class) = Self::class_of(size) {
                if SIZE_CLASSES[class] == size {
                    self.class_free[class].push(addr.0);
                    return Ok(());
                }
            }
        }
        // Insert into free list with coalescing.
        let mut start = addr.0;
        let mut len = size;
        if let Some((&pa, &psz)) = self.free.range(..start).next_back() {
            if pa + psz == start {
                self.free.remove(&pa);
                start = pa;
                len += psz;
            }
        }
        if let Some(&nsz) = self.free.get(&(start + len)) {
            self.free.remove(&(start + len));
            len += nsz;
        }
        if start + len == self.brk {
            self.brk = start; // return tail space to the arena
        } else {
            self.free.insert(start, len);
        }
        Ok(())
    }

    /// Size of the live block based at `addr`, if any.
    pub fn block_size(&self, addr: Addr) -> Option<u64> {
        self.live.get(&addr.0).copied()
    }

    /// Returns `true` if `addr` is the base of a live block.
    pub fn is_live(&self, addr: Addr) -> bool {
        self.live.contains_key(&addr.0)
    }

    /// Finds the live block containing `addr`, returning `(base, size)`.
    pub fn block_containing(&self, addr: Addr) -> Option<(Addr, u64)> {
        self.live
            .range(..=addr.0)
            .next_back()
            .filter(|(&b, &sz)| addr.0 < b + sz)
            .map(|(&b, &sz)| (Addr(b), sz))
    }

    /// Bytes between the arena base and the current break (address-space
    /// footprint, including holes in the free list).
    pub fn footprint(&self) -> u64 {
        self.brk - self.base
    }

    /// Allocation statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Serializes the full allocator state (arena bounds, break, policy,
    /// free/live maps, size-class lists, statistics) into `enc`. `BTreeMap`
    /// iteration is already address-ordered, so the encoding is byte-stable.
    pub fn snapshot_encode(&self, enc: &mut SnapEncoder) {
        enc.u64(self.base);
        enc.u64(self.capacity);
        enc.u64(self.brk);
        enc.u8(match self.policy {
            AllocPolicy::FirstFit => 0,
            AllocPolicy::SizeClass => 1,
        });
        enc.seq(self.free.iter(), |e, (&a, &sz)| {
            e.u64(a);
            e.u64(sz);
        });
        enc.seq(self.live.iter(), |e, (&a, &sz)| {
            e.u64(a);
            e.u64(sz);
        });
        enc.seq(self.class_free.iter(), |e, list| {
            e.seq(list.iter(), |e, &a| e.u64(a));
        });
        enc.seq(self.class_bump.iter(), |e, &(cur, end)| {
            e.u64(cur);
            e.u64(end);
        });
        enc.u64(self.stats.live_bytes);
        enc.u64(self.stats.peak_bytes);
        enc.u64(self.stats.total_allocated);
        enc.u64(self.stats.allocations);
        enc.u64(self.stats.frees);
    }

    /// Rebuilds a heap written by [`Heap::snapshot_encode`].
    pub fn snapshot_decode(dec: &mut SnapDecoder<'_>) -> Result<Heap, SnapCodecError> {
        let base = dec.u64()?;
        let capacity = dec.u64()?;
        let brk = dec.u64()?;
        let policy = match dec.u8()? {
            0 => AllocPolicy::FirstFit,
            1 => AllocPolicy::SizeClass,
            _ => return Err(SnapCodecError::BadValue),
        };
        let decode_map = |dec: &mut SnapDecoder<'_>| -> Result<BTreeMap<u64, u64>, SnapCodecError> {
            let n = dec.seq_len(16)?;
            let mut map = BTreeMap::new();
            for _ in 0..n {
                let a = dec.u64()?;
                let sz = dec.u64()?;
                if map.insert(a, sz).is_some() {
                    return Err(SnapCodecError::BadValue);
                }
            }
            Ok(map)
        };
        let free = decode_map(dec)?;
        let live = decode_map(dec)?;
        let n_classes = dec.seq_len(8)?;
        if n_classes != SIZE_CLASSES.len() {
            return Err(SnapCodecError::BadValue);
        }
        let mut class_free = Vec::with_capacity(n_classes);
        for _ in 0..n_classes {
            let n = dec.seq_len(8)?;
            let mut list = Vec::with_capacity(n);
            for _ in 0..n {
                list.push(dec.u64()?);
            }
            class_free.push(list);
        }
        let n_bump = dec.seq_len(16)?;
        if n_bump != SIZE_CLASSES.len() {
            return Err(SnapCodecError::BadValue);
        }
        let mut class_bump = Vec::with_capacity(n_bump);
        for _ in 0..n_bump {
            let cur = dec.u64()?;
            let end = dec.u64()?;
            class_bump.push((cur, end));
        }
        let stats = HeapStats {
            live_bytes: dec.u64()?,
            peak_bytes: dec.u64()?,
            total_allocated: dec.u64()?,
            allocations: dec.u64()?,
            frees: dec.u64()?,
        };
        Ok(Heap {
            base,
            capacity,
            brk,
            policy,
            free,
            live,
            class_free,
            class_bump,
            stats,
        })
    }
}

/// A pool of contiguous memory used as the target of relocation.
///
/// List linearization (paper Fig. 4(b)) allocates the new node locations
/// "from a pool of contiguous memory, thereby creating spatial locality".
/// A pool carves large slabs out of a [`Heap`] and hands out strictly
/// consecutive word-aligned chunks within each slab.
#[derive(Debug)]
pub struct Pool {
    slab_bytes: u64,
    cur: u64,
    end: u64,
    /// Total bytes handed out (the "space overhead" of relocation).
    handed_out: u64,
    slabs: Vec<Addr>,
}

impl Pool {
    /// Creates an empty pool that will carve `slab_bytes`-sized slabs.
    ///
    /// # Panics
    ///
    /// Panics if `slab_bytes` is zero.
    pub fn new(slab_bytes: u64) -> Pool {
        assert!(slab_bytes >= WORD_BYTES);
        Pool {
            slab_bytes,
            cur: 0,
            end: 0,
            handed_out: 0,
            slabs: Vec::new(),
        }
    }

    /// Allocates `bytes` (word-rounded) of contiguous pool space, carving a
    /// new slab from `heap` when the current slab is exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`TagMemError::OutOfMemory`] if the backing heap is full.
    pub fn alloc(&mut self, heap: &mut Heap, bytes: u64) -> Result<Addr, TagMemError> {
        let size = Heap::round(bytes);
        if size > self.slab_bytes - WORD_BYTES {
            // Oversize request: carve a dedicated slab of exactly the
            // needed size (plus the guard word) and leave the current slab
            // in place for subsequent small requests.
            let slab = heap.alloc(size + WORD_BYTES)?;
            self.slabs.push(slab);
            self.handed_out += size;
            return Ok(Addr(slab.0 + WORD_BYTES));
        }
        if self.cur + size > self.end {
            let slab = heap.alloc(self.slab_bytes)?;
            // The slab's first word is left unused so that no chunk address
            // ever coincides with the slab's heap-block base: chunks are
            // not individually freeable (a pool is reclaimed wholesale),
            // and chain-following deallocation must not mistake a chunk
            // for a free-able block.
            self.cur = slab.0 + WORD_BYTES;
            self.end = slab.0 + self.slab_bytes;
            self.slabs.push(slab);
        }
        let a = self.cur;
        self.cur += size;
        self.handed_out += size;
        Ok(Addr(a))
    }

    /// Like [`Pool::alloc`], but the returned chunk is aligned to `align`
    /// bytes (a power of two). Used when relocation targets must respect
    /// cache-line boundaries — subtree clusters, or objects separated to
    /// avoid false sharing.
    ///
    /// # Errors
    ///
    /// Returns [`TagMemError::OutOfMemory`] if the backing heap is full.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc_aligned(
        &mut self,
        heap: &mut Heap,
        bytes: u64,
        align: u64,
    ) -> Result<Addr, TagMemError> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let size = Heap::round(bytes);
        let fits_in_slab = |cur: u64, end: u64| {
            let aligned = cur.next_multiple_of(align);
            aligned + size <= end
        };
        if size + align > self.slab_bytes || !fits_in_slab(self.cur, self.end) {
            if size + align + WORD_BYTES > self.slab_bytes {
                // Dedicated oversize slab.
                let slab = heap.alloc(size + align + WORD_BYTES)?;
                self.slabs.push(slab);
                self.handed_out += size;
                return Ok(Addr((slab.0 + WORD_BYTES).next_multiple_of(align)));
            }
            let slab = heap.alloc(self.slab_bytes)?;
            self.cur = slab.0 + WORD_BYTES;
            self.end = slab.0 + self.slab_bytes;
            self.slabs.push(slab);
        }
        let aligned = self.cur.next_multiple_of(align);
        self.cur = aligned + size;
        self.handed_out += size;
        Ok(Addr(aligned))
    }

    /// Total bytes handed out by this pool — the relocation space overhead
    /// reported in the paper's Table 1.
    pub fn bytes_handed_out(&self) -> u64 {
        self.handed_out
    }

    /// Slabs carved so far (their total size bounds the address-space cost).
    pub fn slab_count(&self) -> usize {
        self.slabs.len()
    }

    /// Appends the pool's complete state to a word-oriented cursor buffer
    /// (used by the application checkpoint cursors, which are `Vec<u64>`).
    pub fn encode_words(&self, out: &mut Vec<u64>) {
        out.push(self.slab_bytes);
        out.push(self.cur);
        out.push(self.end);
        out.push(self.handed_out);
        out.push(self.slabs.len() as u64);
        out.extend(self.slabs.iter().map(|a| a.0));
    }

    /// Rebuilds a pool from the words written by [`Pool::encode_words`],
    /// returning the pool and the number of words consumed. Returns `None`
    /// on truncated or invalid input.
    pub fn decode_words(words: &[u64]) -> Option<(Pool, usize)> {
        let (&slab_bytes, rest) = words.split_first()?;
        if slab_bytes < WORD_BYTES {
            return None;
        }
        if rest.len() < 4 {
            return None;
        }
        let (cur, end, handed_out) = (rest[0], rest[1], rest[2]);
        let n_slabs = usize::try_from(rest[3]).ok()?;
        let slab_words = rest.get(4..4 + n_slabs)?;
        let pool = Pool {
            slab_bytes,
            cur,
            end,
            handed_out,
            slabs: slab_words.iter().map(|&w| Addr(w)).collect(),
        };
        Some((pool, 5 + n_slabs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_word_aligned_and_rounded() {
        let mut h = Heap::new(Addr(0x1000), 4096);
        let a = h.alloc(1).unwrap();
        let b = h.alloc(9).unwrap();
        assert!(a.is_aligned(8));
        assert!(b.is_aligned(8));
        assert_eq!(b.0 - a.0, 8);
        assert_eq!(h.block_size(a), Some(8));
        assert_eq!(h.block_size(b), Some(16));
    }

    #[test]
    fn free_and_reuse() {
        let mut h = Heap::new(Addr(0x1000), 4096);
        let a = h.alloc(64).unwrap();
        let _b = h.alloc(64).unwrap();
        h.free(a).unwrap();
        let c = h.alloc(32).unwrap();
        assert_eq!(c, a, "first-fit should reuse the freed hole");
        let d = h.alloc(32).unwrap();
        assert_eq!(d.0, a.0 + 32, "remainder of the hole is reused next");
    }

    #[test]
    fn coalescing_neighbours() {
        let mut h = Heap::new(Addr(0x1000), 4096);
        let a = h.alloc(32).unwrap();
        let b = h.alloc(32).unwrap();
        let c = h.alloc(32).unwrap();
        let _guard = h.alloc(32).unwrap();
        h.free(a).unwrap();
        h.free(c).unwrap();
        h.free(b).unwrap(); // must merge with both neighbours
        let big = h.alloc(96).unwrap();
        assert_eq!(big, a);
    }

    #[test]
    fn tail_free_returns_to_brk() {
        let mut h = Heap::new(Addr(0x1000), 4096);
        let a = h.alloc(64).unwrap();
        assert_eq!(h.footprint(), 64);
        h.free(a).unwrap();
        assert_eq!(h.footprint(), 0);
    }

    #[test]
    fn out_of_memory() {
        let mut h = Heap::new(Addr(0x1000), 64);
        assert!(h.alloc(32).is_ok());
        assert!(matches!(
            h.alloc(64),
            Err(TagMemError::OutOfMemory { requested: 64 })
        ));
    }

    #[test]
    fn invalid_free() {
        let mut h = Heap::new(Addr(0x1000), 4096);
        let a = h.alloc(16).unwrap();
        assert!(matches!(
            h.free(a + 8),
            Err(TagMemError::InvalidFree { .. })
        ));
        assert!(h.free(a).is_ok());
        assert!(h.free(a).is_err(), "double free rejected");
    }

    #[test]
    fn block_containing_interior() {
        let mut h = Heap::new(Addr(0x1000), 4096);
        let a = h.alloc(32).unwrap();
        assert_eq!(h.block_containing(a + 31), Some((a, 32)));
        assert_eq!(h.block_containing(a + 32), None);
        assert!(h.is_live(a));
    }

    #[test]
    fn stats_accounting() {
        let mut h = Heap::new(Addr(0x1000), 4096);
        let a = h.alloc(16).unwrap();
        let _b = h.alloc(16).unwrap();
        h.free(a).unwrap();
        let s = h.stats();
        assert_eq!(s.allocations, 2);
        assert_eq!(s.frees, 1);
        assert_eq!(s.live_bytes, 16);
        assert_eq!(s.peak_bytes, 32);
        assert_eq!(s.total_allocated, 32);
    }

    #[test]
    fn size_class_policy_segregates_by_size() {
        let mut h = Heap::with_policy(Addr(0x1000), 1 << 20, AllocPolicy::SizeClass);
        assert_eq!(h.policy(), AllocPolicy::SizeClass);
        // Same-class allocations are contiguous even when interleaved with
        // other classes (the behaviour first-fit does not have).
        let a1 = h.alloc(32).unwrap();
        let _b = h.alloc(100).unwrap();
        let a2 = h.alloc(32).unwrap();
        assert_eq!(a2.0 - a1.0, 32, "same class packs contiguously");
        let s = h.stats();
        assert_eq!(s.live_bytes, 32 + 32 + 128); // 100 rounds to class 128
    }

    #[test]
    fn size_class_free_list_recycles_exactly() {
        let mut h = Heap::with_policy(Addr(0x1000), 1 << 20, AllocPolicy::SizeClass);
        let a = h.alloc(48).unwrap();
        h.free(a).unwrap();
        let b = h.alloc(40).unwrap(); // same class (48)
        assert_eq!(a, b, "freed class block is reused first");
        assert!(h.is_live(b));
    }

    #[test]
    fn size_class_large_requests_fall_back_to_first_fit() {
        let mut h = Heap::with_policy(Addr(0x1000), 1 << 20, AllocPolicy::SizeClass);
        let big = h.alloc(4096).unwrap();
        h.free(big).unwrap();
        let big2 = h.alloc(4000).unwrap();
        assert_eq!(big, big2, "first-fit reuse of the large hole");
    }

    #[test]
    fn size_class_oom_is_reported() {
        let mut h = Heap::with_policy(Addr(0x1000), 8 * 1024, AllocPolicy::SizeClass);
        // One class slab is 16 KiB: the arena cannot even hold one.
        assert!(matches!(h.alloc(32), Err(TagMemError::OutOfMemory { .. })));
    }

    #[test]
    fn pool_is_contiguous_within_slab() {
        let mut h = Heap::new(Addr(0x1000), 1 << 16);
        let mut p = Pool::new(1024);
        let a = p.alloc(&mut h, 24).unwrap();
        let b = p.alloc(&mut h, 24).unwrap();
        let c = p.alloc(&mut h, 24).unwrap();
        assert_eq!(b.0 - a.0, 24);
        assert_eq!(c.0 - b.0, 24);
        assert_eq!(p.bytes_handed_out(), 72);
        assert_eq!(p.slab_count(), 1);
    }

    #[test]
    fn pool_spills_to_new_slab() {
        let mut h = Heap::new(Addr(0x1000), 1 << 16);
        let mut p = Pool::new(64);
        let _ = p.alloc(&mut h, 48).unwrap();
        let b = p.alloc(&mut h, 48).unwrap();
        assert_eq!(p.slab_count(), 2);
        assert!(h.is_live(Addr(b.0)) || h.block_containing(b).is_some());
    }

    #[test]
    fn pool_alloc_aligned_respects_alignment() {
        let mut h = Heap::new(Addr(0x1008), 1 << 20);
        let mut p = Pool::new(4096);
        let _skew = p.alloc(&mut h, 24).unwrap();
        for _ in 0..10 {
            let a = p.alloc_aligned(&mut h, 40, 64).unwrap();
            assert!(a.is_aligned(64), "{a:?}");
        }
        // Oversize aligned request gets a dedicated slab, still aligned.
        let big = p.alloc_aligned(&mut h, 8192, 128).unwrap();
        assert!(big.is_aligned(128));
    }

    #[test]
    fn pool_oversize_gets_dedicated_slab() {
        let mut h = Heap::new(Addr(0x1000), 1 << 16);
        let mut p = Pool::new(64);
        let small = p.alloc(&mut h, 16).unwrap();
        let big = p.alloc(&mut h, 128).unwrap();
        let small2 = p.alloc(&mut h, 16).unwrap();
        assert_eq!(p.slab_count(), 2);
        assert_eq!(small2.0 - small.0, 16, "current slab still in use");
        assert!(big.is_aligned(8));
        assert_eq!(p.bytes_handed_out(), 160);
    }
}
