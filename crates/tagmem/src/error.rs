//! Error types for the tagged-memory substrate.

use crate::word::Addr;
use std::error::Error;
use std::fmt;

/// A genuine forwarding cycle was detected while resolving an address.
///
/// Cycles are created only by erroneous software that inserts an address
/// more than once into a forwarding chain (paper §3.2). The hardware's
/// hop-limit counter triggers an accurate software cycle check; if the check
/// confirms a cycle, execution must be aborted — which in this simulator
/// surfaces as this error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleError {
    /// The address whose resolution revisited an earlier chain element.
    pub at: Addr,
    /// Hops performed before the cycle closed.
    pub hops: u32,
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "forwarding cycle detected at {} after {} hops",
            self.at, self.hops
        )
    }
}

impl Error for CycleError {}

/// Errors produced by tagged-memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TagMemError {
    /// Address resolution found a forwarding cycle.
    Cycle(CycleError),
    /// The heap is exhausted (allocation request cannot be satisfied).
    OutOfMemory {
        /// Size of the failed request in bytes.
        requested: u64,
    },
    /// `free` was called on an address that is not the base of a live block.
    InvalidFree {
        /// The offending address.
        addr: Addr,
    },
    /// A data access that is not naturally aligned, or whose size is not a
    /// power of two between 1 and 8 bytes.
    Misaligned {
        /// The offending address.
        addr: Addr,
        /// The access size in bytes.
        size: u64,
    },
}

impl fmt::Display for TagMemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TagMemError::Cycle(c) => c.fmt(f),
            TagMemError::OutOfMemory { requested } => {
                write!(f, "simulated heap exhausted by {requested}-byte request")
            }
            TagMemError::InvalidFree { addr } => {
                write!(f, "free of non-allocated address {addr}")
            }
            TagMemError::Misaligned { addr, size } => {
                if matches!(size, 1 | 2 | 4 | 8) {
                    write!(f, "misaligned {size}-byte access at {addr}")
                } else {
                    write!(f, "unsupported access size {size} at {addr}")
                }
            }
        }
    }
}

impl Error for TagMemError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TagMemError::Cycle(c) => Some(c),
            _ => None,
        }
    }
}

impl From<CycleError> for TagMemError {
    fn from(c: CycleError) -> Self {
        TagMemError::Cycle(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let c = CycleError {
            at: Addr(0x100),
            hops: 3,
        };
        assert_eq!(
            c.to_string(),
            "forwarding cycle detected at 0x100 after 3 hops"
        );
        let e: TagMemError = c.into();
        assert_eq!(e.to_string(), c.to_string());
        assert!(TagMemError::OutOfMemory { requested: 64 }
            .to_string()
            .contains("64-byte"));
        assert!(TagMemError::InvalidFree { addr: Addr(8) }
            .to_string()
            .contains("0x8"));
        assert_eq!(
            TagMemError::Misaligned {
                addr: Addr(0x1001),
                size: 4
            }
            .to_string(),
            "misaligned 4-byte access at 0x1001"
        );
        assert_eq!(
            TagMemError::Misaligned {
                addr: Addr(0x1000),
                size: 5
            }
            .to_string(),
            "unsupported access size 5 at 0x1000"
        );
    }

    #[test]
    fn error_source() {
        let e: TagMemError = CycleError {
            at: Addr(1),
            hops: 0,
        }
        .into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&TagMemError::OutOfMemory { requested: 1 }).is_none());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TagMemError>();
        assert_send_sync::<CycleError>();
    }
}
