//! Hierarchical radiosity (paper §5.3, list-linearization group).
//!
//! Every patch carries an *interaction list*: the set of other patches it
//! exchanges energy with, each entry holding a form factor. Iterative
//! refinement gathers energy along every interaction, then subdivides or
//! prunes interactions — so the lists mutate between iterations and
//! linearization is invoked periodically, exactly the pattern the paper
//! exploits. Gathering also dereferences the partner patch record, adding
//! the irregular secondary access the real program exhibits.

use crate::ckpt::{bad_cursor, push_addr_vec, Checkpointer, CkOutcome, CursorR};
use crate::common::{prefetch_mode, scatter_pad, PrefetchMode, Rng};
use crate::registry::{AppOutput, RunConfig, Scale, Variant};
use memfwd::{list_linearize, ListDesc, Machine, MachineFault, Token};
use memfwd_tagmem::Addr;

/// Interaction node: `[next, partner_patch_ptr, form_factor, pad]`.
const INTER_WORDS: u64 = 4;
/// Patch record: `[energy, gathered, id, pad]`.
const PATCH_WORDS: u64 = 4;

const INTER_DESC: ListDesc = ListDesc {
    node_words: INTER_WORDS,
    next_word: 0,
};

/// Fixed-point scale for energies/form factors.
const FP: u64 = 1024;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Number of patches.
    pub patches: u64,
    /// Initial interactions per patch.
    pub interactions: u64,
    /// Gather-refine iterations.
    pub iterations: u64,
    /// Gather passes per iteration (refinement happens once per iteration,
    /// so this sets the reuse the linearized layout enjoys).
    pub gathers: u64,
}

impl Params {
    /// Parameters for a workload scale.
    pub fn for_scale(scale: Scale) -> Params {
        match scale {
            Scale::Smoke => Params {
                patches: 24,
                interactions: 6,
                iterations: 3,
                gathers: 2,
            },
            Scale::Bench => Params {
                patches: 700,
                interactions: 14,
                iterations: 6,
                gathers: 4,
            },
        }
    }
}

/// Runs `radiosity`.
pub fn run(cfg: &RunConfig) -> AppOutput {
    crate::registry::unwrap_uncheckpointed(run_ck(cfg, &mut Checkpointer::disabled()))
}

/// Runs `radiosity` under a checkpoint policy; see
/// [`crate::registry::run_ck`].
///
/// # Errors
///
/// Any [`MachineFault`] the run raises, including a rejected resume image.
#[allow(clippy::needless_range_loop)] // loops index `lists` while `m` is borrowed mutably
pub fn run_ck(cfg: &RunConfig, ck: &mut Checkpointer) -> Result<CkOutcome, MachineFault> {
    let p = Params::for_scale(cfg.scale);
    let optimized = cfg.variant == Variant::Optimized;
    let mode = prefetch_mode(cfg);

    let (mut m, cursor) = ck.begin(cfg)?;
    let (iter0, pass0, mut checksum, mut rng, patches, lists, mut pool) = if cursor.is_empty() {
        let pool = m.new_pool();
        let mut rng = Rng::new(cfg.seed ^ 0x0072_6164);
        // ---- Build patches and their scattered interaction lists.
        let mut patches: Vec<Addr> = Vec::new();
        let mut lists: Vec<Addr> = Vec::new(); // interaction-list head handles
        for id in 0..p.patches {
            scatter_pad(&mut m, &mut rng);
            let patch = m.malloc(PATCH_WORDS * 8);
            m.store_word(patch, (id % 97 + 1) * FP); // initial energy
            m.store_word(patch.add_words(1), 0);
            m.store_word(patch.add_words(2), id);
            patches.push(patch);
            let head = m.malloc(8);
            m.store_ptr(head, Addr::NULL);
            lists.push(head);
        }
        for id in 0..p.patches {
            for k in 1..=p.interactions {
                scatter_pad(&mut m, &mut rng);
                let partner = (id + k * 37 + k * k) % p.patches;
                if partner == id {
                    continue;
                }
                let ff = (id * 13 + k * 29) % (FP / 2) + 1;
                push_interaction(&mut m, lists[id as usize], patches[partner as usize], ff);
            }
        }
        (0u64, 0u64, 0u64, rng, patches, lists, pool)
    } else {
        let mut c = CursorR::new(&cursor);
        let iter0 = c.u64()?;
        let pass0 = c.u64()?;
        let checksum = c.u64()?;
        let rng = c.rng()?;
        let patches = c.addr_vec()?;
        let lists = c.addr_vec()?;
        let pool = c.pool()?;
        c.finish()?;
        if patches.len() as u64 != p.patches
            || lists.len() as u64 != p.patches
            || iter0 > p.iterations
            || pass0 >= p.gathers.max(1)
        {
            return Err(bad_cursor());
        }
        (iter0, pass0, checksum, rng, patches, lists, pool)
    };

    // ---- Gather / refine iterations.
    for iter in iter0..p.iterations {
        // Gather passes: for each patch, walk its interaction list, read
        // each partner's energy, scale by the form factor, accumulate,
        // then fold the energy back (damped). Several passes run between
        // refinements, as the solver iterates toward convergence.
        let pass_start = if iter == iter0 { pass0 } else { 0 };
        for pass in pass_start..p.gathers {
            if ck.boundary(&m, || {
                let mut w = vec![iter, pass, checksum, rng.state()];
                push_addr_vec(&mut w, &patches);
                push_addr_vec(&mut w, &lists);
                pool.encode_words(&mut w);
                w
            })? {
                return Ok(CkOutcome::Stopped);
            }
            for pi in 0..p.patches as usize {
                let mut gathered = 0u64;
                walk_interactions(&mut m, lists[pi], mode, |m, node, tok| {
                    let (partner, t1) = m.load_ptr_dep(node.add_words(1), tok);
                    let (ff, t2) = m.load_word_dep(node.add_words(2), t1);
                    let (energy, t3) = m.load_word_dep(partner, t2);
                    m.compute(4); // fixed-point multiply-accumulate
                    gathered = gathered.wrapping_add(energy.wrapping_mul(ff) / FP);
                    t3
                });
                let patch = patches[pi];
                m.store_word(patch.add_words(1), gathered);
            }
            for &patch in &patches {
                let e = m.load_word(patch);
                let g = m.load_word(patch.add_words(1));
                let ne = e / 2 + g / 4 + 1;
                m.store_word(patch, ne);
                m.compute(3);
                checksum = checksum.wrapping_add(ne).rotate_left(1);
            }
        }
        // Refine: prune one interaction and add two finer ones on a
        // deterministic subset of patches (lists mutate between iterations).
        for pi in 0..p.patches as usize {
            if (pi as u64 + iter).is_multiple_of(3) {
                pop_interaction(&mut m, lists[pi]);
                for j in 0..2u64 {
                    scatter_pad(&mut m, &mut rng);
                    let partner = (pi as u64 + iter * 11 + j * 53 + 7) % p.patches;
                    let ff = (pi as u64 * 7 + iter * 31 + j) % (FP / 4) + 1;
                    push_interaction(&mut m, lists[pi], patches[partner as usize], ff);
                }
            }
        }
        // Periodic linearization of the interaction lists that were
        // mutated by this refinement (the paper's optimization).
        if optimized {
            for pi in 0..p.patches as usize {
                if (pi as u64 + iter).is_multiple_of(3) {
                    list_linearize(&mut m, lists[pi], INTER_DESC, &mut pool);
                }
            }
        }
    }

    Ok(CkOutcome::Done(AppOutput {
        checksum,
        stats: m.finish(),
    }))
}

fn push_interaction(m: &mut Machine, head: Addr, partner: Addr, ff: u64) {
    let node = m.malloc(INTER_WORDS * 8);
    let first = m.load_ptr(head);
    m.store_ptr(node, first);
    m.store_ptr(node.add_words(1), partner);
    m.store_word(node.add_words(2), ff);
    m.store_ptr(head, node);
}

fn pop_interaction(m: &mut Machine, head: Addr) {
    let first = m.load_ptr(head);
    if first.is_null() {
        return;
    }
    let next = m.load_ptr(first);
    m.store_ptr(head, next);
    if m.heap().is_live(first) {
        m.free(first);
    }
}

fn walk_interactions(
    m: &mut Machine,
    head: Addr,
    mode: PrefetchMode,
    mut visit: impl FnMut(&mut Machine, Addr, Token) -> Token,
) {
    let (mut node, mut tok) = m.load_ptr_dep(head, Token::ready());
    while !node.is_null() {
        match mode {
            PrefetchMode::NextPointer => {
                let (n, t) = m.load_ptr_dep(node, tok);
                if !n.is_null() {
                    m.prefetch_dep(n, 1, t);
                }
            }
            PrefetchMode::Linear { lines } => {
                m.prefetch(node + lines * m.line_bytes(), lines.min(4));
            }
            PrefetchMode::None => {}
        }
        tok = visit(m, node, tok);
        let (n, t) = m.load_ptr_dep(node, tok);
        node = n;
        tok = t;
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::{run_ok as run, App, RunConfig, Variant};

    #[test]
    fn checksums_match_across_variants() {
        let orig = run(App::Radiosity, &RunConfig::new(Variant::Original).smoke());
        let opt = run(App::Radiosity, &RunConfig::new(Variant::Optimized).smoke());
        assert_eq!(orig.checksum, opt.checksum);
        assert!(opt.stats.fwd.relocations > 0);
    }

    #[test]
    fn prefetch_preserves_results() {
        let orig = run(App::Radiosity, &RunConfig::new(Variant::Original).smoke());
        let lp = run(
            App::Radiosity,
            &RunConfig::new(Variant::Optimized).smoke().with_prefetch(2),
        );
        assert_eq!(orig.checksum, lp.checksum);
    }

    #[test]
    fn lists_mutate_between_iterations() {
        let orig = run(App::Radiosity, &RunConfig::new(Variant::Original).smoke());
        assert!(orig.stats.fwd.frees > 0, "refinement prunes interactions");
        assert!(orig.stats.fwd.mallocs > 0);
    }
}
