//! A generic list library in the style of VIS's (paper §5.3): list heads
//! are records in simulated memory that track a mutation counter, and —
//! in the optimized variants — trigger list linearization whenever the
//! counter exceeds a threshold (the paper used 50).

use crate::common::rng::Rng;
use crate::common::with_batch;
use memfwd::{
    list_linearize, list_walk, BatchDep, Demand, ListDesc, Machine, Token, BATCH_CAPACITY,
};
use memfwd_tagmem::{Addr, Pool};

/// Head-record layout (4 words): `[first, count, mutations, reserved]`.
const HEAD_WORDS: u64 = 4;
const FIRST: u64 = 0;
const COUNT: u64 = 8;
const MUTS: u64 = 16;

/// Prefetching policy for traversals, matching the paper's Fig. 7 setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrefetchMode {
    /// No software prefetching.
    #[default]
    None,
    /// Prefetch each node's successor as soon as its address is known
    /// (the best one can do on a pointer-chased list).
    NextPointer,
    /// Data-linearization prefetching: assume nodes are consecutive and
    /// block-prefetch `lines` cache lines ahead.
    Linear {
        /// Prefetch block size in cache lines.
        lines: u64,
    },
}

/// The list library: node shape plus the optimization policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListLib {
    /// Node shape; `next` must be at word 0.
    pub desc: ListDesc,
    /// Linearize when a list's mutation counter exceeds this (None =
    /// original, unoptimized behaviour).
    pub threshold: Option<u64>,
}

impl ListLib {
    /// Creates a library for nodes of `node_words` words (`next` at word 0).
    pub fn new(node_words: u64, threshold: Option<u64>) -> ListLib {
        assert!(node_words >= 2, "need next + at least one payload word");
        ListLib {
            desc: ListDesc {
                node_words,
                next_word: 0,
            },
            threshold,
        }
    }

    /// Allocates an empty list head record.
    pub fn new_list(&self, m: &mut Machine) -> Addr {
        let h = m.malloc(HEAD_WORDS * 8);
        m.store_ptr(h + FIRST, Addr::NULL);
        m.store_word(h + COUNT, 0);
        m.store_word(h + MUTS, 0);
        h
    }

    /// Number of elements (reads the head record).
    pub fn len(&self, m: &mut Machine, head: Addr) -> u64 {
        m.load_word(head + COUNT)
    }

    /// True if the list is empty.
    pub fn is_empty(&self, m: &mut Machine, head: Addr) -> bool {
        self.len(m, head) == 0
    }

    /// Pushes a node with the given payload words at the front; returns the
    /// node address. May trigger linearization.
    pub fn push_front(
        &self,
        m: &mut Machine,
        head: Addr,
        payload: &[u64],
        pool: &mut Pool,
    ) -> Addr {
        assert!((payload.len() as u64) < self.desc.node_words);
        let node = m.malloc(self.desc.node_words * 8);
        let first = m.load_ptr(head + FIRST);
        // The node-initializer stores are a basic-block window over a
        // freshly allocated contiguous record: emit them as one batch.
        if payload.len() < BATCH_CAPACITY {
            with_batch(|b, out| {
                b.set_span(node, 1 + payload.len() as u64);
                b.push_store(node, 8, first.0, BatchDep::Ready);
                for (i, &v) in payload.iter().enumerate() {
                    b.push_store(node.add_words(1 + i as u64), 8, v, BatchDep::Ready);
                }
                m.run_batch(b, out);
            });
        } else {
            m.store_ptr(node, first);
            for (i, &v) in payload.iter().enumerate() {
                m.store_word(node.add_words(1 + i as u64), v);
            }
        }
        m.store_ptr(head + FIRST, node);
        self.bump(m, head, 1, pool);
        node
    }

    /// Deletes the `idx`-th node (0-based); returns `true` if it existed.
    /// May trigger linearization.
    pub fn delete_nth(&self, m: &mut Machine, head: Addr, idx: u64, pool: &mut Pool) -> bool {
        let mut prev_slot = head + FIRST;
        let (mut p, mut tok) = m.load_ptr_dep(prev_slot, Token::ready());
        let mut i = 0;
        while !p.is_null() {
            if i == idx {
                let (next, _) = m.load_ptr_dep(p, tok);
                m.store_ptr(prev_slot, next);
                // A node that was linearized lives in pool space and is
                // reclaimed with its pool; only original allocations are
                // individually freed (the §3.3 wrapper handles their chains).
                if m.heap().is_live(p) {
                    m.free(p);
                }
                let c = m.load_word(head + COUNT);
                m.store_word(head + COUNT, c - 1);
                self.bump(m, head, 0, pool);
                return true;
            }
            prev_slot = p;
            let (next, t) = m.load_ptr_dep(p, tok);
            p = next;
            tok = t;
            i += 1;
        }
        false
    }

    fn bump(&self, m: &mut Machine, head: Addr, inserted: u64, pool: &mut Pool) {
        if inserted > 0 {
            let c = m.load_word(head + COUNT);
            m.store_word(head + COUNT, c + inserted);
        }
        let muts = m.load_word(head + MUTS) + 1;
        m.store_word(head + MUTS, muts);
        if let Some(th) = self.threshold {
            if muts > th {
                list_linearize(m, head + FIRST, self.desc, pool);
                m.store_word(head + MUTS, 0);
            }
        }
    }

    /// Forces a linearization pass regardless of the counter.
    pub fn linearize_now(&self, m: &mut Machine, head: Addr, pool: &mut Pool) -> u64 {
        let out = list_linearize(m, head + FIRST, self.desc, pool);
        m.store_word(head + MUTS, 0);
        out.nodes
    }

    /// Traverses the list, calling `visit(machine, node, token)` per node,
    /// with the requested prefetching policy. Returns the node count.
    ///
    /// Generic over [`Demand`]: the same traversal runs on a [`Machine`]
    /// directly or inside an epoch-parallel task.
    pub fn traverse<M: Demand + ?Sized>(
        &self,
        m: &mut M,
        head: Addr,
        mode: PrefetchMode,
        mut visit: impl FnMut(&mut M, Addr, Token) -> Token,
    ) -> u64 {
        let node_bytes = self.desc.node_words * 8;
        list_walk(m, head + FIRST, 0, |m, node, tok| {
            match mode {
                PrefetchMode::None => {}
                PrefetchMode::NextPointer => {
                    // The successor's address is in this node's next field;
                    // the earliest we can prefetch it is once that field has
                    // been loaded — one node ahead, the pointer-chasing
                    // limit of §2.2.
                    let (next, t) = m.load_ptr_dep(node, tok);
                    if !next.is_null() {
                        m.prefetch_dep(next, 1, t);
                    }
                }
                PrefetchMode::Linear { lines } => {
                    // After linearization nodes are consecutive: prefetch a
                    // block `lines` ahead without dereferencing anything.
                    let ahead = lines * m.line_bytes();
                    m.prefetch(node + ahead, lines.min(4));
                    let _ = node_bytes;
                }
            }
            visit(m, node, tok)
        })
    }

    /// Traverses summing `payload_word` of every node (a common kernel).
    pub fn sum_payloads<M: Demand + ?Sized>(
        &self,
        m: &mut M,
        head: Addr,
        payload_word: u64,
        mode: PrefetchMode,
    ) -> u64 {
        let mut sum = 0u64;
        self.traverse(m, head, mode, |m, node, tok| {
            let (v, t) = m.load_word_dep(node.add_words(payload_word), tok);
            sum = sum.wrapping_add(v);
            t
        });
        sum
    }
}

/// Interleaves a small random dummy allocation to scatter subsequent nodes
/// across the heap, modelling the fragmented heaps of long-running C
/// programs (which is what makes the original layouts sparse).
pub fn scatter_pad(m: &mut Machine, rng: &mut Rng) {
    scatter_pad_if(m, rng, true);
}

/// [`scatter_pad`] with the allocation made conditional while the RNG draw
/// always happens — static-placement variants must consume the identical
/// random stream to stay bit-equal with the other layouts.
pub fn scatter_pad_if(m: &mut Machine, rng: &mut Rng, enabled: bool) {
    let n = rng.below(4);
    if enabled && n > 0 {
        let _ = m.malloc(n * 24);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memfwd::SimConfig;

    fn setup(threshold: Option<u64>) -> (Machine, ListLib, Pool, Addr) {
        let mut m = Machine::new(SimConfig::default());
        let lib = ListLib::new(4, threshold);
        let pool = m.new_pool();
        let head = lib.new_list(&mut m);
        (m, lib, pool, head)
    }

    #[test]
    fn push_and_sum() {
        let (mut m, lib, mut pool, head) = setup(None);
        for i in 0..10 {
            lib.push_front(&mut m, head, &[i], &mut pool);
        }
        assert_eq!(lib.len(&mut m, head), 10);
        assert!(!lib.is_empty(&mut m, head));
        let sum = lib.sum_payloads(&mut m, head, 1, PrefetchMode::None);
        assert_eq!(sum, 45);
    }

    #[test]
    fn delete_nth() {
        let (mut m, lib, mut pool, head) = setup(None);
        for i in 0..5 {
            lib.push_front(&mut m, head, &[i], &mut pool);
        }
        // List is 4,3,2,1,0; delete index 1 (payload 3).
        assert!(lib.delete_nth(&mut m, head, 1, &mut pool));
        assert_eq!(lib.len(&mut m, head), 4);
        assert_eq!(lib.sum_payloads(&mut m, head, 1, PrefetchMode::None), 7);
        assert!(!lib.delete_nth(&mut m, head, 10, &mut pool));
    }

    #[test]
    fn threshold_triggers_linearization() {
        let (mut m, lib, mut pool, head) = setup(Some(8));
        for i in 0..20 {
            lib.push_front(&mut m, head, &[i], &mut pool);
        }
        let s = m.fwd_stats();
        assert!(s.relocations > 0, "counter crossed 8 twice: linearized");
        assert_eq!(
            lib.sum_payloads(&mut m, head, 1, PrefetchMode::None),
            (0..20).sum::<u64>()
        );
    }

    #[test]
    fn unoptimized_never_linearizes() {
        let (mut m, lib, mut pool, head) = setup(None);
        for i in 0..100 {
            lib.push_front(&mut m, head, &[i], &mut pool);
        }
        assert_eq!(m.fwd_stats().relocations, 0);
    }

    #[test]
    fn traversal_modes_agree_on_sum() {
        for mode in [
            PrefetchMode::None,
            PrefetchMode::NextPointer,
            PrefetchMode::Linear { lines: 2 },
        ] {
            let (mut m, lib, mut pool, head) = setup(Some(4));
            for i in 0..30 {
                lib.push_front(&mut m, head, &[i * i], &mut pool);
            }
            let want: u64 = (0..30u64).map(|i| i * i).sum();
            assert_eq!(lib.sum_payloads(&mut m, head, 1, mode), want, "{mode:?}");
        }
    }

    #[test]
    fn linearize_now_packs_nodes() {
        let (mut m, lib, mut pool, head) = setup(None);
        let mut rng = Rng::new(5);
        for i in 0..16 {
            scatter_pad(&mut m, &mut rng);
            lib.push_front(&mut m, head, &[i], &mut pool);
        }
        let n = lib.linearize_now(&mut m, head, &mut pool);
        assert_eq!(n, 16);
        let mut prev = Addr::NULL;
        lib.traverse(&mut m, head, PrefetchMode::None, |_m, node, tok| {
            if !prev.is_null() {
                assert_eq!(node.0 - prev.0, 32, "consecutive after linearize");
            }
            prev = node;
            tok
        });
    }
}
