//! Shared workload infrastructure: deterministic RNG, the generic list
//! library, and heap-scatter helpers.

pub mod listlib;
pub mod rng;

pub use listlib::{scatter_pad, scatter_pad_if, ListLib, PrefetchMode};
pub use rng::Rng;

use crate::registry::{RunConfig, Variant};

/// The prefetch policy for list traversals implied by a run configuration:
/// the paper's `NP` case prefetches one node ahead through the next
/// pointer (all that pointer chasing allows), while `LP` exploits the
/// linearized layout with block prefetching.
pub fn prefetch_mode(cfg: &RunConfig) -> PrefetchMode {
    if !cfg.prefetch {
        PrefetchMode::None
    } else if cfg.variant == Variant::Optimized {
        PrefetchMode::Linear {
            lines: cfg.prefetch_lines,
        }
    } else {
        PrefetchMode::NextPointer
    }
}
