//! Shared workload infrastructure: deterministic RNG, the generic list
//! library, and heap-scatter helpers.

pub mod listlib;
pub mod rng;

pub use listlib::{scatter_pad, scatter_pad_if, ListLib, PrefetchMode};
pub use rng::Rng;

use crate::registry::{RunConfig, Variant};
use memfwd::{BatchOut, RefBatch};
use std::cell::RefCell;

thread_local! {
    /// Reusable reference-batch scratch shared by every emission site on
    /// this thread, so the batched hot loops allocate nothing in steady
    /// state (the `BatchOut` arena grows once and is reused forever).
    static BATCH_SCRATCH: RefCell<(RefBatch, BatchOut)> =
        RefCell::new((RefBatch::new(), BatchOut::new()));
}

/// Runs `f` with the thread's cleared reference batch and its reusable
/// results arena. Re-entrant calls (an emission site nested inside
/// another's closure) fall back to a fresh local scratch.
pub fn with_batch<R>(f: impl FnOnce(&mut RefBatch, &mut BatchOut) -> R) -> R {
    BATCH_SCRATCH.with(|s| match s.try_borrow_mut() {
        Ok(mut guard) => {
            let (batch, out) = &mut *guard;
            batch.clear();
            f(batch, out)
        }
        Err(_) => f(&mut RefBatch::new(), &mut BatchOut::new()),
    })
}

/// The prefetch policy for list traversals implied by a run configuration:
/// the paper's `NP` case prefetches one node ahead through the next
/// pointer (all that pointer chasing allows), while `LP` exploits the
/// linearized layout with block prefetching.
pub fn prefetch_mode(cfg: &RunConfig) -> PrefetchMode {
    if !cfg.prefetch {
        PrefetchMode::None
    } else if cfg.variant == Variant::Optimized {
        PrefetchMode::Linear {
            lines: cfg.prefetch_lines,
        }
    } else {
        PrefetchMode::NextPointer
    }
}
