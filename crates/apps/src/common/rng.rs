//! Deterministic pseudo-random numbers for workload generation.
//!
//! The applications must be bit-identical across variants (original vs
//! optimized layouts) so that checksums prove relocation safety; a small
//! self-contained xorshift64* keeps the crate dependency-free and the
//! streams reproducible.

/// A seeded xorshift64* generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator; a zero seed is remapped to a fixed constant.
    pub fn new(seed: u64) -> Rng {
        Rng(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    /// The raw generator state, for checkpointing. Restore with
    /// [`Rng::from_state`] to continue the identical stream.
    pub fn state(&self) -> u64 {
        self.0
    }

    /// Rebuilds a generator from a [`Rng::state`] word *without* the zero
    /// remapping of [`Rng::new`] (a live generator's state is never zero).
    pub fn from_state(state: u64) -> Rng {
        Rng(state)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }

    /// Returns `true` with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(Rng::new(1).next_u64(), Rng::new(2).next_u64());
    }

    #[test]
    fn zero_seed_is_valid() {
        let mut r = Rng::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn below_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut r = Rng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(1, 4)).count();
        assert!((2000..3000).contains(&hits), "{hits} hits of ~2500");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
