//! Barnes–Hut N-body (`BH`, paper §5.3 and Fig. 9).
//!
//! Each time step builds an octree over the bodies depth-first, then
//! computes forces by walking the tree in a data-dependent order. The
//! paper's optimization is *subtree clustering* of the non-leaf nodes
//! (leaves are linked in their own list and are not clustered). A non-leaf
//! node is 80 bytes here (78 in the paper), so meaningful packing needs
//! long cache lines — the clustering still helps at shorter lines by
//! allocating clusters consecutively in traversal order.

use crate::ckpt::{bad_cursor, push_addr_vec, Checkpointer, CkOutcome, CursorR};
use crate::common::{prefetch_mode, scatter_pad, PrefetchMode, Rng};
use crate::registry::{AppOutput, RunConfig, Scale, Variant};
use memfwd::{subtree_cluster, Machine, MachineFault, Token, TreeDesc};
use memfwd_tagmem::Addr;

/// Internal node: `[tag=1, mass, child0..child7]` = 10 words (80 B).
const INTERNAL_WORDS: u64 = 10;
const CHILD0: u64 = 2;
/// Body (leaf): `[tag=0, mass, pos, next_body]` = 4 words.
const BODY_WORDS: u64 = 4;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Number of bodies.
    pub bodies: u64,
    /// Time steps (tree rebuilt each step, as in the original program).
    pub steps: u64,
    /// Force-calculation passes per built tree (the force phase dominates
    /// the original program; this sets its weight relative to tree
    /// construction and clustering).
    pub force_passes: u64,
}

impl Params {
    /// Parameters for a workload scale.
    pub fn for_scale(scale: Scale) -> Params {
        match scale {
            Scale::Smoke => Params {
                bodies: 64,
                steps: 2,
                force_passes: 2,
            },
            Scale::Bench => Params {
                bodies: 6000,
                steps: 1,
                force_passes: 12,
            },
        }
    }
}

fn tree_desc() -> TreeDesc {
    TreeDesc {
        node_words: INTERNAL_WORDS,
        child_words: (CHILD0..CHILD0 + 8).collect(),
    }
}

/// Runs `bh`.
pub fn run(cfg: &RunConfig) -> AppOutput {
    crate::registry::unwrap_uncheckpointed(run_ck(cfg, &mut Checkpointer::disabled()))
}

/// Runs `bh` under a checkpoint policy; see [`crate::registry::run_ck`].
///
/// The octree is rebuilt from the bodies at the top of every step, so the
/// checkpoint cursor never needs to capture tree topology — only the body
/// handles survive a step boundary.
///
/// # Errors
///
/// Any [`MachineFault`] the run raises, including a rejected resume image.
pub fn run_ck(cfg: &RunConfig, ck: &mut Checkpointer) -> Result<CkOutcome, MachineFault> {
    let p = Params::for_scale(cfg.scale);
    let optimized = cfg.variant == Variant::Optimized;
    let mode = prefetch_mode(cfg);
    let desc = tree_desc();

    let (mut m, cursor) = ck.begin(cfg)?;
    let (step0, mut checksum, mut rng, body_head, bodies, mut pool) = if cursor.is_empty() {
        let pool = m.new_pool();
        let mut rng = Rng::new(cfg.seed ^ 0x6268);
        // ---- Create the bodies (linked in a list, never relocated).
        let mut bodies: Vec<Addr> = Vec::with_capacity(p.bodies as usize);
        let body_head = m.malloc(8);
        m.store_ptr(body_head, Addr::NULL);
        for id in 0..p.bodies {
            scatter_pad(&mut m, &mut rng);
            let b = m.malloc(BODY_WORDS * 8);
            m.store_word(b, 0); // leaf tag
            m.store_word(b.add_words(1), id % 7 + 1); // mass
            m.store_word(b.add_words(2), rng.next_u64()); // position key
            let first = m.load_ptr(body_head);
            m.store_ptr(b.add_words(3), first);
            m.store_ptr(body_head, b);
            bodies.push(b);
        }
        (0u64, 0u64, rng, body_head, bodies, pool)
    } else {
        let mut c = CursorR::new(&cursor);
        let step0 = c.u64()?;
        let checksum = c.u64()?;
        let rng = c.rng()?;
        let body_head = c.addr()?;
        let bodies = c.addr_vec()?;
        let pool = c.pool()?;
        c.finish()?;
        if bodies.len() as u64 != p.bodies || step0 > p.steps {
            return Err(bad_cursor());
        }
        (step0, checksum, rng, body_head, bodies, pool)
    };

    for step in step0..p.steps {
        if ck.boundary(&m, || {
            let mut w = vec![step, checksum, rng.state(), body_head.0];
            push_addr_vec(&mut w, &bodies);
            pool.encode_words(&mut w);
            w
        })? {
            return Ok(CkOutcome::Stopped);
        }
        // ---- Build the octree depth-first over current positions.
        let mut root = Addr::NULL;
        for &b in &bodies {
            let pos = m.load_word(b.add_words(2));
            root = insert(&mut m, root, b, pos, 0, &mut rng);
        }

        // ---- Optimized: subtree-cluster the internal nodes.
        if optimized {
            let cap = desc.nodes_per_line(m.line_bytes());
            root = subtree_cluster(&mut m, root, &desc, cap, &mut pool, &mut |m, a| {
                m.load_word(a) == 1
            });
        }

        // ---- Force calculation: tree walks per body.
        for pass in 0..p.force_passes {
            for &b in &bodies {
                let pos = m.load_word(b.add_words(2));
                let (f, _) = force(
                    &mut m,
                    root,
                    pos.wrapping_add(pass),
                    0,
                    Token::ready(),
                    mode,
                );
                checksum = checksum.wrapping_add(f).rotate_left(1);
            }
        }
        // Nudge positions for the next step.
        for &b in &bodies {
            let pos = m.load_word(b.add_words(2));
            let np = pos.wrapping_mul(0x9E37_79B9).wrapping_add(step + 1);
            m.store_word(b.add_words(2), np);
            m.compute(4);
        }
        // ---- Body-list sweep (leaves are accessed via their list).
        let (mut node, mut tok) = m.load_ptr_dep(body_head, Token::ready());
        while !node.is_null() {
            let (mass, t1) = m.load_word_dep(node.add_words(1), tok);
            checksum = checksum.wrapping_add(mass);
            let (n, t2) = m.load_ptr_dep(node.add_words(3), t1);
            node = n;
            tok = t2;
        }
    }

    Ok(CkOutcome::Done(AppOutput {
        checksum,
        stats: m.finish(),
    }))
}

/// Inserts body `b` into the subtree `node` (depth-first construction).
fn insert(m: &mut Machine, node: Addr, b: Addr, pos: u64, depth: u32, rng: &mut Rng) -> Addr {
    if node.is_null() {
        return b;
    }
    let tag = m.load_word(node);
    if tag == 1 {
        // Internal: update mass, descend into the child slot for `pos`.
        let mass = m.load_word(node.add_words(1));
        let bmass = m.load_word(b.add_words(1));
        m.store_word(node.add_words(1), mass + bmass);
        let idx = child_index(pos, depth);
        let slot = node.add_words(CHILD0 + idx);
        let child = m.load_ptr(slot);
        let nc = insert(m, child, b, pos, depth + 1, rng);
        m.store_ptr(slot, nc);
        node
    } else {
        // Leaf collision: split into a new internal node.
        scatter_pad(m, rng);
        let cell = m.malloc(INTERNAL_WORDS * 8);
        m.store_word(cell, 1);
        m.store_word(cell.add_words(1), 0);
        for c in 0..8 {
            m.store_ptr(cell.add_words(CHILD0 + c), Addr::NULL);
        }
        let opos = m.load_word(node.add_words(2));
        let omass = m.load_word(node.add_words(1));
        m.store_word(cell.add_words(1), omass);
        let oidx = child_index(opos, depth);
        m.store_ptr(cell.add_words(CHILD0 + oidx), node);
        insert(m, cell, b, pos, depth, rng)
    }
}

#[inline]
fn child_index(pos: u64, depth: u32) -> u64 {
    (pos >> (3 * (depth as u64 % 21))) & 7
}

/// Barnes–Hut force walk: descend while the cell is "near", otherwise use
/// its aggregate mass.
fn force(
    m: &mut Machine,
    node: Addr,
    pos: u64,
    depth: u32,
    tok: Token,
    mode: PrefetchMode,
) -> (u64, Token) {
    if node.is_null() {
        return (0, tok);
    }
    let (tag, t0) = m.load_word_dep(node, tok);
    let (mass, t1) = m.load_word_dep(node.add_words(1), t0);
    m.compute(3); // distance estimate
    if tag == 0 {
        return (mass.wrapping_mul(5), t1);
    }
    // Opening criterion: deterministic in (mass, pos, depth).
    let open = depth < 2 || (mass ^ (pos >> depth)).is_multiple_of(3);
    if !open {
        return (mass.wrapping_mul(depth as u64 + 2), t1);
    }
    match mode {
        PrefetchMode::Linear { lines } => {
            // Clustered layout: the children likely follow in memory.
            m.prefetch(node + m.line_bytes(), lines.min(4));
        }
        PrefetchMode::NextPointer => {
            // Prefetch the on-path child as soon as its address is known.
            let idx = child_index(pos, depth);
            let (c, t) = m.load_ptr_dep(node.add_words(CHILD0 + idx), t1);
            if !c.is_null() {
                m.prefetch_dep(c, 1, t);
            }
        }
        PrefetchMode::None => {}
    }
    // Visit the on-path child plus one deterministic sibling.
    let idx = child_index(pos, depth);
    let sib = (idx + 1 + (pos >> 7) % 7) % 8;
    let mut total = mass % 16;
    let mut t = t1;
    for ci in [idx, sib] {
        let (child, tc) = m.load_ptr_dep(node.add_words(CHILD0 + ci), t);
        let (f, tf) = force(m, child, pos, depth + 1, tc, mode);
        total = total.wrapping_add(f);
        t = tf;
        if ci == sib && idx == sib {
            break;
        }
    }
    (total, t)
}

#[cfg(test)]
mod tests {
    use crate::registry::{run_ok as run, App, RunConfig, Variant};

    #[test]
    fn checksums_match_across_variants() {
        let orig = run(App::Bh, &RunConfig::new(Variant::Original).smoke());
        let opt = run(App::Bh, &RunConfig::new(Variant::Optimized).smoke());
        assert_eq!(orig.checksum, opt.checksum);
        assert!(opt.stats.fwd.relocations > 0, "clustering relocated nodes");
    }

    #[test]
    fn prefetch_preserves_results() {
        let orig = run(App::Bh, &RunConfig::new(Variant::Original).smoke());
        let np = run(
            App::Bh,
            &RunConfig::new(Variant::Original).smoke().with_prefetch(1),
        );
        let lp = run(
            App::Bh,
            &RunConfig::new(Variant::Optimized).smoke().with_prefetch(1),
        );
        assert_eq!(orig.checksum, np.checksum);
        assert_eq!(orig.checksum, lp.checksum);
    }

    #[test]
    fn checksum_stable_across_machine_parameters() {
        // Timing knobs must never leak into functional results.
        let base = run(App::Bh, &RunConfig::new(Variant::Optimized).smoke());
        let mut cfg = RunConfig::new(Variant::Optimized).smoke();
        cfg.sim = cfg.sim.with_line_bytes(256);
        cfg.sim.hierarchy.mem_latency = 10;
        cfg.sim.pipeline.rob_entries = 8;
        let other = run(App::Bh, &cfg);
        assert_eq!(base.checksum, other.checksum);
    }

    #[test]
    fn leaves_never_relocated() {
        let opt = run(App::Bh, &RunConfig::new(Variant::Optimized).smoke());
        // Clustering touches only 10-word internal nodes: relocated word
        // count must be a multiple of 10.
        assert_eq!(opt.stats.fwd.relocated_words % 10, 0);
    }
}
