//! Olden `health`: a hierarchical health-care simulation (paper §5.3).
//!
//! A 4-ary tree of villages, each with a linked list of patients and a
//! waiting list. Every time step treats the patients of each village,
//! transfers some of them to the parent village's waiting list, admits the
//! waiting patients, and admits new arrivals at the leaves. The lists
//! mutate continuously, so the optimized variant invokes list
//! linearization periodically (via the mutation-counter threshold), which
//! is exactly the optimization the paper applies.

use crate::ckpt::{bad_cursor, Checkpointer, CkOutcome, CursorR};
use crate::common::{prefetch_mode, scatter_pad_if, with_batch, ListLib, PrefetchMode, Rng};
use crate::registry::{AppOutput, RunConfig, Scale, Variant};
use memfwd::{BatchDep, Machine, MachineFault};
use memfwd_tagmem::Addr;

/// Patient node: `[next, id, time_in_system, severity]`.
const NODE_WORDS: u64 = 4;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Tree depth (villages = (4^(depth+1) - 1) / 3).
    pub depth: u32,
    /// Initial patients per village.
    pub init_patients: u64,
    /// Simulation steps.
    pub steps: u64,
    /// Linearization trigger threshold (mutations per list).
    pub threshold: u64,
}

impl Params {
    /// Parameters for a workload scale.
    pub fn for_scale(scale: Scale) -> Params {
        match scale {
            Scale::Smoke => Params {
                depth: 2,
                init_patients: 4,
                steps: 3,
                threshold: 6,
            },
            Scale::Bench => Params {
                depth: 4,
                init_patients: 44,
                steps: 10,
                threshold: 100,
            },
        }
    }
}

struct Village {
    list: Addr,
    waiting: Addr,
    parent: Option<usize>,
    is_leaf: bool,
}

/// Serializes the village table into cursor words (4 per village; the
/// parent index is stored +1 with 0 meaning "root").
fn encode_villages(out: &mut Vec<u64>, villages: &[Village]) {
    out.push(villages.len() as u64);
    for v in villages {
        out.push(v.list.0);
        out.push(v.waiting.0);
        out.push(v.parent.map_or(0, |p| p as u64 + 1));
        out.push(u64::from(v.is_leaf));
    }
}

fn decode_villages(c: &mut CursorR<'_>) -> Result<Vec<Village>, MachineFault> {
    let n = c.u64()? as usize;
    let mut villages = Vec::new();
    for _ in 0..n {
        let list = c.addr()?;
        let waiting = c.addr()?;
        let parent = match c.u64()? {
            0 => None,
            p if (p as usize) <= n => Some(p as usize - 1),
            _ => return Err(bad_cursor()),
        };
        let is_leaf = match c.u64()? {
            0 => false,
            1 => true,
            _ => return Err(bad_cursor()),
        };
        villages.push(Village {
            list,
            waiting,
            parent,
            is_leaf,
        });
    }
    Ok(villages)
}

/// Runs `health`.
pub fn run(cfg: &RunConfig) -> AppOutput {
    crate::registry::unwrap_uncheckpointed(run_ck(cfg, &mut Checkpointer::disabled()))
}

/// Runs `health` under a checkpoint policy; see [`crate::registry::run_ck`].
///
/// # Errors
///
/// Any [`MachineFault`] the run raises, including a rejected resume image.
#[allow(clippy::needless_range_loop)] // loops index `villages` while `m` is borrowed mutably
pub fn run_ck(cfg: &RunConfig, ck: &mut Checkpointer) -> Result<CkOutcome, MachineFault> {
    let p = Params::for_scale(cfg.scale);
    let threshold = match cfg.variant {
        Variant::Optimized => Some(cfg.linearize_threshold.unwrap_or(p.threshold)),
        _ => None,
    };
    let scatter = cfg.variant != Variant::Static;
    let lib = ListLib::new(NODE_WORDS, threshold);
    let mode = prefetch_mode(cfg);

    let (mut m, cursor) = ck.begin(cfg)?;
    let (step0, mut next_id, mut checksum, mut rng, villages, mut pool) = if cursor.is_empty() {
        let mut pool = m.new_pool();
        let mut rng = Rng::new(cfg.seed);
        // ---- Build the village tree (breadth-first), scattered patients.
        let mut built: Vec<Village> = Vec::new();
        let new_village = |m: &mut Machine, parent: Option<usize>, is_leaf: bool| Village {
            list: lib.new_list(m),
            waiting: lib.new_list(m),
            parent,
            is_leaf,
        };
        built.push(new_village(&mut m, None, p.depth == 0));
        let mut frontier = vec![0usize];
        for d in 1..=p.depth {
            let mut next = Vec::new();
            for &parent in &frontier {
                for _ in 0..4 {
                    built.push(new_village(&mut m, Some(parent), d == p.depth));
                    next.push(built.len() - 1);
                }
            }
            frontier = next;
        }
        let mut next_id = 0u64;
        for vi in 0..built.len() {
            for _ in 0..p.init_patients {
                scatter_pad_if(&mut m, &mut rng, scatter);
                let sev = rng.below(4) + 1;
                lib.push_front(&mut m, built[vi].list, &[next_id, 0, sev], &mut pool);
                next_id += 1;
            }
        }
        (0u64, next_id, 0u64, rng, built, pool)
    } else {
        let mut c = CursorR::new(&cursor);
        let step0 = c.u64()?;
        let next_id = c.u64()?;
        let checksum = c.u64()?;
        let rng = c.rng()?;
        let villages = decode_villages(&mut c)?;
        let pool = c.pool()?;
        c.finish()?;
        if villages.is_empty() || step0 > p.steps {
            return Err(bad_cursor());
        }
        (step0, next_id, checksum, rng, villages, pool)
    };
    let save_cursor = |step: u64,
                       next_id: u64,
                       checksum: u64,
                       rng: &Rng,
                       villages: &[Village],
                       pool: &memfwd_tagmem::Pool| {
        let mut w = vec![step, next_id, checksum, rng.state()];
        encode_villages(&mut w, villages);
        pool.encode_words(&mut w);
        w
    };

    // ---- Simulate.
    for step in step0..p.steps {
        if ck.boundary(&m, || {
            save_cursor(step, next_id, checksum, &rng, &villages, &pool)
        })? {
            return Ok(CkOutcome::Stopped);
        }
        // Assessment pass: every village checks its patients (read-only),
        // as the original program's `check_patients_*` routines do. The
        // per-village traversals are independent, so the pass fans out as
        // one epoch of tasks (serial when `epoch_threads` is 0); folding
        // the partial sums in village order keeps the checksum identical.
        let accs = m.run_tasks(villages.len(), |vi, d| {
            let mut acc = 0u64;
            lib.traverse(d, villages[vi].list, mode, |d, node, tok| {
                let (id, sev, t2) = with_batch(|b, out| {
                    b.set_span(node.add_words(1), 3);
                    b.push_load(node.add_words(1), 8, BatchDep::External(tok));
                    b.push_load(node.add_words(3), 8, BatchDep::Prev(0));
                    d.run_batch(b, out);
                    (out.val(0), out.val(1), out.tok(1))
                });
                d.compute(2);
                acc = acc.wrapping_add(id ^ sev);
                t2
            });
            acc
        });
        for acc in accs {
            checksum = checksum.wrapping_add(acc);
        }
        // Treat patients; decide transfers to the parent's waiting list.
        // Each village's treatment touches only its own list, so the
        // traversals form one epoch of tasks. The RNG draws that pick the
        // actual movers stay on the host, consumed in village × patient
        // order — the exact stream the serial pass would draw — and the
        // list surgery runs serially afterwards, in the same per-village
        // order (traversals allocate nothing, so the heap-op sequence and
        // hence every address is unchanged).
        let candidates = m.run_tasks(villages.len(), |vi, d| {
            let has_parent = villages[vi].parent.is_some();
            let mut cands: Vec<(u64, u64, u64, u64)> = Vec::new(); // (idx, id, time, sev)
            let mut idx = 0u64;
            lib.traverse(d, villages[vi].list, mode, |d, node, tok| {
                let (id, time, sev, t3) = with_batch(|b, out| {
                    b.set_span(node.add_words(1), 3);
                    b.push_load(node.add_words(1), 8, BatchDep::External(tok));
                    b.push_load(node.add_words(2), 8, BatchDep::Prev(0));
                    b.push_load(node.add_words(3), 8, BatchDep::Prev(1));
                    d.run_batch(b, out);
                    (out.val(0), out.val(1), out.val(2), out.tok(2))
                });
                // The stored value depends on `time`, loaded in the same
                // window — values are fixed at batch build, so the store
                // stays scalar after the batch (same order, same cycles).
                let t4 = d.store_dep(node.add_words(2), 8, time + 1, t3);
                d.compute(4); // diagnosis arithmetic
                if has_parent {
                    cands.push((idx, id, time + 1, sev));
                }
                idx += 1;
                t4
            });
            cands
        });
        for vi in 0..villages.len() {
            let mut movers: Vec<(u64, u64, u64, u64)> = Vec::new();
            for &(i, id, time, sev) in &candidates[vi] {
                if rng.chance(sev, 12) {
                    movers.push((i, id, time, sev));
                }
            }
            for &(i, id, time, sev) in movers.iter().rev() {
                lib.delete_nth(&mut m, villages[vi].list, i, &mut pool);
                let parent = villages[vi].parent.expect("movers require a parent");
                lib.push_front(
                    &mut m,
                    villages[parent].waiting,
                    &[id, time, sev],
                    &mut pool,
                );
            }
        }
        // Admit waiting patients.
        for vi in 0..villages.len() {
            let w = villages[vi].waiting;
            loop {
                let mut first: Option<(u64, u64, u64)> = None;
                lib.traverse(&mut m, w, PrefetchMode::None, |m, node, tok| {
                    if first.is_none() {
                        return with_batch(|b, out| {
                            b.set_span(node.add_words(1), 3);
                            b.push_load(node.add_words(1), 8, BatchDep::External(tok));
                            b.push_load(node.add_words(2), 8, BatchDep::Prev(0));
                            b.push_load(node.add_words(3), 8, BatchDep::Prev(1));
                            m.run_batch(b, out);
                            first = Some((out.val(0), out.val(1), out.val(2)));
                            out.tok(2)
                        });
                    }
                    tok
                });
                let Some((id, time, sev)) = first else { break };
                lib.delete_nth(&mut m, w, 0, &mut pool);
                lib.push_front(&mut m, villages[vi].list, &[id, time, sev], &mut pool);
            }
        }
        // New arrivals at the leaves.
        for vi in 0..villages.len() {
            if villages[vi].is_leaf && rng.chance(2, 3) {
                scatter_pad_if(&mut m, &mut rng, scatter);
                let sev = rng.below(4) + 1;
                lib.push_front(&mut m, villages[vi].list, &[next_id, 0, sev], &mut pool);
                next_id += 1;
            }
        }
    }

    // ---- Final accounting traversal (its own boundary: a resume can
    // land after the last simulation step).
    if ck.boundary(&m, || {
        save_cursor(p.steps, next_id, checksum, &rng, &villages, &pool)
    })? {
        return Ok(CkOutcome::Stopped);
    }
    // Read-only like the assessment pass, so it fans out the same way;
    // the position-weighted fold stays on the host, in village order.
    let locals = m.run_tasks(villages.len(), |vi, d| {
        let mut local = 0u64;
        lib.traverse(d, villages[vi].list, mode, |d, node, tok| {
            let (id, time, t2) = with_batch(|b, out| {
                b.set_span(node.add_words(1), 2);
                b.push_load(node.add_words(1), 8, BatchDep::External(tok));
                b.push_load(node.add_words(2), 8, BatchDep::Prev(0));
                d.run_batch(b, out);
                (out.val(0), out.val(1), out.tok(1))
            });
            local = local
                .wrapping_add(id.wrapping_mul(31).wrapping_add(time))
                .rotate_left(1);
            t2
        });
        local
    });
    for (vi, local) in locals.into_iter().enumerate() {
        checksum = checksum.wrapping_add(local.wrapping_mul(vi as u64 + 1));
    }

    Ok(CkOutcome::Done(AppOutput {
        checksum,
        stats: m.finish(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{run_ok as run, App, RunConfig, Variant};

    #[test]
    fn checksums_match_across_variants() {
        let orig = run(App::Health, &RunConfig::new(Variant::Original).smoke());
        let opt = run(App::Health, &RunConfig::new(Variant::Optimized).smoke());
        assert_eq!(orig.checksum, opt.checksum, "relocation must be safe");
        assert!(opt.stats.fwd.relocations > 0, "optimization actually ran");
    }

    #[test]
    fn prefetch_variants_same_checksum() {
        let base = run(App::Health, &RunConfig::new(Variant::Original).smoke());
        let np = run(
            App::Health,
            &RunConfig::new(Variant::Original).smoke().with_prefetch(2),
        );
        let lp = run(
            App::Health,
            &RunConfig::new(Variant::Optimized).smoke().with_prefetch(2),
        );
        assert_eq!(base.checksum, np.checksum);
        assert_eq!(base.checksum, lp.checksum);
        assert!(np.stats.fwd.prefetches > 0);
        assert!(lp.stats.fwd.prefetches > 0);
    }

    #[test]
    fn optimized_rarely_forwards() {
        // The linearization updates all traversal pointers, so forwarding
        // is a safety net that is almost never taken.
        let opt = run(App::Health, &RunConfig::new(Variant::Optimized).smoke());
        let frac = opt.stats.fwd.forwarded_load_fraction();
        assert!(frac < 0.01, "forwarded fraction {frac} should be ~0");
    }

    #[test]
    fn patients_are_conserved() {
        // Transfers move patients between villages; the total presented in
        // the final accounting must match arrivals (no patient lost by a
        // delete/insert bug). Conservation is what made the original Olden
        // benchmark's checksums meaningful.
        let orig = run(App::Health, &RunConfig::new(Variant::Original).smoke());
        let opt = run(App::Health, &RunConfig::new(Variant::Optimized).smoke());
        // Identical checksums imply identical final populations; also make
        // sure the workload actually moved patients around.
        assert_eq!(orig.checksum, opt.checksum);
        assert!(orig.stats.fwd.frees > 0, "transfers delete list nodes");
    }

    #[test]
    fn params_scale() {
        let s = Params::for_scale(Scale::Smoke);
        let b = Params::for_scale(Scale::Bench);
        assert!(b.depth > s.depth && b.steps > s.steps);
    }
}
