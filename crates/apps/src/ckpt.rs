//! App-cooperative crash-safe checkpointing.
//!
//! The applications drive the simulator through host-side loops whose
//! state (indices, accumulators, the workload RNG, handle tables, the
//! relocation pool) lives outside simulated memory. A machine snapshot
//! alone therefore cannot resume a run: the host loop must cooperate. It
//! does so by calling `Checkpointer::boundary` at the top of each outer
//! iteration with a closure that serializes the *complete* host state into
//! an opaque cursor of `u64` words; the checkpointer decides — based on
//! how many demand references the machine has issued since the last
//! snapshot — whether to capture `(machine, cursor)` into one
//! [`memfwd::save_machine`] image.
//!
//! Because a boundary only *reads* the machine, a checkpointed run issues
//! exactly the same simulated references as an unmonitored one: resuming
//! from any boundary reproduces the uninterrupted run's checksum **and**
//! its full `RunStats`, bit for bit. That equivalence is enforced by
//! `tests/crash_restart.rs` across every application.
//!
//! Corrupt resume images — truncated, bit-flipped, version-skewed, or
//! written under a different configuration — are rejected with
//! [`memfwd::MachineFault::CorruptSnapshot`]; a malformed cursor (host
//! words that fail validation) reports the same fault with
//! [`SnapshotError::BadValue`].

use crate::common::Rng;
use crate::registry::{AppOutput, RunConfig};
use memfwd::{Machine, MachineFault, SnapshotError};
use memfwd_tagmem::{Addr, Pool};
use std::path::PathBuf;

/// Default checkpoint cadence in demand references, used when neither the
/// checkpointer nor `SimConfig::checkpoint_every` specifies one.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 1 << 14;

/// How a checkpointed run ended.
// `Done` carries the full stats block; keeping the enum `Copy` matters more
// to callers than the transient stack size of a value matched once.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Copy)]
pub enum CkOutcome {
    /// The application ran to completion.
    Done(AppOutput),
    /// A `stop_after` checkpointer reached its target boundary; the
    /// snapshot is available via [`Checkpointer::take_captured`].
    Stopped,
}

enum Mode {
    Disabled,
    StopAfter { k: u64 },
    File { path: PathBuf },
}

/// Checkpoint policy and state for one [`crate::registry::run_ck`] call.
pub struct Checkpointer {
    mode: Mode,
    every: Option<u64>,
    cadence: u64,
    resume: Option<Vec<u8>>,
    captured: Option<Vec<u8>>,
    refs_at_last: u64,
    boundaries: u64,
    run_fp: u64,
}

/// Fingerprint of the run parameters that live *outside* `SimConfig`
/// (variant, prefetching, scale, seed, threshold override). The snapshot
/// container already fingerprints the complete `SimConfig`; this word,
/// stored as the first cursor entry, extends the same guarantee to the
/// workload parameters, so resuming under a different variant or seed is
/// a typed `ConfigMismatch` instead of a silently hybrid run.
fn run_fingerprint(cfg: &RunConfig) -> u64 {
    let repr = format!(
        "{:?}|{}|{}|{:?}|{}|{:?}",
        cfg.variant, cfg.prefetch, cfg.prefetch_lines, cfg.scale, cfg.seed, cfg.linearize_threshold
    );
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in repr.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Checkpointer {
    fn with_mode(mode: Mode) -> Checkpointer {
        Checkpointer {
            mode,
            every: None,
            cadence: DEFAULT_CHECKPOINT_EVERY,
            resume: None,
            captured: None,
            refs_at_last: 0,
            boundaries: 0,
            run_fp: 0,
        }
    }

    /// Never checkpoints (the plain `run` path).
    pub fn disabled() -> Checkpointer {
        Checkpointer::with_mode(Mode::Disabled)
    }

    /// Captures the snapshot at the `k`-th boundary that fires (1-based)
    /// and stops the run — the deterministic "crash" of the restart
    /// campaigns.
    pub fn stop_after(k: u64) -> Checkpointer {
        Checkpointer::with_mode(Mode::StopAfter { k })
    }

    /// Writes every fired boundary's snapshot to `path` (atomically, via a
    /// temp file and rename) and keeps running — the CLI's
    /// `--checkpoint-dir` mode.
    pub fn to_file(path: PathBuf) -> Checkpointer {
        Checkpointer::with_mode(Mode::File { path })
    }

    /// Overrides the checkpoint cadence in demand references. Without
    /// this, `SimConfig::checkpoint_every` applies, then
    /// [`DEFAULT_CHECKPOINT_EVERY`].
    pub fn with_every(mut self, refs: u64) -> Checkpointer {
        self.every = Some(refs.max(1));
        self
    }

    /// Resumes the run from a snapshot image instead of starting fresh.
    pub fn resume_from(mut self, image: Vec<u8>) -> Checkpointer {
        self.resume = Some(image);
        self
    }

    /// The snapshot captured by a `stop_after` checkpointer, if any.
    pub fn take_captured(&mut self) -> Option<Vec<u8>> {
        self.captured.take()
    }

    /// How many checkpoint boundaries fired so far.
    pub fn boundaries_seen(&self) -> u64 {
        self.boundaries
    }

    /// Builds the machine an application starts from: a fresh one, or the
    /// restored image with its host cursor. Resolves the cadence and
    /// rebases the reference clock so a resumed run does not immediately
    /// re-checkpoint.
    pub(crate) fn begin(&mut self, cfg: &RunConfig) -> Result<(Machine, Vec<u64>), MachineFault> {
        self.cadence = self
            .every
            .or(cfg.sim.checkpoint_every)
            .unwrap_or(DEFAULT_CHECKPOINT_EVERY)
            .max(1);
        self.run_fp = run_fingerprint(cfg);
        match self.resume.take() {
            Some(image) => {
                let (m, mut cursor) = memfwd::restore_machine(&image, cfg.sim)
                    .map_err(|error| MachineFault::CorruptSnapshot { error })?;
                // The first cursor word is the run-parameter fingerprint
                // written at capture time; a snapshot from a different
                // variant/seed/scale must not be continued.
                if cursor.first() != Some(&self.run_fp) {
                    return Err(MachineFault::CorruptSnapshot {
                        error: SnapshotError::ConfigMismatch,
                    });
                }
                cursor.remove(0);
                self.refs_at_last = refs_of(&m);
                Ok((m, cursor))
            }
            None => {
                self.refs_at_last = 0;
                Ok((Machine::new(cfg.sim), Vec::new()))
            }
        }
    }

    /// A checkpoint boundary: all host state is reconstructible from
    /// `cursor()`'s words. Returns `Ok(true)` when the application must
    /// stop (a `stop_after` crash point was reached).
    pub(crate) fn boundary(
        &mut self,
        m: &Machine,
        cursor: impl FnOnce() -> Vec<u64>,
    ) -> Result<bool, MachineFault> {
        if matches!(self.mode, Mode::Disabled) {
            return Ok(false);
        }
        let refs = refs_of(m);
        if refs.saturating_sub(self.refs_at_last) < self.cadence {
            return Ok(false);
        }
        self.refs_at_last = refs;
        self.boundaries += 1;
        match &self.mode {
            Mode::StopAfter { k } => {
                if self.boundaries >= *k {
                    self.captured = Some(memfwd::save_machine(m, &self.stamped(cursor())));
                    return Ok(true);
                }
            }
            Mode::File { path } => {
                let image = memfwd::save_machine(m, &self.stamped(cursor()));
                memfwd::write_snapshot_file(path, &image)
                    .map_err(|error| MachineFault::CorruptSnapshot { error })?;
            }
            Mode::Disabled => {}
        }
        Ok(false)
    }

    /// Prepends the run-parameter fingerprint to an application cursor.
    fn stamped(&self, cursor: Vec<u64>) -> Vec<u64> {
        let mut words = Vec::with_capacity(cursor.len() + 1);
        words.push(self.run_fp);
        words.extend(cursor);
        words
    }
}

fn refs_of(m: &Machine) -> u64 {
    let s = m.fwd_stats();
    s.loads + s.stores
}

/// The typed fault for a cursor that fails validation on resume.
pub(crate) fn bad_cursor() -> MachineFault {
    MachineFault::CorruptSnapshot {
        error: SnapshotError::BadValue,
    }
}

/// Appends a length-prefixed address vector to a cursor.
pub(crate) fn push_addr_vec(out: &mut Vec<u64>, addrs: &[Addr]) {
    out.push(addrs.len() as u64);
    out.extend(addrs.iter().map(|a| a.0));
}

/// Total reader over a cursor's words; every getter fails with
/// [`bad_cursor`] instead of panicking on malformed input.
pub(crate) struct CursorR<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> CursorR<'a> {
    pub(crate) fn new(words: &'a [u64]) -> CursorR<'a> {
        CursorR { words, pos: 0 }
    }

    pub(crate) fn u64(&mut self) -> Result<u64, MachineFault> {
        let w = *self.words.get(self.pos).ok_or_else(bad_cursor)?;
        self.pos += 1;
        Ok(w)
    }

    pub(crate) fn addr(&mut self) -> Result<Addr, MachineFault> {
        Ok(Addr(self.u64()?))
    }

    pub(crate) fn rng(&mut self) -> Result<Rng, MachineFault> {
        Ok(Rng::from_state(self.u64()?))
    }

    pub(crate) fn addr_vec(&mut self) -> Result<Vec<Addr>, MachineFault> {
        let n = self.u64()? as usize;
        if n > self.words.len() - self.pos {
            return Err(bad_cursor());
        }
        (0..n).map(|_| self.addr()).collect()
    }

    pub(crate) fn pool(&mut self) -> Result<Pool, MachineFault> {
        let (pool, consumed) =
            Pool::decode_words(&self.words[self.pos..]).ok_or_else(bad_cursor)?;
        self.pos += consumed;
        Ok(pool)
    }

    /// Declares the cursor fully read; leftover words mean corruption.
    pub(crate) fn finish(self) -> Result<(), MachineFault> {
        if self.pos == self.words.len() {
            Ok(())
        } else {
            Err(bad_cursor())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_round_trip() {
        let mut w = vec![7u64, 9];
        push_addr_vec(&mut w, &[Addr(64), Addr(128)]);
        let pool = Pool::new(4096);
        pool.encode_words(&mut w);
        let mut c = CursorR::new(&w);
        assert_eq!(c.u64().unwrap(), 7);
        assert_eq!(c.u64().unwrap(), 9);
        assert_eq!(c.addr_vec().unwrap(), vec![Addr(64), Addr(128)]);
        let _ = c.pool().unwrap();
        c.finish().unwrap();
    }

    #[test]
    fn truncated_cursor_is_typed() {
        let mut c = CursorR::new(&[]);
        assert!(matches!(
            c.u64(),
            Err(MachineFault::CorruptSnapshot {
                error: SnapshotError::BadValue
            })
        ));
    }

    #[test]
    fn oversized_vector_length_is_rejected_without_allocating() {
        let w = [u64::MAX, 1];
        let mut c = CursorR::new(&w);
        assert!(c.addr_vec().is_err());
    }

    #[test]
    fn leftover_words_are_rejected() {
        let w = [1u64, 2];
        let mut c = CursorR::new(&w);
        c.u64().unwrap();
        assert!(c.finish().is_err());
    }

    #[test]
    fn rng_state_round_trip() {
        let mut r = Rng::new(42);
        let _ = r.next_u64();
        let mut twin = Rng::from_state(r.state());
        assert_eq!(r.next_u64(), twin.next_u64());
    }
}
