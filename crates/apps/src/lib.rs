//! The eight applications of the Memory Forwarding evaluation (paper
//! Table 1), reimplemented as simulator-driven kernels.
//!
//! Each application reproduces the *memory-relevant core* of the original
//! program — the data structures and traversal patterns the paper names —
//! and comes in two layout variants: [`registry::Variant::Original`]
//! (scattered heap layout, no relocation) and
//! [`registry::Variant::Optimized`] (the paper's relocation-based locality
//! optimization, made safe by memory forwarding). Identical checksums
//! across variants are the witness that relocation never broke the
//! program.
//!
//! # Example
//!
//! ```
//! use memfwd_apps::registry::{run, App, RunConfig, Variant};
//!
//! let orig = run(App::Vis, &RunConfig::new(Variant::Original).smoke()).unwrap();
//! let opt = run(App::Vis, &RunConfig::new(Variant::Optimized).smoke()).unwrap();
//! assert_eq!(orig.checksum, opt.checksum);
//! ```
//!
//! `run` returns `Err(MachineFault)` when the simulated program aborts —
//! e.g. under the fault-injection harness (`memfwd::InjectConfig`) — so
//! callers can distinguish recovery from a typed abort. Harnesses whose
//! workloads must not fault use [`registry::run_ok`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bh;
pub mod ckpt;
pub mod common;
pub mod compress;
pub mod eqntott;
pub mod health;
pub mod mst;
pub mod radiosity;
pub mod registry;
pub mod smv;
pub mod vis;

pub use ckpt::{Checkpointer, CkOutcome, DEFAULT_CHECKPOINT_EVERY};
pub use registry::{run, run_ck, run_ok, App, AppOutput, RunConfig, Scale, Variant};
