//! The application registry: one entry per evaluated program (paper
//! Table 1), with a uniform run interface used by tests, examples and the
//! benchmark harness.

use crate::ckpt::{Checkpointer, CkOutcome};
use memfwd::{MachineFault, RunStats, SimConfig};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Once;

/// The eight applications of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// Olden `health`: hierarchical health-care simulation over village
    /// patient lists.
    Health,
    /// Olden `mst`: minimum spanning tree over hash-bucket adjacency lists.
    Mst,
    /// Hierarchical radiosity: per-patch interaction lists under
    /// refinement.
    Radiosity,
    /// VIS: a generic list library with counter-triggered linearization.
    Vis,
    /// SPEC `eqntott`: hash table of PTERM records with integer arrays.
    Eqntott,
    /// Barnes–Hut N-body: octree built depth-first, traversed randomly.
    Bh,
    /// SPEC `compress`: LZW with parallel `htab`/`codetab` hash tables.
    Compress,
    /// SMV model checker: BDD nodes reached through both a hash table and
    /// tree pointers — the one application with real forwarding.
    Smv,
}

impl App {
    /// All applications, in the paper's presentation order.
    pub const ALL: [App; 8] = [
        App::Health,
        App::Mst,
        App::Radiosity,
        App::Vis,
        App::Eqntott,
        App::Bh,
        App::Compress,
        App::Smv,
    ];

    /// The seven applications of Fig. 5 (SMV is reported separately in
    /// Fig. 10).
    pub const FIG5: [App; 7] = [
        App::Health,
        App::Mst,
        App::Radiosity,
        App::Vis,
        App::Eqntott,
        App::Bh,
        App::Compress,
    ];

    /// Lower-case name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            App::Health => "health",
            App::Mst => "mst",
            App::Radiosity => "radiosity",
            App::Vis => "vis",
            App::Eqntott => "eqntott",
            App::Bh => "bh",
            App::Compress => "compress",
            App::Smv => "smv",
        }
    }

    /// Parses a lower-case application name (the inverse of [`App::name`]).
    pub fn from_name(name: &str) -> Option<App> {
        App::ALL.into_iter().find(|a| a.name() == name)
    }

    /// The locality optimization applied in the optimized variant
    /// (Table 1's "Optimization" column).
    pub fn optimization(self) -> &'static str {
        match self {
            App::Health | App::Mst | App::Radiosity | App::Vis => "list linearization",
            App::Eqntott => "hash-chunk packing",
            App::Bh => "subtree clustering",
            App::Compress => "table merging",
            App::Smv => "hash-list linearization (tree pointers not updated)",
        }
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which data layout the run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Variant {
    /// The original layout; no relocation is performed (the paper's `N`).
    #[default]
    Original,
    /// The relocation-based locality optimization is applied (the paper's
    /// `L`; with `SimConfig::perfect_forwarding` it becomes `Perf`).
    Optimized,
    /// *Static placement* (paper §1): objects are assigned their optimized
    /// addresses when they are **created** — no relocation, no forwarding.
    /// Simple, but unable to adapt to dynamic behaviour; supported by the
    /// applications whose layout can be chosen up front (health, vis,
    /// eqntott), and equivalent to `Original` elsewhere.
    Static,
}

impl Variant {
    /// Lower-case name for CLI / report use.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Original => "original",
            Variant::Optimized => "optimized",
            Variant::Static => "static",
        }
    }

    /// Parses a lower-case variant name (the inverse of [`Variant::name`]).
    pub fn from_name(name: &str) -> Option<Variant> {
        [Variant::Original, Variant::Optimized, Variant::Static]
            .into_iter()
            .find(|v| v.name() == name)
    }
}

/// Workload size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Tiny inputs for unit/integration tests (sub-second, all variants).
    Smoke,
    /// Inputs whose working sets exceed the simulated L2, used by the
    /// benchmark harness to regenerate the paper's figures.
    #[default]
    Bench,
}

/// One run request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Machine configuration.
    pub sim: SimConfig,
    /// Data-layout variant.
    pub variant: Variant,
    /// Insert software prefetches (the paper's `NP`/`LP` cases).
    pub prefetch: bool,
    /// Block-prefetch size in cache lines (the paper reports the best block
    /// size per case).
    pub prefetch_lines: u64,
    /// Workload size.
    pub scale: Scale,
    /// Workload seed (identical seeds must yield identical checksums across
    /// variants — that is the safety property).
    pub seed: u64,
    /// Overrides the app's linearization-trigger threshold (mutations per
    /// list before the optimized variant linearizes). `None` uses the
    /// application default; used by the threshold ablation.
    pub linearize_threshold: Option<u64>,
}

impl RunConfig {
    /// A default configuration for the given variant.
    pub fn new(variant: Variant) -> RunConfig {
        RunConfig {
            sim: SimConfig::default(),
            variant,
            prefetch: false,
            prefetch_lines: 2,
            scale: Scale::default(),
            seed: 12345,
            linearize_threshold: None,
        }
    }

    /// Returns a copy at smoke scale (for tests).
    pub fn smoke(mut self) -> RunConfig {
        self.scale = Scale::Smoke;
        self
    }

    /// Returns a copy with prefetching enabled.
    pub fn with_prefetch(mut self, lines: u64) -> RunConfig {
        self.prefetch = true;
        self.prefetch_lines = lines;
        self
    }
}

/// Result of one application run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppOutput {
    /// A layout-independent digest of the computation's results. Equal
    /// checksums across variants demonstrate that relocation was safe.
    pub checksum: u64,
    /// Full simulator statistics.
    pub stats: RunStats,
}

thread_local! {
    /// True while `run` is catching machine-fault unwinds on this thread;
    /// the wrapped panic hook stays silent for those.
    static CAPTURING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Wraps the process panic hook (once) so that panics raised by the
/// machine's infallible API while `run` is converting them to typed faults
/// do not spray backtraces over the output. Panics outside a capture window
/// are reported by the previous hook unchanged.
fn install_silent_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !CAPTURING.with(|c| c.get()) {
                previous(info);
            }
        }));
    });
}

/// Runs an application.
///
/// Applications execute on the machine's infallible API (a fault aborts the
/// simulated program, paper §3.2); `run` converts such aborts into the
/// precise typed [`MachineFault`] so harnesses — the CLI, the corruption
/// campaigns — can report recover-or-abort outcomes without ever seeing a
/// silent divergence. Panics that are *not* machine faults (genuine bugs)
/// are propagated unchanged.
///
/// # Errors
///
/// The [`MachineFault`] that aborted the simulated program, if one did.
pub fn run(app: App, cfg: &RunConfig) -> Result<AppOutput, MachineFault> {
    match run_ck(app, cfg, &mut Checkpointer::disabled())? {
        CkOutcome::Done(out) => Ok(out),
        CkOutcome::Stopped => unreachable!("a disabled checkpointer never stops a run"),
    }
}

/// Runs an application under a checkpoint policy (see [`Checkpointer`]).
///
/// With [`Checkpointer::disabled`] this is exactly [`run`]. A checkpointed
/// or resumed run issues the identical simulated reference stream — the
/// boundaries only *read* the machine — so any stop/resume split
/// reproduces the uninterrupted run's checksum and `RunStats` bit for bit.
///
/// # Errors
///
/// The [`MachineFault`] that aborted the simulated program, including
/// [`MachineFault::CorruptSnapshot`] for a rejected resume image or a
/// failed checkpoint write.
pub fn run_ck(app: App, cfg: &RunConfig, ck: &mut Checkpointer) -> Result<CkOutcome, MachineFault> {
    install_silent_hook();
    // Clear any stale record so an unrelated earlier fault cannot be
    // misattributed to this run.
    let _ = memfwd::take_last_fault();
    CAPTURING.with(|c| c.set(true));
    let result = catch_unwind(AssertUnwindSafe(|| match app {
        App::Health => crate::health::run_ck(cfg, ck),
        App::Mst => crate::mst::run_ck(cfg, ck),
        App::Radiosity => crate::radiosity::run_ck(cfg, ck),
        App::Vis => crate::vis::run_ck(cfg, ck),
        App::Eqntott => crate::eqntott::run_ck(cfg, ck),
        App::Bh => crate::bh::run_ck(cfg, ck),
        App::Compress => crate::compress::run_ck(cfg, ck),
        App::Smv => crate::smv::run_ck(cfg, ck),
    }));
    CAPTURING.with(|c| c.set(false));
    match result {
        Ok(out) => out,
        Err(payload) => match memfwd::take_last_fault() {
            Some(fault) => Err(fault),
            None => resume_unwind(payload),
        },
    }
}

/// Unwraps a checkpoint-capable run for the legacy infallible per-app
/// `run` entry points (always called with a disabled checkpointer): a
/// fault re-enters the record-and-panic protocol that the [`run`] wrapper
/// converts back into a typed error.
pub(crate) fn unwrap_uncheckpointed(r: Result<CkOutcome, MachineFault>) -> AppOutput {
    match r {
        Ok(CkOutcome::Done(out)) => out,
        Ok(CkOutcome::Stopped) => unreachable!("a disabled checkpointer never stops a run"),
        Err(fault) => {
            memfwd::record_last_fault(fault);
            panic!("{fault}");
        }
    }
}

/// Runs an application that is expected to complete, panicking on any
/// machine fault.
///
/// Thin wrapper over [`run`] for harnesses — tests, benchmarks, examples —
/// whose workloads are known-good and where a fault is a harness bug, not
/// an outcome to report.
///
/// # Panics
///
/// Panics if the run aborts with a [`MachineFault`].
pub fn run_ok(app: App, cfg: &RunConfig) -> AppOutput {
    match run(app, cfg) {
        Ok(out) => out,
        Err(fault) => panic!("{app} aborted with a machine fault: {fault}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_metadata() {
        assert_eq!(App::ALL.len(), 8);
        assert_eq!(App::FIG5.len(), 7);
        for app in App::ALL {
            assert!(!app.name().is_empty());
            assert!(!app.optimization().is_empty());
            assert_eq!(format!("{app}"), app.name());
        }
        assert!(!App::FIG5.contains(&App::Smv));
    }

    #[test]
    fn run_config_builders() {
        let c = RunConfig::new(Variant::Optimized).smoke().with_prefetch(4);
        assert_eq!(c.variant, Variant::Optimized);
        assert_eq!(c.scale, Scale::Smoke);
        assert!(c.prefetch);
        assert_eq!(c.prefetch_lines, 4);
    }
}
