//! VIS-style generic-list workload (paper §5.3).
//!
//! VIS is a 150 k-line verification system whose hot paths run through a
//! generic list library. The paper's optimization is localized entirely in
//! that library: each list head counts insertions/deletions and triggers
//! list linearization when the counter exceeds a threshold (50). This
//! kernel drives the same library with a mixed stream of inserts, deletes
//! and traversals over many lists — the access pattern the paper describes
//! — with the library's counter-triggered linearization as the optimized
//! variant.

use crate::ckpt::{bad_cursor, push_addr_vec, Checkpointer, CkOutcome, CursorR};
use crate::common::{prefetch_mode, scatter_pad_if, ListLib, Rng};
use crate::registry::{AppOutput, RunConfig, Scale, Variant};
use memfwd::MachineFault;
use memfwd_tagmem::Addr;

/// Element node: `[next, key, value, pad]`.
const NODE_WORDS: u64 = 4;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Number of independent lists.
    pub lists: u64,
    /// Initial elements per list.
    pub init_len: u64,
    /// Operations in the mixed stream.
    pub ops: u64,
    /// Linearization trigger threshold (mutations per list; the paper
    /// used 50).
    pub threshold: u64,
}

impl Params {
    /// Parameters for a workload scale.
    pub fn for_scale(scale: Scale) -> Params {
        match scale {
            Scale::Smoke => Params {
                lists: 8,
                init_len: 12,
                ops: 300,
                threshold: 8,
            },
            Scale::Bench => Params {
                lists: 96,
                init_len: 120,
                ops: 12_000,
                threshold: 50,
            },
        }
    }
}

/// Runs `vis`.
pub fn run(cfg: &RunConfig) -> AppOutput {
    crate::registry::unwrap_uncheckpointed(run_ck(cfg, &mut Checkpointer::disabled()))
}

/// Runs `vis` under a checkpoint policy; see [`crate::registry::run_ck`].
///
/// # Errors
///
/// Any [`MachineFault`] the run raises, including a rejected resume image.
pub fn run_ck(cfg: &RunConfig, ck: &mut Checkpointer) -> Result<CkOutcome, MachineFault> {
    let p = Params::for_scale(cfg.scale);
    let threshold = match cfg.variant {
        Variant::Optimized => Some(cfg.linearize_threshold.unwrap_or(p.threshold)),
        _ => None,
    };
    // Static placement (§1): nodes are allocated densely at creation; the
    // layout cannot adapt as the lists mutate afterwards.
    let scatter = cfg.variant != Variant::Static;
    let lib = ListLib::new(NODE_WORDS, threshold);
    let mode = prefetch_mode(cfg);

    let (mut m, cursor) = ck.begin(cfg)?;
    let (op0, mut next_key, mut checksum, mut rng, heads, mut pool) = if cursor.is_empty() {
        let mut pool = m.new_pool();
        let mut rng = Rng::new(cfg.seed ^ 0x0076_6973);
        // Build the lists with interleaved allocations so nodes scatter.
        let heads: Vec<Addr> = (0..p.lists).map(|_| lib.new_list(&mut m)).collect();
        let mut next_key = 0u64;
        for round in 0..p.init_len {
            for &h in &heads {
                scatter_pad_if(&mut m, &mut rng, scatter);
                lib.push_front(&mut m, h, &[next_key, round], &mut pool);
                next_key += 1;
            }
        }
        (0u64, next_key, 0u64, rng, heads, pool)
    } else {
        let mut c = CursorR::new(&cursor);
        let op0 = c.u64()?;
        let next_key = c.u64()?;
        let checksum = c.u64()?;
        let rng = c.rng()?;
        let heads = c.addr_vec()?;
        let pool = c.pool()?;
        c.finish()?;
        if heads.len() as u64 != p.lists || op0 > p.ops {
            return Err(bad_cursor());
        }
        (op0, next_key, checksum, rng, heads, pool)
    };

    // Mixed operation stream.
    for op in op0..p.ops {
        if ck.boundary(&m, || {
            let mut w = vec![op, next_key, checksum, rng.state()];
            push_addr_vec(&mut w, &heads);
            pool.encode_words(&mut w);
            w
        })? {
            return Ok(CkOutcome::Stopped);
        }
        let h = heads[rng.below(p.lists) as usize];
        match rng.below(10) {
            0..=2 => {
                scatter_pad_if(&mut m, &mut rng, scatter);
                lib.push_front(&mut m, h, &[next_key, op], &mut pool);
                next_key += 1;
            }
            3..=4 => {
                let len = lib.len(&mut m, h);
                if len > 4 {
                    lib.delete_nth(&mut m, h, rng.below(len), &mut pool);
                }
            }
            _ => {
                // Traversal: the dominant operation, as in VIS itself.
                let mut acc = 0u64;
                lib.traverse(&mut m, h, mode, |m, node, tok| {
                    let (k, t1) = m.load_word_dep(node.add_words(1), tok);
                    let (v, t2) = m.load_word_dep(node.add_words(2), t1);
                    m.compute(2);
                    acc = acc.wrapping_add(k ^ v.rotate_left(7));
                    t2
                });
                checksum = checksum.wrapping_add(acc).rotate_left(3);
            }
        }
    }

    Ok(CkOutcome::Done(AppOutput {
        checksum,
        stats: m.finish(),
    }))
}

#[cfg(test)]
mod tests {

    use crate::registry::{run_ok as run, App, RunConfig, Variant};

    #[test]
    fn checksums_match_across_variants() {
        let orig = run(App::Vis, &RunConfig::new(Variant::Original).smoke());
        let opt = run(App::Vis, &RunConfig::new(Variant::Optimized).smoke());
        assert_eq!(orig.checksum, opt.checksum);
        assert!(opt.stats.fwd.relocations > 0);
        assert_eq!(orig.stats.fwd.relocations, 0);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RunConfig::new(Variant::Original).smoke();
        a.seed = 1;
        let mut b = a;
        b.seed = 2;
        assert_ne!(run(App::Vis, &a).checksum, run(App::Vis, &b).checksum);
    }

    #[test]
    fn prefetching_preserves_results() {
        let orig = run(App::Vis, &RunConfig::new(Variant::Original).smoke());
        let lp = run(
            App::Vis,
            &RunConfig::new(Variant::Optimized).smoke().with_prefetch(2),
        );
        assert_eq!(orig.checksum, lp.checksum);
    }

    #[test]
    fn static_placement_matches_and_never_relocates() {
        let orig = run(App::Vis, &RunConfig::new(Variant::Original).smoke());
        let st = run(App::Vis, &RunConfig::new(Variant::Static).smoke());
        assert_eq!(orig.checksum, st.checksum);
        assert_eq!(st.stats.fwd.relocations, 0);
        assert_eq!(st.stats.fwd.forwarded_loads, 0);
    }

    #[test]
    fn space_overhead_reported_for_optimized_only() {
        let orig = run(App::Vis, &RunConfig::new(Variant::Original).smoke());
        let opt = run(App::Vis, &RunConfig::new(Variant::Optimized).smoke());
        assert_eq!(orig.stats.fwd.relocation_space_bytes, 0);
        assert!(opt.stats.fwd.relocation_space_bytes > 0);
    }
}
