//! SMV model checker (paper §5.4, Fig. 10): the one application where
//! forwarding actually happens.
//!
//! BDD nodes are reachable two ways: through a hash table (buckets of
//! chained nodes — the unique table) and through the `left`/`right` tree
//! pointers stored inside other nodes. The optimization linearizes the
//! hash-bucket lists, which updates the bucket heads and `hash_next`
//! chains — but the code is *not able* to update the tree pointers, so
//! every access through `left`/`right` after a linearization dereferences
//! a forwarding address. Uniqueness lookups compare node pointers with the
//! final-address comparison of §2.1 (`ptr_eq`), whose software cost is
//! included, exactly as the paper's compiler pass does.
//!
//! The `Perf` bound of Fig. 10 is obtained by running the optimized
//! variant with [`memfwd::SimConfig::perfect_forwarding`] set.

use crate::ckpt::{bad_cursor, push_addr_vec, Checkpointer, CkOutcome, CursorR};
use crate::common::{scatter_pad, Rng};
use crate::registry::{AppOutput, RunConfig, Scale, Variant};
use memfwd::{list_linearize, ptr_eq, ListDesc, Machine, MachineFault, Token};
use memfwd_tagmem::Addr;

/// BDD node: `[hash_next, left, right, packed(var<<32 | value)]`.
const NODE_WORDS: u64 = 4;
const LEFT: u64 = 1;
const RIGHT: u64 = 2;
const PACKED: u64 = 3;

const NODE_DESC: ListDesc = ListDesc {
    node_words: NODE_WORDS,
    next_word: 0,
};

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Hash buckets in the unique table.
    pub buckets: u64,
    /// BDD nodes created during the build phase.
    pub build_nodes: u64,
    /// Work iterations after the build.
    pub iterations: u64,
    /// Hash lookups per iteration.
    pub lookups: u64,
    /// Tree traversals per iteration.
    pub traversals: u64,
    /// Iterations after which the bucket lists are linearized (optimized).
    pub linearize_at: &'static [u64],
}

impl Params {
    /// Parameters for a workload scale.
    pub fn for_scale(scale: Scale) -> Params {
        match scale {
            Scale::Smoke => Params {
                buckets: 64,
                build_nodes: 400,
                iterations: 4,
                lookups: 120,
                traversals: 60,
                linearize_at: &[1, 3],
            },
            Scale::Bench => Params {
                buckets: 8192,
                build_nodes: 14_000,
                iterations: 6,
                lookups: 9_000,
                traversals: 420,
                linearize_at: &[1],
            },
        }
    }
}

struct UniqueTable {
    buckets: Addr,
    nbuckets: u64,
}

impl UniqueTable {
    fn slot(&self, var: u64, l: Addr, r: Addr) -> Addr {
        let h = var.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ l.0.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ r.0.wrapping_mul(0x1656_67B1_9E37_79F9);
        self.buckets.add_words((h >> 11) % self.nbuckets)
    }
}

/// `mk(var, left, right)`: find-or-create in the unique table. Pointer
/// equality uses final addresses so that stale (pre-relocation) and fresh
/// pointers to the same node unify, per §2.1.
fn mk(
    m: &mut Machine,
    ut: &UniqueTable,
    var: u64,
    l: Addr,
    r: Addr,
    value: u64,
    rng: &mut Rng,
) -> Addr {
    let slot = ut.slot(var, l, r);
    let (mut node, mut tok) = m.load_ptr_dep(slot, Token::ready());
    while !node.is_null() {
        let (packed, t1) = m.load_word_dep(node.add_words(PACKED), tok);
        m.compute(1);
        if packed >> 32 == var {
            let (nl, t2) = m.load_ptr_dep(node.add_words(LEFT), t1);
            let (nr, t3) = m.load_ptr_dep(node.add_words(RIGHT), t2);
            if ptr_eq(m, nl, l) && ptr_eq(m, nr, r) {
                return node;
            }
            tok = t3;
        } else {
            tok = t1;
        }
        let (next, t4) = m.load_ptr_dep(node, tok);
        node = next;
        tok = t4;
    }
    // Not found: create and push onto the bucket list.
    scatter_pad(m, rng);
    let n = m.malloc(NODE_WORDS * 8);
    let first = m.load_ptr(slot);
    m.store_ptr(n, first);
    m.store_ptr(n.add_words(LEFT), l);
    m.store_ptr(n.add_words(RIGHT), r);
    m.store_word(n.add_words(PACKED), (var << 32) | (value & 0xFFFF_FFFF));
    m.store_ptr(slot, n);
    n
}

/// Runs `smv`.
pub fn run(cfg: &RunConfig) -> AppOutput {
    crate::registry::unwrap_uncheckpointed(run_ck(cfg, &mut Checkpointer::disabled()))
}

/// Encodes the loop state at an `(iter, phase)` boundary — phase 0 is
/// "about to linearize + look up", phase 1 is "about to traverse".
// One argument per cursor field keeps the encode order visibly in sync
// with the decode in `run_ck`.
#[allow(clippy::too_many_arguments)]
fn save_cursor(
    iter: u64,
    phase: u64,
    checksum: u64,
    rng: &Rng,
    buckets: Addr,
    nodes: &[Addr],
    triples: &[(u64, usize, usize)],
    pool: &memfwd_tagmem::Pool,
) -> Vec<u64> {
    let mut w = vec![iter, phase, checksum, rng.state(), buckets.0];
    push_addr_vec(&mut w, nodes);
    w.push(triples.len() as u64);
    for &(var, li, ri) in triples {
        w.push(var);
        w.push(li as u64);
        w.push(ri as u64);
    }
    pool.encode_words(&mut w);
    w
}

/// Runs `smv` under a checkpoint policy; see [`crate::registry::run_ck`].
///
/// # Errors
///
/// Any [`MachineFault`] the run raises, including a rejected resume image.
pub fn run_ck(cfg: &RunConfig, ck: &mut Checkpointer) -> Result<CkOutcome, MachineFault> {
    let p = Params::for_scale(cfg.scale);
    let optimized = cfg.variant == Variant::Optimized;

    let (mut m, cursor) = ck.begin(cfg)?;
    let (iter0, phase0, mut checksum, mut rng, buckets, nodes, triples, mut pool) =
        if cursor.is_empty() {
            let pool = m.new_pool();
            let mut rng = Rng::new(cfg.seed ^ 0x0073_6D76);

            let buckets = m.malloc(p.buckets * 8);
            for b in 0..p.buckets {
                m.store_ptr(buckets.add_words(b), Addr::NULL);
            }
            let ut = UniqueTable {
                buckets,
                nbuckets: p.buckets,
            };

            // ---- Build phase: terminals, then random combinations.
            let t0 = mk(&mut m, &ut, 0, Addr::NULL, Addr::NULL, 0, &mut rng);
            let t1 = mk(&mut m, &ut, 0, Addr::NULL, Addr::NULL, 1, &mut rng);
            // `created` records the build triples by *index* so that lookups
            // later are layout-independent (the safety requirement across
            // variants).
            let mut nodes: Vec<Addr> = vec![t0, t1];
            let mut triples: Vec<(u64, usize, usize)> = Vec::new();
            for k in 0..p.build_nodes {
                let var = k % 48 + 1;
                let li = rng.below(nodes.len() as u64) as usize;
                let ri = rng.below(nodes.len() as u64) as usize;
                let n = mk(&mut m, &ut, var, nodes[li], nodes[ri], k, &mut rng);
                nodes.push(n);
                triples.push((var, li, ri));
            }
            (0u64, 0u64, 0u64, rng, buckets, nodes, triples, pool)
        } else {
            let mut c = CursorR::new(&cursor);
            let iter0 = c.u64()?;
            let phase0 = c.u64()?;
            let checksum = c.u64()?;
            let rng = c.rng()?;
            let buckets = c.addr()?;
            let nodes = c.addr_vec()?;
            let nt = c.u64()?;
            if nt != p.build_nodes {
                return Err(bad_cursor());
            }
            let mut triples = Vec::with_capacity(nt as usize);
            for _ in 0..nt {
                let var = c.u64()?;
                let li = c.u64()? as usize;
                let ri = c.u64()? as usize;
                if li >= nodes.len() || ri >= nodes.len() {
                    return Err(bad_cursor());
                }
                triples.push((var, li, ri));
            }
            let pool = c.pool()?;
            c.finish()?;
            if nodes.len() as u64 != p.build_nodes + 2 || iter0 > p.iterations || phase0 > 1 {
                return Err(bad_cursor());
            }
            (iter0, phase0, checksum, rng, buckets, nodes, triples, pool)
        };
    let ut = UniqueTable {
        buckets,
        nbuckets: p.buckets,
    };

    // ---- Work iterations: hash lookups + tree traversals.
    let mut phase = phase0;
    for iter in iter0..p.iterations {
        if phase == 0 {
            if ck.boundary(&m, || {
                save_cursor(iter, 0, checksum, &rng, buckets, &nodes, &triples, &pool)
            })? {
                return Ok(CkOutcome::Stopped);
            }
            if optimized && p.linearize_at.contains(&iter) {
                // Linearize every bucket list. Bucket heads and hash_next
                // pointers are updated; tree pointers (left/right inside
                // nodes, and our stale root handles) are NOT.
                for b in 0..p.buckets {
                    list_linearize(&mut m, buckets.add_words(b), NODE_DESC, &mut pool);
                }
            }
            // (a) Hash phase: re-find known triples through the unique table.
            for q in 0..p.lookups {
                let (var, li, ri) = triples[rng.below(triples.len() as u64) as usize];
                let n = mk(&mut m, &ut, var, nodes[li], nodes[ri], q, &mut rng);
                let packed = m.load_word(n.add_words(PACKED));
                checksum = checksum.wrapping_add(packed).rotate_left(1);
            }
        }
        if ck.boundary(&m, || {
            save_cursor(iter, 1, checksum, &rng, buckets, &nodes, &triples, &pool)
        })? {
            return Ok(CkOutcome::Stopped);
        }
        // (b) Tree phase: descend through left/right pointers, which become
        // stale after each linearization — this is where forwarding bites.
        for t in 0..p.traversals {
            let mut node = nodes[2 + rng.below((nodes.len() - 2) as u64) as usize];
            let mut probe = rng.next_u64();
            let mut tok = Token::ready();
            let mut depth = 0;
            while !node.is_null() && depth < 24 {
                let (packed, t1) = m.load_word_dep(node.add_words(PACKED), tok);
                m.compute(2);
                checksum = checksum.wrapping_add(packed & 0xFFFF).wrapping_add(t);
                if t % 8 == 0 {
                    // Reference-count style touch: a store through the same
                    // (possibly stale) tree pointer — the forwarded stores
                    // of Fig. 10(c).
                    m.store_dep(node.add_words(PACKED), 8, packed, t1);
                }
                let side = if probe & 1 == 0 { LEFT } else { RIGHT };
                probe >>= 1;
                let (child, t2) = m.load_ptr_dep(node.add_words(side), t1);
                node = child;
                tok = t2;
                depth += 1;
            }
        }
        phase = 0;
    }

    Ok(CkOutcome::Done(AppOutput {
        checksum,
        stats: m.finish(),
    }))
}

#[cfg(test)]
mod tests {
    use crate::registry::{run_ok as run, App, RunConfig, Variant};

    #[test]
    fn checksums_match_across_variants() {
        let orig = run(App::Smv, &RunConfig::new(Variant::Original).smoke());
        let opt = run(App::Smv, &RunConfig::new(Variant::Optimized).smoke());
        assert_eq!(orig.checksum, opt.checksum);
        assert!(opt.stats.fwd.relocations > 0);
    }

    #[test]
    fn optimized_really_forwards() {
        let opt = run(App::Smv, &RunConfig::new(Variant::Optimized).smoke());
        assert!(
            opt.stats.fwd.forwarded_loads > 0,
            "tree pointers are stale after linearization"
        );
        let frac = opt.stats.fwd.forwarded_load_fraction();
        assert!(frac > 0.005, "forwarded fraction {frac} too small");
    }

    #[test]
    fn original_never_forwards() {
        let orig = run(App::Smv, &RunConfig::new(Variant::Original).smoke());
        assert_eq!(orig.stats.fwd.forwarded_loads, 0);
        assert_eq!(orig.stats.fwd.forwarded_stores, 0);
    }

    #[test]
    fn perfect_forwarding_matches_and_is_faster() {
        let opt = run(App::Smv, &RunConfig::new(Variant::Optimized).smoke());
        let mut pcfg = RunConfig::new(Variant::Optimized).smoke();
        pcfg.sim = pcfg.sim.with_perfect_forwarding();
        let perf = run(App::Smv, &pcfg);
        assert_eq!(opt.checksum, perf.checksum);
        assert!(
            perf.stats.cycles() < opt.stats.cycles(),
            "Perf bound must beat real forwarding: {} vs {}",
            perf.stats.cycles(),
            opt.stats.cycles()
        );
        assert_eq!(perf.stats.fwd.load_fwd_cycles, 0);
    }

    #[test]
    fn pointer_comparisons_are_costed() {
        // The §2.1 compiler pass inserts final-address comparisons in the
        // unique-table lookups; their software cost must be visible.
        let orig = run(App::Smv, &RunConfig::new(Variant::Original).smoke());
        assert!(orig.stats.fwd.ptr_compares > 0);
        let opt = run(App::Smv, &RunConfig::new(Variant::Optimized).smoke());
        assert!(
            opt.stats.fwd.fbit_reads > orig.stats.fwd.fbit_reads,
            "stale pointers force real chain walks in the optimized run"
        );
    }

    #[test]
    fn hop_histogram_populated() {
        let opt = run(App::Smv, &RunConfig::new(Variant::Optimized).smoke());
        let h = opt.stats.fwd.load_hops;
        assert!(h[1] > 0, "one-hop loads expected, got {h:?}");
    }
}
