//! SPEC `eqntott` (paper §5.3 and Fig. 8).
//!
//! The hot data structure is a hash table whose slots point to `PTERM`
//! records, each of which points to an array of short integers. The hot
//! loop (`cmppt`) sweeps the table in hash order, comparing the pterm
//! arrays. The optimization — applied **once**, right after the table is
//! built — relocates each `PTERM` record and its array into a single
//! chunk, and lays the chunks out contiguously in increasing hash order
//! (paper Fig. 8(b)).

use crate::ckpt::{bad_cursor, Checkpointer, CkOutcome, CursorR};
use crate::common::{prefetch_mode, scatter_pad_if, PrefetchMode, Rng};
use crate::registry::{AppOutput, RunConfig, Scale, Variant};
use memfwd::{relocate_adjacent, MachineFault, Token};
use memfwd_tagmem::Addr;

/// `PTERM` record: `[ptand (array ptr), nvars, id, pad]`.
const PTERM_WORDS: u64 = 4;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Hash-table slots (one pterm per occupied slot).
    pub slots: u64,
    /// Fraction of slots occupied, as a percentage.
    pub fill_pct: u64,
    /// Words per pterm's variable array.
    pub nvars_words: u64,
    /// Table sweeps (`cmppt` passes).
    pub sweeps: u64,
}

impl Params {
    /// Parameters for a workload scale.
    pub fn for_scale(scale: Scale) -> Params {
        match scale {
            Scale::Smoke => Params {
                slots: 64,
                fill_pct: 75,
                nvars_words: 6,
                sweeps: 3,
            },
            Scale::Bench => Params {
                slots: 4096,
                fill_pct: 80,
                nvars_words: 8,
                sweeps: 6,
            },
        }
    }
}

/// Runs `eqntott`.
pub fn run(cfg: &RunConfig) -> AppOutput {
    crate::registry::unwrap_uncheckpointed(run_ck(cfg, &mut Checkpointer::disabled()))
}

/// Runs `eqntott` under a checkpoint policy; see
/// [`crate::registry::run_ck`].
///
/// # Errors
///
/// Any [`MachineFault`] the run raises, including a rejected resume image.
pub fn run_ck(cfg: &RunConfig, ck: &mut Checkpointer) -> Result<CkOutcome, MachineFault> {
    let p = Params::for_scale(cfg.scale);
    let optimized = cfg.variant == Variant::Optimized;
    // Static placement (§1): each record and its array are co-allocated in
    // one chunk at creation — the layout the one-shot packing would build,
    // chosen up front instead of by relocation.
    let static_placement = cfg.variant == Variant::Static;
    let mode = prefetch_mode(cfg);

    let (mut m, cursor) = ck.begin(cfg)?;
    let (sweep0, mut checksum, rng, table, probe, pool) = if cursor.is_empty() {
        let mut pool = m.new_pool();
        let mut rng = Rng::new(cfg.seed ^ 0x0065_716E);

        // ---- Build the hash table: scattered records, arrays (Fig. 8(a)).
        let table = m.malloc(p.slots * 8);
        let mut next_id = 0u64;
        for i in 0..p.slots {
            if rng.chance(p.fill_pct, 100) {
                let (rec, arr);
                scatter_pad_if(&mut m, &mut rng, !static_placement);
                if static_placement {
                    scatter_pad_if(&mut m, &mut rng, false); // keep rng in step
                    let chunk = m.malloc((PTERM_WORDS + p.nvars_words) * 8);
                    rec = chunk;
                    arr = chunk.add_words(PTERM_WORDS);
                } else {
                    rec = m.malloc(PTERM_WORDS * 8);
                    scatter_pad_if(&mut m, &mut rng, true);
                    arr = m.malloc(p.nvars_words * 8);
                }
                for w in 0..p.nvars_words {
                    m.store_word(arr.add_words(w), (next_id + w * 3) % 4); // 0/1/2 = literals, DC
                }
                m.store_ptr(rec, arr);
                m.store_word(rec.add_words(1), p.nvars_words);
                m.store_word(rec.add_words(2), next_id);
                m.store_ptr(table.add_words(i), rec);
                next_id += 1;
            } else {
                m.store_ptr(table.add_words(i), Addr::NULL);
            }
        }

        // ---- One-shot packing optimization (Fig. 8(b)): record + array
        // into one chunk, chunks contiguous in increasing hash order.
        if optimized {
            for i in 0..p.slots {
                let rec = m.load_ptr(table.add_words(i));
                if rec.is_null() {
                    continue;
                }
                let arr = m.load_ptr(rec);
                let chunk_words = PTERM_WORDS + p.nvars_words;
                let chunk = m.pool_alloc(&mut pool, chunk_words * 8);
                let bases =
                    relocate_adjacent(&mut m, &[(rec, PTERM_WORDS), (arr, p.nvars_words)], chunk);
                // Update the slot and the record's array pointer to the new
                // homes; any other pointers are covered by forwarding.
                m.store_ptr(table.add_words(i), bases[0]);
                m.store_ptr(bases[0], bases[1]);
            }
        }

        // The rolling probe the cmppt sweeps compare against.
        let probe = m.malloc(p.nvars_words * 8);
        for w in 0..p.nvars_words {
            m.store_word(probe.add_words(w), w % 3);
        }
        (0u64, 0u64, rng, table, probe, pool)
    } else {
        let mut c = CursorR::new(&cursor);
        let sweep0 = c.u64()?;
        let checksum = c.u64()?;
        let rng = c.rng()?;
        let table = c.addr()?;
        let probe = c.addr()?;
        let pool = c.pool()?;
        c.finish()?;
        if sweep0 > p.sweeps {
            return Err(bad_cursor());
        }
        (sweep0, checksum, rng, table, probe, pool)
    };

    // ---- cmppt sweeps: compare each pterm against a rolling probe.
    let chunk_bytes = (PTERM_WORDS + p.nvars_words) * 8;
    for sweep in sweep0..p.sweeps {
        if ck.boundary(&m, || {
            let mut w = vec![sweep, checksum, rng.state(), table.0, probe.0];
            pool.encode_words(&mut w);
            w
        })? {
            return Ok(CkOutcome::Stopped);
        }
        for i in 0..p.slots {
            let (rec, t0) = m.load_ptr_dep(table.add_words(i), Token::ready());
            if rec.is_null() {
                continue;
            }
            match mode {
                PrefetchMode::NextPointer => {
                    // Original layout: the record address becomes known when
                    // the slot is loaded; its array needs another deref.
                    m.prefetch_dep(rec, 1, t0);
                }
                PrefetchMode::Linear { lines } => {
                    // Packed layout: chunks are consecutive in hash order.
                    m.prefetch(rec + lines * chunk_bytes, lines.min(4));
                }
                PrefetchMode::None => {}
            }
            let (arr, t1) = m.load_ptr_dep(rec, t0);
            let (nv, t2) = m.load_word_dep(rec.add_words(1), t1);
            let (id, t3) = m.load_word_dep(rec.add_words(2), t2);
            let mut tok = t3;
            let mut rel = 0u64;
            for w in 0..nv {
                let (v, tv) = m.load_word_dep(arr.add_words(w), tok);
                let (q, tq) = m.load_word_dep(probe.add_words(w), tv);
                m.compute(2);
                rel = rel.wrapping_mul(3).wrapping_add(v ^ q);
                tok = tq;
            }
            checksum = checksum
                .wrapping_add(rel.wrapping_mul(id + 1))
                .wrapping_add(sweep);
        }
    }

    Ok(CkOutcome::Done(AppOutput {
        checksum,
        stats: m.finish(),
    }))
}

#[cfg(test)]
mod tests {
    use crate::registry::{run_ok as run, App, RunConfig, Variant};

    #[test]
    fn checksums_match_across_variants() {
        let orig = run(App::Eqntott, &RunConfig::new(Variant::Original).smoke());
        let opt = run(App::Eqntott, &RunConfig::new(Variant::Optimized).smoke());
        assert_eq!(orig.checksum, opt.checksum);
        assert!(opt.stats.fwd.relocations > 0);
    }

    #[test]
    fn optimization_is_one_shot() {
        let opt = run(App::Eqntott, &RunConfig::new(Variant::Optimized).smoke());
        // Two relocations (record + array) per occupied slot, no more.
        let per_slot = 2;
        assert!(opt.stats.fwd.relocations <= 64 * per_slot);
    }

    #[test]
    fn prefetch_preserves_results() {
        let orig = run(App::Eqntott, &RunConfig::new(Variant::Original).smoke());
        let np = run(
            App::Eqntott,
            &RunConfig::new(Variant::Original).smoke().with_prefetch(2),
        );
        let lp = run(
            App::Eqntott,
            &RunConfig::new(Variant::Optimized).smoke().with_prefetch(2),
        );
        assert_eq!(orig.checksum, np.checksum);
        assert_eq!(orig.checksum, lp.checksum);
    }

    #[test]
    fn static_placement_matches_without_forwarding() {
        let orig = run(App::Eqntott, &RunConfig::new(Variant::Original).smoke());
        let st = run(App::Eqntott, &RunConfig::new(Variant::Static).smoke());
        assert_eq!(orig.checksum, st.checksum);
        assert_eq!(st.stats.fwd.relocations, 0);
        assert_eq!(st.stats.mem.fbits_set, 0, "no forwarding state at all");
    }

    #[test]
    fn optimized_never_forwards_in_sweep() {
        // All sweep pointers are updated at packing time, so forwarding is
        // purely a safety net here.
        let opt = run(App::Eqntott, &RunConfig::new(Variant::Optimized).smoke());
        assert_eq!(opt.stats.fwd.forwarded_loads, 0);
    }
}
