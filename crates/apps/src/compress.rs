//! SPEC `compress` (paper §5.3): LZW with the parallel `htab`/`codetab`
//! hash tables.
//!
//! Each probe of the dictionary touches `htab[i]` (an 8-byte code word)
//! and, on a hit, `codetab[i]` (a 2-byte code) — two random accesses far
//! apart in memory. The optimization copies the two tables into a single
//! larger table `T` so that `htab[i]` and `codetab[i]` are adjacent and a
//! probe touches one cache line. The old `htab` words are left forwarding
//! to their new slots; `codetab` packs four 2-byte entries per word, whose
//! four new homes are *different* merged slots — finer than the word
//! granularity forwarding can express — so its entries are plain-copied
//! and the base pointer updated (safe here because the kernel's only
//! codetab accesses go through that base).
//!
//! As in the paper, the merge can *hurt* at short lines: periodic table
//! clears sweep `htab` sequentially, and the merged layout's 16-byte
//! entry stride doubles the lines touched. The random probes (which the
//! merge helps, one line instead of two) only win out once lines are long.

use crate::ckpt::{bad_cursor, Checkpointer, CkOutcome, CursorR};
use crate::common::Rng;
use crate::registry::{AppOutput, RunConfig, Scale, Variant};
use memfwd::{Machine, MachineFault, Token};
use memfwd_tagmem::Addr;

/// Empty marker in `htab`.
const EMPTY: u64 = u64::MAX;
/// First dictionary code (0..=255 are literals).
const FIRST_CODE: u64 = 256;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Hash-table slots (power of two).
    pub hs: u64,
    /// Dictionary limit: a table clear is triggered at this code.
    pub limit: u64,
    /// Input length in bytes.
    pub input_len: u64,
}

impl Params {
    /// Parameters for a workload scale.
    pub fn for_scale(scale: Scale) -> Params {
        match scale {
            Scale::Smoke => Params {
                hs: 1 << 10,
                limit: FIRST_CODE + 160,
                input_len: 4_000,
            },
            Scale::Bench => Params {
                hs: 1 << 14,
                limit: FIRST_CODE + 2_500,
                input_len: 120_000,
            },
        }
    }
}

/// Runs `compress`.
pub fn run(cfg: &RunConfig) -> AppOutput {
    crate::registry::unwrap_uncheckpointed(run_ck(cfg, &mut Checkpointer::disabled()))
}

/// Runs `compress` under a checkpoint policy; see
/// [`crate::registry::run_ck`].
///
/// # Errors
///
/// Any [`MachineFault`] the run raises, including a rejected resume image.
pub fn run_ck(cfg: &RunConfig, ck: &mut Checkpointer) -> Result<CkOutcome, MachineFault> {
    let p = Params::for_scale(cfg.scale);
    let merged_variant = cfg.variant == Variant::Optimized;

    let (mut m, cursor) = ck.begin(cfg)?;
    let (mut pos, mut prefix, mut next_code, mut checksum, rng, input, htab, codetab, merged, pool);
    if cursor.is_empty() {
        let mut pool_ = m.new_pool();
        let mut rng_ = Rng::new(cfg.seed ^ 0x636F_6D70);

        // ---- Generate a compressible input in simulated memory.
        input = m.malloc(p.input_len);
        {
            let mut recent: Vec<u8> = Vec::new();
            let mut i = 0u64;
            while i < p.input_len {
                if recent.len() > 16 && rng_.chance(7, 10) {
                    // Repeat a recent substring (what makes LZW bite).
                    let start = rng_.below(recent.len() as u64 - 8) as usize;
                    let len = (rng_.below(12) + 3) as usize;
                    for k in 0..len.min(recent.len() - start) {
                        if i >= p.input_len {
                            break;
                        }
                        let b = recent[start + k];
                        m.store(input + i, 1, u64::from(b));
                        recent.push(b);
                        i += 1;
                    }
                } else {
                    let b = (rng_.below(64) + 32) as u8;
                    m.store(input + i, 1, u64::from(b));
                    recent.push(b);
                    i += 1;
                }
                if recent.len() > 4096 {
                    recent.drain(..2048);
                }
            }
        }

        // ---- Allocate and initialize the dictionary tables.
        htab = m.malloc(p.hs * 8);
        codetab = m.malloc(p.hs * 2);
        for i in 0..p.hs {
            m.store_word(htab.add_words(i), EMPTY);
            if cfg.prefetch {
                maybe_scan_prefetch(&mut m, htab.add_words(i), cfg.prefetch_lines);
            }
        }

        // ---- Optimized: merge the tables once, before compression.
        // `htab` words are relocated (forwarding); `codetab` is
        // plain-copied at its finer-than-word granularity and its base
        // updated. (`merge_tables` handles two word-entry tables;
        // codetab's 2-byte entries are finer than the word granularity,
        // so the merge is done explicitly here: htab words relocated,
        // codetab shorts copied.)
        merged = if merged_variant {
            let base = m.pool_alloc(&mut pool_, 2 * p.hs * 8);
            for i in 0..p.hs {
                memfwd::relocate(&mut m, htab.add_words(i), base.add_words(2 * i), 1);
                let c = m.load(codetab + 2 * i, 2);
                m.store(base.add_words(2 * i + 1), 2, c);
            }
            Some(base)
        } else {
            None
        };

        checksum = 0;
        next_code = FIRST_CODE;
        prefix = m.load(input, 1);
        pos = 1u64;
        rng = rng_;
        pool = pool_;
    } else {
        let mut c = CursorR::new(&cursor);
        pos = c.u64()?;
        prefix = c.u64()?;
        next_code = c.u64()?;
        checksum = c.u64()?;
        rng = c.rng()?;
        input = c.addr()?;
        htab = c.addr()?;
        codetab = c.addr()?;
        merged = match c.u64()? {
            0 => None,
            1 => Some(c.addr()?),
            _ => return Err(bad_cursor()),
        };
        pool = c.pool()?;
        c.finish()?;
        if pos == 0 || pos > p.input_len || merged.is_some() != merged_variant {
            return Err(bad_cursor());
        }
    }
    let htab_addr = |i: u64| match merged {
        Some(base) => base.add_words(2 * i),
        None => htab.add_words(i),
    };
    let code_addr = |i: u64| match merged {
        Some(base) => base.add_words(2 * i + 1),
        None => codetab + 2 * i,
    };

    // ---- LZW main loop.
    while pos < p.input_len {
        if ck.boundary(&m, || {
            let mut w = vec![
                pos,
                prefix,
                next_code,
                checksum,
                rng.state(),
                input.0,
                htab.0,
                codetab.0,
            ];
            match merged {
                Some(base) => {
                    w.push(1);
                    w.push(base.0);
                }
                None => w.push(0),
            }
            pool.encode_words(&mut w);
            w
        })? {
            return Ok(CkOutcome::Stopped);
        }
        let c = m.load(input + pos, 1);
        pos += 1;
        let fcode = (prefix << 8) | c;
        let mut i = hash(fcode) % p.hs;
        m.compute(4);
        loop {
            let (entry, t0) = m.load_dep(htab_addr(i), 8, Token::ready());
            if cfg.prefetch && merged.is_none() {
                // Original layout: overlap the codetab line with the htab
                // probe (the merged layout gets this for free).
                m.prefetch(code_addr(i), 1);
            }
            m.compute(2);
            if entry == fcode {
                let (code, _) = m.load_dep(code_addr(i), 2, t0);
                prefix = code;
                break;
            }
            if entry == EMPTY {
                // New dictionary entry: emit the prefix code.
                m.store(htab_addr(i), 8, fcode);
                m.store(code_addr(i), 2, next_code);
                checksum = checksum.wrapping_mul(31).wrapping_add(prefix);
                prefix = c;
                next_code += 1;
                if next_code >= p.limit {
                    // Table full: clear `htab` sequentially (cl_hash).
                    for j in 0..p.hs {
                        m.store_word(htab_addr(j), EMPTY);
                        if cfg.prefetch {
                            maybe_scan_prefetch(&mut m, htab_addr(j), cfg.prefetch_lines);
                        }
                    }
                    next_code = FIRST_CODE;
                }
                break;
            }
            // Secondary probe (the classic backwards displacement).
            let disp = if i == 0 { 1 } else { p.hs - i };
            i = (i + p.hs - disp) % p.hs;
            m.compute(2);
        }
    }
    checksum = checksum.wrapping_mul(31).wrapping_add(prefix);

    Ok(CkOutcome::Done(AppOutput {
        checksum,
        stats: m.finish(),
    }))
}

#[inline]
fn hash(fcode: u64) -> u64 {
    fcode.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17
}

/// Prefetch ahead in a sequential table scan, once per line boundary.
fn maybe_scan_prefetch(m: &mut Machine, addr: Addr, lines: u64) {
    let lb = m.line_bytes();
    if addr.0.is_multiple_of(lb) {
        m.prefetch(addr + lines * lb, lines.min(4));
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::{run_ok as run, App, RunConfig, Variant};

    #[test]
    fn checksums_match_across_variants() {
        let orig = run(App::Compress, &RunConfig::new(Variant::Original).smoke());
        let opt = run(App::Compress, &RunConfig::new(Variant::Optimized).smoke());
        assert_eq!(orig.checksum, opt.checksum);
        assert!(opt.stats.fwd.relocations > 0, "htab words forwarded");
    }

    #[test]
    fn stale_htab_pointer_forwards() {
        // The optimized checksum equality above already exercises the
        // mechanism; here we confirm the relocation count matches HS.
        let opt = run(App::Compress, &RunConfig::new(Variant::Optimized).smoke());
        assert_eq!(opt.stats.fwd.relocations, 1 << 10);
    }

    #[test]
    fn prefetch_preserves_results() {
        let orig = run(App::Compress, &RunConfig::new(Variant::Original).smoke());
        let np = run(
            App::Compress,
            &RunConfig::new(Variant::Original).smoke().with_prefetch(2),
        );
        assert_eq!(orig.checksum, np.checksum);
        assert!(np.stats.fwd.prefetches > 0);
    }

    #[test]
    fn dictionary_clears_happen() {
        // The smoke limit is small enough that cl_hash must fire, which is
        // what drives the paper's 32/64B anomaly at bench scale.
        let p = super::Params::for_scale(crate::registry::Scale::Smoke);
        let orig = run(App::Compress, &RunConfig::new(Variant::Original).smoke());
        assert!(
            orig.stats.fwd.stores > p.hs,
            "at least one full table clear must occur"
        );
    }

    #[test]
    fn input_actually_compresses() {
        let orig = run(App::Compress, &RunConfig::new(Variant::Original).smoke());
        // Emitted codes (inserts) must be well below input length.
        assert!(orig.stats.fwd.stores > 0);
        assert!(orig.checksum != 0);
    }
}
