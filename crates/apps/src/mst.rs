//! Olden `mst`: minimum spanning tree with per-vertex hash tables
//! (paper §5.3 groups it with the list-linearization applications).
//!
//! Vertices live on a linked list; each vertex owns a small hash table
//! mapping neighbour id → edge weight, with chained buckets. Prim's
//! algorithm repeatedly walks the remaining-vertex list and, for each
//! vertex, walks a hash bucket of the newly chosen vertex — linked-list
//! traversal through a scattered heap, the paper's target pattern. The
//! optimized variant linearizes the vertex list (periodically, as removals
//! mutate it) and every bucket list (once, after construction).

use crate::ckpt::{bad_cursor, Checkpointer, CkOutcome, CursorR};
use crate::common::{prefetch_mode, scatter_pad, with_batch, PrefetchMode, Rng};
use crate::registry::{AppOutput, RunConfig, Scale, Variant};
use memfwd::{list_linearize, list_walk, BatchDep, ListDesc, Machine, MachineFault, Token};
use memfwd_tagmem::Addr;

/// Vertex node: `[next, id, mindist, buckets_ptr]`.
const VERTEX_WORDS: u64 = 4;
/// Edge node: `[next, key, weight, pad]`.
const EDGE_WORDS: u64 = 4;

const VERTEX_DESC: ListDesc = ListDesc {
    node_words: VERTEX_WORDS,
    next_word: 0,
};
const EDGE_DESC: ListDesc = ListDesc {
    node_words: EDGE_WORDS,
    next_word: 0,
};

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Number of vertices.
    pub vertices: u64,
    /// Edges per vertex (to pseudo-random neighbours).
    pub degree: u64,
    /// Hash buckets per vertex.
    pub buckets: u64,
    /// Re-linearize the vertex list after this many removals (optimized).
    pub relinearize_every: u64,
}

impl Params {
    /// Parameters for a workload scale.
    pub fn for_scale(scale: Scale) -> Params {
        match scale {
            Scale::Smoke => Params {
                vertices: 48,
                degree: 6,
                buckets: 4,
                relinearize_every: 16,
            },
            Scale::Bench => Params {
                vertices: 640,
                degree: 14,
                buckets: 4,
                relinearize_every: 160,
            },
        }
    }
}

/// Runs `mst`.
pub fn run(cfg: &RunConfig) -> AppOutput {
    crate::registry::unwrap_uncheckpointed(run_ck(cfg, &mut Checkpointer::disabled()))
}

/// Runs `mst` under a checkpoint policy; see [`crate::registry::run_ck`].
///
/// # Errors
///
/// Any [`MachineFault`] the run raises, including a rejected resume image.
pub fn run_ck(cfg: &RunConfig, ck: &mut Checkpointer) -> Result<CkOutcome, MachineFault> {
    let p = Params::for_scale(cfg.scale);
    let optimized = cfg.variant == Variant::Optimized;
    let mode = prefetch_mode(cfg);

    let (mut m, cursor) = ck.begin(cfg)?;
    let (round0, mut chosen_id, mut total_weight, mut removals, rng, head, mut pool) =
        if cursor.is_empty() {
            build(cfg, &p, &mut m, optimized)
        } else {
            let mut c = CursorR::new(&cursor);
            let round0 = c.u64()?;
            let chosen_id = c.u64()?;
            let total_weight = c.u64()?;
            let removals = c.u64()?;
            let rng = c.rng()?;
            let head = c.addr()?;
            let pool = c.pool()?;
            c.finish()?;
            if round0 == 0 || round0 > p.vertices {
                return Err(bad_cursor());
            }
            (round0, chosen_id, total_weight, removals, rng, head, pool)
        };

    // ---- Prim's algorithm over the remaining-vertex list.
    for round in round0..p.vertices {
        if ck.boundary(&m, || {
            let mut w = vec![
                round,
                chosen_id,
                total_weight,
                removals,
                rng.state(),
                head.0,
            ];
            pool.encode_words(&mut w);
            w
        })? {
            return Ok(CkOutcome::Stopped);
        }
        // Walk the remaining vertices, updating min-distances via a hash
        // lookup against the newly chosen vertex.
        let mut best: Option<(u64, u64)> = None; // (dist, id)
        let chosen = chosen_id;
        let (mut v, mut tok) = m.load_ptr_dep(head, Token::ready());
        while !v.is_null() {
            match mode {
                PrefetchMode::NextPointer => {
                    let (nv, t) = m.load_ptr_dep(v, tok);
                    if !nv.is_null() {
                        m.prefetch_dep(nv, 1, t);
                    }
                }
                PrefetchMode::Linear { lines } => {
                    m.prefetch(v + lines * m.line_bytes(), lines.min(4));
                }
                PrefetchMode::None => {}
            }
            // The vertex-record fields are one contiguous window behind the
            // node pointer: emit the id/mindist/buckets loads as a single
            // batch with the same chained dependences as the scalar code.
            let (id, mindist, buckets, t3) = with_batch(|b, out| {
                b.set_span(v.add_words(1), 3);
                b.push_load(v.add_words(1), 8, BatchDep::External(tok));
                b.push_load(v.add_words(2), 8, BatchDep::Prev(0));
                b.push_load(v.add_words(3), 8, BatchDep::Prev(1));
                m.run_batch(b, out);
                (out.val(0), out.val(1), Addr(out.val(2)), out.tok(2))
            });
            // Hash lookup of `chosen` in v's table.
            let slot = buckets.add_words(chosen % p.buckets);
            let (mut e, mut et) = m.load_ptr_dep(slot, t3);
            let mut found: Option<u64> = None;
            while !e.is_null() {
                let (key, k1) = m.load_word_dep(e.add_words(1), et);
                m.compute(1);
                if key == chosen {
                    let (w, k2) = m.load_word_dep(e.add_words(2), k1);
                    found = Some(w);
                    et = k2;
                    break;
                }
                let (ne, k2) = m.load_ptr_dep(e, k1);
                e = ne;
                et = k2;
            }
            let nd = match found {
                Some(w) if w < mindist => {
                    et = m.store_dep(v.add_words(2), 8, w, et);
                    w
                }
                _ => mindist,
            };
            m.compute(2);
            if best.is_none_or(|(bd, bid)| (nd, id) < (bd, bid)) {
                best = Some((nd, id));
            }
            let (nv, t4) = m.load_ptr_dep(v, et);
            v = nv;
            tok = t4;
        }
        let (dist, id) = best.expect("graph is connected by construction");
        assert_ne!(dist, u64::MAX, "disconnected vertex {id}");
        total_weight = total_weight.wrapping_add(dist);
        chosen_id = id;
        remove_vertex(&mut m, head, id);
        removals += 1;
        if optimized && removals.is_multiple_of(p.relinearize_every) {
            list_linearize(&mut m, head, VERTEX_DESC, &mut pool);
        }
    }

    Ok(CkOutcome::Done(AppOutput {
        checksum: total_weight,
        stats: m.finish(),
    }))
}

/// Graph construction plus the one-shot optimization and the seed-vertex
/// removal — everything that precedes Prim's loop. Returns the loop's
/// starting state.
#[allow(clippy::type_complexity)]
fn build(
    cfg: &RunConfig,
    p: &Params,
    m: &mut Machine,
    optimized: bool,
) -> (u64, u64, u64, u64, Rng, Addr, memfwd_tagmem::Pool) {
    let mut pool = m.new_pool();
    let mut rng = Rng::new(cfg.seed ^ 0x006D_7374);

    // ---- Build the graph: vertex list + per-vertex hash tables.
    let head = m.malloc(8);
    m.store_ptr(head, Addr::NULL);
    let mut vertex_of: Vec<Addr> = Vec::with_capacity(p.vertices as usize);
    for id in 0..p.vertices {
        scatter_pad(m, &mut rng);
        let v = m.malloc(VERTEX_WORDS * 8);
        let buckets = m.malloc(p.buckets * 8);
        for b in 0..p.buckets {
            m.store_ptr(buckets.add_words(b), Addr::NULL);
        }
        let first = m.load_ptr(head);
        m.store_ptr(v, first);
        m.store_word(v.add_words(1), id);
        m.store_word(v.add_words(2), u64::MAX);
        m.store_ptr(v.add_words(3), buckets);
        m.store_ptr(head, v);
        vertex_of.push(v);
    }
    // Edges: vertex id -> `degree` neighbours at deterministic offsets, with
    // symmetric weights so the MST is well-defined.
    for id in 0..p.vertices {
        let buckets = m.load_ptr(vertex_of[id as usize].add_words(3));
        for e in 1..=p.degree {
            scatter_pad(m, &mut rng);
            let nb = (id + e * e) % p.vertices;
            if nb == id {
                continue;
            }
            let weight = edge_weight(id, nb, p.vertices);
            insert_edge(m, buckets, p.buckets, nb, weight);
            let nb_buckets = m.load_ptr(vertex_of[nb as usize].add_words(3));
            insert_edge(m, nb_buckets, p.buckets, id, weight);
        }
    }

    // ---- One-shot optimization after construction.
    if optimized {
        list_linearize(m, head, VERTEX_DESC, &mut pool);
        // Bucket lists, per vertex in (new) list order.
        let mut bucket_slots = Vec::new();
        list_walk(m, head, 0, |m, v, tok| {
            let (buckets, t) = m.load_ptr_dep(v.add_words(3), tok);
            for b in 0..p.buckets {
                bucket_slots.push(buckets.add_words(b));
            }
            t
        });
        for slot in bucket_slots {
            list_linearize(m, slot, EDGE_DESC, &mut pool);
        }
    }

    // Remove the list-head vertex; it seeds the tree.
    let first_v = m.load_ptr(head);
    let chosen_id = m.load_word(first_v.add_words(1));
    let next0 = m.load_ptr(first_v);
    m.store_ptr(head, next0);

    (1, chosen_id, 0, 0, rng, head, pool)
}

/// Deterministic symmetric edge weight in `1..=16n`.
fn edge_weight(a: u64, b: u64, n: u64) -> u64 {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    (lo.wrapping_mul(0x9E37)
        .wrapping_add(hi.wrapping_mul(0x85EB))
        % (16 * n))
        + 1
}

fn insert_edge(m: &mut Machine, buckets: Addr, nbuckets: u64, key: u64, weight: u64) {
    let node = m.malloc(EDGE_WORDS * 8);
    let slot = buckets.add_words(key % nbuckets);
    let old = m.load_ptr(slot);
    m.store_ptr(node, old);
    m.store_word(node.add_words(1), key);
    m.store_word(node.add_words(2), weight);
    m.store_ptr(slot, node);
}

fn remove_vertex(m: &mut Machine, head: Addr, id: u64) {
    let mut prev_slot = head;
    let (mut v, mut tok) = m.load_ptr_dep(head, Token::ready());
    while !v.is_null() {
        let (vid, t1) = m.load_word_dep(v.add_words(1), tok);
        if vid == id {
            let (next, _) = m.load_ptr_dep(v, t1);
            m.store_ptr(prev_slot, next);
            return;
        }
        prev_slot = v;
        let (next, t2) = m.load_ptr_dep(v, t1);
        v = next;
        tok = t2;
    }
    panic!("vertex {id} not on the remaining list");
}

#[cfg(test)]
mod tests {
    use crate::registry::{run_ok as run, App, RunConfig, Variant};

    #[test]
    fn checksums_match_across_variants() {
        let orig = run(App::Mst, &RunConfig::new(Variant::Original).smoke());
        let opt = run(App::Mst, &RunConfig::new(Variant::Optimized).smoke());
        assert_eq!(orig.checksum, opt.checksum, "same MST weight");
        assert!(opt.stats.fwd.relocations > 0);
        assert!(orig.checksum > 0);
    }

    #[test]
    fn prefetch_preserves_results() {
        let orig = run(App::Mst, &RunConfig::new(Variant::Original).smoke());
        let np = run(
            App::Mst,
            &RunConfig::new(Variant::Original).smoke().with_prefetch(2),
        );
        let lp = run(
            App::Mst,
            &RunConfig::new(Variant::Optimized).smoke().with_prefetch(2),
        );
        assert_eq!(orig.checksum, np.checksum);
        assert_eq!(orig.checksum, lp.checksum);
    }

    #[test]
    fn mst_weight_is_invariant_of_machine_speed() {
        let a = run(App::Mst, &RunConfig::new(Variant::Original).smoke());
        let mut cfg = RunConfig::new(Variant::Original).smoke();
        cfg.sim.hierarchy.mem_latency = 1;
        let b = run(App::Mst, &cfg);
        assert_eq!(a.checksum, b.checksum);
        assert_ne!(a.stats.cycles(), b.stats.cycles());
    }

    #[test]
    fn vertex_list_relinearized_periodically() {
        let opt = run(App::Mst, &RunConfig::new(Variant::Optimized).smoke());
        // One-shot pass (vertices + edge lists) plus at least one periodic
        // re-linearization of the shrinking vertex list.
        let p = super::Params::for_scale(crate::registry::Scale::Smoke);
        assert!(
            opt.stats.fwd.relocations > p.vertices,
            "expected more relocations than vertices: {}",
            opt.stats.fwd.relocations
        );
    }
}
