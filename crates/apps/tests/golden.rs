//! Golden-checksum regression tests.
//!
//! The checksums below were captured from a verified run at smoke scale
//! with the default seed (12345). They pin down the exact workload
//! behaviour: an unintended change to an application kernel, the RNG, the
//! allocator or the functional memory model will show up here as a
//! checksum mismatch.
//!
//! If a workload is changed *intentionally*, regenerate the table by
//! running each app at smoke scale and pasting the new checksums.

use memfwd_apps::{run_ok as run, App, RunConfig, Variant};

const GOLDEN: [(App, u64); 8] = [
    (App::Health, 0x0000000051128597),
    (App::Mst, 0x0000000000000bfa),
    (App::Radiosity, 0x52b908c459595752),
    (App::Vis, 0x7d5ab56b682b228a),
    (App::Eqntott, 0x00000000001bda85),
    (App::Bh, 0x0a597c1c147d4cf1),
    (App::Compress, 0x6ff0327239124e75),
    (App::Smv, 0xde1120526afad793),
];

#[test]
fn smoke_checksums_match_golden_values() {
    for (app, want) in GOLDEN {
        let got = run(app, &RunConfig::new(Variant::Original).smoke()).checksum;
        assert_eq!(
            got, want,
            "{app}: golden checksum mismatch — {got:#018x} != {want:#018x}. \
             If the workload change is intentional, update tests/golden.rs."
        );
    }
}

#[test]
fn optimized_variants_match_golden_values_too() {
    // Transitively guaranteed by the safety tests, but pinning it here
    // catches a simultaneous regression of both variants.
    for (app, want) in GOLDEN {
        let got = run(app, &RunConfig::new(Variant::Optimized).smoke()).checksum;
        assert_eq!(got, want, "{app}: optimized variant diverged from golden");
    }
}
