//! Differential property suite for the epoch-parallel execution engine.
//!
//! `Machine::run_tasks` with `epoch_threads >= 1` must be **bit-identical**
//! to serial execution: equal checksums and equal statistics down to every
//! counter, with two invariant tiers —
//!
//! - across worker counts `>= 1` the *complete* `RunStats` (including the
//!   `EpochStats` bookkeeping block) is identical: commit decisions depend
//!   on task order and footprints, never on scheduling;
//! - against `epoch_threads == 0` (the plain serial loop) everything but
//!   the epoch block — which is then all zero — is identical.
//!
//! The properties drive whole application runs across apps × seeds at
//! thread counts {0, 1, 2, 4}, compose the engine with the `--scalar`
//! escape hatch, split runs at random checkpoint cadences so resumes land
//! mid-epoch-stream, and force replays with a seeded high-conflict
//! workload (every task read-modify-writes one shared word).

use memfwd::{Machine, SimConfig};
use memfwd_apps::{run_ck, run_ok, App, Checkpointer, CkOutcome, RunConfig, Variant};
use proptest::prelude::*;

fn config(variant: Variant, seed: u64, threads: usize, scalar: bool) -> RunConfig {
    let mut cfg = RunConfig::new(variant).smoke();
    cfg.seed = seed;
    cfg.sim.scalar_path = scalar;
    cfg.sim.epoch_threads = threads;
    cfg
}

/// Runs to completion; renders the deterministic statistics and the epoch
/// bookkeeping block separately (they have different identity tiers).
fn full_run(app: App, cfg: &RunConfig) -> (u64, String, String) {
    let out = run_ok(app, cfg);
    (
        out.checksum,
        format!("{:?}", out.stats.sans_epoch()),
        format!("{:?}", out.stats.epoch),
    )
}

/// Runs with a `stop_after(1)` checkpointer at `cadence` refs, then
/// resumes the captured snapshot to completion. Checkpoint boundaries sit
/// *between* epochs (a `run_tasks` group is atomic), so the resumed run
/// re-enters the epoch stream mid-way through it.
fn split_run(app: App, cfg: &RunConfig, cadence: u64) -> (u64, String, String) {
    let mut ck = Checkpointer::stop_after(1).with_every(cadence);
    match run_ck(app, cfg, &mut ck).expect("split run faulted") {
        CkOutcome::Done(out) => (
            out.checksum,
            format!("{:?}", out.stats.sans_epoch()),
            format!("{:?}", out.stats.epoch),
        ),
        CkOutcome::Stopped => {
            let image = ck.take_captured().expect("stopped run captured a snapshot");
            let mut resumed = Checkpointer::disabled().resume_from(image);
            match run_ck(app, cfg, &mut resumed).expect("resumed run faulted") {
                CkOutcome::Done(out) => (
                    out.checksum,
                    format!("{:?}", out.stats.sans_epoch()),
                    format!("{:?}", out.stats.epoch),
                ),
                CkOutcome::Stopped => unreachable!("disabled checkpointer never stops"),
            }
        }
    }
}

/// All wired apps × 3 fixed seeds: the exhaustive grid the suite promises,
/// cheap enough to run in full (smoke scale).
#[test]
fn all_apps_identical_across_thread_counts() {
    for app in App::ALL {
        for seed in [11u64, 4242, 90_001] {
            let base = full_run(app, &config(Variant::Optimized, seed, 0, false));
            let one = full_run(app, &config(Variant::Optimized, seed, 1, false));
            assert_eq!(
                (&base.0, &base.1),
                (&one.0, &one.1),
                "{} seed {seed}: threads 1 diverged from serial",
                app.name()
            );
            for threads in [2usize, 4] {
                let t = full_run(app, &config(Variant::Optimized, seed, threads, false));
                assert_eq!(
                    &one,
                    &t,
                    "{} seed {seed}: threads {threads} diverged from threads 1 \
                     (epoch block included)",
                    app.name()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random app/variant/seed probes of the same identity, plus the
    /// `--scalar` composition: the scalar path is epoch-eligible, so
    /// `--scalar --threads 4` must equal `--scalar` alone sans epoch.
    #[test]
    fn threaded_runs_are_bit_identical(
        app_idx in 0usize..8,
        variant in prop_oneof![
            Just(Variant::Original),
            Just(Variant::Optimized),
            Just(Variant::Static),
        ],
        seed in 1u64..100_000,
    ) {
        let app = App::ALL[app_idx];
        let base = full_run(app, &config(variant, seed, 0, false));
        let one = full_run(app, &config(variant, seed, 1, false));
        prop_assert_eq!(
            (&base.0, &base.1), (&one.0, &one.1),
            "{} {:?} seed {}: threads 1 diverged from serial", app.name(), variant, seed
        );
        for threads in [2usize, 4] {
            let t = full_run(app, &config(variant, seed, threads, false));
            prop_assert_eq!(
                &one, &t,
                "{} {:?} seed {}: threads {} diverged", app.name(), variant, seed, threads
            );
        }
        let scalar = full_run(app, &config(variant, seed, 0, true));
        let scalar4 = full_run(app, &config(variant, seed, 4, true));
        prop_assert_eq!(
            (&scalar.0, &scalar.1), (&scalar4.0, &scalar4.1),
            "{} {:?} seed {}: --scalar --threads 4 diverged from --scalar",
            app.name(), variant, seed
        );
    }

    /// Checkpoint/resume differential: a threaded run split at a random
    /// reference cadence (the resume lands mid-epoch-stream) must finish
    /// with the same checksum and statistics as the uninterrupted serial
    /// run — and with the same epoch bookkeeping as the unsplit threaded
    /// run up to the epochs the resumed half re-counts from zero.
    #[test]
    fn resumed_threaded_runs_agree(
        app_idx in 0usize..8,
        seed in 1u64..100_000,
        cadence in 2_000u64..60_000,
    ) {
        let app = App::ALL[app_idx];
        let whole = full_run(app, &config(Variant::Optimized, seed, 0, false));
        for threads in [1usize, 4] {
            let cfg = config(Variant::Optimized, seed, threads, false);
            let split = split_run(app, &cfg, cadence);
            prop_assert_eq!(
                (&whole.0, &whole.1), (&split.0, &split.1),
                "{} seed {} cadence {} threads {}: split run diverged",
                app.name(), seed, cadence, threads
            );
        }
        // Worker-count invariance holds across the split too (the resumed
        // half's epoch block counts only its own epochs, but identically
        // at every worker count >= 1).
        let s1 = split_run(app, &config(Variant::Optimized, seed, 1, false), cadence);
        let s4 = split_run(app, &config(Variant::Optimized, seed, 4, false), cadence);
        prop_assert_eq!(
            &s1, &s4,
            "{} seed {} cadence {}: resumed epoch bookkeeping diverged",
            app.name(), seed, cadence
        );
    }
}

/// A seeded high-conflict workload: every task read-modify-writes the same
/// shared word, so every task after the first reads a word an earlier task
/// wrote. The engine must surface the replays in `EpochStats` (nonzero),
/// keep them identical across worker counts, and still produce the serial
/// result.
#[test]
fn high_conflict_workload_forces_replays() {
    let run = |threads: usize| {
        let mut m = Machine::new(SimConfig::default().with_epoch_threads(threads));
        let shared = m.malloc(4096);
        let seen = m.run_tasks(16, |_, d| {
            let v = d.load_word(shared);
            d.store_word(shared, v + 1);
            v
        });
        let final_val = m.load_word(shared);
        (seen, final_val, m.finish())
    };
    let (seen0, final0, stats0) = run(0);
    assert_eq!(final0, 16, "serial RMW chain sums to the task count");
    let (seen1, final1, stats1) = run(1);
    assert_eq!(seen1, seen0);
    assert_eq!(final1, final0);
    assert_eq!(stats1.sans_epoch(), stats0.sans_epoch());
    assert!(
        stats1.epoch.replayed >= 15,
        "every task past the first must conflict: {:?}",
        stats1.epoch
    );
    // RMW tasks rewrite the word they misread, so the collisions classify
    // as write/write (read-modify-write), not pure-read dependences.
    assert!(stats1.epoch.conflicts_ww >= 15, "{:?}", stats1.epoch);
    for threads in [2usize, 4] {
        let (seen, final_val, stats) = run(threads);
        assert_eq!(seen, seen0, "threads {threads}");
        assert_eq!(final_val, final0, "threads {threads}");
        assert_eq!(
            stats, stats1,
            "threads {threads}: epoch bookkeeping diverged"
        );
    }
}
