//! Differential property suite for the batched hot path.
//!
//! The batched/fast demand path must be **bit-identical** to the fully
//! general scalar path (`SimConfig::scalar_path`, the `--scalar` escape
//! hatch): not just equal checksums, but equal statistics down to every
//! counter — cycles, cache hits, graduation slots, forwarding stats. These
//! properties drive a random app × variant × seed grid through whole
//! application runs both ways and compare the complete `RunStats` debug
//! rendering (the statdump's source of truth), plus checkpoint/resume
//! splits at random cadences to prove the identity holds across snapshot
//! boundaries too.

use memfwd_apps::{run_ck, run_ok, App, Checkpointer, CkOutcome, RunConfig, Variant};
use proptest::prelude::*;

fn config(variant: Variant, seed: u64, scalar: bool) -> RunConfig {
    let mut cfg = RunConfig::new(variant).smoke();
    cfg.seed = seed;
    cfg.sim.scalar_path = scalar;
    cfg
}

/// Runs to completion and renders the full statistics block — every
/// counter the statdump prints derives from this.
fn full_run(app: App, cfg: &RunConfig) -> (u64, String) {
    let out = run_ok(app, cfg);
    (out.checksum, format!("{:?}", out.stats))
}

/// Runs with a `stop_after(1)` checkpointer at `cadence` refs, then
/// resumes the captured snapshot to completion. Falls back to the
/// uninterrupted result when the run finishes before the first boundary
/// fires (short app × large cadence — still a valid differential case).
fn split_run(app: App, cfg: &RunConfig, cadence: u64) -> (u64, String) {
    let mut ck = Checkpointer::stop_after(1).with_every(cadence);
    match run_ck(app, cfg, &mut ck).expect("split run faulted") {
        CkOutcome::Done(out) => (out.checksum, format!("{:?}", out.stats)),
        CkOutcome::Stopped => {
            let image = ck.take_captured().expect("stopped run captured a snapshot");
            let mut resumed = Checkpointer::disabled().resume_from(image);
            match run_ck(app, cfg, &mut resumed).expect("resumed run faulted") {
                CkOutcome::Done(out) => (out.checksum, format!("{:?}", out.stats)),
                CkOutcome::Stopped => unreachable!("disabled checkpointer never stops"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Whole-run statdump bit-identity: batched vs scalar across a random
    /// app/variant/seed grid.
    #[test]
    fn batched_and_scalar_statdumps_are_bit_identical(
        app_idx in 0usize..8,
        variant in prop_oneof![
            Just(Variant::Original),
            Just(Variant::Optimized),
            Just(Variant::Static),
        ],
        seed in 1u64..100_000,
    ) {
        let app = App::ALL[app_idx];
        let batched = full_run(app, &config(variant, seed, false));
        let scalar = full_run(app, &config(variant, seed, true));
        prop_assert_eq!(
            &batched.0, &scalar.0,
            "{} {:?} seed {}: checksum diverged", app.name(), variant, seed
        );
        prop_assert_eq!(
            &batched.1, &scalar.1,
            "{} {:?} seed {}: statistics diverged", app.name(), variant, seed
        );
    }

    /// Checkpoint/resume differential: a run split at a random reference
    /// cadence must finish with the same checksum and statistics as the
    /// uninterrupted run, on both paths — and the two paths must agree
    /// with each other.
    #[test]
    fn resumed_runs_agree_across_paths(
        app_idx in 0usize..8,
        seed in 1u64..100_000,
        cadence in 2_000u64..60_000,
    ) {
        let app = App::ALL[app_idx];
        let variant = Variant::Optimized;
        for scalar in [false, true] {
            let cfg = config(variant, seed, scalar);
            let whole = full_run(app, &cfg);
            let split = split_run(app, &cfg, cadence);
            prop_assert_eq!(
                &whole, &split,
                "{} seed {} cadence {} scalar={}: split run diverged",
                app.name(), seed, cadence, scalar
            );
        }
        // Cross-path: the batched split must equal the scalar split.
        let b = split_run(app, &config(variant, seed, false), cadence);
        let s = split_run(app, &config(variant, seed, true), cadence);
        prop_assert_eq!(
            &b, &s,
            "{} seed {} cadence {}: batched/scalar resumed runs diverged",
            app.name(), seed, cadence
        );
    }
}
