//! The service wire protocol: newline-delimited JSON over a local socket.
//!
//! Every request is one JSON object on one line carrying an `"op"` key;
//! every response is one JSON object on one line carrying `"ok"` (bool)
//! and `"type"` (the response shape). Operations:
//!
//! | op       | request fields            | success response type        |
//! |----------|---------------------------|------------------------------|
//! | `submit` | `spec`, optional `options`| `accepted` (or `shed` /      |
//! |          |                           | `draining`, both `ok: false`)|
//! | `status` | `job`                     | `status`                     |
//! | `report` | `job`                     | `report` (full JSON report,  |
//! |          |                           | escaped into one string)     |
//! | `health` | —                         | `health` (always answered)   |
//! | `stats`  | —                         | `stats`                      |
//! | `drain`  | —                         | `draining` (starts graceful  |
//! |          |                           | drain, like SIGTERM)         |
//!
//! The typed shed response is the backpressure contract: an overloaded
//! server answers `{"ok": false, "type": "shed", "reason": ...,
//! "queue_depth": N, "limit": M}` instead of queueing without bound, and
//! `health`/`stats` keep answering while it sheds.
//!
//! Sweep specs travel as the natural JSON shape of the PR-3 grid:
//! `{"apps": [...], "variants": [...], "line_bytes": [...],
//! "mem_latency": [...], "seeds": [...], "scale": "smoke"}` — the same
//! axes the `memfwd_sweep` CLI takes, so the client mode can forward its
//! flags verbatim.

use memfwd_apps::{App, Scale, Variant};
use memfwd_farm::minijson::{json_escape, parse_json, Json};
use memfwd_farm::SweepSpec;

/// Per-job supervision options a client may attach to `submit`. Missing
/// fields take these defaults; unknown fields are rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOptions {
    /// Maximum retries after a cell's first attempt.
    pub retries: u32,
    /// Base backoff between attempts, in milliseconds.
    pub backoff_ms: u64,
    /// Per-cell no-progress deadline in milliseconds; `None` uses the
    /// server default.
    pub cell_timeout_ms: Option<u64>,
    /// Whole-job deadline in milliseconds; a job that exceeds it is
    /// marked failed (its journal is kept, so a resubmission is cheap).
    pub job_timeout_ms: Option<u64>,
}

impl Default for JobOptions {
    fn default() -> JobOptions {
        JobOptions {
            retries: 2,
            backoff_ms: 50,
            cell_timeout_ms: None,
            job_timeout_ms: None,
        }
    }
}

/// A parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Submit a grid for execution.
    Submit {
        /// The sweep grid to run.
        spec: SweepSpec,
        /// Supervision options.
        options: JobOptions,
    },
    /// Query one job's progress.
    Status {
        /// The job id from `accepted`.
        job: String,
    },
    /// Fetch one finished job's full report.
    Report {
        /// The job id from `accepted`.
        job: String,
    },
    /// Liveness/degradation probe; answered even while shedding or
    /// draining.
    Health,
    /// Counter snapshot (cache hit rate, quarantine counts, queue depth).
    Stats,
    /// Begin a graceful drain, exactly like SIGTERM.
    Drain,
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Smoke => "smoke",
        Scale::Bench => "bench",
    }
}

fn scale_from_name(name: &str) -> Result<Scale, String> {
    match name {
        "smoke" => Ok(Scale::Smoke),
        "bench" => Ok(Scale::Bench),
        other => Err(format!("unknown scale '{other}'")),
    }
}

/// Serializes a sweep spec as a compact one-line JSON object.
pub fn spec_to_json(spec: &SweepSpec) -> String {
    let strs = |names: Vec<&str>| {
        names
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(",")
    };
    let nums = |ns: &[u64]| ns.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
    format!(
        "{{\"apps\":[{}],\"variants\":[{}],\"line_bytes\":[{}],\"mem_latency\":[{}],\"seeds\":[{}],\"scale\":\"{}\"}}",
        strs(spec.apps.iter().map(|a| a.name()).collect()),
        strs(spec.variants.iter().map(|v| v.name()).collect()),
        nums(&spec.line_bytes),
        nums(&spec.mem_latency),
        nums(&spec.seeds),
        scale_name(spec.scale),
    )
}

fn str_list(v: &Json, key: &str) -> Result<Vec<String>, String> {
    let arr = v
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("spec: \"{key}\" must be an array"))?;
    arr.iter()
        .map(|e| {
            e.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("spec: \"{key}\" entries must be strings"))
        })
        .collect()
}

fn num_list(v: &Json, key: &str) -> Result<Vec<u64>, String> {
    let arr = v
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("spec: \"{key}\" must be an array"))?;
    arr.iter()
        .map(|e| {
            e.as_u64()
                .ok_or_else(|| format!("spec: \"{key}\" entries must be non-negative integers"))
        })
        .collect()
}

/// Parses a sweep spec from its JSON object form.
///
/// # Errors
///
/// A description of the first malformed or missing field.
pub fn spec_from_json(v: &Json) -> Result<SweepSpec, String> {
    let apps = str_list(v, "apps")?
        .iter()
        .map(|n| App::from_name(n).ok_or_else(|| format!("unknown app '{n}'")))
        .collect::<Result<Vec<_>, _>>()?;
    let variants = str_list(v, "variants")?
        .iter()
        .map(|n| Variant::from_name(n).ok_or_else(|| format!("unknown variant '{n}'")))
        .collect::<Result<Vec<_>, _>>()?;
    let scale = scale_from_name(
        v.get("scale")
            .and_then(Json::as_str)
            .ok_or("spec: \"scale\" must be a string")?,
    )?;
    Ok(SweepSpec {
        apps,
        variants,
        line_bytes: num_list(v, "line_bytes")?,
        mem_latency: num_list(v, "mem_latency")?,
        seeds: num_list(v, "seeds")?,
        scale,
    })
}

/// Serializes job options as a compact one-line JSON object.
pub fn options_to_json(o: &JobOptions) -> String {
    let mut fields = vec![
        format!("\"retries\":{}", o.retries),
        format!("\"backoff_ms\":{}", o.backoff_ms),
    ];
    if let Some(ms) = o.cell_timeout_ms {
        fields.push(format!("\"cell_timeout_ms\":{ms}"));
    }
    if let Some(ms) = o.job_timeout_ms {
        fields.push(format!("\"job_timeout_ms\":{ms}"));
    }
    format!("{{{}}}", fields.join(","))
}

/// Parses job options; missing fields take the [`JobOptions::default`]
/// values, unknown fields are rejected (a typo must not silently drop a
/// deadline).
///
/// # Errors
///
/// A description of the first malformed or unknown field.
pub fn options_from_json(v: &Json) -> Result<JobOptions, String> {
    let mut o = JobOptions::default();
    let Json::Obj(fields) = v else {
        return Err("options must be an object".into());
    };
    for (key, val) in fields {
        let num = || -> Result<u64, String> {
            val.as_u64()
                .ok_or_else(|| format!("options: \"{key}\" must be a non-negative integer"))
        };
        match key.as_str() {
            "retries" => o.retries = num()? as u32,
            "backoff_ms" => o.backoff_ms = num()?,
            "cell_timeout_ms" => o.cell_timeout_ms = Some(num()?),
            "job_timeout_ms" => o.job_timeout_ms = Some(num()?),
            other => return Err(format!("options: unknown field \"{other}\"")),
        }
    }
    Ok(o)
}

/// Parses one request line.
///
/// # Errors
///
/// A description of the first problem; the server ships it back as a
/// typed `error` response rather than dropping the connection.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse_json(line)?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("request needs a string \"op\" field")?;
    let job_field = |v: &Json| -> Result<String, String> {
        v.get("job")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("op \"{op}\" needs a string \"job\" field"))
    };
    match op {
        "submit" => {
            let spec = spec_from_json(v.get("spec").ok_or("submit needs a \"spec\" object")?)?;
            let options = match v.get("options") {
                Some(o) => options_from_json(o)?,
                None => JobOptions::default(),
            };
            Ok(Request::Submit { spec, options })
        }
        "status" => Ok(Request::Status {
            job: job_field(&v)?,
        }),
        "report" => Ok(Request::Report {
            job: job_field(&v)?,
        }),
        "health" => Ok(Request::Health),
        "stats" => Ok(Request::Stats),
        "drain" => Ok(Request::Drain),
        other => Err(format!("unknown op \"{other}\"")),
    }
}

// ---------------------------------------------------------------------
// Response builders. Each returns one line (no trailing newline).
// ---------------------------------------------------------------------

/// `submit` succeeded; the job is queued.
pub fn resp_accepted(job: &str) -> String {
    format!(
        "{{\"ok\":true,\"type\":\"accepted\",\"job\":\"{}\"}}",
        json_escape(job)
    )
}

/// The typed backpressure response: the job was refused because a bound
/// would be exceeded. Nothing was queued; the client may retry later.
pub fn resp_shed(reason: &str, queue_depth: usize, limit: usize) -> String {
    format!(
        "{{\"ok\":false,\"type\":\"shed\",\"reason\":\"{}\",\"queue_depth\":{queue_depth},\"limit\":{limit}}}",
        json_escape(reason)
    )
}

/// The server is draining and admits no new work.
pub fn resp_draining() -> String {
    "{\"ok\":false,\"type\":\"draining\"}".to_string()
}

/// A malformed request or unknown job.
pub fn resp_error(msg: &str) -> String {
    format!(
        "{{\"ok\":false,\"type\":\"error\",\"error\":\"{}\"}}",
        json_escape(msg)
    )
}

/// One job's progress.
pub fn resp_status(
    job: &str,
    state: &str,
    cells_total: usize,
    cells_done: usize,
    degraded: bool,
) -> String {
    format!(
        "{{\"ok\":true,\"type\":\"status\",\"job\":\"{}\",\"state\":\"{}\",\"cells_total\":{cells_total},\"cells_done\":{cells_done},\"degraded\":{degraded}}}",
        json_escape(job),
        json_escape(state),
    )
}

/// A finished job's full `BENCH_sweep.json` text, escaped into one JSON
/// string so the response stays one line. The client unescapes and writes
/// it verbatim — byte-identical to a local run's report file.
pub fn resp_report(job: &str, degraded: bool, report_json: &str) -> String {
    format!(
        "{{\"ok\":true,\"type\":\"report\",\"job\":\"{}\",\"degraded\":{degraded},\"report\":\"{}\"}}",
        json_escape(job),
        json_escape(report_json)
    )
}

/// The liveness probe: overall state plus the two numbers an operator
/// watches first.
pub fn resp_health(state: &str, queue_depth: usize, jobs_pending: usize) -> String {
    format!(
        "{{\"ok\":true,\"type\":\"health\",\"state\":\"{}\",\"queue_depth\":{queue_depth},\"jobs_pending\":{jobs_pending}}}",
        json_escape(state)
    )
}

/// A point-in-time snapshot of the service counters, for `stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Jobs accepted since start.
    pub jobs_accepted: u64,
    /// Jobs that reached a final report.
    pub jobs_completed: u64,
    /// Submissions refused with a typed shed response.
    pub jobs_shed: u64,
    /// Cells computed by a worker this life.
    pub cells_executed: u64,
    /// Cells served from the persistent result cache.
    pub cells_from_cache: u64,
    /// Cells replayed from a campaign journal (crash resume).
    pub cells_from_journal: u64,
    /// Cache entries found corrupt, quarantined, and recomputed.
    pub cache_entries_quarantined: u64,
    /// Cache lookups served by the in-memory hot tier (no disk I/O).
    pub cache_hot_hits: u64,
    /// Cache lookups that fell through the hot tier to disk.
    pub cache_hot_misses: u64,
    /// Cells that ended poisoned or timed out across all jobs.
    pub cells_quarantined: u64,
    /// Unfinished cells across queued and running jobs, right now.
    pub queue_depth: u64,
    /// Jobs queued or running, right now.
    pub jobs_pending: u64,
}

impl StatsSnapshot {
    /// Fraction of resolved cells served from the cache (0.0 when no
    /// cell has resolved yet).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cells_executed + self.cells_from_cache;
        if total == 0 {
            0.0
        } else {
            self.cells_from_cache as f64 / total as f64
        }
    }
}

/// The `stats` response.
pub fn resp_stats(s: &StatsSnapshot) -> String {
    format!(
        "{{\"ok\":true,\"type\":\"stats\",\"jobs_accepted\":{},\"jobs_completed\":{},\"jobs_shed\":{},\"cells_executed\":{},\"cells_from_cache\":{},\"cells_from_journal\":{},\"cache_entries_quarantined\":{},\"cache_hot_hits\":{},\"cache_hot_misses\":{},\"cells_quarantined\":{},\"queue_depth\":{},\"jobs_pending\":{},\"cache_hit_rate\":{:.4}}}",
        s.jobs_accepted,
        s.jobs_completed,
        s.jobs_shed,
        s.cells_executed,
        s.cells_from_cache,
        s.cells_from_journal,
        s.cache_entries_quarantined,
        s.cache_hot_hits,
        s.cache_hot_misses,
        s.cells_quarantined,
        s.queue_depth,
        s.jobs_pending,
        s.cache_hit_rate(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrips_through_json() {
        let spec = SweepSpec::default();
        let v = parse_json(&spec_to_json(&spec)).expect("parses");
        let back = spec_from_json(&v).expect("spec");
        assert_eq!(back.apps, spec.apps);
        assert_eq!(back.variants, spec.variants);
        assert_eq!(back.line_bytes, spec.line_bytes);
        assert_eq!(back.mem_latency, spec.mem_latency);
        assert_eq!(back.seeds, spec.seeds);
        assert_eq!(back.scale, spec.scale);
    }

    #[test]
    fn options_default_roundtrip_and_unknown_field_rejected() {
        let o = JobOptions {
            retries: 1,
            backoff_ms: 0,
            cell_timeout_ms: Some(2500),
            job_timeout_ms: None,
        };
        let v = parse_json(&options_to_json(&o)).expect("parses");
        assert_eq!(options_from_json(&v).expect("options"), o);
        let v = parse_json("{}").expect("parses");
        assert_eq!(options_from_json(&v).expect("empty"), JobOptions::default());
        let v = parse_json("{\"retires\":3}").expect("parses");
        assert!(options_from_json(&v).is_err(), "typo must be rejected");
    }

    #[test]
    fn requests_parse_and_malformed_are_typed() {
        let line = format!(
            "{{\"op\":\"submit\",\"spec\":{}}}",
            spec_to_json(&SweepSpec::default())
        );
        assert!(matches!(parse_request(&line), Ok(Request::Submit { .. })));
        assert!(matches!(
            parse_request("{\"op\":\"status\",\"job\":\"job-000001\"}"),
            Ok(Request::Status { .. })
        ));
        assert!(matches!(
            parse_request("{\"op\":\"health\"}"),
            Ok(Request::Health)
        ));
        assert!(matches!(
            parse_request("{\"op\":\"drain\"}"),
            Ok(Request::Drain)
        ));
        assert!(parse_request("{\"op\":\"explode\"}").is_err());
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"op\":\"report\"}").is_err(), "missing job");
    }

    #[test]
    fn responses_are_single_parseable_lines() {
        let report_text = "{\n  \"schema_version\": 2\n}\n";
        for line in [
            resp_accepted("job-000001"),
            resp_shed("queue_full", 4096, 4096),
            resp_draining(),
            resp_error("broken \"quote\""),
            resp_status("job-000001", "running", 8, 3, false),
            resp_report("job-000001", false, report_text),
            resp_health("ok", 0, 0),
            resp_stats(&StatsSnapshot::default()),
        ] {
            assert!(!line.contains('\n'), "{line}");
            parse_json(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        // The escaped report unescapes back to the exact original text.
        let v = parse_json(&resp_report("j", true, report_text)).expect("parses");
        assert_eq!(v.get("report").and_then(Json::as_str), Some(report_text));
        assert_eq!(v.get("degraded").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn stats_hit_rate_is_guarded() {
        let mut s = StatsSnapshot::default();
        assert_eq!(s.cache_hit_rate(), 0.0);
        s.cells_from_cache = 9;
        s.cells_executed = 1;
        assert!((s.cache_hit_rate() - 0.9).abs() < 1e-9);
    }
}
