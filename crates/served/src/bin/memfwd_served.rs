//! `memfwd_served` — the always-on sweep-farm service.
//!
//! Listens on a local Unix socket for newline-delimited JSON requests
//! (`submit` / `status` / `report` / `health` / `stats` / `drain`), runs
//! accepted grids through the supervised worker pool with a persistent
//! corruption-quarantining result cache, drains gracefully on SIGTERM,
//! and resumes crashed campaigns with `--resume`.
//!
//! Exit codes: `0` clean drain, `2` usage error, `10` startup failure.
//! The hidden `--worker-cell` mode is the re-exec entry point for the
//! farm's subprocess workers and uses the worker protocol's own codes.

fn usage() -> String {
    "memfwd_served - always-on sweep-farm service over a Unix socket

USAGE:
    memfwd_served [OPTIONS]

OPTIONS:
    --socket PATH            socket path to listen on [memfwd.sock]
    --state-dir PATH         durable state directory [memfwd-served]
    --jobs N                 worker threads per job [2]
    --max-pending-jobs N     admission bound: queued+running jobs [8]
    --max-queued-cells N     admission bound: unfinished cells [4096]
    --max-cells-per-job N    largest accepted submission [65536]
    --in-process             run cells in-process (no worker subprocesses)
    --cell-timeout-ms MS     default per-cell no-progress deadline
    --ckpt-every N           worker checkpoint cadence (demand refs)
    --resume                 re-enqueue unfinished jobs from the state dir
    --help                   print this help

PROTOCOL (newline-delimited JSON on the socket):
    {\"op\":\"submit\",\"spec\":{...}}   -> accepted | shed | draining
    {\"op\":\"status\",\"job\":\"...\"}  -> job state and progress
    {\"op\":\"report\",\"job\":\"...\"}  -> the sweep report JSON
    {\"op\":\"health\"}                  -> ok | degraded | draining
    {\"op\":\"stats\"}                   -> counters incl. cache hit rate
    {\"op\":\"drain\"}                   -> begin graceful drain

EXIT CODES:
    0   drained cleanly (all in-flight cells journaled)
    2   usage error
    10  startup failure (bind, state dir, resume scan)
"
    .to_string()
}

#[cfg(unix)]
fn main() {
    use memfwd_served::server::{serve, ServerOptions};
    use std::time::Duration;

    let args: Vec<String> = std::env::args().skip(1).collect();

    // Hidden re-exec mode: the farm's subprocess workers run cells by
    // re-invoking this binary, exactly as `memfwd_sweep` workers do.
    if args.first().map(String::as_str) == Some("--worker-cell") {
        match memfwd_farm::parse_worker_args(args.iter().skip(1).cloned()) {
            Ok(w) => std::process::exit(memfwd_farm::run_worker_cell(&w)),
            Err(e) => {
                eprintln!("memfwd_served --worker-cell: {e}");
                std::process::exit(2);
            }
        }
    }

    let mut opts = ServerOptions::default();
    let die = |msg: &str| -> ! {
        eprintln!("memfwd_served: {msg}\n\n{}", usage());
        std::process::exit(2);
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> &str {
            match it.next() {
                Some(v) => v,
                None => die(&format!("{name} requires a value")),
            }
        };
        let num = |name: &str, v: &str| -> u64 {
            match v.parse::<u64>() {
                Ok(n) => n,
                Err(_) => die(&format!("{name}: expected a number, got \"{v}\"")),
            }
        };
        match arg.as_str() {
            "--socket" => opts.socket = take("--socket").into(),
            "--state-dir" => opts.state_dir = take("--state-dir").into(),
            "--jobs" => {
                let v = take("--jobs");
                opts.jobs = num("--jobs", v).max(1) as usize;
            }
            "--max-pending-jobs" => {
                let v = take("--max-pending-jobs");
                opts.max_pending_jobs = num("--max-pending-jobs", v).max(1) as usize;
            }
            "--max-queued-cells" => {
                let v = take("--max-queued-cells");
                opts.max_queued_cells = num("--max-queued-cells", v).max(1) as usize;
            }
            "--max-cells-per-job" => {
                let v = take("--max-cells-per-job");
                opts.max_cells_per_job = num("--max-cells-per-job", v).max(1) as usize;
            }
            "--in-process" => opts.in_process = true,
            "--cell-timeout-ms" => {
                let v = take("--cell-timeout-ms");
                opts.cell_timeout = Some(Duration::from_millis(num("--cell-timeout-ms", v)));
            }
            "--ckpt-every" => {
                let v = take("--ckpt-every");
                opts.ckpt_every = Some(num("--ckpt-every", v));
            }
            "--resume" => opts.resume = true,
            "--help" | "-h" => {
                print!("{}", usage());
                return;
            }
            other => die(&format!("unknown argument \"{other}\"")),
        }
    }

    if let Err(e) = serve(opts) {
        eprintln!("memfwd_served: {e}");
        std::process::exit(10);
    }
}

#[cfg(not(unix))]
fn main() {
    eprintln!(
        "memfwd_served: the service requires Unix domain sockets\n\n{}",
        usage()
    );
    std::process::exit(10);
}
