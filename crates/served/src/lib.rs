//! Always-on sweep-farm service: the long-running job server behind the
//! `memfwd_served` binary.
//!
//! The farm crate made one campaign survive any single-cell failure; this
//! crate makes a *process that accepts campaigns forever* survive the
//! failure modes of long-running services, holding the daemon to the same
//! standard the paper holds relocated data to — every failure mode is
//! intercepted and repaired, never silently absorbed:
//!
//! - **Admission control & backpressure** ([`server`]): a bounded queue
//!   of pending jobs and queued cells. An overloaded server answers
//!   `submit` with a *typed shed response* (reason, current depth, limit)
//!   instead of growing without bound, and keeps answering `health` and
//!   `stats` while doing so.
//! - **Result cache with corruption quarantine** ([`cache`]): completed
//!   cells are persisted as sealed `MFWDCELL` entries keyed by the cell's
//!   content hash. A warm resubmission of the same grid is served from
//!   the cache without recomputation — but a truncated, bit-flipped, or
//!   foreign-keyed entry is detected by the container checks, moved to a
//!   quarantine sidecar directory, counted in `stats`, and recomputed.
//!   A corrupt entry is *never* served.
//! - **Graceful drain vs. crash resume** ([`signal`], [`server`]):
//!   SIGTERM stops admission, lets in-flight cells reach journaled
//!   terminal outcomes, and exits 0; SIGKILL loses nothing durable — on
//!   restart with `--resume`, unfinished jobs re-enqueue from their
//!   `job.spec`, finished cells replay from the campaign journal, and
//!   half-finished cells restart from their worker checkpoints.
//! - **Determinism** ([`proto`]): the report a client fetches is the
//!   exact `BENCH_sweep.json` a local `memfwd_sweep` run of the same grid
//!   would produce — byte-identical after `--strip-volatile` whether the
//!   cells were computed, cached, or replayed across a kill.
//!
//! The wire protocol is newline-delimited JSON over a local Unix socket;
//! see [`proto`] for the operation set.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod cache;
pub mod proto;
#[cfg(unix)]
pub mod server;
pub mod signal;

pub use cache::{CacheLookup, ResultCache};
pub use proto::{JobOptions, Request};
#[cfg(unix)]
pub use server::{serve, ServerOptions};
