//! The persistent, corruption-quarantining result cache.
//!
//! Completed cells are stored as sealed `MFWDCELL` containers (the same
//! magic + version + length + FNV-1a-64 checksum discipline workers use
//! to hand results to the supervisor), one file per cell content hash:
//! `cache/cell-<key>.mfwdcell`. Because the key is a content hash of the
//! full cell configuration — app, variant, line size, latency, seed,
//! scale — a hit is definitionally the result the cell would compute, so
//! a warm resubmission of a grid is served without simulation and still
//! bit-identical.
//!
//! The failure model is storage rot between server lives: truncation,
//! bit flips, torn writes, or a foreign file dropped into the directory.
//! Every lookup revalidates the container; anything unsound is *moved*
//! to the `quarantine/` sidecar (preserved for forensics, impossible to
//! serve) and reported as [`CacheLookup::Quarantined`] so the caller
//! recomputes and the `stats` endpoint counts it. A corrupt entry is
//! never returned as a hit — the cache degrades to slow, never to wrong.

use memfwd_farm::worker::{read_result_file, write_result_file, CellResultFile};
use memfwd_farm::JournalError;
use std::path::{Path, PathBuf};

/// A content-hash-keyed store of sealed cell results under a state
/// directory, with a quarantine sidecar for entries that fail
/// revalidation.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    quarantine: PathBuf,
}

/// What a cache lookup found.
#[derive(Debug)]
pub enum CacheLookup {
    /// A sealed, key-matching entry (boxed: it carries the full
    /// `RunStats` block).
    Hit(Box<CellResultFile>),
    /// No entry for this key.
    Miss,
    /// An entry existed but failed revalidation (the typed reason); it
    /// was moved to quarantine and the cell must be recomputed.
    Quarantined(JournalError),
}

impl ResultCache {
    /// Opens (creating if needed) the cache under `state_dir`: entries in
    /// `state_dir/cache/`, quarantined files in `state_dir/quarantine/`.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if either directory cannot be created.
    pub fn open(state_dir: &Path) -> Result<ResultCache, JournalError> {
        let dir = state_dir.join("cache");
        let quarantine = state_dir.join("quarantine");
        std::fs::create_dir_all(&dir).map_err(|e| JournalError::Io(e.kind()))?;
        std::fs::create_dir_all(&quarantine).map_err(|e| JournalError::Io(e.kind()))?;
        Ok(ResultCache { dir, quarantine })
    }

    /// The on-disk path of the entry for `key`.
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("cell-{key:016x}.mfwdcell"))
    }

    /// Looks up `key`, revalidating the sealed container. A corrupt or
    /// foreign-keyed entry is quarantined as a side effect.
    pub fn lookup(&self, key: u64) -> CacheLookup {
        let path = self.entry_path(key);
        match read_result_file(&path) {
            Ok(r) if r.key == key => CacheLookup::Hit(Box::new(r)),
            // The container is intact but seals a different cell's
            // result under this file name — misfiled, never servable.
            Ok(_) => {
                self.quarantine_entry(&path, key);
                CacheLookup::Quarantined(JournalError::BadValue)
            }
            Err(JournalError::Io(std::io::ErrorKind::NotFound)) => CacheLookup::Miss,
            Err(e) => {
                self.quarantine_entry(&path, key);
                CacheLookup::Quarantined(e)
            }
        }
    }

    /// Stores a completed cell's sealed result (atomic tmp + rename, so
    /// a kill mid-store leaves no torn entry under the final name).
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the write fails; the caller treats the
    /// store as best-effort (the result is still journaled).
    pub fn store(&self, r: &CellResultFile) -> Result<(), JournalError> {
        write_result_file(&self.entry_path(r.key), r)
    }

    /// Moves a bad entry into the quarantine sidecar under a unique
    /// name. Falls back to deletion if the move fails — a poisoned entry
    /// must never stay where a lookup could read it again.
    fn quarantine_entry(&self, path: &Path, key: u64) {
        for n in 0u32.. {
            let dst = self
                .quarantine
                .join(format!("cell-{key:016x}.{n}.mfwdcell"));
            if dst.exists() {
                continue;
            }
            if std::fs::rename(path, &dst).is_ok() {
                return;
            }
            break;
        }
        std::fs::remove_file(path).ok();
    }

    /// Number of valid-named entries currently in the cache directory.
    pub fn entries(&self) -> usize {
        count_files(&self.dir)
    }

    /// Number of files in the quarantine sidecar.
    pub fn quarantined(&self) -> usize {
        count_files(&self.quarantine)
    }
}

fn count_files(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .filter(|e| e.file_type().is_ok_and(|t| t.is_file()))
                .count()
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memfwd::RunStats;

    fn tmp_state(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("memfwd-cache-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    fn sample(key: u64) -> CellResultFile {
        let mut stats = RunStats::default();
        stats.pipeline.cycles = 4242;
        CellResultFile {
            key,
            checksum: 0xDEAD_BEEF,
            refs: 77,
            host_nanos: 9,
            stats,
        }
    }

    #[test]
    fn store_hit_roundtrip() {
        let state = tmp_state("roundtrip");
        let cache = ResultCache::open(&state).expect("open");
        assert!(matches!(cache.lookup(1), CacheLookup::Miss));
        cache.store(&sample(1)).expect("store");
        match cache.lookup(1) {
            CacheLookup::Hit(r) => assert_eq!(*r, sample(1)),
            other => panic!("expected hit: {other:?}"),
        }
        assert_eq!(cache.entries(), 1);
        assert_eq!(cache.quarantined(), 0);
        std::fs::remove_dir_all(&state).ok();
    }

    #[test]
    fn corrupt_entry_is_quarantined_not_served() {
        let state = tmp_state("corrupt");
        let cache = ResultCache::open(&state).expect("open");
        cache.store(&sample(2)).expect("store");
        let path = cache.entry_path(2);
        let mut bytes = std::fs::read(&path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).expect("corrupt");
        assert!(matches!(cache.lookup(2), CacheLookup::Quarantined(_)));
        // The entry left the cache dir entirely; next lookup is a miss.
        assert!(!path.exists());
        assert!(matches!(cache.lookup(2), CacheLookup::Miss));
        assert_eq!(cache.quarantined(), 1);
        // Recompute-and-store restores service.
        cache.store(&sample(2)).expect("restore");
        assert!(matches!(cache.lookup(2), CacheLookup::Hit(_)));
        std::fs::remove_dir_all(&state).ok();
    }

    #[test]
    fn foreign_key_entry_is_quarantined() {
        let state = tmp_state("foreign");
        let cache = ResultCache::open(&state).expect("open");
        // A valid container sealed for key 7, misfiled under key 8's name.
        write_result_file(&cache.entry_path(8), &sample(7)).expect("misfile");
        assert!(matches!(
            cache.lookup(8),
            CacheLookup::Quarantined(JournalError::BadValue)
        ));
        assert_eq!(cache.quarantined(), 1);
        std::fs::remove_dir_all(&state).ok();
    }
}
