//! The persistent, corruption-quarantining result cache.
//!
//! Completed cells are stored as sealed `MFWDCELL` containers (the same
//! magic + version + length + FNV-1a-64 checksum discipline workers use
//! to hand results to the supervisor), one file per cell content hash:
//! `cache/cell-<key>.mfwdcell`. Because the key is a content hash of the
//! full cell configuration — app, variant, line size, latency, seed,
//! scale — a hit is definitionally the result the cell would compute, so
//! a warm resubmission of a grid is served without simulation and still
//! bit-identical.
//!
//! The failure model is storage rot between server lives: truncation,
//! bit flips, torn writes, or a foreign file dropped into the directory.
//! Every lookup revalidates the container; anything unsound is *moved*
//! to the `quarantine/` sidecar (preserved for forensics, impossible to
//! serve) and reported as [`CacheLookup::Quarantined`] so the caller
//! recomputes and the `stats` endpoint counts it. A corrupt entry is
//! never returned as a hit — the cache degrades to slow, never to wrong.

use memfwd_farm::worker::{read_result_file, write_result_file, CellResultFile};
use memfwd_farm::JournalError;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Capacity of the in-memory hot tier: enough to hold a whole default
/// grid's worth of sealed results, small enough that the resident cost
/// is bounded (entries are a few hundred bytes each).
pub const HOT_CAPACITY: usize = 128;

/// A bounded LRU front for sealed results: hits skip the disk read and
/// container revalidation entirely. Recency order is the deque order —
/// most recently used at the back, evictions from the front.
#[derive(Debug, Default)]
struct HotTier {
    entries: VecDeque<(u64, Box<CellResultFile>)>,
}

impl HotTier {
    fn get(&mut self, key: u64) -> Option<Box<CellResultFile>> {
        let i = self.entries.iter().position(|(k, _)| *k == key)?;
        let e = self.entries.remove(i).expect("position was valid");
        let r = e.1.clone();
        self.entries.push_back(e);
        Some(r)
    }

    fn put(&mut self, key: u64, r: Box<CellResultFile>) {
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(i);
        }
        self.entries.push_back((key, r));
        while self.entries.len() > HOT_CAPACITY {
            self.entries.pop_front();
        }
    }

    fn evict(&mut self, key: u64) {
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(i);
        }
    }
}

/// A content-hash-keyed store of sealed cell results under a state
/// directory, with a quarantine sidecar for entries that fail
/// revalidation and a bounded in-memory LRU hot tier in front of the
/// disk entries.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    quarantine: PathBuf,
    hot: Mutex<HotTier>,
    hot_hits: AtomicU64,
    hot_misses: AtomicU64,
}

/// What a cache lookup found.
#[derive(Debug)]
pub enum CacheLookup {
    /// A sealed, key-matching entry (boxed: it carries the full
    /// `RunStats` block).
    Hit(Box<CellResultFile>),
    /// No entry for this key.
    Miss,
    /// An entry existed but failed revalidation (the typed reason); it
    /// was moved to quarantine and the cell must be recomputed.
    Quarantined(JournalError),
}

impl ResultCache {
    /// Opens (creating if needed) the cache under `state_dir`: entries in
    /// `state_dir/cache/`, quarantined files in `state_dir/quarantine/`.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if either directory cannot be created.
    pub fn open(state_dir: &Path) -> Result<ResultCache, JournalError> {
        let dir = state_dir.join("cache");
        let quarantine = state_dir.join("quarantine");
        std::fs::create_dir_all(&dir).map_err(|e| JournalError::Io(e.kind()))?;
        std::fs::create_dir_all(&quarantine).map_err(|e| JournalError::Io(e.kind()))?;
        Ok(ResultCache {
            dir,
            quarantine,
            hot: Mutex::new(HotTier::default()),
            hot_hits: AtomicU64::new(0),
            hot_misses: AtomicU64::new(0),
        })
    }

    /// The on-disk path of the entry for `key`.
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("cell-{key:016x}.mfwdcell"))
    }

    /// Looks up `key`: first in the hot tier (no I/O), then on disk with
    /// full container revalidation. A corrupt or foreign-keyed disk entry
    /// is quarantined as a side effect; a disk hit is promoted into the
    /// hot tier.
    pub fn lookup(&self, key: u64) -> CacheLookup {
        if let Some(r) = self.hot.lock().expect("hot tier lock").get(key) {
            self.hot_hits.fetch_add(1, Ordering::Relaxed);
            return CacheLookup::Hit(r);
        }
        self.hot_misses.fetch_add(1, Ordering::Relaxed);
        let path = self.entry_path(key);
        match read_result_file(&path) {
            Ok(r) if r.key == key => {
                let r = Box::new(r);
                self.hot.lock().expect("hot tier lock").put(key, r.clone());
                CacheLookup::Hit(r)
            }
            // The container is intact but seals a different cell's
            // result under this file name — misfiled, never servable.
            Ok(_) => {
                self.quarantine_entry(&path, key);
                CacheLookup::Quarantined(JournalError::BadValue)
            }
            Err(JournalError::Io(std::io::ErrorKind::NotFound)) => CacheLookup::Miss,
            Err(e) => {
                self.quarantine_entry(&path, key);
                CacheLookup::Quarantined(e)
            }
        }
    }

    /// Stores a completed cell's sealed result (atomic tmp + rename, so
    /// a kill mid-store leaves no torn entry under the final name).
    ///
    /// The hot tier is deliberately *not* populated here: promotion
    /// happens only on a revalidated disk read, so every entry served
    /// from memory has passed the container checks at least once this
    /// server life, and a freshly stored entry that rots immediately is
    /// still caught on its first lookup.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the write fails; the caller treats the
    /// store as best-effort (the result is still journaled).
    pub fn store(&self, r: &CellResultFile) -> Result<(), JournalError> {
        // A rewrite under an existing key must invalidate any older hot
        // copy so the next lookup revalidates the new container.
        self.hot.lock().expect("hot tier lock").evict(r.key);
        write_result_file(&self.entry_path(r.key), r)
    }

    /// Hot-tier hits served without touching disk.
    pub fn hot_hits(&self) -> u64 {
        self.hot_hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through the hot tier to the disk path.
    pub fn hot_misses(&self) -> u64 {
        self.hot_misses.load(Ordering::Relaxed)
    }

    /// Moves a bad entry into the quarantine sidecar under a unique
    /// name. Falls back to deletion if the move fails — a poisoned entry
    /// must never stay where a lookup could read it again.
    fn quarantine_entry(&self, path: &Path, key: u64) {
        for n in 0u32.. {
            let dst = self
                .quarantine
                .join(format!("cell-{key:016x}.{n}.mfwdcell"));
            if dst.exists() {
                continue;
            }
            if std::fs::rename(path, &dst).is_ok() {
                return;
            }
            break;
        }
        std::fs::remove_file(path).ok();
    }

    /// Number of valid-named entries currently in the cache directory.
    pub fn entries(&self) -> usize {
        count_files(&self.dir)
    }

    /// Number of files in the quarantine sidecar.
    pub fn quarantined(&self) -> usize {
        count_files(&self.quarantine)
    }
}

fn count_files(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .filter(|e| e.file_type().is_ok_and(|t| t.is_file()))
                .count()
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memfwd::RunStats;

    fn tmp_state(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("memfwd-cache-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    fn sample(key: u64) -> CellResultFile {
        let mut stats = RunStats::default();
        stats.pipeline.cycles = 4242;
        CellResultFile {
            key,
            checksum: 0xDEAD_BEEF,
            refs: 77,
            host_nanos: 9,
            stats,
        }
    }

    #[test]
    fn store_hit_roundtrip() {
        let state = tmp_state("roundtrip");
        let cache = ResultCache::open(&state).expect("open");
        assert!(matches!(cache.lookup(1), CacheLookup::Miss));
        cache.store(&sample(1)).expect("store");
        match cache.lookup(1) {
            CacheLookup::Hit(r) => assert_eq!(*r, sample(1)),
            other => panic!("expected hit: {other:?}"),
        }
        assert_eq!(cache.entries(), 1);
        assert_eq!(cache.quarantined(), 0);
        std::fs::remove_dir_all(&state).ok();
    }

    #[test]
    fn corrupt_entry_is_quarantined_not_served() {
        let state = tmp_state("corrupt");
        let cache = ResultCache::open(&state).expect("open");
        cache.store(&sample(2)).expect("store");
        let path = cache.entry_path(2);
        let mut bytes = std::fs::read(&path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).expect("corrupt");
        assert!(matches!(cache.lookup(2), CacheLookup::Quarantined(_)));
        // The entry left the cache dir entirely; next lookup is a miss.
        assert!(!path.exists());
        assert!(matches!(cache.lookup(2), CacheLookup::Miss));
        assert_eq!(cache.quarantined(), 1);
        // Recompute-and-store restores service.
        cache.store(&sample(2)).expect("restore");
        assert!(matches!(cache.lookup(2), CacheLookup::Hit(_)));
        std::fs::remove_dir_all(&state).ok();
    }

    #[test]
    fn hot_tier_serves_repeat_lookups_from_memory() {
        let state = tmp_state("hot");
        let cache = ResultCache::open(&state).expect("open");
        cache.store(&sample(3)).expect("store");
        // First lookup revalidates on disk and promotes.
        assert!(matches!(cache.lookup(3), CacheLookup::Hit(_)));
        assert_eq!(cache.hot_hits(), 0);
        assert_eq!(cache.hot_misses(), 1);
        // Remove the disk entry: the hot tier alone must serve it now.
        std::fs::remove_file(cache.entry_path(3)).expect("rm");
        match cache.lookup(3) {
            CacheLookup::Hit(r) => assert_eq!(*r, sample(3)),
            other => panic!("expected hot hit: {other:?}"),
        }
        assert_eq!(cache.hot_hits(), 1);
        assert_eq!(cache.hot_misses(), 1);
        std::fs::remove_dir_all(&state).ok();
    }

    #[test]
    fn hot_tier_is_bounded_and_lru_ordered() {
        let state = tmp_state("lru");
        let cache = ResultCache::open(&state).expect("open");
        // Promote HOT_CAPACITY entries, then touch key 0 to refresh it.
        for k in 0..HOT_CAPACITY as u64 {
            cache.store(&sample(k)).expect("store");
            assert!(matches!(cache.lookup(k), CacheLookup::Hit(_)));
        }
        assert!(matches!(cache.lookup(0), CacheLookup::Hit(_)));
        // One more promotion evicts the least recently used entry —
        // key 1, not the refreshed key 0.
        let extra = HOT_CAPACITY as u64;
        cache.store(&sample(extra)).expect("store");
        assert!(matches!(cache.lookup(extra), CacheLookup::Hit(_)));
        // Strip the disk so only the hot tier can answer.
        for k in 0..=extra {
            std::fs::remove_file(cache.entry_path(k)).ok();
        }
        assert!(matches!(cache.lookup(0), CacheLookup::Hit(_)));
        assert!(matches!(cache.lookup(extra), CacheLookup::Hit(_)));
        assert!(matches!(cache.lookup(1), CacheLookup::Miss), "evicted");
        std::fs::remove_dir_all(&state).ok();
    }

    #[test]
    fn store_evicts_stale_hot_copy() {
        let state = tmp_state("evict");
        let cache = ResultCache::open(&state).expect("open");
        cache.store(&sample(5)).expect("store");
        assert!(matches!(cache.lookup(5), CacheLookup::Hit(_)));
        // Overwrite with different content under the same key: the next
        // lookup must revalidate the new container, not serve the old
        // hot copy.
        let mut newer = sample(5);
        newer.checksum = 0xFEED_F00D;
        cache.store(&newer).expect("restore");
        match cache.lookup(5) {
            CacheLookup::Hit(r) => assert_eq!(r.checksum, 0xFEED_F00D),
            other => panic!("expected hit: {other:?}"),
        }
        std::fs::remove_dir_all(&state).ok();
    }

    #[test]
    fn foreign_key_entry_is_quarantined() {
        let state = tmp_state("foreign");
        let cache = ResultCache::open(&state).expect("open");
        // A valid container sealed for key 7, misfiled under key 8's name.
        write_result_file(&cache.entry_path(8), &sample(7)).expect("misfile");
        assert!(matches!(
            cache.lookup(8),
            CacheLookup::Quarantined(JournalError::BadValue)
        ));
        assert_eq!(cache.quarantined(), 1);
        std::fs::remove_dir_all(&state).ok();
    }
}
