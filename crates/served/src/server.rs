//! The job server: admission, scheduling, drain, resume.
//!
//! One listener thread accepts connections on a Unix socket and spawns a
//! thread per connection (requests are newline-delimited JSON, see
//! [`crate::proto`]). One job-runner thread executes accepted jobs FIFO;
//! each job runs through the farm's [`run_campaign`] — the same retry /
//! quarantine / journal machinery the CLI uses — with a caching
//! [`CellRunner`] layered on top so cells already proven in the
//! persistent result cache are served without simulation.
//!
//! # State directory layout
//!
//! ```text
//! <state-dir>/
//!   cache/                         sealed MFWDCELL entries, content-keyed
//!   quarantine/                    corrupt entries, moved here, never served
//!   jobs/<job-id>/
//!     job.spec                     durable submission (JSON), written
//!                                  before `accepted` is ever sent
//!     journal.mfj                  the job's campaign journal
//!     report.json                  the final report (present iff done)
//!     cell-*.ckpt / cell-*.result  worker scratch during execution
//! ```
//!
//! Because `job.spec` is durably written *before* the client sees
//! `accepted`, and every terminal cell outcome is journaled before the
//! campaign advances, a SIGKILL at any instant loses nothing a client was
//! promised: restart with `--resume` re-enqueues unfinished jobs, replays
//! journaled cells, and resumes half-finished cells from their worker
//! checkpoints.

use crate::cache::{CacheLookup, ResultCache};
use crate::proto::{self, JobOptions, Request, StatsSnapshot};
use crate::signal;
use memfwd_farm::minijson::{json_escape, parse_json, Json};
use memfwd_farm::worker::CellResultFile;
use memfwd_farm::{
    campaign_fingerprint, run_campaign, Attempt, CellCtx, CellRunner, ChaosSpec, FarmOptions,
    InProcessRunner, Journal, SubprocessRunner, SweepSpec,
};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server configuration (the `memfwd_served` CLI surface).
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Unix socket path to listen on.
    pub socket: PathBuf,
    /// Durable state directory (cache, quarantine, jobs).
    pub state_dir: PathBuf,
    /// Worker threads per job (each may own a worker process).
    pub jobs: usize,
    /// Admission bound: jobs queued or running at once.
    pub max_pending_jobs: usize,
    /// Admission bound: unfinished cells across queued and running jobs.
    pub max_queued_cells: usize,
    /// Admission bound: cells in a single submission.
    pub max_cells_per_job: usize,
    /// Run cells in-process instead of in worker subprocesses (faster
    /// for tests; loses abort/OOM isolation).
    pub in_process: bool,
    /// Default per-cell no-progress deadline.
    pub cell_timeout: Option<Duration>,
    /// Worker checkpoint cadence in demand references.
    pub ckpt_every: Option<u64>,
    /// Re-enqueue unfinished jobs found in the state directory.
    pub resume: bool,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            socket: PathBuf::from("memfwd.sock"),
            state_dir: PathBuf::from("memfwd-served"),
            jobs: 2,
            max_pending_jobs: 8,
            max_queued_cells: 4096,
            max_cells_per_job: 65536,
            in_process: false,
            cell_timeout: None,
            ckpt_every: None,
            resume: false,
        }
    }
}

/// Service-wide counters, all monotonically increasing within one server
/// life (queue depth and pending jobs are computed live instead).
#[derive(Debug, Default)]
pub struct ServerStats {
    jobs_accepted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_shed: AtomicU64,
    cells_executed: AtomicU64,
    cells_from_cache: AtomicU64,
    cells_from_journal: AtomicU64,
    cache_entries_quarantined: AtomicU64,
    cells_quarantined: AtomicU64,
}

fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done { degraded: bool },
    Failed(String),
}

impl JobState {
    fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done { .. } => "done",
            JobState::Failed(_) => "failed",
        }
    }

    fn is_pending(&self) -> bool {
        matches!(self, JobState::Queued | JobState::Running)
    }
}

#[derive(Debug)]
struct Job {
    id: String,
    spec: SweepSpec,
    options: JobOptions,
    dir: PathBuf,
    cells: usize,
    fingerprint: u64,
    state: Mutex<JobState>,
    cells_done: AtomicUsize,
}

impl Job {
    fn journal_path(&self) -> PathBuf {
        self.dir.join("journal.mfj")
    }
    fn report_path(&self) -> PathBuf {
        self.dir.join("report.json")
    }
    fn state_snapshot(&self) -> JobState {
        self.state.lock().expect("job state lock").clone()
    }
    fn unfinished_cells(&self) -> usize {
        self.cells
            .saturating_sub(self.cells_done.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Default)]
struct JobTable {
    all: Vec<Arc<Job>>,
    queue: VecDeque<Arc<Job>>,
    next_seq: u64,
}

impl JobTable {
    fn find(&self, id: &str) -> Option<Arc<Job>> {
        self.all.iter().find(|j| j.id == id).cloned()
    }
    fn pending_jobs(&self) -> usize {
        self.all
            .iter()
            .filter(|j| j.state_snapshot().is_pending())
            .count()
    }
    fn queue_depth(&self) -> usize {
        self.all
            .iter()
            .filter(|j| j.state_snapshot().is_pending())
            .map(|j| j.unfinished_cells())
            .sum()
    }
}

struct ServerState {
    opts: ServerOptions,
    stats: ServerStats,
    cache: ResultCache,
    table: Mutex<JobTable>,
    wake: Condvar,
    exe: PathBuf,
    runner_done: AtomicBool,
}

fn io_err(what: &str, e: std::io::Error) -> String {
    format!("{what}: {e}")
}

fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), String> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, bytes).map_err(|e| io_err("write", e))?;
    std::fs::rename(&tmp, path).map_err(|e| io_err("rename", e))
}

// ---------------------------------------------------------------------
// The caching cell runner: persistent-cache hits short-circuit the farm
// runner; completed computations are written back; corrupt entries are
// quarantined (by the cache) and counted here.
// ---------------------------------------------------------------------

struct CachingRunner<'a> {
    inner: Box<dyn CellRunner + 'a>,
    cache: &'a ResultCache,
    stats: &'a ServerStats,
    cells_done: &'a AtomicUsize,
}

impl CellRunner for CachingRunner<'_> {
    fn run_cell(&self, ctx: &CellCtx) -> Attempt {
        if ctx.attempt == 0 {
            match self.cache.lookup(ctx.key) {
                CacheLookup::Hit(r) => {
                    bump(&self.stats.cells_from_cache);
                    self.cells_done.fetch_add(1, Ordering::Relaxed);
                    return Attempt::Completed(Box::new(r.to_cell_result(ctx.spec)));
                }
                CacheLookup::Quarantined(e) => {
                    bump(&self.stats.cache_entries_quarantined);
                    eprintln!(
                        "served: cache entry for cell {:#018x} quarantined ({e}); recomputing",
                        ctx.key
                    );
                }
                CacheLookup::Miss => {}
            }
        }
        let attempt = self.inner.run_cell(ctx);
        if let Attempt::Completed(r) = &attempt {
            bump(&self.stats.cells_executed);
            self.cells_done.fetch_add(1, Ordering::Relaxed);
            // Best-effort: a failed store only costs a future recompute.
            let store = self.cache.store(&CellResultFile {
                key: ctx.key,
                checksum: r.checksum,
                refs: r.refs,
                host_nanos: r.host_nanos,
                stats: r.stats,
            });
            if let Err(e) = store {
                eprintln!("served: caching cell {:#018x} failed: {e}", ctx.key);
            }
        }
        attempt
    }
}

// ---------------------------------------------------------------------
// Job execution.
// ---------------------------------------------------------------------

fn run_one_job(state: &ServerState, job: &Arc<Job>) {
    *job.state.lock().expect("job state lock") = JobState::Running;
    let fail = |msg: String| {
        eprintln!("served: {}: {msg}", job.id);
        *job.state.lock().expect("job state lock") = JobState::Failed(msg);
    };

    let jp = job.journal_path();
    let journal = if jp.exists() {
        Journal::load(&jp, job.fingerprint)
    } else {
        Journal::create(&jp, job.fingerprint)
    };
    let mut journal = match journal {
        Ok(j) => j,
        Err(e) => return fail(format!("opening journal: {e}")),
    };
    job.cells_done.store(journal.len(), Ordering::Relaxed);
    // Only the single runner thread executes jobs, so the delta in the
    // global counter over this job is this job's cache-hit count.
    let cached_before = state.stats.cells_from_cache.load(Ordering::Relaxed);

    // The stop flag run_campaign polls: set on graceful drain, and on
    // the job deadline. In-flight cells still finish and journal.
    let stop = Arc::new(AtomicBool::new(false));
    let deadline = job
        .options
        .job_timeout_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let farm_opts = FarmOptions {
        jobs: state.opts.jobs,
        retries: job.options.retries,
        backoff_ms: job.options.backoff_ms,
        cell_timeout: job
            .options
            .cell_timeout_ms
            .map(Duration::from_millis)
            .or(state.opts.cell_timeout),
        stop: Some(stop.clone()),
        ..FarmOptions::default()
    };
    let base: Box<dyn CellRunner> = if state.opts.in_process {
        Box::new(InProcessRunner)
    } else {
        Box::new(SubprocessRunner {
            exe: state.exe.clone(),
            farm_dir: job.dir.clone(),
            cell_timeout: farm_opts.cell_timeout,
            ckpt_every: state.opts.ckpt_every,
            chaos: ChaosSpec::default(),
        })
    };
    let runner = CachingRunner {
        inner: base,
        cache: &state.cache,
        stats: &state.stats,
        cells_done: &job.cells_done,
    };

    let done = AtomicBool::new(false);
    let campaign = std::thread::scope(|s| {
        let watchdog_stop = stop.clone();
        let done_ref = &done;
        s.spawn(move || {
            while !done_ref.load(Ordering::SeqCst) {
                if signal::drain_requested() || deadline.is_some_and(|d| Instant::now() >= d) {
                    watchdog_stop.store(true, Ordering::SeqCst);
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        });
        let r = run_campaign(&job.spec, &farm_opts, &runner, &mut journal);
        done.store(true, Ordering::SeqCst);
        r
    });

    let run = match campaign {
        Ok(run) => run,
        Err(e) => return fail(format!("journal append failed: {e}")),
    };
    bump_by(&state.stats.cells_from_journal, run.from_journal as u64);
    match run.report {
        Some(report) => {
            let summary = report.summary();
            bump_by(
                &state.stats.cells_quarantined,
                (summary.poisoned + summary.timed_out) as u64,
            );
            if let Err(e) = write_atomic(&job.report_path(), report.to_json().as_bytes()) {
                return fail(format!("writing report: {e}"));
            }
            job.cells_done.store(job.cells, Ordering::Relaxed);
            bump(&state.stats.jobs_completed);
            *job.state.lock().expect("job state lock") = JobState::Done {
                degraded: !summary.is_clean(),
            };
            let cached = state
                .stats
                .cells_from_cache
                .load(Ordering::Relaxed)
                .saturating_sub(cached_before);
            eprintln!(
                "served: {} done ({} cells, {} executed, {} from cache, {} from journal)",
                job.id,
                job.cells,
                (run.executed as u64).saturating_sub(cached),
                cached,
                run.from_journal
            );
        }
        None if signal::drain_requested() => {
            // Drained mid-job: in-flight cells are journaled; the job
            // returns to the queue state and a future `--resume` life
            // picks it up with zero recomputation of finished cells.
            *job.state.lock().expect("job state lock") = JobState::Queued;
            eprintln!(
                "served: {} interrupted by drain ({} cells journaled)",
                job.id,
                journal.len()
            );
        }
        None => fail("job deadline exceeded (journal kept; resubmission is cheap)".to_string()),
    }
}

fn bump_by(c: &AtomicU64, n: u64) {
    c.fetch_add(n, Ordering::Relaxed);
}

fn run_jobs(state: &Arc<ServerState>) {
    loop {
        let job = {
            let mut table = state.table.lock().expect("job table lock");
            loop {
                if signal::drain_requested() {
                    break None;
                }
                if let Some(job) = table.queue.pop_front() {
                    break Some(job);
                }
                let (t, _) = state
                    .wake
                    .wait_timeout(table, Duration::from_millis(100))
                    .expect("job table lock");
                table = t;
            }
        };
        let Some(job) = job else { break };
        run_one_job(state, &job);
    }
    state.runner_done.store(true, Ordering::SeqCst);
}

// ---------------------------------------------------------------------
// Request handling.
// ---------------------------------------------------------------------

fn handle_submit(state: &ServerState, spec: SweepSpec, options: JobOptions) -> String {
    if signal::drain_requested() {
        return proto::resp_draining();
    }
    let cells = spec.expand();
    if cells.is_empty() {
        return proto::resp_error("submitted grid expands to zero cells");
    }
    if cells.len() > state.opts.max_cells_per_job {
        bump(&state.stats.jobs_shed);
        return proto::resp_shed("job_too_large", cells.len(), state.opts.max_cells_per_job);
    }
    let mut table = state.table.lock().expect("job table lock");
    let pending = table.pending_jobs();
    if pending >= state.opts.max_pending_jobs {
        bump(&state.stats.jobs_shed);
        return proto::resp_shed("jobs_full", pending, state.opts.max_pending_jobs);
    }
    let depth = table.queue_depth();
    if depth + cells.len() > state.opts.max_queued_cells {
        bump(&state.stats.jobs_shed);
        return proto::resp_shed("queue_full", depth, state.opts.max_queued_cells);
    }

    let seq = table.next_seq;
    let id = format!("job-{seq:06}");
    let dir = state.opts.state_dir.join("jobs").join(&id);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        return proto::resp_error(&format!("creating job dir: {e}"));
    }
    // Durability before acknowledgement: the submission exists on disk
    // before the client ever sees `accepted`, so an accepted job is never
    // lost to a kill.
    let spec_json = format!(
        "{{\"id\":\"{}\",\"seq\":{seq},\"spec\":{},\"options\":{}}}\n",
        json_escape(&id),
        proto::spec_to_json(&spec),
        proto::options_to_json(&options),
    );
    if let Err(e) = write_atomic(&dir.join("job.spec"), spec_json.as_bytes()) {
        return proto::resp_error(&format!("persisting job spec: {e}"));
    }
    let fingerprint = campaign_fingerprint(&spec);
    let job = Arc::new(Job {
        id: id.clone(),
        spec,
        options,
        dir,
        cells: cells.len(),
        fingerprint,
        state: Mutex::new(JobState::Queued),
        cells_done: AtomicUsize::new(0),
    });
    table.next_seq = seq + 1;
    table.all.push(job.clone());
    table.queue.push_back(job);
    bump(&state.stats.jobs_accepted);
    state.wake.notify_all();
    proto::resp_accepted(&id)
}

fn handle_request(state: &ServerState, line: &str) -> String {
    match proto::parse_request(line) {
        Err(e) => proto::resp_error(&e),
        Ok(Request::Submit { spec, options }) => handle_submit(state, spec, options),
        Ok(Request::Status { job }) => {
            let found = state.table.lock().expect("job table lock").find(&job);
            match found {
                None => proto::resp_error(&format!("unknown job \"{job}\"")),
                Some(j) => {
                    let st = j.state_snapshot();
                    let degraded = matches!(st, JobState::Done { degraded: true });
                    proto::resp_status(
                        &j.id,
                        st.name(),
                        j.cells,
                        j.cells_done.load(Ordering::Relaxed).min(j.cells),
                        degraded,
                    )
                }
            }
        }
        Ok(Request::Report { job }) => {
            let found = state.table.lock().expect("job table lock").find(&job);
            match found {
                None => proto::resp_error(&format!("unknown job \"{job}\"")),
                Some(j) => match j.state_snapshot() {
                    JobState::Done { degraded } => match std::fs::read_to_string(j.report_path()) {
                        Ok(text) => proto::resp_report(&j.id, degraded, &text),
                        Err(e) => proto::resp_error(&format!("reading report: {e}")),
                    },
                    JobState::Failed(reason) => {
                        proto::resp_error(&format!("job \"{job}\" failed: {reason}"))
                    }
                    st => proto::resp_error(&format!(
                        "job \"{job}\" is {}; report not ready",
                        st.name()
                    )),
                },
            }
        }
        Ok(Request::Health) => {
            let (depth, pending) = {
                let table = state.table.lock().expect("job table lock");
                (table.queue_depth(), table.pending_jobs())
            };
            let degraded = state
                .stats
                .cache_entries_quarantined
                .load(Ordering::Relaxed)
                > 0
                || state.stats.cells_quarantined.load(Ordering::Relaxed) > 0;
            let health = if signal::drain_requested() {
                "draining"
            } else if degraded {
                "degraded"
            } else {
                "ok"
            };
            proto::resp_health(health, depth, pending)
        }
        Ok(Request::Stats) => {
            let (depth, pending) = {
                let table = state.table.lock().expect("job table lock");
                (table.queue_depth(), table.pending_jobs())
            };
            let s = &state.stats;
            proto::resp_stats(&StatsSnapshot {
                jobs_accepted: s.jobs_accepted.load(Ordering::Relaxed),
                jobs_completed: s.jobs_completed.load(Ordering::Relaxed),
                jobs_shed: s.jobs_shed.load(Ordering::Relaxed),
                cells_executed: s.cells_executed.load(Ordering::Relaxed),
                cells_from_cache: s.cells_from_cache.load(Ordering::Relaxed),
                cells_from_journal: s.cells_from_journal.load(Ordering::Relaxed),
                cache_entries_quarantined: s.cache_entries_quarantined.load(Ordering::Relaxed),
                cache_hot_hits: state.cache.hot_hits(),
                cache_hot_misses: state.cache.hot_misses(),
                cells_quarantined: s.cells_quarantined.load(Ordering::Relaxed),
                queue_depth: depth as u64,
                jobs_pending: pending as u64,
            })
        }
        Ok(Request::Drain) => {
            signal::request_drain();
            state.wake.notify_all();
            proto::resp_draining()
        }
    }
}

fn handle_conn(state: &ServerState, stream: UnixStream) {
    stream.set_nonblocking(false).ok();
    // A dead client must not pin the connection (and the drain grace
    // period) forever.
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let resp = handle_request(state, &line);
        if writer
            .write_all(resp.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
    }
}

// ---------------------------------------------------------------------
// Startup: resume scan and the accept loop.
// ---------------------------------------------------------------------

fn report_is_degraded(text: &str) -> Option<bool> {
    let v = parse_json(text).ok()?;
    let s = v.get("summary")?;
    let n = |k: &str| s.get(k).and_then(Json::as_u64);
    Some(n("poisoned")? > 0 || n("timed_out")? > 0)
}

/// Rebuilds the job table from `state_dir/jobs/*`: finished jobs (with a
/// readable report) become `done`; everything else re-enqueues in
/// submission order. Returns the table.
fn scan_jobs(state_dir: &Path, resume: bool) -> Result<JobTable, String> {
    let mut table = JobTable::default();
    let jobs_dir = state_dir.join("jobs");
    std::fs::create_dir_all(&jobs_dir).map_err(|e| io_err("creating jobs dir", e))?;
    let mut found: Vec<(u64, Arc<Job>)> = Vec::new();
    let entries = std::fs::read_dir(&jobs_dir).map_err(|e| io_err("scanning jobs dir", e))?;
    for entry in entries.filter_map(Result::ok) {
        let dir = entry.path();
        if !dir.is_dir() {
            continue;
        }
        let spec_text = match std::fs::read_to_string(dir.join("job.spec")) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "served: skipping {} (unreadable job.spec: {e})",
                    dir.display()
                );
                continue;
            }
        };
        let parsed = parse_json(&spec_text).and_then(|v| {
            let id = v
                .get("id")
                .and_then(Json::as_str)
                .ok_or("job.spec: missing id")?
                .to_string();
            let seq = v
                .get("seq")
                .and_then(Json::as_u64)
                .ok_or("job.spec: missing seq")?;
            let spec = proto::spec_from_json(v.get("spec").ok_or("job.spec: missing spec")?)?;
            let options = match v.get("options") {
                Some(o) => proto::options_from_json(o)?,
                None => JobOptions::default(),
            };
            Ok((id, seq, spec, options))
        });
        let (id, seq, spec, options) = match parsed {
            Ok(p) => p,
            Err(e) => {
                eprintln!("served: skipping {} (bad job.spec: {e})", dir.display());
                continue;
            }
        };
        let cells = spec.expand().len();
        let fingerprint = campaign_fingerprint(&spec);
        let report_path = dir.join("report.json");
        let done_degraded = std::fs::read_to_string(&report_path)
            .ok()
            .and_then(|t| report_is_degraded(&t));
        let state = match done_degraded {
            Some(degraded) => JobState::Done { degraded },
            None => {
                if report_path.exists() {
                    // A report that exists but does not parse is corrupt;
                    // drop it and recompute (cheaply, via the journal).
                    eprintln!(
                        "served: {} has a corrupt report.json; recomputing from journal",
                        id
                    );
                    std::fs::remove_file(&report_path).ok();
                }
                JobState::Queued
            }
        };
        let queued = state == JobState::Queued;
        let job = Arc::new(Job {
            id,
            spec,
            options,
            dir,
            cells,
            fingerprint,
            state: Mutex::new(state),
            cells_done: AtomicUsize::new(if queued { 0 } else { cells }),
        });
        table.next_seq = table.next_seq.max(seq + 1);
        found.push((seq, job));
    }
    found.sort_by_key(|(seq, _)| *seq);
    for (_, job) in found {
        let queued = job.state_snapshot() == JobState::Queued;
        if queued {
            if resume {
                table.queue.push_back(job.clone());
            } else {
                eprintln!(
                    "served: {} is unfinished but --resume was not given; leaving it on disk",
                    job.id
                );
                continue; // not in the table: invisible this life
            }
        }
        table.all.push(job);
    }
    Ok(table)
}

/// Runs the server until a graceful drain completes.
///
/// Binds the socket, restores state (see [`ServerOptions::resume`]),
/// serves requests, and — once SIGTERM/SIGINT/`drain` is seen — stops
/// admitting, lets in-flight cells journal their terminal outcomes,
/// answers `health`/`status` during the wind-down, and returns.
///
/// # Errors
///
/// A description of the startup failure (bind, state dir, scan); once
/// serving, failures are per-connection or per-job and never abort the
/// server.
pub fn serve(opts: ServerOptions) -> Result<(), String> {
    signal::install_handlers();
    std::fs::create_dir_all(&opts.state_dir).map_err(|e| io_err("creating state dir", e))?;
    let cache = ResultCache::open(&opts.state_dir).map_err(|e| format!("opening cache: {e}"))?;
    let table = scan_jobs(&opts.state_dir, opts.resume)?;
    let resumed = table.queue.len();
    let exe = std::env::current_exe().map_err(|e| io_err("resolving current exe", e))?;

    // A previous life's socket file would make bind fail; it is dead by
    // definition (one server per state dir is the deployment contract).
    std::fs::remove_file(&opts.socket).ok();
    let listener = UnixListener::bind(&opts.socket)
        .map_err(|e| io_err(&format!("binding {}", opts.socket.display()), e))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| io_err("socket setup", e))?;

    let state = Arc::new(ServerState {
        opts,
        stats: ServerStats::default(),
        cache,
        table: Mutex::new(table),
        wake: Condvar::new(),
        exe,
        runner_done: AtomicBool::new(false),
    });
    eprintln!(
        "served: listening on {} ({} job(s) resumed)",
        state.opts.socket.display(),
        resumed
    );

    let runner_state = state.clone();
    let runner = std::thread::spawn(move || run_jobs(&runner_state));

    // Accept until drain is requested AND the runner has wound down, so
    // health/status/report stay answerable for the whole drain window.
    let active = Arc::new(AtomicUsize::new(0));
    loop {
        if signal::drain_requested() && state.runner_done.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let state = state.clone();
                let active = active.clone();
                active.fetch_add(1, Ordering::SeqCst);
                std::thread::spawn(move || {
                    handle_conn(&state, stream);
                    active.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => {
                eprintln!("served: accept: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
    runner
        .join()
        .map_err(|_| "job runner panicked".to_string())?;

    // Give in-flight connections a moment to read their last response.
    let grace = Instant::now();
    while active.load(Ordering::SeqCst) > 0 && grace.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(25));
    }
    std::fs::remove_file(&state.opts.socket).ok();
    eprintln!("served: drained; exiting");
    Ok(())
}
