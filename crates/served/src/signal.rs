//! Graceful-drain signaling: SIGTERM (and SIGINT) set a process-global
//! flag; everything else polls it.
//!
//! The handler does exactly one async-signal-safe thing — a relaxed
//! store to a static `AtomicBool` — and the accept loop, the admission
//! path, and the job runner all poll [`drain_requested`]. SIGKILL, by
//! contrast, gets no handler on purpose: the durability story for an
//! unhandled kill is the journal + cache + checkpoint trio, not signal
//! handling, and the chaos tests exercise exactly that split.
//!
//! The raw `signal(2)` binding below is the crate's only unsafe code
//! (the workspace has no `libc` crate to lean on — crates.io is not
//! reachable from this build environment).

use std::sync::atomic::{AtomicBool, Ordering};

static DRAIN: AtomicBool = AtomicBool::new(false);

/// Whether a graceful drain has been requested (SIGTERM, SIGINT, or the
/// protocol's `drain` op).
pub fn drain_requested() -> bool {
    DRAIN.load(Ordering::SeqCst)
}

/// Requests a graceful drain, exactly as SIGTERM would.
pub fn request_drain() {
    DRAIN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::{Ordering, DRAIN};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// `signal(2)` from the C runtime std already links against.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // The only async-signal-safe action taken: an atomic store.
        DRAIN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        // SAFETY: `signal` is the C library's signal(2); installing a
        // handler that only stores to an AtomicBool is async-signal-safe.
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGTERM/SIGINT drain handlers (no-op off Unix; the
/// `drain` protocol op still works everywhere).
pub fn install_handlers() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_flag_latches() {
        // Note: process-global — no test may assume it starts false
        // after another test ran; this one only checks the latch.
        install_handlers();
        request_drain();
        assert!(drain_requested());
    }
}
