//! End-to-end tests of the `memfwd_served` binary over its Unix socket:
//! the four-way determinism gate (local run, service submission, warm
//! cache resubmission, SIGKILL + `--resume`), typed load shedding with a
//! live `health` endpoint, graceful drain, and quarantine surfacing in
//! `stats`.

#![cfg(unix)]

use memfwd_apps::{App, Scale, Variant};
use memfwd_farm::minijson::{parse_json, Json};
use memfwd_farm::sweep::{run_sweep, strip_volatile_lines};
use memfwd_farm::SweepSpec;
use memfwd_served::proto;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const EXE: &str = env!("CARGO_BIN_EXE_memfwd_served");

fn small_grid() -> SweepSpec {
    SweepSpec {
        apps: vec![App::Health, App::Mst],
        variants: vec![Variant::Original, Variant::Optimized],
        line_bytes: vec![32],
        mem_latency: vec![75],
        seeds: vec![12345],
        scale: Scale::Smoke,
    }
}

fn wide_grid() -> SweepSpec {
    SweepSpec {
        apps: vec![App::Health, App::Mst],
        variants: vec![Variant::Original, Variant::Optimized],
        line_bytes: vec![32, 64],
        mem_latency: vec![75],
        seeds: vec![1, 2, 3],
        scale: Scale::Smoke,
    }
}

struct Server {
    child: Child,
    socket: PathBuf,
    state: PathBuf,
}

impl Server {
    /// Starts a fresh server on its own socket + state dir (named per
    /// test so tests are independent) and waits until it accepts. Runs
    /// cells in-process (fast); see [`Server::start_subprocess`] for the
    /// production worker-process mode.
    fn start(name: &str, resume: bool, extra: &[&str]) -> Server {
        Server::spawn(name, resume, true, extra)
    }

    /// Starts a server in the default subprocess-worker mode: each cell
    /// is a re-exec of `memfwd_served --worker-cell`.
    fn start_subprocess(name: &str) -> Server {
        Server::spawn(name, false, false, &[])
    }

    fn spawn(name: &str, resume: bool, in_process: bool, extra: &[&str]) -> Server {
        let base = std::env::temp_dir().join(format!("memfwd-e2e-{}-{name}", std::process::id()));
        if !resume {
            std::fs::remove_dir_all(&base).ok();
        }
        std::fs::create_dir_all(&base).expect("test dir");
        let socket = base.join("s.sock");
        let state = base.join("state");
        let mut cmd = Command::new(EXE);
        cmd.arg("--socket")
            .arg(&socket)
            .arg("--state-dir")
            .arg(&state)
            .args(["--jobs", "2"])
            .args(extra)
            .stdout(Stdio::null());
        if in_process {
            cmd.arg("--in-process");
        }
        if resume {
            cmd.arg("--resume");
        }
        let child = cmd.spawn().expect("spawn memfwd_served");
        let server = Server {
            child,
            socket,
            state,
        };
        server.wait_connectable();
        server
    }

    fn wait_connectable(&self) {
        let deadline = Instant::now() + Duration::from_secs(30);
        while Instant::now() < deadline {
            if UnixStream::connect(&self.socket).is_ok() {
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        panic!(
            "server never became connectable at {}",
            self.socket.display()
        );
    }

    fn client(&self) -> Client {
        let stream = UnixStream::connect(&self.socket).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn kill9(&mut self) {
        self.child.kill().expect("SIGKILL");
        self.child.wait().expect("reap");
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    fn rpc(&mut self, line: &str) -> Json {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .expect("send");
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp).expect("recv");
        assert!(n > 0, "server closed the connection after: {line}");
        parse_json(&resp).unwrap_or_else(|e| panic!("bad response {resp:?}: {e}"))
    }

    fn submit(&mut self, spec: &SweepSpec) -> Json {
        self.rpc(&format!(
            "{{\"op\":\"submit\",\"spec\":{}}}",
            proto::spec_to_json(spec)
        ))
    }

    /// Submits and expects acceptance, returning the job id.
    fn submit_ok(&mut self, spec: &SweepSpec) -> String {
        let v = self.submit(spec);
        assert_eq!(
            v.get("type").and_then(Json::as_str),
            Some("accepted"),
            "{v:?}"
        );
        v.get("job")
            .and_then(Json::as_str)
            .expect("job id")
            .to_string()
    }

    /// Polls `status` until the job is done, then returns the report text.
    fn wait_report(&mut self, job: &str) -> String {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let v = self.rpc(&format!("{{\"op\":\"status\",\"job\":\"{job}\"}}"));
            match v.get("state").and_then(Json::as_str) {
                Some("done") => break,
                Some("queued") | Some("running") => {}
                other => panic!("job {job} ended {other:?}: {v:?}"),
            }
            assert!(Instant::now() < deadline, "timed out waiting for {job}");
            std::thread::sleep(Duration::from_millis(25));
        }
        let v = self.rpc(&format!("{{\"op\":\"report\",\"job\":\"{job}\"}}"));
        assert_eq!(
            v.get("type").and_then(Json::as_str),
            Some("report"),
            "{v:?}"
        );
        assert_eq!(
            v.get("degraded").and_then(Json::as_bool),
            Some(false),
            "{v:?}"
        );
        v.get("report")
            .and_then(Json::as_str)
            .expect("report body")
            .to_string()
    }

    fn stats(&mut self) -> Json {
        self.rpc("{\"op\":\"stats\"}")
    }

    fn stat(&mut self, key: &str) -> u64 {
        self.stats().get(key).and_then(Json::as_u64).expect(key)
    }
}

/// The tentpole's acceptance gate, legs (a)–(c): the same grid produces a
/// byte-identical `--strip-volatile` report computed locally, via service
/// submission, and via a cache-warm resubmission — which must also be
/// served ≥90% from the cache.
#[test]
fn service_and_cache_warm_reports_match_local_run() {
    let spec = small_grid();
    let cells = spec.expand().len() as u64;
    let golden = strip_volatile_lines(&run_sweep(&spec, 1).to_json());

    let server = Server::start("determinism", false, &[]);
    let mut c = server.client();

    let job = c.submit_ok(&spec);
    let report = c.wait_report(&job);
    assert_eq!(
        strip_volatile_lines(&report),
        golden,
        "service report diverged from the local run"
    );

    // Warm resubmission: same grid, new job — every cell should come
    // from the persistent cache, and the stripped report must not change
    // a byte (the raw one differs only in host wall time).
    let cached_before = c.stat("cells_from_cache");
    let job2 = c.submit_ok(&spec);
    let report2 = c.wait_report(&job2);
    assert_ne!(job, job2);
    assert_eq!(
        strip_volatile_lines(&report2),
        golden,
        "cache-warm report diverged"
    );
    let cached = c.stat("cells_from_cache") - cached_before;
    assert!(
        cached * 10 >= cells * 9,
        "warm resubmission served {cached}/{cells} cells from cache (<90%)"
    );

    // Drain via the protocol: the server must exit 0.
    let v = c.rpc("{\"op\":\"drain\"}");
    assert_eq!(v.get("type").and_then(Json::as_str), Some("draining"));
    let mut server = server;
    let status = server.child.wait().expect("wait");
    assert_eq!(status.code(), Some(0), "drain must exit 0");
}

/// Leg (d): SIGKILL the server mid-campaign, restart with `--resume`, and
/// the job completes with a report byte-identical to the clean local run.
#[test]
fn sigkill_resume_report_is_bit_identical() {
    let spec = wide_grid();
    let golden = strip_volatile_lines(&run_sweep(&spec, 1).to_json());

    let mut server = Server::start("kill", false, &[]);
    let mut c = server.client();
    let job = c.submit_ok(&spec);
    // Let the job get in flight, then kill without ceremony.
    std::thread::sleep(Duration::from_millis(120));
    server.kill9();
    drop(c);

    // Same socket + state dir, --resume: the job re-enqueues from its
    // durable job.spec, journaled cells replay, the rest recompute.
    let server2 = Server::start("kill", true, &[]);
    let mut c = server2.client();
    let report = c.wait_report(&job);
    assert_eq!(
        strip_volatile_lines(&report),
        golden,
        "post-kill resumed report diverged from the clean local run"
    );
}

/// An overloaded server sheds with a typed response — naming the reason,
/// depth, and limit — while `health` keeps answering, and a drained
/// server refuses admission with `draining`.
#[test]
fn overload_sheds_typed_and_health_answers() {
    // Bounds low enough that the second submission must be refused.
    let server = Server::start(
        "shed",
        false,
        &["--max-pending-jobs", "1", "--max-queued-cells", "64"],
    );
    let mut c = server.client();
    let _job = c.submit_ok(&wide_grid());

    // Hammer until a shed arrives (the first job may drain the queue
    // fast; admission is checked against live queue depth).
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut shed = None;
    while Instant::now() < deadline {
        let v = c.submit(&wide_grid());
        match v.get("type").and_then(Json::as_str) {
            Some("shed") => {
                shed = Some(v);
                break;
            }
            Some("accepted") => continue,
            other => panic!("unexpected submit response {other:?}: {v:?}"),
        }
    }
    let shed = shed.expect("bounded server never shed");
    assert!(
        shed.get("reason").and_then(Json::as_str).is_some(),
        "{shed:?}"
    );
    assert!(
        shed.get("queue_depth").and_then(Json::as_u64).is_some(),
        "{shed:?}"
    );
    assert!(
        shed.get("limit").and_then(Json::as_u64).is_some(),
        "{shed:?}"
    );

    // Health answers while shedding — on a second connection, like a
    // monitoring agent would.
    let mut health_conn = server.client();
    let v = health_conn.rpc("{\"op\":\"health\"}");
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
    assert!(v.get("state").and_then(Json::as_str).is_some(), "{v:?}");

    // Shed submissions are counted.
    assert!(c.stat("jobs_shed") >= 1);

    // After drain begins, admission answers `draining`, and health still
    // answers while the server winds down.
    c.rpc("{\"op\":\"drain\"}");
    let v = health_conn.submit(&small_grid());
    assert_eq!(
        v.get("type").and_then(Json::as_str),
        Some("draining"),
        "{v:?}"
    );
    let v = health_conn.rpc("{\"op\":\"health\"}");
    assert_eq!(
        v.get("state").and_then(Json::as_str),
        Some("draining"),
        "{v:?}"
    );
}

/// The production worker mode: cells run as `--worker-cell` re-execs of
/// the server binary (not in-process), results flow back through sealed
/// result files, and the report still matches the local run byte for
/// byte after stripping — with zero poisoned cells. Pins the worker
/// argv contract between the supervisor and the served binary.
#[test]
fn subprocess_worker_mode_report_matches_local_run() {
    let spec = small_grid();
    let golden = strip_volatile_lines(&run_sweep(&spec, 1).to_json());
    let server = Server::start_subprocess("subprocess");
    let mut c = server.client();
    let job = c.submit_ok(&spec);
    // wait_report asserts degraded == false, so a worker that fails to
    // parse its argv (poisoning every cell) fails here, not silently.
    let report = c.wait_report(&job);
    assert_eq!(
        strip_volatile_lines(&report),
        golden,
        "subprocess-worker report diverged from the local run"
    );
    assert_eq!(c.stat("cells_executed"), spec.expand().len() as u64);
}

/// SIGTERM (not just the protocol op) triggers the same graceful drain
/// with exit 0.
#[test]
fn sigterm_drains_gracefully() {
    let mut server = Server::start("sigterm", false, &[]);
    let mut c = server.client();
    let job = c.submit_ok(&small_grid());
    let _ = c.wait_report(&job);
    let pid = server.child.id().to_string();
    let ok = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("spawn kill")
        .success();
    assert!(ok, "kill -TERM failed");
    let status = server.child.wait().expect("wait");
    assert_eq!(status.code(), Some(0), "SIGTERM drain must exit 0");
}

/// A cache entry corrupted between jobs is quarantined — surfacing in
/// `stats` — and the resubmission still completes with a byte-identical
/// report (recompute, never a wrong hit).
#[test]
fn corrupted_cache_entry_surfaces_in_stats_and_never_serves() {
    let spec = small_grid();
    let server = Server::start("quarantine", false, &[]);
    let mut c = server.client();
    let job = c.submit_ok(&spec);
    let report = c.wait_report(&job);

    // Rot every cached entry the way a bad disk would: flip one payload
    // bit in place.
    let cache_dir = server.state.join("cache");
    let mut rotted = 0;
    for entry in std::fs::read_dir(&cache_dir).expect("cache dir") {
        let path = entry.expect("entry").path();
        let mut bytes = std::fs::read(&path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).expect("rot");
        rotted += 1;
    }
    assert!(rotted > 0, "first job cached nothing");

    let q_before = c.stat("cache_entries_quarantined");
    let job2 = c.submit_ok(&spec);
    let report2 = c.wait_report(&job2);
    assert_eq!(
        strip_volatile_lines(&report2),
        strip_volatile_lines(&report),
        "recomputed report diverged"
    );
    let q = c.stat("cache_entries_quarantined") - q_before;
    assert_eq!(q, rotted as u64, "every rotted entry must surface in stats");
    // And the quarantine sidecar holds the evidence.
    let sidecar = std::fs::read_dir(server.state.join("quarantine"))
        .expect("quarantine dir")
        .count();
    assert_eq!(sidecar, rotted);
}
