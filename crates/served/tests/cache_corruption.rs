//! Property tests of the result cache's corruption quarantine: no matter
//! how a persisted `MFWDCELL` entry rots on disk — truncation, a bit
//! flip, or wholesale replacement with garbage — a lookup must *never*
//! serve it. The entry is quarantined (moved to the sidecar, counted),
//! the next lookup is a miss (forcing a recompute), and re-storing the
//! recomputed result restores hit service. The cache degrades to slow,
//! never to wrong.

use memfwd::RunStats;
use memfwd_farm::worker::CellResultFile;
use memfwd_served::{CacheLookup, ResultCache};
use proptest::prelude::*;
use std::path::PathBuf;

fn tmp_state(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("memfwd-cacheprop-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

fn sample(key: u64, checksum: u64, refs: u64, cycles: u64) -> CellResultFile {
    let mut stats = RunStats::default();
    stats.pipeline.cycles = cycles;
    CellResultFile {
        key,
        checksum,
        refs,
        host_nanos: 77,
        stats,
    }
}

/// One way an entry can rot between server lives.
#[derive(Debug, Clone)]
enum Rot {
    /// Keep only the first `keep_mod % len` bytes.
    Truncate { keep_mod: usize },
    /// Flip bit `bit` of byte `pos_mod % len`.
    BitFlip { pos_mod: usize, bit: u8 },
    /// Replace the file with arbitrary bytes.
    Garbage { bytes: Vec<u8> },
}

fn rot_strategy() -> impl Strategy<Value = Rot> {
    prop_oneof![
        (0usize..10_000).prop_map(|keep_mod| Rot::Truncate { keep_mod }),
        ((0usize..10_000), (0u8..8)).prop_map(|(pos_mod, bit)| Rot::BitFlip { pos_mod, bit }),
        proptest::collection::vec(any::<u8>(), 0..256).prop_map(|bytes| Rot::Garbage { bytes }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The pinned property: a rotted entry is quarantined — never served,
    /// and never silently deleted without surfacing in the quarantine
    /// count — and recompute + store restores correct hit service.
    #[test]
    fn rotted_entries_quarantine_then_recompute(
        key in 1u64..u64::MAX,
        checksum in any::<u64>(),
        refs in any::<u64>(),
        cycles in any::<u64>(),
        rot in rot_strategy(),
    ) {
        let state = tmp_state("rot");
        let cache = ResultCache::open(&state).expect("open");
        let original = sample(key, checksum, refs, cycles);
        cache.store(&original).expect("store");
        let path = cache.entry_path(key);
        let sealed = std::fs::read(&path).expect("read sealed");

        let mutated = match &rot {
            Rot::Truncate { keep_mod } => sealed[..keep_mod % sealed.len()].to_vec(),
            Rot::BitFlip { pos_mod, bit } => {
                let mut b = sealed.clone();
                let pos = pos_mod % b.len();
                b[pos] ^= 1 << bit;
                b
            }
            Rot::Garbage { bytes } => bytes.clone(),
        };
        if mutated == sealed {
            // A garbage body can in principle coincide with the sealed
            // image; an identical file is not rot, so nothing to check.
            return Ok(());
        }
        std::fs::write(&path, &mutated).expect("rot");

        // Never served: every mutation fails a container check and is
        // quarantined with a typed reason.
        let quarantined_before = cache.quarantined();
        match cache.lookup(key) {
            CacheLookup::Quarantined(_) => {}
            other => {
                return Err(TestCaseError::fail(format!(
                    "rotted entry must quarantine, got {other:?} for {rot:?}"
                )));
            }
        }
        // The entry left the cache dir (forcing recompute) and landed in
        // the sidecar (surfacing in counts, preserved for forensics).
        prop_assert!(!path.exists(), "{rot:?} left the entry in place");
        prop_assert!(matches!(cache.lookup(key), CacheLookup::Miss));
        prop_assert_eq!(cache.quarantined(), quarantined_before + 1, "{:?}", rot);

        // Recompute-and-store restores exact hit service.
        cache.store(&original).expect("restore");
        match cache.lookup(key) {
            CacheLookup::Hit(r) => prop_assert_eq!(*r, original),
            other => {
                return Err(TestCaseError::fail(format!(
                    "restored entry must hit, got {other:?}"
                )));
            }
        }
        std::fs::remove_dir_all(&state).ok();
    }

    /// Control: an untouched entry keeps hitting with identical contents
    /// across arbitrarily many lookups (lookups are non-destructive).
    #[test]
    fn intact_entries_hit_identically(
        key in 1u64..u64::MAX,
        checksum in any::<u64>(),
        refs in any::<u64>(),
        cycles in any::<u64>(),
        lookups in 1usize..4,
    ) {
        let state = tmp_state("intact");
        let cache = ResultCache::open(&state).expect("open");
        let original = sample(key, checksum, refs, cycles);
        cache.store(&original).expect("store");
        for _ in 0..lookups {
            match cache.lookup(key) {
                CacheLookup::Hit(r) => prop_assert_eq!(*r, original.clone()),
                other => {
                    return Err(TestCaseError::fail(format!("expected hit, got {other:?}")));
                }
            }
        }
        prop_assert_eq!(cache.quarantined(), 0);
        std::fs::remove_dir_all(&state).ok();
    }
}
