//! End-to-end tests of the supervised campaign runner across real process
//! boundaries: worker crash isolation (panic/abort), no-progress timeout
//! kills, deterministic supervisor crash + `--resume`, and the
//! `memfwd_sim` fast config-skew rejection. These live in `memfwd-bench`
//! because `CARGO_BIN_EXE_*` paths resolve only in the binary-defining
//! crate's own tests.

use memfwd_apps::{App, Scale, Variant};
use memfwd_bench::sweep::{run_sweep, strip_volatile_lines, validate_report};
use memfwd_farm::SweepSpec;
use std::path::{Path, PathBuf};
use std::process::Command;

const SWEEP_EXE: &str = env!("CARGO_BIN_EXE_memfwd_sweep");
const SIM_EXE: &str = env!("CARGO_BIN_EXE_memfwd_sim");

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("memfwd-farmtest-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// The spec the CLI args below describe, for computing the golden report
/// in-process.
fn cli_spec(apps: &[App]) -> SweepSpec {
    SweepSpec {
        apps: apps.to_vec(),
        variants: vec![Variant::Original, Variant::Optimized],
        line_bytes: vec![32],
        mem_latency: vec![75],
        seeds: vec![12345],
        scale: Scale::Smoke,
    }
}

fn apps_arg(apps: &[App]) -> String {
    apps.iter().map(|a| a.name()).collect::<Vec<_>>().join(",")
}

fn sweep_cmd(apps: &[App], farm_dir: &Path, out: &Path, extra: &[&str]) -> Command {
    let mut cmd = Command::new(SWEEP_EXE);
    cmd.arg("--apps")
        .arg(apps_arg(apps))
        .arg("--variants")
        .arg("original,optimized")
        .arg("--scale")
        .arg("smoke")
        .arg("--jobs")
        .arg("2")
        .arg("--supervised")
        .arg("--backoff-ms")
        .arg("0")
        .arg("--farm-dir")
        .arg(farm_dir)
        .arg("--out")
        .arg(out)
        .args(extra);
    cmd
}

fn golden_volatile_stripped(apps: &[App]) -> String {
    strip_volatile_lines(&run_sweep(&cli_spec(apps), 1).to_json())
}

#[test]
fn chaos_panic_and_abort_recover_bit_identical() {
    let apps = [App::Health, App::Mst];
    let dir = tmp_dir("chaos");
    let out = dir.join("report.json");
    let status = sweep_cmd(&apps, &dir, &out, &["--chaos", "panic@0,abort@3"])
        .output()
        .expect("spawn supervisor");
    assert!(
        status.status.success(),
        "chaos campaign should recover: {}",
        String::from_utf8_lossy(&status.stderr)
    );
    let report = std::fs::read_to_string(&out).expect("report written");
    validate_report(&report).expect("report validates");
    // The sabotaged cells recovered on retry and are typed as such...
    assert!(report.contains("\"outcome\": \"retried\""));
    assert!(report.contains("\"error\":"), "last failure is preserved");
    // ...and every simulated value is bit-identical to a clean in-process
    // run: out-of-process supervision adds robustness, not noise.
    assert_eq!(
        strip_volatile_lines(&report),
        golden_volatile_stripped(&apps)
    );
}

#[test]
fn hang_is_killed_typed_and_degrades_the_campaign() {
    let apps = [App::Mst];
    let dir = tmp_dir("hang");
    let out = dir.join("report.json");
    let output = sweep_cmd(
        &apps,
        &dir,
        &out,
        &[
            "--chaos",
            "hang@0",
            "--cell-timeout-ms",
            "400",
            "--retries",
            "1",
        ],
    )
    .output()
    .expect("spawn supervisor");
    assert_eq!(
        output.status.code(),
        Some(21),
        "a campaign with quarantined cells exits 21 (degraded): {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let report = std::fs::read_to_string(&out).expect("degraded report still written");
    validate_report(&report).expect("degraded report validates");
    assert!(report.contains("\"outcome\": \"timed_out\""));
    assert!(report.contains("no progress for"));
    // The healthy sibling cell completed normally.
    assert!(report.contains("\"outcome\": \"ok\""));
}

#[test]
fn supervisor_crash_then_resume_is_bit_identical_with_zero_recompute() {
    let apps = [App::Health, App::Mst, App::Vis];
    let n_cells = 6;
    let dir = tmp_dir("crash-resume");
    let out = dir.join("report.json");

    // Crash the supervisor cold after 2 journal appends — the
    // deterministic stand-in for `kill -9` (the CI chaos job does the
    // real one).
    let crashed = sweep_cmd(&apps, &dir, &out, &["--crash-after-appends", "2"])
        .output()
        .expect("spawn supervisor");
    assert_eq!(
        crashed.status.code(),
        Some(137),
        "crashed run mirrors SIGKILL: {}",
        String::from_utf8_lossy(&crashed.stderr)
    );
    assert!(!out.exists(), "a crashed campaign writes no report");
    assert!(dir.join("journal.mfj").exists(), "journal survives");

    // Without --resume, the leftover journal is refused, loudly.
    let refused = sweep_cmd(&apps, &dir, &out, &[])
        .output()
        .expect("spawn supervisor");
    assert_eq!(refused.status.code(), Some(22));
    assert!(String::from_utf8_lossy(&refused.stderr).contains("--resume"));

    // With --resume, only the unfinished cells run.
    let resumed = sweep_cmd(&apps, &dir, &out, &["--resume"])
        .output()
        .expect("spawn supervisor");
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("2 cells from journal (zero recompute)"),
        "journaled cells must not be recomputed: {stderr}"
    );
    assert!(stderr.contains(&format!("{} executed", n_cells - 2)));
    let report = std::fs::read_to_string(&out).expect("resumed report");
    assert_eq!(
        strip_volatile_lines(&report),
        golden_volatile_stripped(&apps),
        "resumed campaign diverged from the clean golden run"
    );
}

#[test]
fn completed_cells_are_bit_identical_at_any_jobs() {
    let apps = [App::Health, App::Mst];
    let dir1 = tmp_dir("jobs1");
    let dir4 = tmp_dir("jobs4");
    let (out1, out4) = (dir1.join("r.json"), dir4.join("r.json"));
    let mut one = sweep_cmd(&apps, &dir1, &out1, &[]);
    one.arg("--jobs").arg("1"); // later flag wins in the parser loop
    assert!(one.output().expect("jobs=1").status.success());
    let mut four = sweep_cmd(&apps, &dir4, &out4, &[]);
    four.arg("--jobs").arg("4");
    assert!(four.output().expect("jobs=4").status.success());
    assert_eq!(
        strip_volatile_lines(&std::fs::read_to_string(&out1).expect("r1")),
        strip_volatile_lines(&std::fs::read_to_string(&out4).expect("r4")),
    );
}

#[test]
fn sim_resume_rejects_config_skew_up_front_with_exit_17() {
    let dir = tmp_dir("skew");
    // Write a checkpoint under one configuration...
    let write = Command::new(SIM_EXE)
        .args(["--app", "mst", "--variant", "original", "--scale", "smoke"])
        .arg("--checkpoint-dir")
        .arg(&dir)
        .args(["--checkpoint-every", "1000"])
        .output()
        .expect("checkpointing run");
    assert!(write.status.success());
    let ckpt = dir.join("mst.ckpt");
    assert!(ckpt.exists());

    // ...then try to resume it under a different one: the mismatch must
    // be detected up front, with a clear message and exit 17. (Omitting
    // the cadence changes the fingerprinted SimConfig.)
    let skew = Command::new(SIM_EXE)
        .args(["--app", "mst", "--variant", "optimized", "--scale", "smoke"])
        .arg("--resume")
        .arg(&ckpt)
        .output()
        .expect("skewed resume");
    assert_eq!(skew.status.code(), Some(17));
    let stderr = String::from_utf8_lossy(&skew.stderr);
    assert!(
        stderr.contains("does not match this configuration"),
        "clear up-front message expected, got: {stderr}"
    );

    // A variant skew with an otherwise identical SimConfig is caught by
    // the cursor's run-parameter stamp — same typed exit.
    let variant_skew = Command::new(SIM_EXE)
        .args(["--app", "mst", "--variant", "optimized", "--scale", "smoke"])
        .args(["--checkpoint-every", "1000"])
        .arg("--resume")
        .arg(&ckpt)
        .output()
        .expect("variant-skewed resume");
    assert_eq!(
        variant_skew.status.code(),
        Some(17),
        "stderr: {}",
        String::from_utf8_lossy(&variant_skew.stderr)
    );

    // The matching configuration — including the checkpoint cadence,
    // which is part of the fingerprinted SimConfig — still resumes fine.
    let ok = Command::new(SIM_EXE)
        .args(["--app", "mst", "--variant", "original", "--scale", "smoke"])
        .args(["--checkpoint-every", "1000"])
        .arg("--resume")
        .arg(&ckpt)
        .output()
        .expect("matching resume");
    assert!(
        ok.status.success(),
        "{}",
        String::from_utf8_lossy(&ok.stderr)
    );
}
