use memfwd_apps::{run_ok as run, App, RunConfig, Variant};

fn main() {
    for app in App::FIG5 {
        for lb in [32u64, 64, 128] {
            let mut o = RunConfig::new(Variant::Original);
            o.sim = o.sim.with_line_bytes(lb);
            let mut l = RunConfig::new(Variant::Optimized);
            l.sim = l.sim.with_line_bytes(lb);
            let t0 = std::time::Instant::now();
            let ro = run(app, &o);
            let rl = run(app, &l);
            assert_eq!(ro.checksum, rl.checksum, "{app} checksum mismatch");
            println!(
                "{:9} {:>3}B: N={:>9} L={:>9} speedup={:.2} missN={:>7} missL={:>7} bwN={:>9} bwL={:>9} wall={:.1?}",
                app.name(), lb,
                ro.stats.cycles(), rl.stats.cycles(),
                rl.stats.speedup_over(&ro.stats),
                ro.stats.cache.loads.misses(), rl.stats.cache.loads.misses(),
                ro.stats.bytes_l2_mem, rl.stats.bytes_l2_mem,
                t0.elapsed(),
            );
        }
    }
    // SMV: N / L / Perf at 32B.
    let o = RunConfig::new(Variant::Original);
    let l = RunConfig::new(Variant::Optimized);
    let mut pf = RunConfig::new(Variant::Optimized);
    pf.sim = pf.sim.with_perfect_forwarding();
    let ro = run(App::Smv, &o);
    let rl = run(App::Smv, &l);
    let rp = run(App::Smv, &pf);
    assert_eq!(ro.checksum, rl.checksum);
    assert_eq!(ro.checksum, rp.checksum);
    println!(
        "smv: N={} L={} Perf={} fwd_load_frac={:.3} fwd_store_frac={:.3} hops1={} hops2={}",
        ro.stats.cycles(),
        rl.stats.cycles(),
        rp.stats.cycles(),
        rl.stats.fwd.forwarded_load_fraction(),
        rl.stats.fwd.forwarded_store_fraction(),
        rl.stats.fwd.load_hops[1],
        rl.stats.fwd.load_hops[2],
    );
}
