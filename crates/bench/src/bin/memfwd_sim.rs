//! `memfwd-sim` — command-line front end to the simulator.
//!
//! Runs any of the eight applications under any layout variant and machine
//! configuration, and prints the full statistics block. This is the
//! "driver binary" a downstream user reaches for first.
//!
//! ```console
//! $ cargo run --release -p memfwd-bench --bin memfwd_sim -- \
//!       --app vis --variant optimized --line-bytes 128 --prefetch 2
//! ```

use memfwd::{InjectConfig, MachineFault};
use memfwd_apps::{run_ck, App, AppOutput, Checkpointer, CkOutcome, RunConfig, Scale, Variant};
use std::path::PathBuf;

const USAGE: &str = "\
memfwd-sim: run one application on the memory-forwarding simulator

USAGE:
    memfwd_sim [OPTIONS]

OPTIONS:
    --app <name>            health|mst|radiosity|vis|eqntott|bh|compress|smv
                            (default: vis)
    --variant <v>           original|optimized|static (default: original)
    --perfect-forwarding    model the Fig. 10 `Perf` bound
    --no-speculation        disable data-dependence speculation
    --scalar                force the fully general scalar demand path
                            (disables the batched/fast path; statistics are
                            bit-identical either way — this flag exists to
                            prove it)
    --threads <n|auto>      epoch-parallel worker count for the multi-core
                            execution engine; `auto` uses the host's
                            available parallelism, 0 (the default) runs
                            epochs serially. Simulated results are
                            bit-identical at every count
    --line-bytes <n>        cache line size, power of two >= 16 (default: 32)
    --mem-latency <n>       main-memory latency in cycles (default: 75)
    --prefetch <blocks>     enable software prefetching with this block size
    --store-buffer <n>      enable an n-entry store buffer
    --hw-prefetch           enable the tagged next-line hardware prefetcher
    --scale <s>             smoke|bench (default: bench)
    --seed <n>              workload seed (default: 12345)
    --checkpoint-dir <dir>  periodically write a crash-safe snapshot to
                            <dir>/<app>.ckpt (atomic temp-file + rename);
                            the run's results are unaffected
    --checkpoint-every <n>  checkpoint cadence in demand references
                            (default: 16384)
    --resume <file>         resume from a snapshot written by
                            --checkpoint-dir; all other flags must match
                            the configuration that wrote the snapshot
    --inject-fbit <ppm>     corrupt forwarding bits, per million accesses
    --inject-scramble <ppm> scramble forwarding-chain words, per million
    --inject-alloc <ppm>    fail heap/pool allocations, per million
    --inject-seed <n>       fault-injection RNG seed
    --no-recover            leave injected corruption in place: the run ends
                            in a typed machine fault (nonzero exit) instead
                            of trap-based recovery
    --lint                  pre-flight: capture the relocation schedule this
                            configuration produces, verify it with the
                            memfwd_lint engine, and refuse to run (exit 20)
                            if any MF0xx error fires; the capture run's
                            output is reused as the run itself (capture is
                            host-side only, so it is bit-identical), except
                            with --checkpoint-dir/--resume where the
                            workload runs again under the checkpointer
    --help                  print this text

A run that aborts on a machine fault reports the typed fault on stderr
and exits with a fault-specific code; harness errors use 2.

EXIT CODES:
    0   success                      2   usage / harness error
    10  forwarding-cycle             15  invalid-free
    11  heap-exhausted               16  hop-limit-exceeded
    12  pool-exhausted               17  corrupt-snapshot
    13  misaligned                   18  no-progress (watchdog)
    14  null-deref                   19  walk-storm (watchdog)
    20  lint pre-flight rejected the relocation schedule
";

struct Cli {
    app: App,
    cfg: RunConfig,
    checkpoint_dir: Option<PathBuf>,
    resume: Option<PathBuf>,
    lint: bool,
}

fn parse() -> Result<Cli, String> {
    let mut app = App::Vis;
    let mut cfg = RunConfig::new(Variant::Original);
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut resume: Option<PathBuf> = None;
    let mut lint = false;
    let mut inject = InjectConfig::default();
    let mut inject_requested = false;
    let mut args = std::env::args().skip(1);
    let next_val = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--app" => {
                let v = next_val(&mut args, "--app")?;
                app = match v.as_str() {
                    "health" => App::Health,
                    "mst" => App::Mst,
                    "radiosity" => App::Radiosity,
                    "vis" => App::Vis,
                    "eqntott" => App::Eqntott,
                    "bh" => App::Bh,
                    "compress" => App::Compress,
                    "smv" => App::Smv,
                    other => return Err(format!("unknown app '{other}'")),
                };
            }
            "--variant" => {
                let v = next_val(&mut args, "--variant")?;
                cfg.variant = match v.as_str() {
                    "original" | "n" | "N" => Variant::Original,
                    "optimized" | "l" | "L" => Variant::Optimized,
                    "static" | "s" | "S" => Variant::Static,
                    other => return Err(format!("unknown variant '{other}'")),
                };
            }
            "--perfect-forwarding" => cfg.sim.perfect_forwarding = true,
            "--no-speculation" => cfg.sim.dependence_speculation = false,
            "--scalar" => cfg.sim.scalar_path = true,
            "--threads" => {
                let v = next_val(&mut args, "--threads")?;
                cfg.sim.epoch_threads =
                    memfwd_bench::parse_thread_count(&v).map_err(|e| format!("--threads: {e}"))?;
            }
            "--line-bytes" => {
                let v: u64 = next_val(&mut args, "--line-bytes")?
                    .parse()
                    .map_err(|e| format!("--line-bytes: {e}"))?;
                cfg.sim = cfg.sim.with_line_bytes(v);
            }
            "--mem-latency" => {
                cfg.sim.hierarchy.mem_latency = next_val(&mut args, "--mem-latency")?
                    .parse()
                    .map_err(|e| format!("--mem-latency: {e}"))?;
            }
            "--prefetch" => {
                let blocks: u64 = next_val(&mut args, "--prefetch")?
                    .parse()
                    .map_err(|e| format!("--prefetch: {e}"))?;
                cfg.prefetch = true;
                cfg.prefetch_lines = blocks;
            }
            "--store-buffer" => {
                cfg.sim.store_buffer_entries = Some(
                    next_val(&mut args, "--store-buffer")?
                        .parse()
                        .map_err(|e| format!("--store-buffer: {e}"))?,
                );
            }
            "--hw-prefetch" => cfg.sim.hierarchy.next_line_prefetch = true,
            "--scale" => {
                cfg.scale = match next_val(&mut args, "--scale")?.as_str() {
                    "smoke" => Scale::Smoke,
                    "bench" => Scale::Bench,
                    other => return Err(format!("unknown scale '{other}'")),
                };
            }
            "--seed" => {
                cfg.seed = next_val(&mut args, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--checkpoint-dir" => {
                checkpoint_dir = Some(PathBuf::from(next_val(&mut args, "--checkpoint-dir")?));
            }
            "--checkpoint-every" => {
                let refs: u64 = next_val(&mut args, "--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?;
                if refs == 0 {
                    return Err("--checkpoint-every must be positive".into());
                }
                cfg.sim = cfg.sim.with_checkpoint_every(refs);
            }
            "--resume" => {
                resume = Some(PathBuf::from(next_val(&mut args, "--resume")?));
            }
            "--inject-fbit" => {
                inject.fbit_flip_ppm = next_val(&mut args, "--inject-fbit")?
                    .parse()
                    .map_err(|e| format!("--inject-fbit: {e}"))?;
                inject_requested = true;
            }
            "--inject-scramble" => {
                inject.chain_scramble_ppm = next_val(&mut args, "--inject-scramble")?
                    .parse()
                    .map_err(|e| format!("--inject-scramble: {e}"))?;
                inject_requested = true;
            }
            "--inject-alloc" => {
                inject.alloc_fail_ppm = next_val(&mut args, "--inject-alloc")?
                    .parse()
                    .map_err(|e| format!("--inject-alloc: {e}"))?;
                inject_requested = true;
            }
            "--inject-seed" => {
                inject.seed = next_val(&mut args, "--inject-seed")?
                    .parse()
                    .map_err(|e| format!("--inject-seed: {e}"))?;
                inject_requested = true;
            }
            "--no-recover" => {
                inject.recover = false;
                inject_requested = true;
            }
            "--lint" => lint = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if inject_requested {
        cfg.sim = cfg.sim.with_fault_injection(inject);
    }
    Ok(Cli {
        app,
        cfg,
        checkpoint_dir,
        resume,
        lint,
    })
}

/// The `--lint` pre-flight: capture the relocation schedule this exact
/// configuration produces and verify it. Error diagnostics refuse the run
/// with exit 20; warnings are printed and the run proceeds.
///
/// Returns the capture run's full output. Capture is host-side only, so
/// the output is bit-identical to a fresh run of the same configuration —
/// a caller with no checkpointing in play reuses it directly, halving the
/// cost of a linted run from two workload executions to one.
fn lint_preflight(app: App, cfg: &RunConfig) -> AppOutput {
    let captured = memfwd_analyze::capture_app_plan(app, cfg);
    let target = memfwd_analyze::app_target(app, cfg);
    let report = memfwd_analyze::verify_plan(&target, &captured.plan);
    if report.diagnostics.is_empty() {
        eprintln!(
            "lint: {target}: certified safe ({} relocation steps)",
            report.steps
        );
    } else {
        eprint!("{}", memfwd_analyze::render_human(&report));
    }
    if report.errors().next().is_some() {
        eprintln!("lint: relocation schedule rejected; not running");
        std::process::exit(20);
    }
    match captured.result {
        Ok(out) => out,
        // The schedule verified clean but the capture run itself died —
        // surface that as the machine fault it is rather than starting a
        // second doomed run.
        Err(fault) => fault_exit(&fault),
    }
}

fn fault_exit(fault: &MachineFault) -> ! {
    eprintln!("machine fault: {fault}");
    eprintln!("fault kind:    {}", fault.kind());
    std::process::exit(fault.exit_code());
}

fn main() {
    let cli = match parse() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let (app, cfg) = (cli.app, cli.cfg);

    // With no checkpointing in play the lint capture run IS the run: its
    // output is bit-identical, so it is printed instead of re-executing.
    // Checkpointed (or resumed) runs must still go through the
    // checkpointer, so there the capture output is only a certificate.
    let mut preflight_out: Option<AppOutput> = None;
    if cli.lint {
        let out = lint_preflight(app, &cfg);
        if cli.checkpoint_dir.is_none() && cli.resume.is_none() {
            preflight_out = Some(out);
        }
    }

    let mut ck = match &cli.checkpoint_dir {
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: --checkpoint-dir {}: {e}", dir.display());
                std::process::exit(2);
            }
            Checkpointer::to_file(dir.join(format!("{app}.ckpt")))
        }
        None => Checkpointer::disabled(),
    };
    if let Some(path) = &cli.resume {
        let image = match memfwd::read_snapshot_file(path) {
            Ok(image) => image,
            Err(e) => fault_exit(&MachineFault::from(e)),
        };
        // Validate the snapshot against *this* invocation's configuration
        // before building anything: a config-skewed resume must fail fast
        // with a clear message, not deep inside machine reconstruction.
        if let Err(e) = memfwd::check_snapshot_config(&image, &cfg.sim) {
            if matches!(e, memfwd::SnapshotError::ConfigMismatch) {
                eprintln!(
                    "error: snapshot {} does not match this configuration: {e}",
                    path.display()
                );
                eprintln!(
                    "hint: --resume requires the same --app/--variant/--line-bytes/... \
                     flags as the run that wrote the snapshot"
                );
            } else {
                eprintln!("error: snapshot {} is unusable: {e}", path.display());
            }
            fault_exit(&MachineFault::from(e));
        }
        ck = ck.resume_from(image);
    }

    let wall = std::time::Instant::now();
    let out = match preflight_out {
        Some(out) => out,
        None => match run_ck(app, &cfg, &mut ck) {
            Ok(CkOutcome::Done(out)) => out,
            Ok(CkOutcome::Stopped) => unreachable!("the CLI never uses a stop_after checkpointer"),
            Err(fault) => fault_exit(&fault),
        },
    };
    let s = &out.stats;
    let slots = s.slots();

    println!(
        "app                  {app} ({:?}, seed {})",
        cfg.variant, cfg.seed
    );
    println!("checksum             {:#018x}", out.checksum);
    println!("cycles               {}", s.cycles());
    println!(
        "instructions         {} ({:.2} IPC)",
        s.pipeline.dispatched,
        s.pipeline.dispatched as f64 / s.cycles().max(1) as f64
    );
    let (b, l, st, i) = slots.fractions();
    println!(
        "graduation slots     busy {:.1}% | load stall {:.1}% | store stall {:.1}% | inst stall {:.1}%",
        b * 100.0,
        l * 100.0,
        st * 100.0,
        i * 100.0
    );
    println!(
        "loads                {} ({} L1 hits, {} partial, {} full misses)",
        s.cache.loads.total(),
        s.cache.loads.l1_hits,
        s.cache.loads.partial_misses,
        s.cache.loads.full_misses
    );
    println!(
        "stores               {} ({} misses)",
        s.cache.stores.total(),
        s.cache.stores.misses()
    );
    println!(
        "bandwidth            {} B L1<->L2, {} B L2<->mem",
        s.bytes_l1_l2, s.bytes_l2_mem
    );
    println!(
        "forwarding           {} loads ({:.2}%), {} stores ({:.2}%) forwarded",
        s.fwd.forwarded_loads,
        s.fwd.forwarded_load_fraction() * 100.0,
        s.fwd.forwarded_stores,
        s.fwd.forwarded_store_fraction() * 100.0
    );
    println!(
        "relocation           {} calls, {} words, {} KB pool space",
        s.fwd.relocations,
        s.fwd.relocated_words,
        s.fwd.relocation_space_bytes / 1024
    );
    println!(
        "speculation          {} misspeculations, {} replays",
        s.fwd.misspeculations, s.pipeline.replays
    );
    if s.epoch.epochs > 0 {
        println!(
            "epoch execution      {} epochs: {} tasks committed speculatively, \
             {} replayed ({} rw, {} ww, {} aborted), {} ran direct",
            s.epoch.epochs,
            s.epoch.committed,
            s.epoch.replayed,
            s.epoch.conflicts_rw,
            s.epoch.conflicts_ww,
            s.epoch.aborts,
            s.epoch.direct
        );
    }
    println!(
        "memory               {} pages touched, {} fbits set, tag overhead {} B",
        s.mem.pages,
        s.mem.fbits_set,
        s.mem.tag_bytes()
    );
    if s.fwd.page_faults > 0 {
        println!("page faults          {}", s.fwd.page_faults);
    }
    if let Some(dir) = &cli.checkpoint_dir {
        println!(
            "checkpoints          {} written to {}",
            ck.boundaries_seen(),
            dir.join(format!("{app}.ckpt")).display()
        );
    }
    if s.fwd.injected_faults > 0 {
        println!(
            "fault injection      {} injected, {} repaired, {} trap deliveries",
            s.fwd.injected_faults, s.fwd.fault_repairs, s.fwd.faults_delivered
        );
    }
    println!("wall time            {:.2?}", wall.elapsed());
}
