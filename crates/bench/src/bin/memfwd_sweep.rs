//! `memfwd_sweep` — parallel sweep driver.
//!
//! Expands a declarative sweep spec (app × variant × line-bytes ×
//! mem-latency × seed) into independent simulator runs, executes them on a
//! worker pool, and writes a machine-readable `BENCH_sweep.json`. The
//! report content is bit-identical at any `--jobs` value; only the
//! `host_`-prefixed timing fields change between hosts and runs.
//!
//! ```console
//! $ cargo run --release -p memfwd-bench --bin memfwd_sweep -- \
//!       --apps health,mst --variants original,optimized \
//!       --line-bytes 32,64,128 --jobs 8 --scale bench
//! ```

use memfwd_apps::{App, Scale, Variant};
use memfwd_bench::sweep::{run_sweep, selftest, strip_host_lines, validate_report, SweepSpec};

const USAGE: &str = "\
memfwd-sweep: run an app/variant/line/latency/seed sweep in parallel

USAGE:
    memfwd_sweep [OPTIONS]

OPTIONS:
    --apps <a,b,...>        comma-separated subset of
                            health,mst,radiosity,vis,eqntott,bh,compress,smv
                            or 'all' (default: all)
    --variants <v,...>      comma-separated subset of
                            original,optimized,static
                            (default: original,optimized)
    --line-bytes <n,...>    cache line sizes to sweep (default: 32)
    --mem-latency <n,...>   memory latencies to sweep (default: 75)
    --seeds <n,...>         workload seeds to sweep (default: 12345)
    --scale <s>             smoke|bench for every cell (default: smoke)
    --jobs <n>              worker threads (default: 1)
    --out <file>            report path (default: BENCH_sweep.json)
    --selftest              also time the fixed single-run probe cell
                            (health/optimized) and record its
                            refs-per-second in the report
    --lint-preflight        before the grid, capture and verify the
                            relocation schedule of every app x variant in
                            the spec at smoke scale; any MF0xx error
                            aborts the sweep with exit 20
    --validate <file>       validate an existing report's schema and exit
    --strip-host <file>     print a report with host-timing lines removed
                            (for determinism diffs) and exit
    --help                  print this text

EXIT CODES:
    0  success    1  validation failed    2  usage error
    20 lint pre-flight rejected a relocation schedule
";

struct Cli {
    spec: SweepSpec,
    jobs: usize,
    out: std::path::PathBuf,
    selftest: bool,
    lint_preflight: bool,
}

enum Mode {
    Sweep(Cli),
    Validate(std::path::PathBuf),
    StripHost(std::path::PathBuf),
}

fn parse_list<T, E: std::fmt::Display>(
    flag: &str,
    val: &str,
    f: impl Fn(&str) -> Result<T, E>,
) -> Result<Vec<T>, String> {
    let items: Result<Vec<T>, E> = val.split(',').map(|s| f(s.trim())).collect();
    let items = items.map_err(|e| format!("{flag}: {e}"))?;
    if items.is_empty() {
        return Err(format!("{flag}: empty list"));
    }
    Ok(items)
}

fn parse() -> Result<Mode, String> {
    let mut spec = SweepSpec::default();
    let mut jobs = 1usize;
    let mut out = std::path::PathBuf::from("BENCH_sweep.json");
    let mut want_selftest = false;
    let mut lint_preflight = false;
    let mut args = std::env::args().skip(1);
    let next_val = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--apps" => {
                let v = next_val(&mut args, "--apps")?;
                spec.apps = if v == "all" {
                    App::ALL.to_vec()
                } else {
                    parse_list("--apps", &v, |s| {
                        App::from_name(s).ok_or_else(|| format!("unknown app '{s}'"))
                    })?
                };
            }
            "--variants" => {
                let v = next_val(&mut args, "--variants")?;
                spec.variants = parse_list("--variants", &v, |s| {
                    Variant::from_name(s).ok_or_else(|| format!("unknown variant '{s}'"))
                })?;
            }
            "--line-bytes" => {
                let v = next_val(&mut args, "--line-bytes")?;
                spec.line_bytes = parse_list("--line-bytes", &v, |s| s.parse::<u64>())?;
            }
            "--mem-latency" => {
                let v = next_val(&mut args, "--mem-latency")?;
                spec.mem_latency = parse_list("--mem-latency", &v, |s| s.parse::<u64>())?;
            }
            "--seeds" => {
                let v = next_val(&mut args, "--seeds")?;
                spec.seeds = parse_list("--seeds", &v, |s| s.parse::<u64>())?;
            }
            "--scale" => {
                spec.scale = match next_val(&mut args, "--scale")?.as_str() {
                    "smoke" => Scale::Smoke,
                    "bench" => Scale::Bench,
                    other => return Err(format!("unknown scale '{other}'")),
                };
            }
            "--jobs" => {
                jobs = next_val(&mut args, "--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--out" => out = std::path::PathBuf::from(next_val(&mut args, "--out")?),
            "--selftest" => want_selftest = true,
            "--lint-preflight" => lint_preflight = true,
            "--validate" => {
                return Ok(Mode::Validate(std::path::PathBuf::from(next_val(
                    &mut args,
                    "--validate",
                )?)));
            }
            "--strip-host" => {
                return Ok(Mode::StripHost(std::path::PathBuf::from(next_val(
                    &mut args,
                    "--strip-host",
                )?)));
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(Mode::Sweep(Cli {
        spec,
        jobs,
        out,
        selftest: want_selftest,
        lint_preflight,
    }))
}

/// Verifies the relocation schedule of every app x variant in the spec at
/// smoke scale (fast, layout-representative) before committing to the
/// grid. Exits 20 on the first schedule with an error diagnostic.
fn run_lint_preflight(spec: &SweepSpec) {
    for &app in &spec.apps {
        for &variant in &spec.variants {
            let mut cfg = memfwd_apps::RunConfig::new(variant).smoke();
            cfg.seed = spec.seeds.first().copied().unwrap_or(12345);
            let captured = memfwd_analyze::capture_app_plan(app, &cfg);
            let target = memfwd_analyze::app_target(app, &cfg);
            let report = memfwd_analyze::verify_plan(&target, &captured.plan);
            if report.errors().next().is_some() {
                eprint!("{}", memfwd_analyze::render_human(&report));
                eprintln!("lint-preflight: {target}: schedule rejected; sweep aborted");
                std::process::exit(20);
            }
            eprintln!(
                "lint-preflight: {target}: safe ({} steps, {} diagnostics)",
                report.steps,
                report.diagnostics.len()
            );
        }
    }
}

fn read_or_die(path: &std::path::Path) -> String {
    match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: {}: {e}", path.display());
            std::process::exit(2);
        }
    }
}

fn main() {
    let cli = match parse() {
        Ok(Mode::Sweep(cli)) => cli,
        Ok(Mode::Validate(path)) => {
            let text = read_or_die(&path);
            match validate_report(&text) {
                Ok(()) => {
                    println!("{}: valid BENCH_sweep.json", path.display());
                    std::process::exit(0);
                }
                Err(e) => {
                    eprintln!("{}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
        Ok(Mode::StripHost(path)) => {
            println!("{}", strip_host_lines(&read_or_die(&path)));
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    if cli.lint_preflight {
        run_lint_preflight(&cli.spec);
    }

    let selftest_rps = if cli.selftest {
        let r = selftest(cli.spec.scale);
        let rps = r.refs_per_second();
        println!(
            "selftest: {} ({:?}) {} refs in {:.2?} -> {:.0} refs/s",
            r.spec.app,
            r.spec.variant,
            r.refs,
            std::time::Duration::from_nanos(r.host_nanos),
            rps
        );
        Some(rps)
    } else {
        None
    };

    let n_cells = cli.spec.expand().len();
    eprintln!(
        "sweep: {} cells on {} worker(s), scale {:?}",
        n_cells, cli.jobs, cli.spec.scale
    );
    let mut report = run_sweep(&cli.spec, cli.jobs);
    report.selftest_refs_per_second = selftest_rps;

    for c in &report.cells {
        println!(
            "{:>10} {:>9} line {:>3} lat {:>3} seed {:>6}  {:#018x}  {:>12} cycles  {:>8.2?}",
            c.spec.app.name(),
            c.spec.variant.name(),
            c.spec.line_bytes,
            c.spec.mem_latency,
            c.spec.seed,
            c.checksum,
            c.stats.cycles(),
            std::time::Duration::from_nanos(c.host_nanos),
        );
    }
    let total_refs: u64 = report.cells.iter().map(|c| c.refs).sum();
    let wall = std::time::Duration::from_nanos(report.host_wall_nanos);
    println!(
        "sweep wall time {:.2?} for {} refs ({:.0} refs/s aggregate)",
        wall,
        total_refs,
        total_refs as f64 * 1e9 / report.host_wall_nanos.max(1) as f64
    );

    let json = report.to_json();
    debug_assert!(validate_report(&json).is_ok());
    if let Err(e) = std::fs::write(&cli.out, &json) {
        eprintln!("error: writing {}: {e}", cli.out.display());
        std::process::exit(2);
    }
    println!("report written to {}", cli.out.display());
}
