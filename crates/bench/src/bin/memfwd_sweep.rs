//! `memfwd_sweep` — parallel sweep driver and supervised campaign runner.
//!
//! Expands a declarative sweep spec (app × variant × line-bytes ×
//! mem-latency × seed) into independent simulator runs, executes them on a
//! worker pool, and writes a machine-readable `BENCH_sweep.json`. The
//! report content is bit-identical at any `--jobs` value; only the
//! `host_`-prefixed timing fields change between hosts and runs.
//!
//! With `--supervised` each cell runs in an out-of-process worker (a
//! re-exec of this binary in its hidden `--worker-cell` mode) under the
//! `memfwd-farm` supervisor: worker crashes are isolated to one cell,
//! failed cells are retried with backoff then quarantined as typed holes,
//! and every terminal outcome is durably journaled so a SIGKILLed
//! campaign resumes with `--resume`, recomputing only unfinished cells.
//!
//! ```console
//! $ cargo run --release -p memfwd-bench --bin memfwd_sweep -- \
//!       --apps health,mst --variants original,optimized \
//!       --line-bytes 32,64,128 --jobs 8 --scale bench \
//!       --supervised --farm-dir target/farm
//! ```

use memfwd_apps::{App, Scale, Variant};
use memfwd_bench::sweep::{
    run_sweep, selftest, strip_host_lines, strip_volatile_lines, validate_report, SweepSpec,
};
use memfwd_farm::{
    campaign_fingerprint, parse_worker_args, run_campaign, run_worker_cell, ChaosSpec, FarmOptions,
    Journal, SubprocessRunner, WorkerArgs,
};

const USAGE: &str = "\
memfwd-sweep: run an app/variant/line/latency/seed sweep in parallel

USAGE:
    memfwd_sweep [OPTIONS]

OPTIONS:
    --apps <a,b,...>        comma-separated subset of
                            health,mst,radiosity,vis,eqntott,bh,compress,smv
                            or 'all' (default: all)
    --variants <v,...>      comma-separated subset of
                            original,optimized,static
                            (default: original,optimized)
    --line-bytes <n,...>    cache line sizes to sweep (default: 32)
    --mem-latency <n,...>   memory latencies to sweep (default: 75)
    --seeds <n,...>         workload seeds to sweep (default: 12345)
    --scale <s>             smoke|bench for every cell (default: smoke)
    --jobs <n|auto>         sweep worker threads, one cell per worker
                            (default: auto = the host's available
                            parallelism)
    --threads <n|auto>      epoch-parallel worker count inside each cell
                            (the multi-core single-run engine); `auto` uses
                            the host's available parallelism, 0 disables
                            the engine (default: auto). Simulated results
                            are bit-identical at every count; the value is
                            recorded as host_threads in the report
    --out <file>            report path (default: BENCH_sweep.json)
    --selftest              also time the fixed single-run probe cell
                            (health/optimized) and record its
                            refs-per-second in the report
    --curve <n,...>         scaling-curve mode: run the selftest probe
                            best-of-3 at each epoch worker count in the
                            list, print refs/s and speedup per count, and
                            exit (no sweep; local only)
    --scalar                force the fully general scalar demand path
                            for every cell and the selftest (disables the
                            batched hot path; simulated results are
                            bit-identical, only host speed changes);
                            local in-process runs only
    --lint-preflight        before the grid, capture and verify the
                            relocation schedule of every app x variant in
                            the spec at smoke scale; any MF0xx error
                            aborts the sweep with exit 20
    --validate <file>       validate an existing report's schema and exit
    --strip-host <file>     print a report with host-timing lines removed
                            (for determinism diffs) and exit
    --strip-volatile <file> like --strip-host but also drop campaign
                            bookkeeping (outcome/attempts/error/summary),
                            for diffing a recovered chaos campaign against
                            a clean golden run
    --help                  print this text

SUPERVISED CAMPAIGNS:
    --supervised            run each cell in an out-of-process worker
                            under the farm supervisor (crash isolation,
                            retry/backoff, durable journal)
    --farm-dir <dir>        journal + checkpoint directory
                            (default: target/farm)
    --resume                resume the campaign from the journal in
                            --farm-dir, recomputing only unfinished cells
    --retries <n>           retries per failed cell after the first
                            attempt (default: 2)
    --backoff-ms <n>        base retry backoff in milliseconds, doubling
                            per retry with seeded jitter (default: 50)
    --cell-timeout-ms <n>   kill a worker making no checkpoint progress
                            for this long; the attempt counts as timed
                            out (default: off)
    --ckpt-every <n>        worker checkpoint cadence in demand
                            references (default: application default)
    --chaos <spec>          inject failures by cell index for testing:
                            panic@I,abort@J,hang@K (panic/abort fire on
                            attempt 0 only; hang fires every attempt)
    --crash-after-appends <n>
                            testing knob: stop the supervisor cold after
                            the n-th journal append, exactly as if it had
                            been SIGKILLed there (exits 137); resume with
                            --resume

SERVICE CLIENT:
    --submit <socket>       submit the grid to a running memfwd_served
                            instance instead of executing locally, wait
                            for completion, and write the report it
                            returns verbatim to --out (byte-identical to
                            a local run after --strip-volatile)
    --job-timeout-ms <n>    whole-job deadline enforced by the service
                            (default: none)
    (--retries / --backoff-ms / --cell-timeout-ms are forwarded as the
    job's supervision options; --supervised, --resume, --chaos,
    --selftest, and --lint-preflight do not combine with --submit)

EXIT CODES:
    0  success    1  validation failed    2  usage error
    20 lint pre-flight rejected a relocation schedule
    21 campaign degraded: completed, but with poisoned/timed-out cells
    22 campaign journal unusable (corrupt, version-skewed, or from a
       different campaign)
    23 service shed the submission (typed backpressure) or is draining
    24 service unreachable, protocol error, or job failed service-side
";

struct Cli {
    spec: SweepSpec,
    jobs: usize,
    /// Epoch worker count per cell; `None` means the user did not pass
    /// `--threads` and the auto default applies (local runs only).
    threads: Option<usize>,
    curve: Option<Vec<usize>>,
    out: std::path::PathBuf,
    selftest: bool,
    scalar: bool,
    lint_preflight: bool,
    supervised: bool,
    farm_dir: std::path::PathBuf,
    resume: bool,
    retries: u32,
    backoff_ms: u64,
    cell_timeout_ms: Option<u64>,
    ckpt_every: Option<u64>,
    chaos: ChaosSpec,
    crash_after_appends: Option<u64>,
    submit: Option<std::path::PathBuf>,
    job_timeout_ms: Option<u64>,
}

enum Mode {
    Sweep(Box<Cli>),
    Validate(std::path::PathBuf),
    StripHost(std::path::PathBuf),
    StripVolatile(std::path::PathBuf),
    Worker(Box<WorkerArgs>),
}

fn parse_list<T, E: std::fmt::Display>(
    flag: &str,
    val: &str,
    f: impl Fn(&str) -> Result<T, E>,
) -> Result<Vec<T>, String> {
    let items: Result<Vec<T>, E> = val.split(',').map(|s| f(s.trim())).collect();
    let items = items.map_err(|e| format!("{flag}: {e}"))?;
    if items.is_empty() {
        return Err(format!("{flag}: empty list"));
    }
    Ok(items)
}

fn parse() -> Result<Mode, String> {
    let mut spec = SweepSpec::default();
    let mut jobs = memfwd_bench::host_parallelism();
    let mut threads: Option<usize> = None;
    let mut curve: Option<Vec<usize>> = None;
    let mut out = std::path::PathBuf::from("BENCH_sweep.json");
    let mut want_selftest = false;
    let mut scalar = false;
    let mut lint_preflight = false;
    let mut supervised = false;
    let mut farm_dir = std::path::PathBuf::from("target/farm");
    let mut resume = false;
    let mut retries = 2u32;
    let mut backoff_ms = 50u64;
    let mut cell_timeout_ms = None;
    let mut ckpt_every = None;
    let mut chaos = ChaosSpec::default();
    let mut crash_after_appends = None;
    let mut submit = None;
    let mut job_timeout_ms = None;
    let mut args = std::env::args();
    let _argv0 = args.next();
    let next_val = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--worker-cell" => {
                // Hidden internal mode: the rest of argv describes one cell.
                return Ok(Mode::Worker(Box::new(parse_worker_args(args)?)));
            }
            "--apps" => {
                let v = next_val(&mut args, "--apps")?;
                spec.apps = if v == "all" {
                    App::ALL.to_vec()
                } else {
                    parse_list("--apps", &v, |s| {
                        App::from_name(s).ok_or_else(|| format!("unknown app '{s}'"))
                    })?
                };
            }
            "--variants" => {
                let v = next_val(&mut args, "--variants")?;
                spec.variants = parse_list("--variants", &v, |s| {
                    Variant::from_name(s).ok_or_else(|| format!("unknown variant '{s}'"))
                })?;
            }
            "--line-bytes" => {
                let v = next_val(&mut args, "--line-bytes")?;
                spec.line_bytes = parse_list("--line-bytes", &v, |s| s.parse::<u64>())?;
            }
            "--mem-latency" => {
                let v = next_val(&mut args, "--mem-latency")?;
                spec.mem_latency = parse_list("--mem-latency", &v, |s| s.parse::<u64>())?;
            }
            "--seeds" => {
                let v = next_val(&mut args, "--seeds")?;
                spec.seeds = parse_list("--seeds", &v, |s| s.parse::<u64>())?;
            }
            "--scale" => {
                spec.scale = match next_val(&mut args, "--scale")?.as_str() {
                    "smoke" => Scale::Smoke,
                    "bench" => Scale::Bench,
                    other => return Err(format!("unknown scale '{other}'")),
                };
            }
            "--jobs" => {
                let v = next_val(&mut args, "--jobs")?;
                jobs = memfwd_bench::parse_thread_count(&v).map_err(|e| format!("--jobs: {e}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--threads" => {
                let v = next_val(&mut args, "--threads")?;
                threads = Some(
                    memfwd_bench::parse_thread_count(&v).map_err(|e| format!("--threads: {e}"))?,
                );
            }
            "--curve" => {
                let v = next_val(&mut args, "--curve")?;
                curve = Some(parse_list("--curve", &v, memfwd_bench::parse_thread_count)?);
            }
            "--out" => out = std::path::PathBuf::from(next_val(&mut args, "--out")?),
            "--selftest" => want_selftest = true,
            "--scalar" => scalar = true,
            "--lint-preflight" => lint_preflight = true,
            "--supervised" => supervised = true,
            "--farm-dir" => farm_dir = std::path::PathBuf::from(next_val(&mut args, "--farm-dir")?),
            "--resume" => resume = true,
            "--retries" => {
                retries = next_val(&mut args, "--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?;
            }
            "--backoff-ms" => {
                backoff_ms = next_val(&mut args, "--backoff-ms")?
                    .parse()
                    .map_err(|e| format!("--backoff-ms: {e}"))?;
            }
            "--cell-timeout-ms" => {
                cell_timeout_ms = Some(
                    next_val(&mut args, "--cell-timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--cell-timeout-ms: {e}"))?,
                );
            }
            "--ckpt-every" => {
                ckpt_every = Some(
                    next_val(&mut args, "--ckpt-every")?
                        .parse()
                        .map_err(|e| format!("--ckpt-every: {e}"))?,
                );
            }
            "--chaos" => {
                chaos = ChaosSpec::parse(&next_val(&mut args, "--chaos")?)?;
            }
            "--crash-after-appends" => {
                crash_after_appends = Some(
                    next_val(&mut args, "--crash-after-appends")?
                        .parse()
                        .map_err(|e| format!("--crash-after-appends: {e}"))?,
                );
            }
            "--submit" => {
                submit = Some(std::path::PathBuf::from(next_val(&mut args, "--submit")?));
            }
            "--job-timeout-ms" => {
                job_timeout_ms = Some(
                    next_val(&mut args, "--job-timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--job-timeout-ms: {e}"))?,
                );
            }
            "--validate" => {
                return Ok(Mode::Validate(std::path::PathBuf::from(next_val(
                    &mut args,
                    "--validate",
                )?)));
            }
            "--strip-host" => {
                return Ok(Mode::StripHost(std::path::PathBuf::from(next_val(
                    &mut args,
                    "--strip-host",
                )?)));
            }
            "--strip-volatile" => {
                return Ok(Mode::StripVolatile(std::path::PathBuf::from(next_val(
                    &mut args,
                    "--strip-volatile",
                )?)));
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if resume && !supervised {
        return Err("--resume requires --supervised".into());
    }
    if !chaos.is_empty() && !supervised {
        return Err("--chaos requires --supervised".into());
    }
    if crash_after_appends.is_some() && !supervised {
        return Err("--crash-after-appends requires --supervised".into());
    }
    if submit.is_some() {
        if supervised || resume {
            return Err("--submit executes on the service; drop --supervised/--resume".into());
        }
        if !chaos.is_empty() || crash_after_appends.is_some() {
            return Err("--chaos/--crash-after-appends do not combine with --submit".into());
        }
        if want_selftest || lint_preflight {
            return Err(
                "--selftest/--lint-preflight are local-only; drop them for --submit".into(),
            );
        }
    }
    if job_timeout_ms.is_some() && submit.is_none() {
        return Err("--job-timeout-ms requires --submit".into());
    }
    if scalar && (supervised || submit.is_some()) {
        return Err("--scalar applies to local in-process runs only".into());
    }
    if threads.is_some() && (supervised || submit.is_some()) {
        return Err("--threads applies to local in-process runs only".into());
    }
    if curve.is_some() && (supervised || submit.is_some()) {
        return Err("--curve applies to local in-process runs only".into());
    }
    Ok(Mode::Sweep(Box::new(Cli {
        spec,
        jobs,
        threads,
        curve,
        out,
        selftest: want_selftest,
        scalar,
        lint_preflight,
        supervised,
        farm_dir,
        resume,
        retries,
        backoff_ms,
        cell_timeout_ms,
        ckpt_every,
        chaos,
        crash_after_appends,
        submit,
        job_timeout_ms,
    })))
}

/// The `--curve` scaling mode: the selftest probe, best of 3, at each
/// epoch worker count in turn. Prints refs/s, the speedup against the
/// first count in the list, and the engine's commit/replay tallies.
fn run_curve(counts: &[usize], scale: Scale) {
    println!("scaling curve: selftest probe (health/optimized), best of 3 per count");
    println!(
        "host parallelism: {} hardware threads (counts above it time-slice)",
        memfwd_bench::host_parallelism()
    );
    let mut base: Option<f64> = None;
    for &t in counts {
        memfwd_bench::sweep::set_epoch_threads(t);
        let mut best: Option<memfwd_bench::sweep::CellResult> = None;
        for _ in 0..3 {
            let r = selftest(scale);
            if best.as_ref().is_none_or(|b| r.host_nanos < b.host_nanos) {
                best = Some(r);
            }
        }
        let r = best.expect("three probe runs");
        let rps = r.refs_per_second();
        let base_rps = *base.get_or_insert(rps);
        let e = &r.stats.epoch;
        println!(
            "threads {t:>2}: {rps:>12.0} refs/s  {:>5.2}x  \
             ({} epochs, {} committed, {} replayed)",
            rps / base_rps,
            e.epochs,
            e.committed,
            e.replayed
        );
    }
}

/// Verifies the relocation schedule of every app x variant in the spec at
/// smoke scale (fast, layout-representative) before committing to the
/// grid. Exits 20 on the first schedule with an error diagnostic.
fn run_lint_preflight(spec: &SweepSpec) {
    for &app in &spec.apps {
        for &variant in &spec.variants {
            let mut cfg = memfwd_apps::RunConfig::new(variant).smoke();
            cfg.seed = spec.seeds.first().copied().unwrap_or(12345);
            let captured = memfwd_analyze::capture_app_plan(app, &cfg);
            let target = memfwd_analyze::app_target(app, &cfg);
            let report = memfwd_analyze::verify_plan(&target, &captured.plan);
            if report.errors().next().is_some() {
                eprint!("{}", memfwd_analyze::render_human(&report));
                eprintln!("lint-preflight: {target}: schedule rejected; sweep aborted");
                std::process::exit(20);
            }
            eprintln!(
                "lint-preflight: {target}: safe ({} steps, {} diagnostics)",
                report.steps,
                report.diagnostics.len()
            );
        }
    }
}

fn read_or_die(path: &std::path::Path) -> String {
    match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: {}: {e}", path.display());
            std::process::exit(2);
        }
    }
}

/// Opens (or resumes) the campaign journal, mapping every typed journal
/// problem to exit 22 with a clear message.
fn open_journal(cli: &Cli, fingerprint: u64) -> Journal {
    let path = cli.farm_dir.join("journal.mfj");
    if cli.resume {
        match Journal::load(&path, fingerprint) {
            Ok(j) => {
                eprintln!(
                    "supervisor: resuming campaign from {} ({} journaled cells)",
                    path.display(),
                    j.len()
                );
                j
            }
            Err(e) => {
                eprintln!("error: cannot resume from {}: {e}", path.display());
                std::process::exit(22);
            }
        }
    } else {
        if path.exists() {
            eprintln!(
                "error: {} already exists; pass --resume to continue that campaign \
                 or remove the farm dir to start over",
                path.display()
            );
            std::process::exit(22);
        }
        match Journal::create(&path, fingerprint) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("error: creating journal {}: {e}", path.display());
                std::process::exit(22);
            }
        }
    }
}

fn run_supervised(cli: &Cli) -> memfwd_bench::sweep::SweepReport {
    if let Err(e) = std::fs::create_dir_all(&cli.farm_dir) {
        eprintln!("error: creating farm dir {}: {e}", cli.farm_dir.display());
        std::process::exit(2);
    }
    let fingerprint = campaign_fingerprint(&cli.spec);
    let mut journal = open_journal(cli, fingerprint);
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(e) => {
            eprintln!("error: locating own binary for worker re-exec: {e}");
            std::process::exit(2);
        }
    };
    let runner = SubprocessRunner {
        exe,
        farm_dir: cli.farm_dir.clone(),
        cell_timeout: cli.cell_timeout_ms.map(std::time::Duration::from_millis),
        ckpt_every: cli.ckpt_every,
        chaos: cli.chaos.clone(),
    };
    let opts = FarmOptions {
        jobs: cli.jobs,
        retries: cli.retries,
        backoff_ms: cli.backoff_ms,
        cell_timeout: runner.cell_timeout,
        crash_after_appends: cli.crash_after_appends,
        ..FarmOptions::default()
    };
    let run = match run_campaign(&cli.spec, &opts, &runner, &mut journal) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("error: campaign journal failure: {e}");
            std::process::exit(22);
        }
    };
    eprintln!(
        "supervisor: {} cells from journal (zero recompute), {} executed",
        run.from_journal, run.executed
    );
    match run.report {
        Some(report) => report,
        None => {
            // Only reachable via --crash-after-appends; a real SIGKILL
            // never gets here. Mirror SIGKILL's conventional exit status.
            eprintln!("supervisor: campaign crashed at injected crash point (simulating SIGKILL)");
            std::process::exit(137);
        }
    }
}

fn die_submit(msg: &str) -> ! {
    eprintln!("submit: {msg}");
    std::process::exit(24);
}

/// Client mode: submits the grid to a running `memfwd_served`, waits for
/// the job to finish, and writes the report the service returns verbatim
/// to `--out`. The report is the same `BENCH_sweep.json` a local run of
/// the grid would produce — byte-identical after `--strip-volatile` —
/// whether the service computed, cached, or crash-resumed the cells.
#[cfg(unix)]
fn run_submit(cli: &Cli, socket: &std::path::Path) -> ! {
    use memfwd_farm::minijson::{parse_json, Json};
    use memfwd_served::proto;
    use std::io::{BufRead, BufReader, Write};

    let stream = match std::os::unix::net::UnixStream::connect(socket) {
        Ok(s) => s,
        Err(e) => die_submit(&format!("connecting to {}: {e}", socket.display())),
    };
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(e) => die_submit(&format!("socket: {e}")),
    });
    let mut writer = stream;
    let mut rpc = move |line: String| -> Json {
        let sent = writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush());
        if let Err(e) = sent {
            die_submit(&format!("sending request: {e}"));
        }
        let mut resp = String::new();
        match reader.read_line(&mut resp) {
            Ok(0) => die_submit("service closed the connection"),
            Ok(_) => {}
            Err(e) => die_submit(&format!("reading response: {e}")),
        }
        match parse_json(&resp) {
            Ok(v) => v,
            Err(e) => die_submit(&format!("unparseable response: {e}")),
        }
    };
    fn rtype(v: &Json) -> &str {
        v.get("type").and_then(Json::as_str).unwrap_or("?")
    }
    fn detail(v: &Json) -> &str {
        v.get("error").and_then(Json::as_str).unwrap_or("no detail")
    }

    let options = memfwd_served::JobOptions {
        retries: cli.retries,
        backoff_ms: cli.backoff_ms,
        cell_timeout_ms: cli.cell_timeout_ms,
        job_timeout_ms: cli.job_timeout_ms,
    };
    let v = rpc(format!(
        "{{\"op\":\"submit\",\"spec\":{},\"options\":{}}}",
        proto::spec_to_json(&cli.spec),
        proto::options_to_json(&options),
    ));
    let job = match rtype(&v) {
        "accepted" => match v.get("job").and_then(Json::as_str) {
            Some(j) => j.to_string(),
            None => die_submit("accepted response missing the job id"),
        },
        "shed" => {
            eprintln!(
                "submit: shed by the service ({}; depth {} of {}); retry later",
                v.get("reason").and_then(Json::as_str).unwrap_or("?"),
                v.get("queue_depth").and_then(Json::as_u64).unwrap_or(0),
                v.get("limit").and_then(Json::as_u64).unwrap_or(0),
            );
            std::process::exit(23);
        }
        "draining" => {
            eprintln!("submit: service is draining and admits no new work; retry later");
            std::process::exit(23);
        }
        other => die_submit(&format!("submit refused ({other}): {}", detail(&v))),
    };
    eprintln!("submit: accepted as {job}");

    loop {
        let v = rpc(format!("{{\"op\":\"status\",\"job\":\"{job}\"}}"));
        match v.get("state").and_then(Json::as_str) {
            Some("done") => break,
            Some("queued") | Some("running") => {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            Some(other) => {
                // "failed" (or a state this client predates): the report
                // op carries the reason as a typed error.
                let r = rpc(format!("{{\"op\":\"report\",\"job\":\"{job}\"}}"));
                die_submit(&format!("job {job} ended {other}: {}", detail(&r)));
            }
            None => die_submit(&format!("malformed status response: {}", detail(&v))),
        }
    }

    let v = rpc(format!("{{\"op\":\"report\",\"job\":\"{job}\"}}"));
    if rtype(&v) != "report" {
        die_submit(&format!("fetching report: {}", detail(&v)));
    }
    let Some(report) = v.get("report").and_then(Json::as_str) else {
        die_submit("report response missing the report body");
    };
    let degraded = v.get("degraded").and_then(Json::as_bool).unwrap_or(false);
    if let Err(e) = std::fs::write(&cli.out, report.as_bytes()) {
        eprintln!("error: writing {}: {e}", cli.out.display());
        std::process::exit(2);
    }
    println!(
        "report written to {} (computed by the service as {job})",
        cli.out.display()
    );
    if degraded {
        eprintln!("campaign degraded: the service reported poisoned/timed-out cells");
        std::process::exit(21);
    }
    std::process::exit(0);
}

#[cfg(not(unix))]
fn run_submit(_cli: &Cli, _socket: &std::path::Path) -> ! {
    die_submit("--submit requires Unix domain sockets")
}

fn main() {
    let cli = match parse() {
        Ok(Mode::Sweep(cli)) => cli,
        Ok(Mode::Worker(args)) => std::process::exit(run_worker_cell(&args)),
        Ok(Mode::Validate(path)) => {
            let text = read_or_die(&path);
            match validate_report(&text) {
                Ok(()) => {
                    println!("{}: valid BENCH_sweep.json", path.display());
                    std::process::exit(0);
                }
                Err(e) => {
                    eprintln!("{}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
        Ok(Mode::StripHost(path)) => {
            println!("{}", strip_host_lines(&read_or_die(&path)));
            std::process::exit(0);
        }
        Ok(Mode::StripVolatile(path)) => {
            println!("{}", strip_volatile_lines(&read_or_die(&path)));
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    if let Some(socket) = &cli.submit {
        run_submit(&cli, socket);
    }

    if cli.lint_preflight {
        run_lint_preflight(&cli.spec);
    }

    if cli.scalar {
        memfwd_bench::sweep::set_scalar_path(true);
    }

    // Epoch worker count per cell: explicit --threads wins; local sweeps
    // default to the host's parallelism. Supervised campaigns run cells
    // out of process, where the engine stays off.
    if !cli.supervised {
        memfwd_bench::sweep::set_epoch_threads(
            cli.threads.unwrap_or_else(memfwd_bench::host_parallelism),
        );
    }

    if let Some(counts) = &cli.curve {
        run_curve(counts, cli.spec.scale);
        std::process::exit(0);
    }

    let selftest_rps = if cli.selftest {
        let r = selftest(cli.spec.scale);
        let rps = r.refs_per_second();
        println!(
            "selftest: {} ({:?}) {} refs in {:.2?} -> {:.0} refs/s",
            r.spec.app,
            r.spec.variant,
            r.refs,
            std::time::Duration::from_nanos(r.host_nanos),
            rps
        );
        Some(rps)
    } else {
        None
    };

    let n_cells = cli.spec.expand().len();
    eprintln!(
        "sweep: {} cells on {} worker(s), scale {:?}{}",
        n_cells,
        cli.jobs,
        cli.spec.scale,
        if cli.supervised { " [supervised]" } else { "" }
    );
    let mut report = if cli.supervised {
        run_supervised(&cli)
    } else {
        run_sweep(&cli.spec, cli.jobs)
    };
    report.selftest_refs_per_second = selftest_rps;

    for c in &report.cells {
        match c.sim() {
            Some(r) => println!(
                "{:>10} {:>9} line {:>3} lat {:>3} seed {:>6}  {:#018x}  {:>12} cycles  {:>8.2?}  [{}{}]",
                c.spec.app.name(),
                c.spec.variant.name(),
                c.spec.line_bytes,
                c.spec.mem_latency,
                c.spec.seed,
                r.checksum,
                r.stats.cycles(),
                std::time::Duration::from_nanos(r.host_nanos),
                c.outcome.name(),
                if c.attempts > 1 {
                    format!(", {} attempts", c.attempts)
                } else {
                    String::new()
                },
            ),
            None => println!(
                "{:>10} {:>9} line {:>3} lat {:>3} seed {:>6}  {:<18}  [{}: {}]",
                c.spec.app.name(),
                c.spec.variant.name(),
                c.spec.line_bytes,
                c.spec.mem_latency,
                c.spec.seed,
                "----------------",
                c.outcome.name(),
                c.error.as_deref().unwrap_or("no error recorded"),
            ),
        }
    }
    let summary = report.summary();
    let total_refs: u64 = report
        .cells
        .iter()
        .filter_map(|c| c.sim())
        .map(|r| r.refs)
        .sum();
    let wall = std::time::Duration::from_nanos(report.host_wall_nanos);
    println!(
        "sweep wall time {:.2?} for {} refs ({:.0} refs/s aggregate); \
         {} ok, {} retried, {} poisoned, {} timed out",
        wall,
        total_refs,
        total_refs as f64 * 1e9 / report.host_wall_nanos.max(1) as f64,
        summary.ok,
        summary.retried,
        summary.poisoned,
        summary.timed_out,
    );

    let json = report.to_json();
    debug_assert!(validate_report(&json).is_ok());
    if let Err(e) = std::fs::write(&cli.out, &json) {
        eprintln!("error: writing {}: {e}", cli.out.display());
        std::process::exit(2);
    }
    println!("report written to {}", cli.out.display());
    if !summary.is_clean() {
        eprintln!(
            "campaign degraded: {} poisoned, {} timed out (typed holes in the report)",
            summary.poisoned, summary.timed_out
        );
        std::process::exit(21);
    }
}
