//! Experiment harness for regenerating every table and figure of the
//! Memory Forwarding paper.
//!
//! Each `cargo bench` target is a standalone binary (`harness = false`)
//! that runs the relevant simulations and prints the same rows or series
//! the paper reports. The helpers here are shared by those targets.
//!
//! Set `MEMFWD_SCALE=smoke` to run every experiment on tiny inputs (for CI
//! smoke-testing the harness itself); the default is the bench scale whose
//! working sets exceed the simulated L2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Same discipline as the core crates: bare `unwrap()` is test-only.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use memfwd_apps::{run_ok as run, App, AppOutput, RunConfig, Scale, Variant};

// The sweep engine moved to `memfwd-farm` when it grew campaign
// supervision; this re-export keeps `memfwd_bench::sweep::*` paths (CI
// scripts, tests, EXPERIMENTS.md) working unchanged.
pub use memfwd_farm::sweep;

/// The line sizes swept by Fig. 5/6 of the paper.
pub const LINE_SIZES: [u64; 3] = [32, 64, 128];

/// The host's available parallelism, used as the default worker count for
/// `--jobs` and `--threads` (1 when the host cannot report it).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parses a worker-count CLI value: a number (0 allowed where it means
/// "disabled"), or `auto` for [`host_parallelism`].
///
/// # Errors
///
/// A usage message when the value is neither `auto` nor a number.
pub fn parse_thread_count(v: &str) -> Result<usize, String> {
    if v == "auto" {
        return Ok(host_parallelism());
    }
    v.parse::<usize>().map_err(|e| e.to_string())
}

/// Reads the workload scale from `MEMFWD_SCALE` (`smoke` or `bench`).
pub fn scale_from_env() -> Scale {
    match std::env::var("MEMFWD_SCALE").as_deref() {
        Ok("smoke") => Scale::Smoke,
        _ => Scale::Bench,
    }
}

/// Runs one experiment cell.
pub fn run_cell(
    app: App,
    variant: Variant,
    line_bytes: u64,
    prefetch_lines: Option<u64>,
    scale: Scale,
) -> AppOutput {
    let mut cfg = RunConfig::new(variant);
    cfg.scale = scale;
    cfg.sim = cfg.sim.with_line_bytes(line_bytes);
    if let Some(b) = prefetch_lines {
        cfg.prefetch = true;
        cfg.prefetch_lines = b;
    }
    run(app, &cfg)
}

/// Runs a prefetching cell for every block size in `blocks` and returns
/// the best-performing output with its block size — the paper reports "the
/// block size that performed the best for each case".
pub fn best_prefetch(
    app: App,
    variant: Variant,
    line_bytes: u64,
    blocks: &[u64],
    scale: Scale,
) -> (u64, AppOutput) {
    blocks
        .iter()
        .map(|&b| (b, run_cell(app, variant, line_bytes, Some(b), scale)))
        .min_by_key(|(_, out)| out.stats.cycles())
        .expect("non-empty block list")
}

/// One row of a Fig. 5-style breakdown: graduation slots by category,
/// normalized so that a reference runtime is 100.
#[derive(Debug, Clone, Copy)]
pub struct Breakdown {
    /// Total normalized height of the bar.
    pub total: f64,
    /// Normalized busy section.
    pub busy: f64,
    /// Normalized load-stall section.
    pub load_stall: f64,
    /// Normalized store-stall section.
    pub store_stall: f64,
    /// Normalized inst-stall section.
    pub inst_stall: f64,
}

impl Breakdown {
    /// Computes the breakdown of `out` normalized against `ref_cycles`.
    pub fn of(out: &AppOutput, ref_cycles: u64) -> Breakdown {
        let s = out.stats.slots();
        let scale = 100.0 / ref_cycles as f64 / out.stats.pipeline.slots.total().max(1) as f64
            * out.stats.cycles() as f64;
        Breakdown {
            total: 100.0 * out.stats.cycles() as f64 / ref_cycles as f64,
            busy: s.busy as f64 * scale,
            load_stall: s.load_stall as f64 * scale,
            store_stall: s.store_stall as f64 * scale,
            inst_stall: s.inst_stall as f64 * scale,
        }
    }
}

/// Formats a ratio as a signed percentage speedup annotation, as under the
/// bars of Fig. 5.
pub fn speedup_pct(unopt_cycles: u64, opt_cycles: u64) -> String {
    let s = unopt_cycles as f64 / opt_cycles.max(1) as f64;
    format!("{:+.0}%", (s - 1.0) * 100.0)
}

/// Prints a horizontal rule sized to a header string.
pub fn rule(header: &str) {
    println!("{}", "-".repeat(header.len()));
}

/// Writes an experiment's rows as CSV under `target/experiments/`, so the
/// figures can be re-plotted outside the terminal. Failures are reported
/// but never abort the experiment.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    // Benches run with the package directory as CWD; anchor the output at
    // the workspace target directory instead.
    let dir = std::env::var("CARGO_MANIFEST_DIR")
        .map(|p| std::path::PathBuf::from(p).join("../../target/experiments"))
        .unwrap_or_else(|_| std::path::PathBuf::from("target/experiments"));
    let dir = dir.as_path();
    let write = || -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut out = String::new();
        out.push_str(&header.join(","));
        out.push('\n');
        for row in rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        std::fs::write(&path, out)?;
        Ok(path)
    };
    match write() {
        Ok(path) => println!("(csv written to {})", path.display()),
        Err(e) => eprintln!("(csv export failed: {e})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_sections_sum_to_total() {
        let out = run_cell(App::Vis, Variant::Original, 32, None, Scale::Smoke);
        let b = Breakdown::of(&out, out.stats.cycles());
        assert!((b.total - 100.0).abs() < 1e-9);
        let sum = b.busy + b.load_stall + b.store_stall + b.inst_stall;
        assert!(
            (sum - b.total).abs() < 1e-6,
            "sum {sum} != total {}",
            b.total
        );
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(speedup_pct(200, 100), "+100%");
        assert_eq!(speedup_pct(100, 100), "+0%");
        assert_eq!(speedup_pct(80, 100), "-20%");
    }

    #[test]
    fn best_prefetch_picks_minimum() {
        let (b, out) = best_prefetch(App::Vis, Variant::Optimized, 32, &[1, 2], Scale::Smoke);
        assert!(b == 1 || b == 2);
        assert!(out.stats.cycles() > 0);
    }

    #[test]
    fn scale_env_default_is_bench() {
        // (Cannot mutate the environment safely in tests; just check the
        // default path when the variable is absent or unrecognized.)
        assert_eq!(scale_from_env(), Scale::Bench);
    }
}
