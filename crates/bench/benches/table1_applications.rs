//! Table 1: the applications, the optimization applied to each, dynamic
//! instruction counts, and the space overhead of relocation.

use memfwd_apps::{App, Variant};
use memfwd_bench::{run_cell, scale_from_env};

fn main() {
    let scale = scale_from_env();
    let header = format!(
        "{:<10} {:<50} {:>12} {:>12} {:>14}",
        "App", "Optimization (L variant)", "insts (N)", "insts (L)", "space ovh (KB)"
    );
    println!("Table 1: application and optimization inventory");
    println!("{header}");
    memfwd_bench::rule(&header);
    for app in App::ALL {
        let n = run_cell(app, Variant::Original, 32, None, scale);
        let l = run_cell(app, Variant::Optimized, 32, None, scale);
        assert_eq!(n.checksum, l.checksum, "{app}: relocation must be safe");
        println!(
            "{:<10} {:<50} {:>12} {:>12} {:>14.1}",
            app.name(),
            app.optimization(),
            n.stats.pipeline.dispatched,
            l.stats.pipeline.dispatched,
            l.stats.fwd.relocation_space_bytes as f64 / 1024.0,
        );
    }
    println!();
    println!(
        "(Checksums of N and L agree for every application: the relocation\n\
         optimizations never changed a program result.)"
    );
}
