//! Extension experiments beyond the paper's evaluation section, exercising
//! the two §2.2 optimization classes the paper describes but does not
//! measure: reducing false sharing on a multiprocessor, and page-level
//! (out-of-core) locality.

use memfwd::{
    list_linearize, list_walk, ListDesc, Machine, PagingConfig, SimConfig, SmpConfig, SmpMachine,
};
use memfwd_tagmem::{Addr, Pool};

#[allow(clippy::needless_range_loop)]
fn false_sharing() {
    println!("Extension A: reducing false sharing (\u{a7}2.2), 4 cores, 64B lines");
    let mut m = SmpMachine::new(SmpConfig::default(), SimConfig::default());
    let cores = m.cores();
    let per_core = 8usize;
    let arr = m.malloc((cores * per_core * 8) as u64);
    let mut counters: Vec<Vec<Addr>> = vec![Vec::new(); cores];
    for i in 0..cores * per_core {
        counters[i % cores].push(arr.add_words(i as u64));
    }
    let phase = |m: &mut SmpMachine, counters: &[Vec<Addr>]| -> u64 {
        m.barrier();
        let start = m.cycles();
        for _ in 0..300 {
            for (core, mine) in counters.iter().enumerate() {
                for &c in mine {
                    let v = m.load(core, c, 8);
                    m.store(core, c, 8, v + 1);
                }
            }
        }
        m.barrier();
        m.cycles() - start
    };
    let shared = phase(&mut m, &counters);
    let fs_before = m.total_stats().false_sharing_misses;
    let line = m.line_bytes();
    let mut pools: Vec<Pool> = (0..cores).map(|_| Pool::new(4096)).collect();
    for core in 0..cores {
        let chunk = m.pool_alloc_aligned(&mut pools[core], (per_core * 8) as u64, line);
        for k in 0..per_core {
            let tgt = chunk.add_words(k as u64);
            m.relocate(core, counters[core][k], tgt, 1);
            counters[core][k] = tgt;
        }
    }
    let private = phase(&mut m, &counters);
    println!("  interleaved layout : {shared:>10} cycles ({fs_before} false-sharing misses)");
    println!(
        "  relocated layout   : {private:>10} cycles  -> {:.1}x speedup",
        shared as f64 / private as f64
    );
    println!();
}

fn out_of_core() {
    println!("Extension B: out-of-core page locality (\u{a7}2.2), 48 resident pages");
    const DESC: ListDesc = ListDesc {
        node_words: 4,
        next_word: 0,
    };
    let cfg = SimConfig {
        paging: Some(PagingConfig {
            page_bytes: 4096,
            resident_pages: 48,
            fault_penalty: 50_000,
        }),
        ..SimConfig::default()
    };
    let mut m = Machine::new(cfg);
    let head = m.malloc(8);
    m.store_ptr(head, Addr::NULL);
    for i in 0..2500u64 {
        let _gap = m.malloc(2048 + (i % 5) * 1024);
        let node = m.malloc(32);
        let first = m.load_ptr(head);
        m.store_ptr(node, first);
        m.store_word(node + 8, i);
        m.store_ptr(head, node);
    }
    let traverse = |m: &mut Machine| -> u64 {
        let before = m.now();
        list_walk(m, head, 0, |m, node, tok| {
            let (_, t) = m.load_word_dep(node + 8, tok);
            t
        });
        m.now() - before
    };
    let _cold = traverse(&mut m);
    let scattered = traverse(&mut m);
    let mut pool = m.new_pool();
    list_linearize(&mut m, head, DESC, &mut pool);
    let _warm = traverse(&mut m);
    let packed = traverse(&mut m);
    println!("  scattered repeat traversal : {scattered:>12} cycles (thrashing)");
    println!(
        "  linearized repeat traversal: {packed:>12} cycles -> {:.0}x",
        scattered as f64 / packed as f64
    );
    let s = m.finish();
    println!("  page faults total          : {}", s.fwd.page_faults);
}

fn main() {
    false_sharing();
    out_of_core();
}
