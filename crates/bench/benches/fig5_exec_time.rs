//! Figure 5: execution-time breakdown for the seven Fig. 5 applications,
//! at 32/64/128-byte cache lines, without (N) and with (L) the
//! relocation-based locality optimizations.
//!
//! Bars are normalized to each application's N case at 32 B = 100, and
//! split into the paper's graduation-slot categories: busy, load stall,
//! store stall and inst stall. The parenthesized percentage is the speedup
//! of L over N at the same line size.

use memfwd_apps::{App, Variant};
use memfwd_bench::{run_cell, scale_from_env, speedup_pct, write_csv, Breakdown, LINE_SIZES};

fn main() {
    let scale = scale_from_env();
    let mut csv: Vec<Vec<String>> = Vec::new();
    println!("Figure 5: execution time breakdown (normalized to N @ 32B = 100)");
    let header = format!(
        "{:<10} {:>4} {:>4} {:>7} {:>6} {:>6} {:>6} {:>6}  {:>8}",
        "app", "line", "case", "total", "busy", "load", "store", "inst", "speedup"
    );
    println!("{header}");
    memfwd_bench::rule(&header);
    for app in App::FIG5 {
        let reference = run_cell(app, Variant::Original, 32, None, scale);
        let ref_cycles = reference.stats.cycles();
        for lb in LINE_SIZES {
            let n = run_cell(app, Variant::Original, lb, None, scale);
            let l = run_cell(app, Variant::Optimized, lb, None, scale);
            assert_eq!(n.checksum, l.checksum, "{app}: relocation must be safe");
            for (case, out) in [("N", &n), ("L", &l)] {
                let b = Breakdown::of(out, ref_cycles);
                let annot = if case == "L" {
                    format!("({})", speedup_pct(n.stats.cycles(), l.stats.cycles()))
                } else {
                    String::new()
                };
                println!(
                    "{:<10} {:>3}B {:>4} {:>7.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1}  {:>8}",
                    app.name(),
                    lb,
                    case,
                    b.total,
                    b.busy,
                    b.load_stall,
                    b.store_stall,
                    b.inst_stall,
                    annot
                );
                csv.push(vec![
                    app.name().to_string(),
                    lb.to_string(),
                    case.to_string(),
                    format!("{:.2}", b.total),
                    format!("{:.2}", b.busy),
                    format!("{:.2}", b.load_stall),
                    format!("{:.2}", b.store_stall),
                    format!("{:.2}", b.inst_stall),
                    out.stats.cycles().to_string(),
                ]);
            }
        }
        println!();
    }
    println!(
        "Expected shapes: N degrades (or stagnates) as lines grow; L beats N at\n\
         every line size except compress (worse at 32/64 B); speedups grow with\n\
         line size; health and vis show the largest 128 B gains."
    );
    write_csv(
        "fig5_exec_time",
        &[
            "app",
            "line_bytes",
            "case",
            "total",
            "busy",
            "load_stall",
            "store_stall",
            "inst_stall",
            "cycles",
        ],
        &csv,
    );
}
