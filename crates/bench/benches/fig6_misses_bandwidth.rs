//! Figure 6: (a) load D-cache misses split into partial and full misses,
//! and (b) bytes transferred L1↔L2 and L2↔memory — both normalized to each
//! application's N case at 32 B = 100.

use memfwd_apps::{App, Variant};
use memfwd_bench::{run_cell, scale_from_env, write_csv, LINE_SIZES};

fn main() {
    let scale = scale_from_env();
    println!("Figure 6(a): load D-cache misses (normalized to N @ 32B = 100)");
    let header = format!(
        "{:<10} {:>4} {:>4} {:>8} {:>8} {:>8}",
        "app", "line", "case", "total", "partial", "full"
    );
    println!("{header}");
    memfwd_bench::rule(&header);
    let mut bw_rows = Vec::new();
    let mut csv: Vec<Vec<String>> = Vec::new();
    for app in App::FIG5 {
        let r = run_cell(app, Variant::Original, 32, None, scale);
        let (rp, rf) = r.stats.load_misses();
        let ref_misses = (rp + rf).max(1) as f64;
        let ref_bw = (r.stats.bytes_l1_l2 + r.stats.bytes_l2_mem).max(1) as f64;
        for lb in LINE_SIZES {
            for (case, variant) in [("N", Variant::Original), ("L", Variant::Optimized)] {
                let out = run_cell(app, variant, lb, None, scale);
                let (p, f) = out.stats.load_misses();
                println!(
                    "{:<10} {:>3}B {:>4} {:>8.1} {:>8.1} {:>8.1}",
                    app.name(),
                    lb,
                    case,
                    (p + f) as f64 / ref_misses * 100.0,
                    p as f64 / ref_misses * 100.0,
                    f as f64 / ref_misses * 100.0,
                );
                bw_rows.push((
                    app.name(),
                    lb,
                    case,
                    out.stats.bytes_l1_l2 as f64 / ref_bw * 100.0,
                    out.stats.bytes_l2_mem as f64 / ref_bw * 100.0,
                ));
                csv.push(vec![
                    app.name().to_string(),
                    lb.to_string(),
                    case.to_string(),
                    p.to_string(),
                    f.to_string(),
                    out.stats.bytes_l1_l2.to_string(),
                    out.stats.bytes_l2_mem.to_string(),
                ]);
            }
        }
        println!();
    }

    println!("Figure 6(b): bandwidth consumed (normalized to N @ 32B = 100)");
    let header = format!(
        "{:<10} {:>4} {:>4} {:>8} {:>8} {:>8}",
        "app", "line", "case", "total", "L1<->L2", "L2<->mem"
    );
    println!("{header}");
    memfwd_bench::rule(&header);
    let mut last = "";
    for (name, lb, case, b12, bmem) in bw_rows {
        if !last.is_empty() && last != name {
            println!();
        }
        last = name;
        println!(
            "{:<10} {:>3}B {:>4} {:>8.1} {:>8.1} {:>8.1}",
            name,
            lb,
            case,
            b12 + bmem,
            b12,
            bmem
        );
    }
    println!();
    println!(
        "Expected shapes: >=35% miss reduction from L in most (app, line) cells;\n\
         bandwidth reduced by L nearly everywhere (compress excepted)."
    );
    write_csv(
        "fig6_misses_bandwidth",
        &[
            "app",
            "line_bytes",
            "case",
            "partial_misses",
            "full_misses",
            "bytes_l1_l2",
            "bytes_l2_mem",
        ],
        &csv,
    );
}
