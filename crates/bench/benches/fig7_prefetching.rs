//! Figure 7: interaction of the locality optimizations with software
//! prefetching, at 32-byte lines. Four cases per application:
//! N (original), L (locality-optimized), NP (original + prefetching),
//! LP (locality-optimized + prefetching). For the prefetching cases, the
//! best block size from {1, 2, 4} lines is reported, as in the paper.

use memfwd_apps::{App, Variant};
use memfwd_bench::{best_prefetch, run_cell, scale_from_env, write_csv};

const BLOCKS: [u64; 3] = [1, 2, 4];

fn main() {
    let scale = scale_from_env();
    println!("Figure 7: prefetching vs locality optimizations (32B lines, N = 100)");
    let header = format!(
        "{:<10} {:>7} {:>7} {:>12} {:>12}",
        "app", "N", "L", "NP (block)", "LP (block)"
    );
    println!("{header}");
    memfwd_bench::rule(&header);
    let mut csv: Vec<Vec<String>> = Vec::new();
    for app in App::FIG5 {
        let n = run_cell(app, Variant::Original, 32, None, scale);
        let l = run_cell(app, Variant::Optimized, 32, None, scale);
        let (nb, np) = best_prefetch(app, Variant::Original, 32, &BLOCKS, scale);
        let (lb, lp) = best_prefetch(app, Variant::Optimized, 32, &BLOCKS, scale);
        for out in [&l, &np, &lp] {
            assert_eq!(n.checksum, out.checksum, "{app}: results must agree");
        }
        let norm = |c: u64| c as f64 / n.stats.cycles() as f64 * 100.0;
        println!(
            "{:<10} {:>7.1} {:>7.1} {:>8.1} ({:>1}) {:>8.1} ({:>1})",
            app.name(),
            100.0,
            norm(l.stats.cycles()),
            norm(np.stats.cycles()),
            nb,
            norm(lp.stats.cycles()),
            lb,
        );
        csv.push(vec![
            app.name().to_string(),
            n.stats.cycles().to_string(),
            l.stats.cycles().to_string(),
            np.stats.cycles().to_string(),
            nb.to_string(),
            lp.stats.cycles().to_string(),
            lb.to_string(),
        ]);
    }
    write_csv(
        "fig7_prefetching",
        &[
            "app",
            "n_cycles",
            "l_cycles",
            "np_cycles",
            "np_block",
            "lp_cycles",
            "lp_block",
        ],
        &csv,
    );
    println!();
    println!(
        "Expected shapes: prefetching on the original layout (NP) is limited by\n\
         pointer chasing in the list applications; after linearization (LP),\n\
         block prefetching becomes effective and LP beats both L and NP in\n\
         most applications — the two techniques are complementary."
    );
}
