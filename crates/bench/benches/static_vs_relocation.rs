//! Static placement vs. relocation (paper §1).
//!
//! "The advantage of static placement is its simplicity. The advantage of
//! relocation, however, is that it can adapt to dynamic program
//! behavior." This experiment measures both, for an application whose
//! layout can be fixed up front (eqntott — one-shot, static placement is
//! ideal) and for applications whose structures keep mutating (vis,
//! health — static layouts decay, relocation re-packs them).

use memfwd_apps::{App, Variant};
use memfwd_bench::{run_cell, scale_from_env, write_csv};

fn main() {
    let scale = scale_from_env();
    println!("Static placement (S) vs relocation (L), 64B lines, N = 100");
    let header = format!("{:<10} {:>7} {:>7} {:>7}   verdict", "app", "N", "S", "L");
    println!("{header}");
    memfwd_bench::rule(&header);
    let mut csv = Vec::new();
    for app in [App::Eqntott, App::Vis, App::Health] {
        let n = run_cell(app, Variant::Original, 64, None, scale);
        let s = run_cell(app, Variant::Static, 64, None, scale);
        let l = run_cell(app, Variant::Optimized, 64, None, scale);
        assert_eq!(n.checksum, s.checksum, "{app}: static placement diverged");
        assert_eq!(n.checksum, l.checksum, "{app}: relocation diverged");
        let norm = |c: u64| c as f64 / n.stats.cycles() as f64 * 100.0;
        let (sv, lv) = (norm(s.stats.cycles()), norm(l.stats.cycles()));
        let verdict = if sv < lv {
            "static wins (layout known up front)"
        } else {
            "relocation wins (adapts to mutation)"
        };
        println!(
            "{:<10} {:>7.1} {:>7.1} {:>7.1}   {}",
            app.name(),
            100.0,
            sv,
            lv,
            verdict
        );
        csv.push(vec![
            app.name().to_string(),
            n.stats.cycles().to_string(),
            s.stats.cycles().to_string(),
            l.stats.cycles().to_string(),
        ]);
    }
    write_csv(
        "static_vs_relocation",
        &["app", "n_cycles", "static_cycles", "relocation_cycles"],
        &csv,
    );
    println!();
    println!(
        "eqntott builds once and never mutates: choosing the packed layout at\n\
         allocation time is free, so static placement should win there. The\n\
         list applications mutate continuously: a static initial layout decays\n\
         while periodic linearization keeps re-creating locality."
    );
}
