//! Criterion micro-benchmarks of the access-pipeline hot paths touched by
//! the host-performance overhaul: page translation (micro-TLB), the
//! combined data+fbit read, scratch-buffer chain resolution, and the cache
//! probe fast path. These are the repo's regression guard for simulator
//! *host* speed; simulated timing is covered by the golden tests.

use criterion::{criterion_group, criterion_main, Criterion};
use memfwd::{BatchDep, BatchOut, Machine, RefBatch, SimConfig, BATCH_CAPACITY};
use memfwd_cache::{AccessKind, Hierarchy, HierarchyConfig, MshrFile};
use memfwd_tagmem::{
    merge_mask, resolve_with_scratch, Addr, FxHashMap, PageMask, SpecView, TaggedMemory,
    DEFAULT_HOP_LIMIT, PAGE_BYTES,
};
use std::hint::black_box;

fn bench_page_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("page_translation");
    let mut mem = TaggedMemory::new();
    for p in 0..64u64 {
        mem.write_data(Addr(0x10_000 + p * PAGE_BYTES as u64), 8, p);
    }
    // Sequential words within one page: every access after the first hits
    // the micro-TLB.
    group.bench_function("read_sequential_tlb_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 8) % PAGE_BYTES as u64;
            black_box(mem.read_data(Addr(0x10_000 + i), 8))
        })
    });
    // Page-strided reads: every access changes page, forcing the index
    // probe (the micro-TLB worst case).
    group.bench_function("read_page_strided_tlb_miss", |b| {
        let mut p = 0u64;
        b.iter(|| {
            p = (p + 1) % 64;
            black_box(mem.read_data(Addr(0x10_000 + p * PAGE_BYTES as u64), 8))
        })
    });
    group.bench_function("write_sequential", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 8) % PAGE_BYTES as u64;
            mem.write_data(Addr(0x10_000 + i), 8, i);
        })
    });
    group.bench_function("read_word_tagged_combined", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 8) % PAGE_BYTES as u64;
            black_box(mem.read_word_tagged(Addr(0x10_000 + i)))
        })
    });
    group.finish();
}

fn bench_resolve(c: &mut Criterion) {
    let mut group = c.benchmark_group("resolve_scratch");
    let mut mem = TaggedMemory::new();
    // An unforwarded word, a short chain, and a chain long enough to
    // engage the accurate cycle check.
    for h in 0..4u64 {
        mem.unforwarded_write(Addr(0x2000 + h * 64), 0x2000 + (h + 1) * 64, true);
    }
    for h in 0..32u64 {
        mem.unforwarded_write(Addr(0x8000 + h * 64), 0x8000 + (h + 1) * 64, true);
    }
    let mut scratch = Vec::new();
    group.bench_function("unforwarded", |b| {
        b.iter(|| {
            resolve_with_scratch(
                &mem,
                black_box(Addr(0x100)),
                DEFAULT_HOP_LIMIT,
                &mut scratch,
            )
            .unwrap()
        })
    });
    group.bench_function("4_hops", |b| {
        b.iter(|| {
            resolve_with_scratch(
                &mem,
                black_box(Addr(0x2004)),
                DEFAULT_HOP_LIMIT,
                &mut scratch,
            )
            .unwrap()
        })
    });
    group.bench_function("32_hops_cycle_check_engaged", |b| {
        b.iter(|| {
            resolve_with_scratch(
                &mem,
                black_box(Addr(0x8004)),
                DEFAULT_HOP_LIMIT,
                &mut scratch,
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_cache_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_probe");
    group.bench_function("l1_hit", |b| {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        let warm = h.access(0, 0x40, AccessKind::Load);
        let mut t = warm.complete_at;
        b.iter(|| {
            let a = h.access(t, black_box(0x40), AccessKind::Load);
            t = a.complete_at;
            black_box(a)
        })
    });
    group.bench_function("miss_stream", |b| {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        let mut t = 0u64;
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(4096) & 0x3F_FFFF;
            let a = h.access(t, black_box(addr), AccessKind::Load);
            t = a.complete_at;
            black_box(a)
        })
    });
    group.finish();
}

fn bench_machine_refs(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine_refs");
    group.bench_function("load_hit", |b| {
        let mut m = Machine::new(SimConfig::default());
        let a = m.malloc(64);
        m.store_word(a, 7);
        b.iter(|| black_box(m.load_word(black_box(a))))
    });
    group.bench_function("load_forwarded_1_hop", |b| {
        let mut m = Machine::new(SimConfig::default());
        let old = m.malloc(8);
        let new = m.malloc(8);
        m.store_word(new, 7);
        m.unforwarded_write(old, new.0, true);
        b.iter(|| black_box(m.load_word(black_box(old))))
    });
    group.bench_function("store_hit", |b| {
        let mut m = Machine::new(SimConfig::default());
        let a = m.malloc(64);
        b.iter(|| m.store_word(black_box(a), 9))
    });
    group.finish();
}

fn bench_bitmap_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitmap_scan");
    let mut mem = TaggedMemory::new();
    // Touch two pages so the scan crosses a page boundary in the long
    // case; all forwarding bits stay clear (the batch-path common case).
    mem.write_data(Addr(0x10_000), 8, 1);
    mem.write_data(Addr(0x10_000 + PAGE_BYTES as u64), 8, 1);
    group.bench_function("clear_range_4_words", |b| {
        b.iter(|| black_box(mem.fbits_clear_range(black_box(Addr(0x10_040)), 4)))
    });
    group.bench_function("clear_range_32_words", |b| {
        b.iter(|| black_box(mem.fbits_clear_range(black_box(Addr(0x10_040)), 32)))
    });
    group.bench_function("clear_range_cross_page_512_words", |b| {
        let base = Addr(0x10_000 + PAGE_BYTES as u64 - 256 * 8);
        b.iter(|| black_box(mem.fbits_clear_range(black_box(base), 512)))
    });
    // One set bit near the end: the scan must walk almost the whole span
    // before failing — the worst case for the chunked kernel.
    let mut dirty = TaggedMemory::new();
    dirty.unforwarded_write(Addr(0x10_000 + 31 * 8), 0x9000, true);
    group.bench_function("clear_range_32_words_hit_at_31", |b| {
        b.iter(|| black_box(dirty.fbits_clear_range(black_box(Addr(0x10_000)), 32)))
    });
    group.finish();
}

fn bench_batch_translate(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_translate");
    // A full-capacity load window over one record, span hint set: one
    // bitmap scan certifies the window, then every op runs the
    // streamlined path. This is the shape the apps emit per visited node.
    let mut m = Machine::new(SimConfig::default());
    let a = m.malloc(BATCH_CAPACITY as u64 * 8);
    for i in 0..BATCH_CAPACITY as u64 {
        m.store_word(a.add_words(i), 100 + i);
    }
    let mut batch = RefBatch::new();
    batch.set_span(a, BATCH_CAPACITY as u64);
    for i in 0..BATCH_CAPACITY as u64 {
        batch.push_load(a.add_words(i), 8, BatchDep::Ready);
    }
    let mut out = BatchOut::new();
    group.bench_function("load_window_32_span_clear", |b| {
        b.iter(|| {
            m.run_batch(black_box(&batch), &mut out);
            black_box(out.last_tok())
        })
    });
    // The same window without the span hint: per-op fast-path probes.
    let mut no_span = RefBatch::new();
    for i in 0..BATCH_CAPACITY as u64 {
        no_span.push_load(a.add_words(i), 8, BatchDep::Ready);
    }
    group.bench_function("load_window_32_no_span", |b| {
        b.iter(|| {
            m.run_batch(black_box(&no_span), &mut out);
            black_box(out.last_tok())
        })
    });
    // A dependent chain inside the window (pointer-walk shape).
    let mut chained = RefBatch::new();
    chained.set_span(a, 8);
    let mut prev = chained.push_load(a, 8, BatchDep::Ready);
    for i in 1..8u64 {
        prev = chained.push_load(a.add_words(i), 8, BatchDep::Prev(prev as u8));
    }
    group.bench_function("load_chain_8_prev_deps", |b| {
        b.iter(|| {
            m.run_batch(black_box(&chained), &mut out);
            black_box(out.last_tok())
        })
    });
    group.finish();
}

fn bench_mshr_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("mshr_probe");
    // A populated MSHR file probed the way a batch of misses probes it:
    // repeated in_flight checks against the flat lane-chunked array.
    let mut mshr = MshrFile::new(8);
    for i in 0..8u64 {
        mshr.allocate(0x100 + i, u64::MAX - i, false);
    }
    group.bench_function("probe_hit_8_entries", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 8;
            black_box(mshr.in_flight(black_box(0x100 + i)))
        })
    });
    group.bench_function("probe_miss_8_entries", |b| {
        b.iter(|| black_box(mshr.in_flight(black_box(0xDEAD))))
    });
    group.bench_function("batched_probe_32_misses", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for i in 0..32u64 {
                if mshr.in_flight(black_box(0x100 + i)).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.bench_function("prune_nothing_expired", |b| {
        b.iter(|| {
            mshr.prune(black_box(1));
            black_box(mshr.outstanding())
        })
    });
    group.finish();
}

fn bench_epoch_conflict_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch_conflict_probe");
    // A task delta with reads and writes across 16 pages, probed against a
    // committed-writes map the way the epoch committer validates every
    // speculative task: word-granular bitmap intersection per page.
    let mut mem = TaggedMemory::new();
    for p in 0..16u64 {
        mem.write_data(Addr(p * PAGE_BYTES as u64), 8, p + 1);
    }
    let base = mem.spec_base();
    let mut v = SpecView::new(base);
    for p in 0..16u64 {
        v.read_word_tagged(Addr(p * PAGE_BYTES as u64 + 64));
        v.write_data(Addr(p * PAGE_BYTES as u64 + 128), 8, p);
    }
    let delta = v.into_delta();
    // Earlier tasks wrote the same 16 pages but different words: the
    // false-sharing shape the word masks exist to clear.
    let mut disjoint: FxHashMap<u64, PageMask> = FxHashMap::default();
    let mut overlapping: FxHashMap<u64, PageMask> = FxHashMap::default();
    for (pno, mask) in delta.reads.iter() {
        let mut shifted = *mask;
        for limb in shifted.iter_mut() {
            *limb = limb.rotate_left(1);
        }
        merge_mask(&mut disjoint, *pno, &shifted);
        merge_mask(&mut overlapping, *pno, mask);
    }
    group.bench_function("disjoint_16_pages", |b| {
        b.iter(|| black_box(delta.disjoint_from(black_box(&disjoint))))
    });
    group.bench_function("overlap_16_pages", |b| {
        b.iter(|| black_box(delta.disjoint_from(black_box(&overlapping))))
    });
    group.bench_function("classify_overlap_pure_reads", |b| {
        b.iter(|| black_box(delta.pure_reads_overlap(black_box(&overlapping))))
    });
    group.finish();
}

fn bench_epoch_delta_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch_delta_merge");
    // Committing a clean task's page delta into main memory: the masked
    // word patch, sparse (one dirty word) and dense (whole page dirty).
    let mut mem = TaggedMemory::new();
    mem.write_data(Addr(0), 8, 1);
    let src = {
        let base = mem.spec_base();
        let mut v = SpecView::new(base);
        for w in 0..(PAGE_BYTES as u64 / 8) {
            v.write_data(Addr(w * 8), 8, w);
        }
        v.into_delta()
    };
    let (_, dense_page, dense_mask) = &src.pages[0];
    let mut sparse_mask: PageMask = [0; PAGE_BYTES / 8 / 64];
    sparse_mask[3] = 1 << 17;
    group.bench_function("install_words_sparse_1_word", |b| {
        b.iter(|| mem.install_words(black_box(0), dense_page, &sparse_mask))
    });
    group.bench_function("install_words_dense_512_words", |b| {
        b.iter(|| mem.install_words(black_box(0), dense_page, dense_mask))
    });
    group.finish();
}

fn bench_epoch_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch_commit");
    // A full run_tasks round trip — speculate, validate, merge, replay
    // timing — against the identical work done as a plain serial loop.
    // The gap between the two is the engine's whole-epoch overhead tax.
    let task_work = |d: &mut dyn memfwd::Demand, base: Addr, i: usize| {
        let a = base.add_words(i as u64 * 8);
        let mut acc = 0u64;
        for w in 0..8u64 {
            d.store_word(a.add_words(w), i as u64 + w);
            acc = acc.wrapping_add(d.load_word(a.add_words(w)));
        }
        acc
    };
    group.bench_function("run_tasks_64_direct", |b| {
        let mut m = Machine::new(SimConfig::default().with_epoch_threads(0));
        let base = m.malloc(64 * 64 * 8);
        b.iter(|| black_box(m.run_tasks(64, |i, d| task_work(d, base, i))))
    });
    group.bench_function("run_tasks_64_threads_1", |b| {
        let mut m = Machine::new(SimConfig::default().with_epoch_threads(1));
        let base = m.malloc(64 * 64 * 8);
        b.iter(|| black_box(m.run_tasks(64, |i, d| task_work(d, base, i))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_page_translation,
    bench_resolve,
    bench_cache_probe,
    bench_machine_refs,
    bench_bitmap_scan,
    bench_batch_translate,
    bench_mshr_probe,
    bench_epoch_conflict_probe,
    bench_epoch_delta_merge,
    bench_epoch_commit
);
criterion_main!(benches);
