//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. data-dependence speculation on/off (§3.2): without it, a load may
//!    not issue until all earlier stores' final addresses resolve;
//! 2. the forwarding hop penalty (hardware-walk vs exception-style);
//! 3. the VIS linearization-trigger threshold (the paper used 50);
//! 4. subtree clustering at a 256-byte line, where BH's 80-byte nodes
//!    finally pack several to a line (paper §5.3).

use memfwd_apps::{run_ok as run, App, RunConfig, Variant};
use memfwd_bench::{run_cell, scale_from_env};
use memfwd_tagmem::AllocPolicy;

fn main() {
    let scale = scale_from_env();

    println!("Ablation 1: data-dependence speculation (smv, scheme L, 32B lines)");
    for speculate in [true, false] {
        let mut cfg = RunConfig::new(Variant::Optimized);
        cfg.scale = scale;
        cfg.sim.dependence_speculation = speculate;
        let out = run(App::Smv, &cfg);
        println!(
            "  speculation={:<5}  cycles={:>12}  misspeculations={}",
            speculate,
            out.stats.cycles(),
            out.stats.fwd.misspeculations
        );
    }
    println!();

    println!("Ablation 2: forwarding hop penalty (smv, scheme L)");
    for penalty in [0u64, 4, 16, 64] {
        let mut cfg = RunConfig::new(Variant::Optimized);
        cfg.scale = scale;
        cfg.sim.fwd_hop_penalty = penalty;
        let out = run(App::Smv, &cfg);
        println!(
            "  hop penalty {:>3} cycles  ->  {:>12} cycles total",
            penalty,
            out.stats.cycles()
        );
    }
    println!();

    println!("Ablation 3: linearization threshold (vis, scheme L, 64B lines)");
    let n = run_cell(App::Vis, Variant::Original, 64, None, scale);
    println!(
        "  threshold=never (N)  cycles={:>12}  relocations={:>8}",
        n.stats.cycles(),
        n.stats.fwd.relocations
    );
    for threshold in [10u64, 50, 200, 1000] {
        let mut cfg = RunConfig::new(Variant::Optimized);
        cfg.scale = scale;
        cfg.sim = cfg.sim.with_line_bytes(64);
        cfg.linearize_threshold = Some(threshold);
        let out = run(App::Vis, &cfg);
        assert_eq!(out.checksum, n.checksum);
        println!(
            "  threshold={:<4}       cycles={:>12}  relocations={:>8}",
            threshold,
            out.stats.cycles(),
            out.stats.fwd.relocations
        );
    }
    println!("  (too eager wastes relocation work; too lazy loses locality —");
    println!("   the paper's 50 sits in the flat middle of the curve)");
    println!();

    println!("Ablation 4: store buffer (compress, scheme N, 32B lines)");
    println!("  (graduating stores at buffer admission removes store stalls,");
    println!("   but an undersized buffer throttles bandwidth-bound store streams)");
    for entries in [None, Some(8usize), Some(64)] {
        let mut cfg = RunConfig::new(Variant::Original);
        cfg.scale = scale;
        cfg.sim.store_buffer_entries = entries;
        let out = run(App::Compress, &cfg);
        println!(
            "  store buffer {:<8}  cycles={:>12}  store-stall slots={}",
            match entries {
                None => "off".to_string(),
                Some(n) => format!("{n} ent."),
            },
            out.stats.cycles(),
            out.stats.slots().store_stall
        );
    }
    println!();

    println!("Ablation 5: hardware next-line prefetch vs software (vis, 32B)");
    for (label, hw, sw) in [
        ("none", false, false),
        ("hw next-line", true, false),
        ("sw (paper)", false, true),
        ("both", true, true),
    ] {
        let mut cfg = RunConfig::new(Variant::Optimized);
        cfg.scale = scale;
        cfg.sim.hierarchy.next_line_prefetch = hw;
        if sw {
            cfg = cfg.with_prefetch(2);
        }
        let out = run(App::Vis, &cfg);
        println!(
            "  {:<13}  cycles={:>12}  prefetches issued={}",
            label,
            out.stats.cycles(),
            out.stats.cache.prefetches_issued
        );
    }
    println!();

    println!("Ablation 6: allocator policy (vis, 64B lines)");
    println!("  (does the linearization win survive a modern segregated");
    println!("   size-class allocator, which co-locates same-sized objects?)");
    for policy in [AllocPolicy::FirstFit, AllocPolicy::SizeClass] {
        let mut n_cfg = RunConfig::new(Variant::Original);
        n_cfg.scale = scale;
        n_cfg.sim = n_cfg.sim.with_line_bytes(64);
        n_cfg.sim.alloc_policy = policy;
        let mut l_cfg = n_cfg;
        l_cfg.variant = Variant::Optimized;
        let n = run(App::Vis, &n_cfg);
        let l = run(App::Vis, &l_cfg);
        assert_eq!(n.checksum, l.checksum);
        println!(
            "  {:?}: N={:>11} L={:>11}  speedup={:.2}",
            policy,
            n.stats.cycles(),
            l.stats.cycles(),
            l.stats.speedup_over(&n.stats)
        );
    }
    println!();

    println!("Ablation 7: BH subtree clustering vs line size (incl. 256B)");
    for lb in [32u64, 64, 128, 256] {
        let n = run_cell(App::Bh, Variant::Original, lb, None, scale);
        let l = run_cell(App::Bh, Variant::Optimized, lb, None, scale);
        assert_eq!(n.checksum, l.checksum);
        println!(
            "  {:>3}B lines: N={:>11} L={:>11}  speedup={:.2}",
            lb,
            n.stats.cycles(),
            l.stats.cycles(),
            l.stats.speedup_over(&n.stats)
        );
    }
    println!("  (80-byte tree nodes only pack multiple-per-line at 256B+,");
    println!("   which is why the paper says BH needs long lines.)");
}
