//! Criterion micro-benchmarks of the mechanism itself (simulator-host
//! performance): forwarding-chain resolution, the relocation primitive,
//! list linearization, and raw demand-access throughput. These measure the
//! cost of *simulating* memory forwarding, complementing the simulated-
//! cycle experiments of the figure benches.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use memfwd::{list_linearize, relocate, ListDesc, Machine, SimConfig};
use memfwd_tagmem::{resolve_unbounded, Addr, TaggedMemory};
use std::hint::black_box;

fn bench_chain_resolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_resolution");
    for hops in [0u64, 1, 4, 16] {
        let mut mem = TaggedMemory::new();
        for h in 0..hops {
            mem.unforwarded_write(Addr(0x1000 + h * 64), 0x1000 + (h + 1) * 64, true);
        }
        group.bench_function(format!("{hops}_hops"), |b| {
            b.iter(|| resolve_unbounded(&mem, black_box(Addr(0x1004))).unwrap())
        });
    }
    group.finish();
}

fn bench_relocate(c: &mut Criterion) {
    c.bench_function("relocate_64_words", |b| {
        b.iter_batched(
            || {
                let mut m = Machine::new(SimConfig::default());
                let src = m.malloc(64 * 8);
                let tgt = m.malloc(64 * 8);
                for i in 0..64 {
                    m.store_word(src.add_words(i), i);
                }
                (m, src, tgt)
            },
            |(mut m, src, tgt)| {
                relocate(&mut m, src, tgt, 64);
                m
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_linearize(c: &mut Criterion) {
    const DESC: ListDesc = ListDesc {
        node_words: 4,
        next_word: 0,
    };
    c.bench_function("linearize_256_nodes", |b| {
        b.iter_batched(
            || {
                let mut m = Machine::new(SimConfig::default());
                let head = m.malloc(8);
                m.store_ptr(head, Addr::NULL);
                for i in 0..256u64 {
                    let node = m.malloc(32);
                    let first = m.load_ptr(head);
                    m.store_ptr(node, first);
                    m.store_word(node + 8, i);
                    m.store_ptr(head, node);
                }
                let pool = m.new_pool();
                (m, head, pool)
            },
            |(mut m, head, mut pool)| {
                list_linearize(&mut m, head, DESC, &mut pool);
                m
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_demand_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("demand_access_throughput");
    group.bench_function("load_hit", |b| {
        let mut m = Machine::new(SimConfig::default());
        let a = m.malloc(64);
        m.store_word(a, 7);
        b.iter(|| black_box(m.load_word(black_box(a))))
    });
    group.bench_function("load_forwarded_1_hop", |b| {
        let mut m = Machine::new(SimConfig::default());
        let old = m.malloc(8);
        let new = m.malloc(8);
        m.store_word(new, 7);
        m.unforwarded_write(old, new.0, true);
        b.iter(|| black_box(m.load_word(black_box(old))))
    });
    group.bench_function("strided_miss_stream", |b| {
        let mut m = Machine::new(SimConfig::default());
        let base = m.malloc(1 << 22);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 4096) & ((1 << 22) - 1);
            black_box(m.load_word(base + i))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_chain_resolution,
    bench_relocate,
    bench_linearize,
    bench_demand_access
);
criterion_main!(benches);
