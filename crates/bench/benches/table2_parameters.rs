//! Table 2: the simulated machine parameters.

use memfwd::SimConfig;

fn main() {
    let c = SimConfig::default();
    println!("Table 2: simulation parameters");
    println!("------------------------------");
    println!("Pipeline");
    println!(
        "  dispatch/graduation width   {} insts/cycle",
        c.pipeline.width
    );
    println!(
        "  reorder buffer              {} entries",
        c.pipeline.rob_entries
    );
    println!(
        "  pipeline depth              {} cycles",
        c.pipeline.min_depth
    );
    println!(
        "  replay (misspec.) penalty   {} cycles",
        c.pipeline.replay_penalty
    );
    println!("  data-dependence speculation {}", c.dependence_speculation);
    println!("Memory hierarchy");
    println!(
        "  L1 D-cache                  {} KB, {}-way, {}-cycle hit",
        c.hierarchy.l1.size_bytes / 1024,
        c.hierarchy.l1.assoc,
        c.hierarchy.l1.hit_latency
    );
    println!(
        "  unified L2                  {} KB, {}-way, {}-cycle hit",
        c.hierarchy.l2.size_bytes / 1024,
        c.hierarchy.l2.assoc,
        c.hierarchy.l2.hit_latency
    );
    println!(
        "  line size                   {} B (swept: 32/64/128)",
        c.hierarchy.line_bytes
    );
    println!(
        "  memory latency              {} cycles",
        c.hierarchy.mem_latency
    );
    println!(
        "  L1<->L2 bandwidth           {} B/cycle",
        c.hierarchy.l1_l2_bytes_per_cycle
    );
    println!(
        "  L2<->mem bandwidth          {} B/cycle",
        c.hierarchy.mem_bytes_per_cycle
    );
    println!("  MSHRs (outstanding misses)  {}", c.hierarchy.mshrs);
    println!("Memory forwarding");
    println!("  forwarding-bit overhead     1 bit per 64-bit word (~1.5 %)");
    println!("  hop-limit before cycle chk  {} hops", c.hop_limit);
    println!("  per-hop penalty             {} cycles", c.fwd_hop_penalty);
    println!(
        "  cycle-check penalty         {} cycles",
        c.cycle_check_penalty
    );
    println!("  user-level trap penalty     {} cycles", c.trap_penalty);
}
