//! Figure 10: the impact of forwarding overhead on SMV — the one
//! application where relocated data is actually reached through stale
//! (tree) pointers. Four panels, as in the paper:
//!
//! (a) execution time for N (original), L (hash-list linearization with
//!     real forwarding) and Perf (the perfect-forwarding bound);
//! (b) load and store D-cache misses;
//! (c) fraction of loads/stores requiring forwarding, by hop count;
//! (d) average cycles to complete a load/store, split into forwarding and
//!     ordinary components.

use memfwd_apps::{run_ok as run, App, RunConfig, Variant};
use memfwd_bench::scale_from_env;

fn main() {
    let scale = scale_from_env();
    let mut n_cfg = RunConfig::new(Variant::Original);
    n_cfg.scale = scale;
    let mut l_cfg = RunConfig::new(Variant::Optimized);
    l_cfg.scale = scale;
    let mut p_cfg = RunConfig::new(Variant::Optimized);
    p_cfg.scale = scale;
    p_cfg.sim = p_cfg.sim.with_perfect_forwarding();

    let n = run(App::Smv, &n_cfg);
    let l = run(App::Smv, &l_cfg);
    let p = run(App::Smv, &p_cfg);
    assert_eq!(n.checksum, l.checksum, "relocation must be safe");
    assert_eq!(n.checksum, p.checksum, "perfect forwarding must be safe");

    let base = n.stats.cycles() as f64;
    println!("Figure 10(a): SMV execution time (N = 100)");
    println!("  N    {:>7.1}", 100.0);
    println!("  L    {:>7.1}", l.stats.cycles() as f64 / base * 100.0);
    println!("  Perf {:>7.1}", p.stats.cycles() as f64 / base * 100.0);
    println!();

    println!("Figure 10(b): D-cache misses (N = 100)");
    let miss = |o: &memfwd_apps::AppOutput| {
        (o.stats.cache.loads.misses() + o.stats.cache.stores.misses()) as f64
    };
    let mbase = miss(&n);
    for (name, o) in [("N", &n), ("L", &l), ("Perf", &p)] {
        println!(
            "  {:<4} {:>7.1}   (loads {:>8}, stores {:>8})",
            name,
            miss(o) / mbase * 100.0,
            o.stats.cache.loads.misses(),
            o.stats.cache.stores.misses()
        );
    }
    println!();

    println!("Figure 10(c): fraction of references requiring forwarding (scheme L)");
    let f = &l.stats.fwd;
    println!(
        "  loads : {:>5.1}% forwarded (by hops: 1:{} 2:{} 3+:{})",
        f.forwarded_load_fraction() * 100.0,
        f.load_hops[1],
        f.load_hops[2],
        f.load_hops[3..].iter().sum::<u64>(),
    );
    println!(
        "  stores: {:>5.1}% forwarded (by hops: 1:{} 2:{} 3+:{})",
        f.forwarded_store_fraction() * 100.0,
        f.store_hops[1],
        f.store_hops[2],
        f.store_hops[3..].iter().sum::<u64>(),
    );
    println!();

    println!("Figure 10(d): average cycles to complete a reference");
    let header = format!(
        "  {:<6} {:>14} {:>14} {:>14}",
        "scheme", "load fwd/ord", "store fwd/ord", ""
    );
    println!("{header}");
    for (name, o) in [("N", &n), ("L", &l), ("Perf", &p)] {
        let (lf, lo) = o.stats.fwd.avg_load_cycles();
        let (sf, so) = o.stats.fwd.avg_store_cycles();
        println!(
            "  {:<6} {:>6.1} /{:>6.1} {:>6.1} /{:>6.1}",
            name, lf, lo, sf, so
        );
    }
    println!();
    println!(
        "Expected shapes: L slower than N (hop latency + cache pollution from\n\
         touching old locations); Perf recovers the loss but improves on N only\n\
         marginally (the layout cannot serve both the hash and tree patterns);\n\
         a few percent of loads and ~2% of stores take one forwarding hop."
    );
}
