//! Property tests of journal durability under the v2 base + frame-tail
//! format. Two guarantees are pinned:
//!
//! - **Sealed prefix at any kill point**: truncating the on-disk image at
//!   *any* byte boundary decodes to exactly the appends that had returned
//!   by that point — never fewer (once the append returned, it is sealed)
//!   and never a fabricated record.
//! - **No mangling**: a bit-flip or trailing garbage may surface only as
//!   a typed [`JournalError`] or as a strict, unaltered prefix of the
//!   true record sequence (when it mimics the torn tail a kill leaves).
//!   Records are never silently altered.

use memfwd_apps::{App, Scale, Variant};
use memfwd_farm::journal::decode_journal;
use memfwd_farm::sweep::{CellOutcome, CellReport, CellResult, CellSpec};
use memfwd_farm::{cell_key, Journal, JournalError, JournalRecord};
use proptest::prelude::*;
use std::path::PathBuf;

const FINGERPRINT: u64 = 0xCA_FE_F0_0D;

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("memfwd-jdur-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(name)
}

fn records_for(apps: &[App]) -> Vec<JournalRecord> {
    let mut out = Vec::new();
    for (i, &app) in apps.iter().enumerate() {
        let spec = CellSpec {
            app,
            variant: Variant::Optimized,
            line_bytes: 32,
            mem_latency: 75,
            seed: 12345 + i as u64,
        };
        let mut stats = memfwd::RunStats::default();
        stats.pipeline.cycles = 1000 + i as u64;
        stats.fwd.loads = 10 * i as u64;
        let report = CellReport::completed(CellResult {
            spec,
            checksum: 0x1111 * (i as u64 + 1),
            stats,
            refs: 10 * i as u64,
            host_nanos: 1,
        });
        out.push(JournalRecord::from_report(Scale::Smoke, &report));
        let failed = CellReport {
            spec: CellSpec {
                seed: 90_000 + i as u64,
                ..spec
            },
            outcome: CellOutcome::Poisoned,
            attempts: 3,
            sim: None,
            error: Some(format!("injected failure #{i}")),
        };
        out.push(JournalRecord::from_report(Scale::Smoke, &failed));
    }
    out
}

/// Builds a journal through the real create/append path with compaction
/// disabled (so every append is a frame), returning the final image, the
/// on-disk length observed after create and after each append, and the
/// appended records.
fn journal_history(name: &str, apps: &[App]) -> (Vec<u8>, Vec<usize>, Vec<JournalRecord>) {
    let path = tmp_path(name);
    std::fs::remove_file(&path).ok();
    let mut j = Journal::create(&path, FINGERPRINT)
        .expect("create")
        .with_compact_min_tail(usize::MAX);
    let file_len = || std::fs::metadata(&path).expect("meta").len() as usize;
    let mut len_after = vec![file_len()];
    let records = records_for(apps);
    for r in &records {
        j.append(r.clone()).expect("append");
        len_after.push(file_len());
    }
    let bytes = std::fs::read(&path).expect("read image");
    std::fs::remove_file(&path).ok();
    (bytes, len_after, records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The sealed-prefix guarantee, byte by byte: a journal cut at any
    /// point decodes to exactly the appends that had returned when the
    /// file was that long. Cuts inside the base image (a state tmp +
    /// rename never exposes) are a typed rejection.
    #[test]
    fn any_kill_point_decodes_to_the_sealed_prefix(cut in 0usize..8192) {
        let (img, len_after, records) =
            journal_history("kill.mfj", &[App::Mst, App::Health, App::Vis]);
        let cut = cut % (img.len() + 1);
        let r = decode_journal(&img[..cut], FINGERPRINT);
        if cut < len_after[0] {
            prop_assert!(r.is_err(), "mid-create cut {cut} decoded: {r:?}");
        } else {
            let k = len_after.iter().filter(|&&l| l <= cut).count() - 1;
            let got = match r {
                Ok(got) => got,
                Err(e) => return Err(TestCaseError::fail(format!("cut {cut}: {e:?}"))),
            };
            prop_assert_eq!(got, records[..k].to_vec(), "cut {}", cut);
        }
    }

    /// Any single bit-flip anywhere in the image either fails with a
    /// typed error or — when it mimics a torn tail (e.g. a frame length
    /// inflated past end-of-file) — yields a strict, unaltered prefix.
    /// Records are never fabricated or altered.
    #[test]
    fn bit_flips_never_alter_records(pos in 0usize..8192, bit in 0u8..8) {
        let (img, _, records) = journal_history("flip.mfj", &[App::Mst, App::Health]);
        let mut bad = img.clone();
        let pos = pos % bad.len();
        bad[pos] ^= 1 << bit;
        match decode_journal(&bad, FINGERPRINT) {
            Err(_) => {}
            Ok(got) => {
                prop_assert!(
                    got.len() < records.len(),
                    "flip at byte {} bit {} decoded all {} records",
                    pos, bit, records.len()
                );
                let prefix = records[..got.len()].to_vec();
                prop_assert_eq!(got, prefix, "flip at byte {} bit {}", pos, bit);
            }
        }
    }

    /// Trailing garbage is either a typed rejection (it cannot be a frame)
    /// or — when shorter than a frame header's magic — indistinguishable
    /// from a torn append and dropped. It never alters the records.
    #[test]
    fn trailing_garbage_never_alters_records(
        garbage in proptest::collection::vec(any::<u8>(), 1..64)
    ) {
        let (img, _, records) = journal_history("tail.mfj", &[App::Mst]);
        let mut bad = img.clone();
        bad.extend_from_slice(&garbage);
        match decode_journal(&bad, FINGERPRINT) {
            Err(e) => prop_assert!(matches!(e, JournalError::BadValue | JournalError::BadChecksum), "{e:?}"),
            Ok(got) => prop_assert_eq!(got, records),
        }
    }

    /// Compaction at any floor is invisible to readers: n appends load
    /// back as the same n records regardless of how often the tail was
    /// folded into the base.
    #[test]
    fn compaction_is_invisible_to_readers(n in 1usize..24, floor in 1usize..6) {
        let path = tmp_path("compact-prop.mfj");
        std::fs::remove_file(&path).ok();
        let mut j = Journal::create(&path, FINGERPRINT)
            .expect("create")
            .with_compact_min_tail(floor);
        let mut expect = Vec::new();
        for i in 0..n {
            let mut r = records_for(&[App::Mst])[0].clone();
            r.key = i as u64;
            expect.push(r.clone());
            j.append(r).expect("append");
        }
        let loaded = Journal::load(&path, FINGERPRINT).expect("load");
        prop_assert_eq!(loaded.records(), &expect[..]);
        std::fs::remove_file(&path).ok();
    }
}

/// The intact image, for contrast, decodes every record bit-for-bit.
#[test]
fn intact_image_roundtrips() {
    let apps = [App::Mst, App::Health, App::Vis, App::Smv];
    let (img, _, _) = journal_history("intact.mfj", &apps);
    let records = decode_journal(&img, FINGERPRINT).expect("intact journal decodes");
    assert_eq!(records.len(), 2 * apps.len());
    // Completed and poisoned records alternate, keys resolvable.
    for pair in records.chunks(2) {
        assert_eq!(pair[0].outcome, CellOutcome::Ok);
        assert!(pair[0].sim.is_some());
        assert_eq!(pair[1].outcome, CellOutcome::Poisoned);
        assert!(pair[1].sim.is_none());
        assert!(pair[1]
            .error
            .as_deref()
            .is_some_and(|e| e.contains("injected")));
    }
    // And the fingerprint binds the image to its campaign.
    assert!(matches!(
        decode_journal(&img, FINGERPRINT ^ 1),
        Err(JournalError::CampaignMismatch)
    ));
    // Sanity: keys are the content hashes the supervisor would compute.
    let spec = CellSpec {
        app: App::Mst,
        variant: Variant::Optimized,
        line_bytes: 32,
        mem_latency: 75,
        seed: 12345,
    };
    assert_eq!(records[0].key, cell_key(Scale::Smoke, &spec));
}
