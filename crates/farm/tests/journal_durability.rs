//! Property tests of journal durability: no mangling of the on-disk
//! image — truncation at any point, any single bit-flip, or trailing
//! garbage — may ever surface as a silently shortened or altered record
//! set. Corruption is a typed [`JournalError`], wholesale.

use memfwd_apps::{App, Scale, Variant};
use memfwd_farm::journal::decode_journal;
use memfwd_farm::sweep::{CellOutcome, CellReport, CellResult, CellSpec};
use memfwd_farm::{cell_key, Journal, JournalError, JournalRecord};
use proptest::prelude::*;
use std::path::PathBuf;

const FINGERPRINT: u64 = 0xCA_FE_F0_0D;

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("memfwd-jdur-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(name)
}

/// Builds a journal image holding one completed and one poisoned record
/// per app in `apps`, through the real create/append path.
fn journal_image(name: &str, apps: &[App]) -> Vec<u8> {
    let path = tmp_path(name);
    std::fs::remove_file(&path).ok();
    let mut j = Journal::create(&path, FINGERPRINT).expect("create");
    for (i, &app) in apps.iter().enumerate() {
        let spec = CellSpec {
            app,
            variant: Variant::Optimized,
            line_bytes: 32,
            mem_latency: 75,
            seed: 12345 + i as u64,
        };
        let mut stats = memfwd::RunStats::default();
        stats.pipeline.cycles = 1000 + i as u64;
        stats.fwd.loads = 10 * i as u64;
        let report = CellReport::completed(CellResult {
            spec,
            checksum: 0x1111 * (i as u64 + 1),
            stats,
            refs: 10 * i as u64,
            host_nanos: 1,
        });
        j.append(JournalRecord::from_report(Scale::Smoke, &report))
            .expect("append ok");
        let failed = CellReport {
            spec: CellSpec {
                seed: 90_000 + i as u64,
                ..spec
            },
            outcome: CellOutcome::Poisoned,
            attempts: 3,
            sim: None,
            error: Some(format!("injected failure #{i}")),
        };
        j.append(JournalRecord::from_report(Scale::Smoke, &failed))
            .expect("append failed-cell record");
    }
    let bytes = std::fs::read(&path).expect("read image");
    std::fs::remove_file(&path).ok();
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A journal cut anywhere short of its full length never decodes: a
    /// torn write can lose the in-flight append, never manufacture a
    /// shorter-but-valid history.
    #[test]
    fn truncation_never_yields_records(cut in 0usize..1000) {
        let img = journal_image("trunc.mfj", &[App::Mst, App::Health, App::Vis]);
        let cut = cut % img.len(); // every prefix length < full
        let r = decode_journal(&img[..cut], FINGERPRINT);
        prop_assert!(r.is_err(), "prefix of {cut}/{} bytes decoded: {r:?}", img.len());
    }

    /// Any single bit-flip anywhere in the image — header or payload — is
    /// rejected with a typed error, never read back as different records.
    #[test]
    fn bit_flips_are_rejected(pos in 0usize..4096, bit in 0u8..8) {
        let img = journal_image("flip.mfj", &[App::Mst, App::Health]);
        let mut bad = img.clone();
        let pos = pos % bad.len();
        bad[pos] ^= 1 << bit;
        let r = decode_journal(&bad, FINGERPRINT);
        prop_assert!(r.is_err(), "flip at byte {pos} bit {bit} decoded: {r:?}");
    }

    /// Appending junk after the sealed image is as corrupt as removing
    /// bytes from it.
    #[test]
    fn trailing_garbage_is_rejected(garbage in proptest::collection::vec(any::<u8>(), 1..64)) {
        let mut img = journal_image("tail.mfj", &[App::Mst]);
        img.extend_from_slice(&garbage);
        let r = decode_journal(&img, FINGERPRINT);
        prop_assert!(matches!(r, Err(JournalError::BadValue)), "{r:?}");
    }
}

/// The intact image, for contrast, decodes every record bit-for-bit.
#[test]
fn intact_image_roundtrips() {
    let apps = [App::Mst, App::Health, App::Vis, App::Smv];
    let img = journal_image("intact.mfj", &apps);
    let records = decode_journal(&img, FINGERPRINT).expect("intact journal decodes");
    assert_eq!(records.len(), 2 * apps.len());
    // Completed and poisoned records alternate, keys resolvable.
    for pair in records.chunks(2) {
        assert_eq!(pair[0].outcome, CellOutcome::Ok);
        assert!(pair[0].sim.is_some());
        assert_eq!(pair[1].outcome, CellOutcome::Poisoned);
        assert!(pair[1].sim.is_none());
        assert!(pair[1]
            .error
            .as_deref()
            .is_some_and(|e| e.contains("injected")));
    }
    // And the fingerprint binds the image to its campaign.
    assert!(matches!(
        decode_journal(&img, FINGERPRINT ^ 1),
        Err(JournalError::CampaignMismatch)
    ));
    // Sanity: keys are the content hashes the supervisor would compute.
    let spec = CellSpec {
        app: App::Mst,
        variant: Variant::Optimized,
        line_bytes: 32,
        mem_latency: 75,
        seed: 12345,
    };
    assert_eq!(records[0].key, cell_key(Scale::Smoke, &spec));
}
