//! Supervisor semantics under a deterministic mock runner: retry and
//! quarantine outcomes, zero recomputation on resume, and the
//! kill-at-every-append crash/resume sweep — the in-process twin of the
//! CI chaos job.

use memfwd_apps::{App, Scale, Variant};
use memfwd_farm::sweep::strip_host_lines;
use memfwd_farm::{
    campaign_fingerprint, run_campaign, Attempt, CellCtx, CellOutcome, CellResult, CellRunner,
    FarmOptions, Journal, SweepSpec,
};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Mutex;

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("memfwd-campaign-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(name);
    std::fs::remove_file(&path).ok();
    path
}

fn small_spec() -> SweepSpec {
    SweepSpec {
        apps: vec![App::Health, App::Mst, App::Vis],
        variants: vec![Variant::Original, Variant::Optimized],
        line_bytes: vec![32],
        mem_latency: vec![75],
        seeds: vec![1],
        scale: Scale::Smoke,
    }
}

fn fast_opts() -> FarmOptions {
    FarmOptions {
        jobs: 2,
        retries: 2,
        backoff_ms: 0,
        ..FarmOptions::default()
    }
}

/// A deterministic, simulation-free runner: the "result" of a cell is a
/// pure function of its key, and failure behaviour is scripted per cell
/// index. Counts every attempt so tests can assert zero recomputation.
struct MockRunner {
    /// index -> number of leading attempts that fail.
    fail_first: HashMap<usize, u32>,
    /// Cells whose every attempt times out.
    always_timeout: Vec<usize>,
    /// Cells whose every attempt fails.
    always_fail: Vec<usize>,
    /// (index, attempt) log, in call order.
    calls: Mutex<Vec<(usize, u32)>>,
}

impl MockRunner {
    fn clean() -> MockRunner {
        MockRunner {
            fail_first: HashMap::new(),
            always_timeout: Vec::new(),
            always_fail: Vec::new(),
            calls: Mutex::new(Vec::new()),
        }
    }

    fn result_for(ctx: &CellCtx) -> CellResult {
        let mut stats = memfwd::RunStats::default();
        stats.pipeline.cycles = ctx.key % 100_000;
        CellResult {
            spec: ctx.spec,
            checksum: ctx.key,
            stats,
            refs: 1 + ctx.key % 7,
            host_nanos: 1,
        }
    }

    fn attempts_made(&self) -> usize {
        self.calls.lock().expect("calls lock").len()
    }
}

impl CellRunner for MockRunner {
    fn run_cell(&self, ctx: &CellCtx) -> Attempt {
        self.calls
            .lock()
            .expect("calls lock")
            .push((ctx.index, ctx.attempt));
        if self.always_timeout.contains(&ctx.index) {
            return Attempt::TimedOut(format!("mock timeout at attempt {}", ctx.attempt));
        }
        if self.always_fail.contains(&ctx.index) {
            return Attempt::Failed(format!("mock failure at attempt {}", ctx.attempt));
        }
        if self
            .fail_first
            .get(&ctx.index)
            .is_some_and(|&n| ctx.attempt < n)
        {
            return Attempt::Failed(format!("mock transient failure at attempt {}", ctx.attempt));
        }
        Attempt::Completed(Box::new(Self::result_for(ctx)))
    }
}

#[test]
fn outcomes_are_typed_per_cell() {
    let spec = small_spec();
    let path = tmp_path("outcomes.mfj");
    let mut journal = Journal::create(&path, campaign_fingerprint(&spec)).expect("create");
    let runner = MockRunner {
        fail_first: HashMap::from([(1, 1), (2, 2)]),
        always_timeout: vec![3],
        always_fail: vec![4],
        calls: Mutex::new(Vec::new()),
    };
    let run = run_campaign(&spec, &fast_opts(), &runner, &mut journal).expect("campaign");
    let report = run.report.expect("campaign completed");
    assert_eq!(run.from_journal, 0);
    assert_eq!(run.executed, 6);

    let cells = &report.cells;
    assert_eq!(cells[0].outcome, CellOutcome::Ok);
    assert_eq!(cells[0].attempts, 1);
    assert!(cells[0].error.is_none());

    assert_eq!(cells[1].outcome, CellOutcome::Retried(1));
    assert_eq!(cells[1].attempts, 2);
    assert!(cells[1].sim.is_some(), "retried cells carry a result");
    assert!(
        cells[1]
            .error
            .as_deref()
            .is_some_and(|e| e.contains("attempt 0")),
        "last failure preserved alongside the eventual success"
    );

    assert_eq!(cells[2].outcome, CellOutcome::Retried(2));
    assert_eq!(cells[2].attempts, 3);

    assert_eq!(cells[3].outcome, CellOutcome::TimedOut);
    assert_eq!(cells[3].attempts, 3, "first attempt + 2 retries");
    assert!(cells[3].sim.is_none());

    assert_eq!(cells[4].outcome, CellOutcome::Poisoned);
    assert!(cells[4]
        .error
        .as_deref()
        .is_some_and(|e| e.contains("mock failure")));

    assert_eq!(cells[5].outcome, CellOutcome::Ok);

    let summary = report.summary();
    assert_eq!(
        (
            summary.ok,
            summary.retried,
            summary.poisoned,
            summary.timed_out
        ),
        (2, 2, 1, 1)
    );
    assert!(!summary.is_clean());
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_recomputes_nothing() {
    let spec = small_spec();
    let path = tmp_path("resume.mfj");
    let fp = campaign_fingerprint(&spec);
    let mut journal = Journal::create(&path, fp).expect("create");
    let first = MockRunner::clean();
    let run1 = run_campaign(&spec, &fast_opts(), &first, &mut journal).expect("first run");
    let golden = strip_host_lines(&run1.report.expect("completed").to_json());

    // Re-open the journal from disk, as a restarted supervisor would, and
    // run again with a runner that records (and would change) anything it
    // is asked to compute.
    let mut journal = Journal::load(&path, fp).expect("reload");
    let second = MockRunner::clean();
    let run2 = run_campaign(&spec, &fast_opts(), &second, &mut journal).expect("second run");
    assert_eq!(
        second.attempts_made(),
        0,
        "every cell came from the journal"
    );
    assert_eq!(run2.from_journal, 6);
    assert_eq!(run2.executed, 0);
    assert_eq!(
        strip_host_lines(&run2.report.expect("completed").to_json()),
        golden,
        "resumed report is bit-identical"
    );
    std::fs::remove_file(&path).ok();
}

/// The tentpole acceptance loop: crash the campaign (deterministically)
/// after every possible journal-append count, resume it, and require the
/// final report bit-identical to the uninterrupted golden run with zero
/// recomputation of journaled cells.
#[test]
fn kill_at_every_append_resumes_bit_identical() {
    let spec = small_spec();
    let n_cells = spec.expand().len();
    let fp = campaign_fingerprint(&spec);

    let golden_path = tmp_path("golden.mfj");
    let mut journal = Journal::create(&golden_path, fp).expect("create golden");
    let runner = MockRunner::clean();
    let golden_run = run_campaign(&spec, &fast_opts(), &runner, &mut journal).expect("golden");
    let golden = strip_host_lines(&golden_run.report.expect("completed").to_json());
    std::fs::remove_file(&golden_path).ok();

    for crash_at in 1..=n_cells as u64 {
        let path = tmp_path(&format!("kill-{crash_at}.mfj"));
        let mut journal = Journal::create(&path, fp).expect("create");
        let crashed_runner = MockRunner::clean();
        let opts = FarmOptions {
            crash_after_appends: Some(crash_at),
            ..fast_opts()
        };
        let crashed = run_campaign(&spec, &opts, &crashed_runner, &mut journal)
            .expect("crashing run returns, like a wait() observing death");
        assert!(crashed.crashed, "crash point {crash_at} must trigger");
        assert!(crashed.report.is_none(), "a crashed campaign has no report");

        // The on-disk journal holds exactly the appends that happened
        // before the crash point — a sealed prefix, never a torn file.
        let mut journal = Journal::load(&path, fp).expect("journal survives the crash");
        assert_eq!(journal.len(), crash_at as usize);

        let resumed_runner = MockRunner::clean();
        let resumed =
            run_campaign(&spec, &fast_opts(), &resumed_runner, &mut journal).expect("resumed run");
        assert_eq!(
            resumed.from_journal, crash_at as usize,
            "journaled cells are reused, not recomputed"
        );
        assert_eq!(resumed.executed, n_cells - crash_at as usize);
        assert_eq!(
            resumed_runner.attempts_made(),
            n_cells - crash_at as usize,
            "exactly the unfinished cells run, once each"
        );
        assert_eq!(
            strip_host_lines(&resumed.report.expect("completed").to_json()),
            golden,
            "crash after append {crash_at}: resumed report diverged"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn campaign_with_failures_resumes_without_retrying_poisoned_cells() {
    let spec = small_spec();
    let path = tmp_path("poison-resume.mfj");
    let fp = campaign_fingerprint(&spec);
    let mut journal = Journal::create(&path, fp).expect("create");
    let first = MockRunner {
        fail_first: HashMap::new(),
        always_timeout: Vec::new(),
        always_fail: vec![2],
        calls: Mutex::new(Vec::new()),
    };
    let run1 = run_campaign(&spec, &fast_opts(), &first, &mut journal).expect("first");
    let report1 = run1.report.expect("completed");
    assert_eq!(report1.summary().poisoned, 1);

    // Poisoned is a *terminal* outcome: resume must not retry it.
    let mut journal = Journal::load(&path, fp).expect("reload");
    let second = MockRunner::clean();
    let run2 = run_campaign(&spec, &fast_opts(), &second, &mut journal).expect("second");
    assert_eq!(second.attempts_made(), 0);
    let report2 = run2.report.expect("completed");
    assert_eq!(report2.cells[2].outcome, CellOutcome::Poisoned);
    assert_eq!(
        strip_host_lines(&report1.to_json()),
        strip_host_lines(&report2.to_json())
    );
    std::fs::remove_file(&path).ok();
}
