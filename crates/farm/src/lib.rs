//! Fault-tolerant sweep farm: the campaign layer above the parallel sweep
//! engine.
//!
//! The paper's thesis is that relocation is safe because every failure
//! mode of a moved object is intercepted and repaired; this crate holds
//! the sweep infrastructure to the same standard. A *campaign* — the grid
//! expansion of a [`sweep::SweepSpec`] — survives any single-cell failure:
//!
//! - **Isolation** ([`supervisor`]): cells run in out-of-process workers
//!   (a re-exec of the `memfwd_sweep` binary in its hidden `--worker-cell`
//!   mode), so a panic, abort, OOM kill, or SIGKILL is confined to one
//!   cell. A deadline monitor with PR-2 watchdog-style *no-progress*
//!   semantics kills wedged workers: the clock rearms whenever the
//!   worker's checkpoint file advances, so a slow-but-alive cell is never
//!   shot while a hung one always is.
//! - **Retry** ([`supervisor::FarmOptions`]): failed cells are retried
//!   with seeded-deterministic exponential backoff up to a budget, then
//!   quarantined as typed [`sweep::CellOutcome::Poisoned`] (or
//!   [`sweep::CellOutcome::TimedOut`]) holes — the campaign never aborts.
//! - **Durability** ([`journal`]): every terminal cell outcome is
//!   appended to a checksummed journal, rewritten atomically (tmp +
//!   rename, like PR-2 snapshots) so the file on disk is always a sealed,
//!   self-validating image. A SIGKILLed supervisor resumes with
//!   `--resume` and recomputes only unfinished cells; long cells restart
//!   from their last worker checkpoint instead of from zero.
//!
//! The completed cells of a degraded campaign are bit-identical — same
//! checksum, same `RunStats` — to a clean run at any `--jobs`, which is
//! what makes graceful degradation *useful*: a report with k typed holes
//! is still a valid sample of the golden report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod journal;
pub mod minijson;
pub mod supervisor;
pub mod sweep;
pub mod worker;

pub use journal::{campaign_fingerprint, cell_key, Journal, JournalError, JournalRecord};
pub use supervisor::{
    run_campaign, supervise_cell, Attempt, CampaignRun, CellCtx, CellRunner, ChaosSpec,
    FarmOptions, InProcessRunner, RetryPolicy, SubprocessRunner,
};
pub use sweep::{run_sweep, CellOutcome, CellReport, CellResult, CellSpec, SweepReport, SweepSpec};
pub use worker::{parse_worker_args, run_worker_cell, WorkerArgs};
