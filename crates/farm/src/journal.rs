//! The durable campaign journal: a checksummed base image plus
//! individually sealed append frames, compacted geometrically.
//!
//! # Why sealed frames, not whole-file rewrite
//!
//! Version 1 of this format rewrote the *entire* file through a sibling
//! `.tmp` and an atomic rename on every append. That makes every on-disk
//! state a sealed image, but an n-cell campaign pays O(n²) journal I/O —
//! noticeable once campaigns reach thousands of cells and appends arrive
//! from many workers. Version 2 keeps the same guarantee at O(n) amortized
//! I/O by splitting the file in two regions:
//!
//! - A **base image**: the v1 sealed container (magic, version, declared
//!   payload length, checksum, payload). A kill can never tear it because
//!   it is only ever replaced via tmp + atomic rename.
//! - A **tail of frames**: each append writes one self-sealing frame
//!   (`magic, length, checksum, one record`) after the base. A kill
//!   mid-append tears at most the last frame; the reader detects the torn
//!   tail by its declared length and drops exactly the in-flight append —
//!   the *sealed-prefix guarantee*: at any kill point the file decodes to
//!   precisely the appends that had returned.
//! - **Compaction**: once the tail holds as many records as the base
//!   (never fewer than a small floor), the whole file is rewritten as a
//!   fresh base via tmp + rename. Geometric growth of the compaction
//!   threshold keeps total rewrite I/O linear in the number of appends.
//!
//! # Container format (version 2)
//!
//! ```text
//! [ 0..  8)  magic  b"MFWDJRNL"
//! [ 8.. 12)  format version, u32 little-endian
//! [12.. 20)  base payload length, u64 little-endian
//! [20.. 28)  FNV-1a-64 checksum of the base payload
//! [28.. 28+len)  base payload: campaign fingerprint u64, record count,
//!                records
//! then zero or more frames:
//! [ 0..  4)  frame magic b"MFJF"
//! [ 4..  8)  frame payload length, u32 little-endian
//! [ 8.. 16)  FNV-1a-64 checksum of the frame payload
//! [16..   )  frame payload: exactly one record
//! ```
//!
//! The base payload opens with the campaign fingerprint — a content hash
//! of the full sweep spec — so a journal can never be silently resumed
//! against a different grid. Records are keyed by [`cell_key`], a content
//! hash of the individual cell's configuration, so resume matches cells by
//! what they *compute*, not by their position in the grid.
//!
//! Every decoding path is total. A corrupt base, a complete-but-corrupt
//! frame, version skew, or a fingerprint mismatch is rejected with a typed
//! [`JournalError`] — never a panic and never a fabricated or altered
//! record. Only an *incomplete trailing frame* (the signature a kill
//! leaves) is dropped silently, because it is indistinguishable from — and
//! semantically identical to — an append that never returned.

use crate::sweep::{CellOutcome, CellReport, CellSpec, SweepSpec};
use memfwd::RunStats;
use memfwd_apps::Scale;
use memfwd_tagmem::{SnapCodecError, SnapDecoder, SnapEncoder};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};

/// Leading magic of every campaign journal.
pub const JOURNAL_MAGIC: [u8; 8] = *b"MFWDJRNL";

/// Current journal format version. Bumped on any layout change; old
/// versions are rejected with [`JournalError::BadVersion`], never
/// misinterpreted. Version 2 added the incremental frame tail; version 3
/// extended the embedded `RunStats` codec with the epoch-execution block.
pub const JOURNAL_VERSION: u32 = 3;

/// Leading magic of every append frame in the tail.
pub const FRAME_MAGIC: [u8; 4] = *b"MFJF";

const HEADER_BYTES: usize = 28;
const FRAME_HEADER_BYTES: usize = 16;

/// Compaction floor: the tail is never compacted before it holds this
/// many records, so small journals don't churn and the threshold test
/// `tail >= max(floor, base)` grows geometrically for large ones.
pub const COMPACT_MIN_TAIL: usize = 64;

/// Why a journal was rejected or an operation on it failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JournalError {
    /// The file ends before the header or the declared payload does.
    Truncated,
    /// The file does not start with [`JOURNAL_MAGIC`].
    BadMagic,
    /// The file was written by a different format version.
    BadVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The payload checksum does not match the header (bit rot or a torn
    /// write that somehow survived the atomic rename).
    BadChecksum,
    /// The payload is internally inconsistent (an invalid tag, length,
    /// duplicate key, or value).
    BadValue,
    /// The journal was written for a different campaign (sweep spec).
    CampaignMismatch,
    /// A filesystem operation failed while reading or writing the file.
    Io(std::io::ErrorKind),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            JournalError::Truncated => write!(f, "journal truncated"),
            JournalError::BadMagic => write!(f, "not a memfwd campaign journal (bad magic)"),
            JournalError::BadVersion { found } => write!(
                f,
                "journal format version {found} (this build reads {JOURNAL_VERSION})"
            ),
            JournalError::BadChecksum => write!(f, "journal checksum mismatch"),
            JournalError::BadValue => write!(f, "journal payload is inconsistent"),
            JournalError::CampaignMismatch => {
                write!(f, "journal belongs to a different campaign (sweep spec)")
            }
            JournalError::Io(kind) => write!(f, "journal I/O error: {kind}"),
        }
    }
}

impl Error for JournalError {}

impl From<SnapCodecError> for JournalError {
    fn from(e: SnapCodecError) -> Self {
        match e {
            SnapCodecError::Truncated => JournalError::Truncated,
            SnapCodecError::BadValue => JournalError::BadValue,
        }
    }
}

/// FNV-1a 64-bit, the same torn-write/bit-rot detector the snapshot
/// container uses (crash safety, not adversarial integrity).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Content hash of one cell's configuration: the journal key. Covers the
/// full cell spec *and* the scale — any knob that changes what the cell
/// computes changes the key and voids the journaled result.
pub fn cell_key(scale: Scale, spec: &CellSpec) -> u64 {
    fnv1a64(format!("{scale:?}|{spec:?}").as_bytes())
}

/// Content hash of the whole campaign: the sweep spec's full `Debug`
/// rendering (axes, order, scale). A journal opens only under the exact
/// campaign it was created for.
pub fn campaign_fingerprint(spec: &SweepSpec) -> u64 {
    fnv1a64(format!("{spec:?}").as_bytes())
}

/// One terminal cell outcome, as stored in the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// The cell's [`cell_key`].
    pub key: u64,
    /// How the cell ended.
    pub outcome: CellOutcome,
    /// Total attempts made.
    pub attempts: u32,
    /// The last failure's description, if any attempt failed.
    pub error: Option<String>,
    /// The simulated result, present iff `outcome.is_completed()`:
    /// `(checksum, refs, host_nanos, stats)`.
    pub sim: Option<(u64, u64, u64, RunStats)>,
}

impl JournalRecord {
    /// Builds the journal record for a terminal [`CellReport`].
    pub fn from_report(scale: Scale, report: &CellReport) -> JournalRecord {
        JournalRecord {
            key: cell_key(scale, &report.spec),
            outcome: report.outcome,
            attempts: report.attempts,
            error: report.error.clone(),
            sim: report
                .sim
                .as_ref()
                .map(|r| (r.checksum, r.refs, r.host_nanos, r.stats)),
        }
    }

    /// Reconstitutes the [`CellReport`] for `spec` from this record.
    pub fn to_report(&self, spec: CellSpec) -> CellReport {
        CellReport {
            spec,
            outcome: self.outcome,
            attempts: self.attempts,
            error: self.error.clone(),
            sim: self.sim.map(
                |(checksum, refs, host_nanos, stats)| crate::sweep::CellResult {
                    spec,
                    checksum,
                    refs,
                    host_nanos,
                    stats,
                },
            ),
        }
    }

    fn encode(&self, enc: &mut SnapEncoder) {
        enc.u64(self.key);
        let (tag, n) = match self.outcome {
            CellOutcome::Ok => (0u8, 0u32),
            CellOutcome::Retried(n) => (1, n),
            CellOutcome::Poisoned => (2, 0),
            CellOutcome::TimedOut => (3, 0),
        };
        enc.u8(tag);
        enc.u32(n);
        enc.u32(self.attempts);
        match &self.error {
            Some(e) => {
                enc.bool(true);
                enc.usize(e.len());
                enc.raw(e.as_bytes());
            }
            None => enc.bool(false),
        }
        match &self.sim {
            Some((checksum, refs, host_nanos, stats)) => {
                enc.bool(true);
                enc.u64(*checksum);
                enc.u64(*refs);
                enc.u64(*host_nanos);
                stats.snapshot_encode(enc);
            }
            None => enc.bool(false),
        }
    }

    fn decode(dec: &mut SnapDecoder<'_>) -> Result<JournalRecord, JournalError> {
        let key = dec.u64()?;
        let tag = dec.u8()?;
        let n = dec.u32()?;
        let outcome = match tag {
            0 => CellOutcome::Ok,
            1 => CellOutcome::Retried(n),
            2 => CellOutcome::Poisoned,
            3 => CellOutcome::TimedOut,
            _ => return Err(JournalError::BadValue),
        };
        if tag != 1 && n != 0 {
            return Err(JournalError::BadValue);
        }
        let attempts = dec.u32()?;
        if attempts == 0 {
            return Err(JournalError::BadValue);
        }
        let error = if dec.bool()? {
            let len = dec.usize()?;
            let bytes = dec.raw(len)?;
            Some(String::from_utf8(bytes.to_vec()).map_err(|_| JournalError::BadValue)?)
        } else {
            None
        };
        let sim = if dec.bool()? {
            let checksum = dec.u64()?;
            let refs = dec.u64()?;
            let host_nanos = dec.u64()?;
            let stats = RunStats::snapshot_decode(dec)?;
            Some((checksum, refs, host_nanos, stats))
        } else {
            None
        };
        if outcome.is_completed() != sim.is_some() {
            return Err(JournalError::BadValue);
        }
        Ok(JournalRecord {
            key,
            outcome,
            attempts,
            error,
            sim,
        })
    }
}

/// The in-memory view of a campaign journal, bound to its on-disk file.
/// Every [`Journal::append`] durably seals the record on disk before
/// returning — as one incremental frame, or as part of a compacted base.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    fingerprint: u64,
    records: Vec<JournalRecord>,
    index: HashMap<u64, usize>,
    /// How many leading `records` live in the sealed base image (the rest
    /// are tail frames).
    base_records: usize,
    /// Length of the valid (base + intact frames) region of the file. A
    /// torn tail found at load time sits beyond this and is truncated away
    /// by the next append.
    file_len: u64,
    /// Tail-size floor below which compaction never runs.
    compact_min_tail: usize,
}

impl Journal {
    /// Creates a new, empty journal for the campaign identified by
    /// `fingerprint` and durably writes the empty image to `path`.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the write fails.
    pub fn create(path: &Path, fingerprint: u64) -> Result<Journal, JournalError> {
        let mut j = Journal {
            path: path.to_path_buf(),
            fingerprint,
            records: Vec::new(),
            index: HashMap::new(),
            base_records: 0,
            file_len: 0,
            compact_min_tail: COMPACT_MIN_TAIL,
        };
        j.compact()?;
        Ok(j)
    }

    /// Loads an existing journal, verifying the container and that it
    /// belongs to the campaign identified by `fingerprint`.
    ///
    /// # Errors
    ///
    /// Any [`JournalError`]: a corrupt base, a complete-but-corrupt frame,
    /// or a foreign journal is rejected — partial records are never
    /// surfaced. An incomplete trailing frame (a torn append) is dropped,
    /// exactly as if the kill had landed a moment earlier.
    pub fn load(path: &Path, fingerprint: u64) -> Result<Journal, JournalError> {
        let bytes = std::fs::read(path).map_err(|e| JournalError::Io(e.kind()))?;
        let decoded = decode_journal_ex(&bytes, fingerprint)?;
        let mut index = HashMap::with_capacity(decoded.records.len());
        for (i, r) in decoded.records.iter().enumerate() {
            if index.insert(r.key, i).is_some() {
                return Err(JournalError::BadValue);
            }
        }
        Ok(Journal {
            path: path.to_path_buf(),
            fingerprint,
            records: decoded.records,
            index,
            base_records: decoded.base_records,
            file_len: decoded.valid_len,
            compact_min_tail: COMPACT_MIN_TAIL,
        })
    }

    /// Overrides the compaction floor (default [`COMPACT_MIN_TAIL`]).
    /// `usize::MAX` disables compaction entirely; small values force it —
    /// both are test knobs, the default is right for campaigns.
    pub fn with_compact_min_tail(mut self, floor: usize) -> Journal {
        self.compact_min_tail = floor;
        self
    }

    /// The journaled record for `key`, if that cell already reached a
    /// terminal outcome in a previous (or the current) supervisor run.
    pub fn get(&self, key: u64) -> Option<&JournalRecord> {
        self.index.get(&key).map(|&i| &self.records[i])
    }

    /// Number of journaled cells.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records in append order.
    pub fn records(&self) -> &[JournalRecord] {
        &self.records
    }

    /// Appends a terminal cell outcome and durably seals it on disk
    /// before returning: once `append` returns, the record survives any
    /// crash. The common path writes one [`FRAME_MAGIC`] frame after the
    /// base; once the tail reaches `max(compact_min_tail, base_records)`
    /// the file is compacted into a fresh base via tmp + atomic rename.
    ///
    /// # Errors
    ///
    /// [`JournalError::BadValue`] if `record.key` is already journaled
    /// (a supervisor bug — cells reach exactly one terminal outcome), or
    /// [`JournalError::Io`] if the frame write fails. On error the
    /// in-memory and on-disk state both still hold the pre-append
    /// records. A failed *compaction* is not an error: the record is
    /// already sealed as a frame, and compaction simply retries on a
    /// later append.
    pub fn append(&mut self, record: JournalRecord) -> Result<(), JournalError> {
        if self.index.contains_key(&record.key) {
            return Err(JournalError::BadValue);
        }
        self.append_frame(&record)?;
        self.records.push(record);
        let i = self.records.len() - 1;
        self.index.insert(self.records[i].key, i);
        let tail = self.records.len() - self.base_records;
        if tail >= self.compact_min_tail.max(self.base_records) {
            // Best-effort: the frame already made the record durable.
            let _ = self.compact();
        }
        Ok(())
    }

    /// Serializes the current records into a fully compacted sealed
    /// journal image (a base with an empty frame tail).
    pub fn encode(&self) -> Vec<u8> {
        encode_base(self.fingerprint, &self.records)
    }

    /// Writes one sealed frame at `file_len`, truncating any torn tail a
    /// previous kill left beyond it, and extends `file_len` on success.
    fn append_frame(&mut self, record: &JournalRecord) -> Result<(), JournalError> {
        let mut enc = SnapEncoder::new();
        record.encode(&mut enc);
        let payload = enc.into_bytes();
        let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
        frame.extend_from_slice(&FRAME_MAGIC);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);

        use std::io::{Seek, SeekFrom, Write};
        let io = |e: std::io::Error| JournalError::Io(e.kind());
        let mut f = std::fs::OpenOptions::new()
            .write(true)
            .open(&self.path)
            .map_err(io)?;
        f.set_len(self.file_len).map_err(io)?;
        f.seek(SeekFrom::Start(self.file_len)).map_err(io)?;
        f.write_all(&frame).map_err(io)?;
        self.file_len += frame.len() as u64;
        Ok(())
    }

    /// Rewrites the whole file as a sealed base image via tmp + atomic
    /// rename (the PR-2 snapshot discipline): a kill during compaction
    /// leaves either the old file or the new one, both valid.
    fn compact(&mut self) -> Result<(), JournalError> {
        let bytes = self.encode();
        let mut tmp = self.path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, &bytes).map_err(|e| JournalError::Io(e.kind()))?;
        std::fs::rename(&tmp, &self.path).map_err(|e| JournalError::Io(e.kind()))?;
        self.base_records = self.records.len();
        self.file_len = bytes.len() as u64;
        Ok(())
    }
}

fn encode_base(fingerprint: u64, records: &[JournalRecord]) -> Vec<u8> {
    let mut enc = SnapEncoder::new();
    enc.u64(fingerprint);
    enc.usize(records.len());
    for r in records {
        r.encode(&mut enc);
    }
    let payload = enc.into_bytes();
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
    out.extend_from_slice(&JOURNAL_MAGIC);
    out.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

pub(crate) struct DecodedJournal {
    pub records: Vec<JournalRecord>,
    /// How many of `records` came from the base image.
    pub base_records: usize,
    /// Byte length of the valid region (base + intact frames); anything
    /// beyond is a dropped torn tail.
    pub valid_len: u64,
}

/// Validates a journal image and decodes its records. See
/// [`decode_journal`] for the contract.
pub(crate) fn decode_journal_ex(
    bytes: &[u8],
    fingerprint: u64,
) -> Result<DecodedJournal, JournalError> {
    // Base image. Check order mirrors the snapshot container: length,
    // magic, version (before the checksum, so skew is reported as such),
    // declared payload length, checksum, fingerprint, records.
    if bytes.len() < HEADER_BYTES {
        return Err(JournalError::Truncated);
    }
    if bytes[0..8] != JOURNAL_MAGIC {
        return Err(JournalError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != JOURNAL_VERSION {
        return Err(JournalError::BadVersion { found: version });
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    if ((bytes.len() - HEADER_BYTES) as u64) < len {
        return Err(JournalError::Truncated);
    }
    let base_end = HEADER_BYTES + len as usize;
    let payload = &bytes[HEADER_BYTES..base_end];
    let checksum = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
    if fnv1a64(payload) != checksum {
        return Err(JournalError::BadChecksum);
    }
    let mut dec = SnapDecoder::new(payload);
    if dec.u64()? != fingerprint {
        return Err(JournalError::CampaignMismatch);
    }
    let n = dec.usize()?;
    // Each record is at least key + tag + retries + attempts + 2 bools.
    if n > payload.len() / 19 {
        return Err(JournalError::BadValue);
    }
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        records.push(JournalRecord::decode(&mut dec)?);
    }
    if !dec.is_exhausted() {
        return Err(JournalError::BadValue);
    }
    let base_records = records.len();

    // Frame tail. A frame that is *present in full but corrupt* (bad
    // magic over ≥4 bytes, bad checksum, bad record) is a typed error; a
    // frame that simply *ends early* is the torn in-flight append a kill
    // leaves and is dropped at the last sealed boundary.
    let mut off = base_end;
    loop {
        let rem = &bytes[off..];
        if rem.is_empty() {
            break;
        }
        if rem.len() >= 4 && rem[0..4] != FRAME_MAGIC {
            return Err(JournalError::BadValue);
        }
        if rem.len() < FRAME_HEADER_BYTES {
            break; // torn frame header
        }
        let flen = u32::from_le_bytes(rem[4..8].try_into().expect("4 bytes")) as usize;
        if rem.len() < FRAME_HEADER_BYTES + flen {
            break; // torn frame payload
        }
        let fpayload = &rem[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + flen];
        let fsum = u64::from_le_bytes(rem[8..16].try_into().expect("8 bytes"));
        if fnv1a64(fpayload) != fsum {
            return Err(JournalError::BadChecksum);
        }
        let mut fdec = SnapDecoder::new(fpayload);
        let record = JournalRecord::decode(&mut fdec)?;
        if !fdec.is_exhausted() {
            return Err(JournalError::BadValue);
        }
        records.push(record);
        off += FRAME_HEADER_BYTES + flen;
    }

    Ok(DecodedJournal {
        records,
        base_records,
        valid_len: off as u64,
    })
}

/// Validates a journal image and decodes its records: the sealed base,
/// then every intact tail frame.
///
/// # Errors
///
/// Any [`JournalError`]. A corrupt base rejects the image wholesale; a
/// complete-but-corrupt frame rejects it from that frame on with a typed
/// error. Only an incomplete trailing frame — the torn in-flight append a
/// kill leaves — is dropped silently, yielding exactly the records whose
/// appends had returned.
pub fn decode_journal(bytes: &[u8], fingerprint: u64) -> Result<Vec<JournalRecord>, JournalError> {
    decode_journal_ex(bytes, fingerprint).map(|d| d.records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{CellResult, SweepSpec};
    use memfwd_apps::{App, Variant};

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("memfwd-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    fn sample_cell() -> CellSpec {
        CellSpec {
            app: App::Mst,
            variant: Variant::Optimized,
            line_bytes: 32,
            mem_latency: 75,
            seed: 12345,
        }
    }

    fn sample_records(scale: Scale) -> Vec<JournalRecord> {
        let spec = sample_cell();
        let mut stats = RunStats::default();
        stats.pipeline.cycles = 777;
        stats.fwd.loads = 41;
        stats.fwd.stores = 1;
        let ok = CellReport::completed(CellResult {
            spec,
            checksum: 0xABCD,
            stats,
            refs: 42,
            host_nanos: 5,
        });
        let poisoned = CellReport {
            spec: CellSpec {
                app: App::Vis,
                ..spec
            },
            outcome: CellOutcome::Poisoned,
            attempts: 3,
            sim: None,
            error: Some("panic: injected".to_string()),
        };
        vec![
            JournalRecord::from_report(scale, &ok),
            JournalRecord::from_report(scale, &poisoned),
        ]
    }

    #[test]
    fn create_append_load_roundtrip() {
        let path = tmp_path("roundtrip.mfj");
        let fp = campaign_fingerprint(&SweepSpec::default());
        let mut j = Journal::create(&path, fp).expect("create");
        for r in sample_records(Scale::Smoke) {
            j.append(r).expect("append");
        }
        let loaded = Journal::load(&path, fp).expect("load");
        assert_eq!(loaded.records(), j.records());
        let key = cell_key(Scale::Smoke, &sample_cell());
        let rec = loaded.get(key).expect("journaled cell found");
        assert_eq!(rec.outcome, CellOutcome::Ok);
        let report = rec.to_report(sample_cell());
        assert_eq!(report.sim.expect("completed").checksum, 0xABCD);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_key_append_is_rejected() {
        let path = tmp_path("dup.mfj");
        let mut j = Journal::create(&path, 1).expect("create");
        let recs = sample_records(Scale::Smoke);
        j.append(recs[0].clone()).expect("first append");
        assert_eq!(j.append(recs[0].clone()), Err(JournalError::BadValue));
        assert_eq!(j.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn campaign_mismatch_is_typed() {
        let path = tmp_path("mismatch.mfj");
        Journal::create(&path, 1).expect("create");
        assert!(matches!(
            Journal::load(&path, 2),
            Err(JournalError::CampaignMismatch)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cell_key_covers_scale_and_every_axis() {
        let spec = sample_cell();
        let base = cell_key(Scale::Smoke, &spec);
        assert_ne!(base, cell_key(Scale::Bench, &spec));
        assert_ne!(
            base,
            cell_key(
                Scale::Smoke,
                &CellSpec {
                    seed: spec.seed + 1,
                    ..spec
                }
            )
        );
        assert_ne!(
            base,
            cell_key(
                Scale::Smoke,
                &CellSpec {
                    line_bytes: 64,
                    ..spec
                }
            )
        );
    }

    #[test]
    fn base_truncation_is_typed_at_every_length() {
        let img = encode_base(7, &sample_records(Scale::Smoke));
        for len in [0, 7, 11, 19, 27, HEADER_BYTES, img.len() / 2, img.len() - 1] {
            let r = decode_journal(&img[..len], 7);
            assert!(
                matches!(r, Err(JournalError::Truncated)),
                "len {len}: {r:?}"
            );
        }
    }

    #[test]
    fn version_skew_and_bad_magic_are_typed() {
        let mut img = encode_base(7, &[]);
        img[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            decode_journal(&img, 7),
            Err(JournalError::BadVersion { found: 99 })
        );
        let mut img = encode_base(7, &[]);
        img[0] = b'X';
        assert_eq!(decode_journal(&img, 7), Err(JournalError::BadMagic));
    }

    /// The incremental path: appends past the base are frames, a torn
    /// trailing frame decodes to exactly the sealed prefix, and a
    /// complete-but-corrupt frame is a typed rejection.
    #[test]
    fn frame_tail_torn_and_corrupt_semantics() {
        let path = tmp_path("frames.mfj");
        let mut j = Journal::create(&path, 7)
            .expect("create")
            .with_compact_min_tail(usize::MAX);
        let recs = sample_records(Scale::Smoke);
        let base_len = std::fs::metadata(&path).expect("meta").len() as usize;
        j.append(recs[0].clone()).expect("append 0");
        let after_one = std::fs::read(&path).expect("read");
        j.append(recs[1].clone()).expect("append 1");
        let img = std::fs::read(&path).expect("read");
        assert!(img.len() > after_one.len() && after_one.len() > base_len);
        assert_eq!(&img[..after_one.len()], &after_one[..], "append-only tail");

        // Full image: both records.
        assert_eq!(decode_journal(&img, 7).expect("full"), recs);
        // Any cut inside the second frame: exactly the first record.
        for cut in after_one.len()..img.len() {
            let got = decode_journal(&img[..cut], 7).expect("torn tail is sealed prefix");
            assert_eq!(got, recs[..1], "cut {cut}");
        }
        // A bit flip inside a *complete* frame payload is typed, not a
        // silent drop.
        let mut flipped = img.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert_eq!(decode_journal(&flipped, 7), Err(JournalError::BadChecksum));
        // Garbage that cannot be a frame prefix is typed.
        let mut garbage = img.clone();
        garbage.extend_from_slice(b"XXXXXXXX");
        assert_eq!(decode_journal(&garbage, 7), Err(JournalError::BadValue));
        std::fs::remove_file(&path).ok();
    }

    /// Compaction folds the tail back into the base without changing the
    /// decoded records, and keeps the file near one base image in size.
    #[test]
    fn compaction_preserves_records_and_bounds_file() {
        let path = tmp_path("compact.mfj");
        let mut j = Journal::create(&path, 7)
            .expect("create")
            .with_compact_min_tail(2);
        let mut expect = Vec::new();
        for i in 0..32u64 {
            let mut r = sample_records(Scale::Smoke)[0].clone();
            r.key = i;
            expect.push(r.clone());
            j.append(r).expect("append");
        }
        // tail >= max(2, base) compacts: after 32 appends at floor 2 the
        // file must have been rewritten at least once (pure frames would
        // be much longer than a compacted base + small tail).
        let on_disk = std::fs::read(&path).expect("read");
        let pure_base = encode_base(7, &expect);
        assert!(
            on_disk.len() < pure_base.len() + pure_base.len() / 2,
            "file {} not compacted vs base {}",
            on_disk.len(),
            pure_base.len()
        );
        assert_eq!(decode_journal(&on_disk, 7).expect("decode"), expect);
        let loaded = Journal::load(&path, 7).expect("load");
        assert_eq!(loaded.records(), &expect[..]);
        std::fs::remove_file(&path).ok();
    }

    /// A torn tail found at load time is truncated by the next append,
    /// never resurrected.
    #[test]
    fn append_over_torn_tail_truncates_it() {
        let path = tmp_path("torn-append.mfj");
        let recs = sample_records(Scale::Smoke);
        {
            let mut j = Journal::create(&path, 7)
                .expect("create")
                .with_compact_min_tail(usize::MAX);
            j.append(recs[0].clone()).expect("append");
        }
        // Simulate a kill mid-append: half a frame of the second record.
        let sealed = std::fs::read(&path).expect("read");
        let mut torn = sealed.clone();
        torn.extend_from_slice(&FRAME_MAGIC);
        torn.extend_from_slice(&(u32::MAX).to_le_bytes());
        std::fs::write(&path, &torn).expect("write torn");

        let mut j = Journal::load(&path, 7)
            .expect("load over torn tail")
            .with_compact_min_tail(usize::MAX);
        assert_eq!(j.records(), &recs[..1]);
        j.append(recs[1].clone()).expect("append over torn tail");
        let img = std::fs::read(&path).expect("read");
        assert_eq!(&img[..sealed.len()], &sealed[..]);
        assert_eq!(decode_journal(&img, 7).expect("decode"), recs);
        std::fs::remove_file(&path).ok();
    }
}
