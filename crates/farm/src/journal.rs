//! The durable campaign journal: a checksummed, atomically rewritten
//! record of every terminal cell outcome.
//!
//! # Why whole-file rewrite, not append
//!
//! A raw append-only log can be torn by a crash mid-append, forcing the
//! reader to guess where the valid prefix ends. The journal instead
//! rewrites the *entire* sealed file through a sibling `.tmp` and an
//! atomic rename on every append — exactly the PR-2 snapshot discipline.
//! The file under the final name is therefore always a complete, sealed
//! image of some prefix of the appends: a SIGKILL at any instant loses at
//! most the in-flight append, never the journal. Campaign journals are
//! small (one record per grid cell, kilobytes even for large sweeps), so
//! the rewrite cost is irrelevant next to a cell's simulation time.
//!
//! # Container format
//!
//! ```text
//! [ 0..  8)  magic  b"MFWDJRNL"
//! [ 8.. 12)  format version, u32 little-endian
//! [12.. 20)  payload length, u64 little-endian
//! [20.. 28)  FNV-1a-64 checksum of the payload
//! [28..   )  payload: campaign fingerprint u64, record count, records
//! ```
//!
//! The payload opens with the campaign fingerprint — a content hash of the
//! full sweep spec — so a journal can never be silently resumed against a
//! different grid. Records are keyed by [`cell_key`], a content hash of
//! the individual cell's configuration, so resume matches cells by what
//! they *compute*, not by their position in the grid.
//!
//! Every decoding path is total: truncated, bit-flipped, version-skewed,
//! or fingerprint-mismatched journals are rejected with a typed
//! [`JournalError`] — never a panic and never silently dropped cells.

use crate::sweep::{CellOutcome, CellReport, CellSpec, SweepSpec};
use memfwd::RunStats;
use memfwd_apps::Scale;
use memfwd_tagmem::{SnapCodecError, SnapDecoder, SnapEncoder};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};

/// Leading magic of every campaign journal.
pub const JOURNAL_MAGIC: [u8; 8] = *b"MFWDJRNL";

/// Current journal format version. Bumped on any layout change; old
/// versions are rejected with [`JournalError::BadVersion`], never
/// misinterpreted.
pub const JOURNAL_VERSION: u32 = 1;

const HEADER_BYTES: usize = 28;

/// Why a journal was rejected or an operation on it failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JournalError {
    /// The file ends before the header or the declared payload does.
    Truncated,
    /// The file does not start with [`JOURNAL_MAGIC`].
    BadMagic,
    /// The file was written by a different format version.
    BadVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The payload checksum does not match the header (bit rot or a torn
    /// write that somehow survived the atomic rename).
    BadChecksum,
    /// The payload is internally inconsistent (an invalid tag, length,
    /// duplicate key, or value).
    BadValue,
    /// The journal was written for a different campaign (sweep spec).
    CampaignMismatch,
    /// A filesystem operation failed while reading or writing the file.
    Io(std::io::ErrorKind),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            JournalError::Truncated => write!(f, "journal truncated"),
            JournalError::BadMagic => write!(f, "not a memfwd campaign journal (bad magic)"),
            JournalError::BadVersion { found } => write!(
                f,
                "journal format version {found} (this build reads {JOURNAL_VERSION})"
            ),
            JournalError::BadChecksum => write!(f, "journal checksum mismatch"),
            JournalError::BadValue => write!(f, "journal payload is inconsistent"),
            JournalError::CampaignMismatch => {
                write!(f, "journal belongs to a different campaign (sweep spec)")
            }
            JournalError::Io(kind) => write!(f, "journal I/O error: {kind}"),
        }
    }
}

impl Error for JournalError {}

impl From<SnapCodecError> for JournalError {
    fn from(e: SnapCodecError) -> Self {
        match e {
            SnapCodecError::Truncated => JournalError::Truncated,
            SnapCodecError::BadValue => JournalError::BadValue,
        }
    }
}

/// FNV-1a 64-bit, the same torn-write/bit-rot detector the snapshot
/// container uses (crash safety, not adversarial integrity).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Content hash of one cell's configuration: the journal key. Covers the
/// full cell spec *and* the scale — any knob that changes what the cell
/// computes changes the key and voids the journaled result.
pub fn cell_key(scale: Scale, spec: &CellSpec) -> u64 {
    fnv1a64(format!("{scale:?}|{spec:?}").as_bytes())
}

/// Content hash of the whole campaign: the sweep spec's full `Debug`
/// rendering (axes, order, scale). A journal opens only under the exact
/// campaign it was created for.
pub fn campaign_fingerprint(spec: &SweepSpec) -> u64 {
    fnv1a64(format!("{spec:?}").as_bytes())
}

/// One terminal cell outcome, as stored in the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// The cell's [`cell_key`].
    pub key: u64,
    /// How the cell ended.
    pub outcome: CellOutcome,
    /// Total attempts made.
    pub attempts: u32,
    /// The last failure's description, if any attempt failed.
    pub error: Option<String>,
    /// The simulated result, present iff `outcome.is_completed()`:
    /// `(checksum, refs, host_nanos, stats)`.
    pub sim: Option<(u64, u64, u64, RunStats)>,
}

impl JournalRecord {
    /// Builds the journal record for a terminal [`CellReport`].
    pub fn from_report(scale: Scale, report: &CellReport) -> JournalRecord {
        JournalRecord {
            key: cell_key(scale, &report.spec),
            outcome: report.outcome,
            attempts: report.attempts,
            error: report.error.clone(),
            sim: report
                .sim
                .as_ref()
                .map(|r| (r.checksum, r.refs, r.host_nanos, r.stats)),
        }
    }

    /// Reconstitutes the [`CellReport`] for `spec` from this record.
    pub fn to_report(&self, spec: CellSpec) -> CellReport {
        CellReport {
            spec,
            outcome: self.outcome,
            attempts: self.attempts,
            error: self.error.clone(),
            sim: self.sim.map(
                |(checksum, refs, host_nanos, stats)| crate::sweep::CellResult {
                    spec,
                    checksum,
                    refs,
                    host_nanos,
                    stats,
                },
            ),
        }
    }

    fn encode(&self, enc: &mut SnapEncoder) {
        enc.u64(self.key);
        let (tag, n) = match self.outcome {
            CellOutcome::Ok => (0u8, 0u32),
            CellOutcome::Retried(n) => (1, n),
            CellOutcome::Poisoned => (2, 0),
            CellOutcome::TimedOut => (3, 0),
        };
        enc.u8(tag);
        enc.u32(n);
        enc.u32(self.attempts);
        match &self.error {
            Some(e) => {
                enc.bool(true);
                enc.usize(e.len());
                enc.raw(e.as_bytes());
            }
            None => enc.bool(false),
        }
        match &self.sim {
            Some((checksum, refs, host_nanos, stats)) => {
                enc.bool(true);
                enc.u64(*checksum);
                enc.u64(*refs);
                enc.u64(*host_nanos);
                stats.snapshot_encode(enc);
            }
            None => enc.bool(false),
        }
    }

    fn decode(dec: &mut SnapDecoder<'_>) -> Result<JournalRecord, JournalError> {
        let key = dec.u64()?;
        let tag = dec.u8()?;
        let n = dec.u32()?;
        let outcome = match tag {
            0 => CellOutcome::Ok,
            1 => CellOutcome::Retried(n),
            2 => CellOutcome::Poisoned,
            3 => CellOutcome::TimedOut,
            _ => return Err(JournalError::BadValue),
        };
        if tag != 1 && n != 0 {
            return Err(JournalError::BadValue);
        }
        let attempts = dec.u32()?;
        if attempts == 0 {
            return Err(JournalError::BadValue);
        }
        let error = if dec.bool()? {
            let len = dec.usize()?;
            let bytes = dec.raw(len)?;
            Some(String::from_utf8(bytes.to_vec()).map_err(|_| JournalError::BadValue)?)
        } else {
            None
        };
        let sim = if dec.bool()? {
            let checksum = dec.u64()?;
            let refs = dec.u64()?;
            let host_nanos = dec.u64()?;
            let stats = RunStats::snapshot_decode(dec)?;
            Some((checksum, refs, host_nanos, stats))
        } else {
            None
        };
        if outcome.is_completed() != sim.is_some() {
            return Err(JournalError::BadValue);
        }
        Ok(JournalRecord {
            key,
            outcome,
            attempts,
            error,
            sim,
        })
    }
}

/// The in-memory view of a campaign journal, bound to its on-disk file.
/// Every [`Journal::append`] durably rewrites the file before returning.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    fingerprint: u64,
    records: Vec<JournalRecord>,
    index: HashMap<u64, usize>,
}

impl Journal {
    /// Creates a new, empty journal for the campaign identified by
    /// `fingerprint` and durably writes the empty image to `path`.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the write fails.
    pub fn create(path: &Path, fingerprint: u64) -> Result<Journal, JournalError> {
        let j = Journal {
            path: path.to_path_buf(),
            fingerprint,
            records: Vec::new(),
            index: HashMap::new(),
        };
        j.write_file()?;
        Ok(j)
    }

    /// Loads an existing journal, verifying the container and that it
    /// belongs to the campaign identified by `fingerprint`.
    ///
    /// # Errors
    ///
    /// Any [`JournalError`]: a corrupt, skewed, or foreign journal is
    /// rejected wholesale — partial records are never surfaced.
    pub fn load(path: &Path, fingerprint: u64) -> Result<Journal, JournalError> {
        let bytes = std::fs::read(path).map_err(|e| JournalError::Io(e.kind()))?;
        let records = decode_journal(&bytes, fingerprint)?;
        let mut index = HashMap::with_capacity(records.len());
        for (i, r) in records.iter().enumerate() {
            if index.insert(r.key, i).is_some() {
                return Err(JournalError::BadValue);
            }
        }
        Ok(Journal {
            path: path.to_path_buf(),
            fingerprint,
            records,
            index,
        })
    }

    /// The journaled record for `key`, if that cell already reached a
    /// terminal outcome in a previous (or the current) supervisor run.
    pub fn get(&self, key: u64) -> Option<&JournalRecord> {
        self.index.get(&key).map(|&i| &self.records[i])
    }

    /// Number of journaled cells.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records in append order.
    pub fn records(&self) -> &[JournalRecord] {
        &self.records
    }

    /// Appends a terminal cell outcome and durably rewrites the file
    /// (tmp + atomic rename) before returning: once `append` returns,
    /// the record survives any crash.
    ///
    /// # Errors
    ///
    /// [`JournalError::BadValue`] if `record.key` is already journaled
    /// (a supervisor bug — cells reach exactly one terminal outcome), or
    /// [`JournalError::Io`] if the rewrite fails. On error the in-memory
    /// and on-disk state both still hold the pre-append records.
    pub fn append(&mut self, record: JournalRecord) -> Result<(), JournalError> {
        if self.index.contains_key(&record.key) {
            return Err(JournalError::BadValue);
        }
        self.records.push(record);
        match self.write_file() {
            Ok(()) => {
                let i = self.records.len() - 1;
                self.index.insert(self.records[i].key, i);
                Ok(())
            }
            Err(e) => {
                self.records.pop();
                Err(e)
            }
        }
    }

    /// Serializes the current records into a sealed journal image.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = SnapEncoder::new();
        enc.u64(self.fingerprint);
        enc.usize(self.records.len());
        for r in &self.records {
            r.encode(&mut enc);
        }
        let payload = enc.into_bytes();
        let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
        out.extend_from_slice(&JOURNAL_MAGIC);
        out.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    fn write_file(&self) -> Result<(), JournalError> {
        let bytes = self.encode();
        let mut tmp = self.path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, &bytes).map_err(|e| JournalError::Io(e.kind()))?;
        std::fs::rename(&tmp, &self.path).map_err(|e| JournalError::Io(e.kind()))
    }
}

/// Validates a sealed journal image and decodes its records. Check order
/// mirrors the snapshot container: length, magic, version (before the
/// checksum, so skew is reported as such), declared payload length,
/// checksum, campaign fingerprint, records.
///
/// # Errors
///
/// Any [`JournalError`]; the image is rejected wholesale.
pub fn decode_journal(bytes: &[u8], fingerprint: u64) -> Result<Vec<JournalRecord>, JournalError> {
    if bytes.len() < HEADER_BYTES {
        return Err(JournalError::Truncated);
    }
    if bytes[0..8] != JOURNAL_MAGIC {
        return Err(JournalError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != JOURNAL_VERSION {
        return Err(JournalError::BadVersion { found: version });
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let payload = &bytes[HEADER_BYTES..];
    if (payload.len() as u64) < len {
        return Err(JournalError::Truncated);
    }
    if (payload.len() as u64) > len {
        // Trailing garbage is as suspect as missing bytes.
        return Err(JournalError::BadValue);
    }
    let checksum = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
    if fnv1a64(payload) != checksum {
        return Err(JournalError::BadChecksum);
    }
    let mut dec = SnapDecoder::new(payload);
    if dec.u64()? != fingerprint {
        return Err(JournalError::CampaignMismatch);
    }
    let n = dec.usize()?;
    // Each record is at least key + tag + retries + attempts + 2 bools.
    if n > payload.len() / 19 {
        return Err(JournalError::BadValue);
    }
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        records.push(JournalRecord::decode(&mut dec)?);
    }
    if !dec.is_exhausted() {
        return Err(JournalError::BadValue);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{CellResult, SweepSpec};
    use memfwd_apps::{App, Variant};

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("memfwd-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    fn sample_cell() -> CellSpec {
        CellSpec {
            app: App::Mst,
            variant: Variant::Optimized,
            line_bytes: 32,
            mem_latency: 75,
            seed: 12345,
        }
    }

    fn sample_records(scale: Scale) -> Vec<JournalRecord> {
        let spec = sample_cell();
        let mut stats = RunStats::default();
        stats.pipeline.cycles = 777;
        stats.fwd.loads = 41;
        stats.fwd.stores = 1;
        let ok = CellReport::completed(CellResult {
            spec,
            checksum: 0xABCD,
            stats,
            refs: 42,
            host_nanos: 5,
        });
        let poisoned = CellReport {
            spec: CellSpec {
                app: App::Vis,
                ..spec
            },
            outcome: CellOutcome::Poisoned,
            attempts: 3,
            sim: None,
            error: Some("panic: injected".to_string()),
        };
        vec![
            JournalRecord::from_report(scale, &ok),
            JournalRecord::from_report(scale, &poisoned),
        ]
    }

    #[test]
    fn create_append_load_roundtrip() {
        let path = tmp_path("roundtrip.mfj");
        let fp = campaign_fingerprint(&SweepSpec::default());
        let mut j = Journal::create(&path, fp).expect("create");
        for r in sample_records(Scale::Smoke) {
            j.append(r).expect("append");
        }
        let loaded = Journal::load(&path, fp).expect("load");
        assert_eq!(loaded.records(), j.records());
        let key = cell_key(Scale::Smoke, &sample_cell());
        let rec = loaded.get(key).expect("journaled cell found");
        assert_eq!(rec.outcome, CellOutcome::Ok);
        let report = rec.to_report(sample_cell());
        assert_eq!(report.sim.expect("completed").checksum, 0xABCD);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_key_append_is_rejected() {
        let path = tmp_path("dup.mfj");
        let mut j = Journal::create(&path, 1).expect("create");
        let recs = sample_records(Scale::Smoke);
        j.append(recs[0].clone()).expect("first append");
        assert_eq!(j.append(recs[0].clone()), Err(JournalError::BadValue));
        assert_eq!(j.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn campaign_mismatch_is_typed() {
        let path = tmp_path("mismatch.mfj");
        Journal::create(&path, 1).expect("create");
        assert!(matches!(
            Journal::load(&path, 2),
            Err(JournalError::CampaignMismatch)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cell_key_covers_scale_and_every_axis() {
        let spec = sample_cell();
        let base = cell_key(Scale::Smoke, &spec);
        assert_ne!(base, cell_key(Scale::Bench, &spec));
        assert_ne!(
            base,
            cell_key(
                Scale::Smoke,
                &CellSpec {
                    seed: spec.seed + 1,
                    ..spec
                }
            )
        );
        assert_ne!(
            base,
            cell_key(
                Scale::Smoke,
                &CellSpec {
                    line_bytes: 64,
                    ..spec
                }
            )
        );
    }

    #[test]
    fn truncation_is_typed_at_every_length() {
        let mut enc_j = Journal {
            path: tmp_path("unused.mfj"),
            fingerprint: 7,
            records: sample_records(Scale::Smoke),
            index: HashMap::new(),
        };
        enc_j.index.clear();
        let img = enc_j.encode();
        for len in [0, 7, 11, 19, 27, HEADER_BYTES, img.len() / 2, img.len() - 1] {
            let r = decode_journal(&img[..len], 7);
            assert!(
                matches!(r, Err(JournalError::Truncated)),
                "len {len}: {r:?}"
            );
        }
    }

    #[test]
    fn version_skew_and_bad_magic_are_typed() {
        let j = Journal {
            path: tmp_path("unused2.mfj"),
            fingerprint: 7,
            records: Vec::new(),
            index: HashMap::new(),
        };
        let mut img = j.encode();
        img[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            decode_journal(&img, 7),
            Err(JournalError::BadVersion { found: 99 })
        );
        let mut img = j.encode();
        img[0] = b'X';
        assert_eq!(decode_journal(&img, 7), Err(JournalError::BadMagic));
    }
}
