//! A minimal, dependency-free JSON reader/writer.
//!
//! The build environment has no reachable crates.io, so the report
//! validator, the service protocol, and the sweep client all share this
//! hand-rolled parser instead of `serde_json`. It parses a strict-enough
//! subset (objects, arrays, strings with the common escapes, f64 numbers,
//! literals) and keeps object fields in document order.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64; integral values round-trip to 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Field lookup on an object; `None` on missing key or non-object.
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a u64, if this is a non-negative integral
    /// number within u64 range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The bool payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("JSON error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through byte-wise; the
                    // input is a &str so they are guaranteed well-formed.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses `text` as a single JSON value, rejecting trailing content.
///
/// # Errors
///
/// A human-readable description anchored at the failing byte offset.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after top-level value"));
    }
    Ok(v)
}

/// Escapes `s` for embedding between JSON double quotes.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_and_accessors() {
        let v =
            parse_json(r#"{"a": 1, "b": "x\ny", "c": [true, null], "d": -2.5}"#).expect("parses");
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x\ny"));
        assert_eq!(
            v.get("c").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(
            v.get("c").unwrap().as_arr().unwrap()[0].as_bool(),
            Some(true)
        );
        assert_eq!(v.get("d").and_then(Json::as_f64), Some(-2.5));
        assert_eq!(
            v.get("d").and_then(Json::as_u64),
            None,
            "negative is not u64"
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_garbage_and_trailing_content() {
        assert!(parse_json("not json").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("{\"unterminated").is_err());
        assert!(parse_json("[1,]").is_err());
    }

    #[test]
    fn escape_covers_controls() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
        // And the parser reads its own escapes back.
        let v = parse_json(&format!("\"{}\"", json_escape("a\"b\\c\nd"))).expect("parses");
        assert_eq!(v.as_str(), Some("a\"b\\c\nd"));
    }
}
