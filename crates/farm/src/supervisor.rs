//! The campaign supervisor: retry, quarantine, durability, resume.
//!
//! [`run_campaign`] is the farm's control loop. It walks the PR-3 grid
//! expansion with a worker-thread pool (same claim-by-atomic-counter
//! discipline as the plain sweep), but each cell goes through a
//! [`CellRunner`] — in-process with `catch_unwind`, or out-of-process via
//! [`SubprocessRunner`] — and through a terminal-outcome state machine:
//!
//! ```text
//!   journaled? ──yes──► reuse record (zero recompute)
//!      │no
//!      ▼
//!   attempt 0 ─fail─► backoff ─► attempt 1 ─… ─► attempts exhausted
//!      │ok                │ok                         │
//!      ▼                  ▼                           ▼
//!   CellOutcome::Ok   CellOutcome::Retried(n)   Poisoned / TimedOut
//! ```
//!
//! Every terminal outcome is durably appended to the campaign
//! [`crate::journal::Journal`] *before* the campaign moves on, so a
//! SIGKILLed supervisor loses at most the cells that were mid-flight.
//! Backoff is seeded-deterministic (splitmix64 over seed × cell key ×
//! attempt), so two runs of the same degraded campaign wait the same
//! schedule.
//!
//! The [`FarmOptions::crash_after_appends`] knob is the deterministic
//! stand-in for a supervisor SIGKILL used by the kill-at-every-append
//! resume tests: the campaign stops cold after the N-th journal append,
//! exactly as if the process had died there.

use crate::journal::{cell_key, Journal, JournalError, JournalRecord};
use crate::sweep::{
    describe_panic, run_cell, CellOutcome, CellReport, CellResult, CellSpec, SweepReport, SweepSpec,
};
use crate::worker::{read_result_file, CHAOS_ENV};
use memfwd_apps::Scale;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant, SystemTime};

/// Supervision policy for one campaign.
#[derive(Debug, Clone)]
pub struct FarmOptions {
    /// Concurrent cells (worker threads; each may own a worker process).
    pub jobs: usize,
    /// Maximum *retries* after the first attempt (so a cell runs at most
    /// `retries + 1` times).
    pub retries: u32,
    /// Base backoff before the first retry, in milliseconds; doubles per
    /// subsequent retry. `0` disables backoff sleeps (tests).
    pub backoff_ms: u64,
    /// Seed of the deterministic backoff jitter.
    pub backoff_seed: u64,
    /// No-progress deadline per worker attempt. A worker whose checkpoint
    /// has not advanced for this long is killed and the attempt counts as
    /// timed out. `None` disables the monitor.
    pub cell_timeout: Option<Duration>,
    /// Testing knob: stop the campaign cold after this many journal
    /// appends, as if the supervisor had been SIGKILLed there.
    pub crash_after_appends: Option<u64>,
    /// Cooperative stop flag (graceful drain). When it turns true,
    /// workers stop *claiming* new cells; cells already in flight run to
    /// their terminal outcome and are journaled before the campaign
    /// returns. Unlike a crash, nothing in flight is abandoned. `None`
    /// never stops.
    pub stop: Option<std::sync::Arc<AtomicBool>>,
}

impl Default for FarmOptions {
    fn default() -> FarmOptions {
        FarmOptions {
            jobs: 1,
            retries: 2,
            backoff_ms: 50,
            backoff_seed: 0x00C0_FFEE,
            cell_timeout: None,
            crash_after_appends: None,
            stop: None,
        }
    }
}

/// What one attempt at one cell produced.
#[derive(Debug, Clone)]
pub enum Attempt {
    /// The attempt completed with a validated result (boxed: a
    /// [`CellResult`] carries the full `RunStats` block and would dwarf
    /// the failure variants).
    Completed(Box<CellResult>),
    /// The attempt failed (panic, abort, nonzero exit, lost/corrupt
    /// result file, machine fault).
    Failed(String),
    /// The attempt exceeded the no-progress deadline and was killed.
    TimedOut(String),
}

/// Context handed to a [`CellRunner`] for one attempt.
#[derive(Debug, Clone, Copy)]
pub struct CellCtx {
    /// The cell to run.
    pub spec: CellSpec,
    /// Workload scale.
    pub scale: Scale,
    /// Cell index in [`SweepSpec::expand`] order (chaos targeting).
    pub index: usize,
    /// 0-based attempt number.
    pub attempt: u32,
    /// The cell's journal key.
    pub key: u64,
}

/// Executes one attempt of one cell. Implementations must be `Sync`: the
/// supervisor calls them from its worker-thread pool.
pub trait CellRunner: Sync {
    /// Runs one attempt. Must not unwind for *cell* failures — those are
    /// the `Failed`/`TimedOut` returns; an unwind here is a supervisor
    /// bug (still caught at the pool boundary, as `Failed`).
    fn run_cell(&self, ctx: &CellCtx) -> Attempt;
}

/// Runs cells on the supervisor's own threads with `catch_unwind`
/// isolation — no process boundary, so an abort or OOM still kills the
/// campaign, but panics and machine faults are contained. This is the
/// default when `--supervised` is off.
#[derive(Debug, Default)]
pub struct InProcessRunner;

impl CellRunner for InProcessRunner {
    fn run_cell(&self, ctx: &CellCtx) -> Attempt {
        match catch_unwind(AssertUnwindSafe(|| run_cell(ctx.scale, ctx.spec))) {
            Ok(Ok(result)) => Attempt::Completed(Box::new(result)),
            Ok(Err(e)) => Attempt::Failed(e),
            Err(payload) => Attempt::Failed(describe_panic(payload)),
        }
    }
}

/// Which cells a chaos campaign sabotages, by expansion index.
///
/// `panic` and `abort` fire only on attempt 0 — the cell recovers on
/// retry, modelling transient faults. `hang` fires on *every* attempt, so
/// the cell exhausts its budget and quarantines as
/// [`CellOutcome::TimedOut`], modelling a genuinely wedged configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Cells whose first attempt panics.
    pub panic: Vec<usize>,
    /// Cells whose first attempt aborts (SIGABRT).
    pub abort: Vec<usize>,
    /// Cells that hang on every attempt.
    pub hang: Vec<usize>,
}

impl ChaosSpec {
    /// Parses `panic@I,abort@J,hang@K` (any subset, repeats allowed).
    ///
    /// # Errors
    ///
    /// A description of the first malformed directive.
    pub fn parse(s: &str) -> Result<ChaosSpec, String> {
        let mut spec = ChaosSpec::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (kind, idx) = part
                .split_once('@')
                .ok_or_else(|| format!("chaos directive '{part}' is not kind@index"))?;
            let idx: usize = idx
                .parse()
                .map_err(|e| format!("chaos directive '{part}': {e}"))?;
            match kind {
                "panic" => spec.panic.push(idx),
                "abort" => spec.abort.push(idx),
                "hang" => spec.hang.push(idx),
                other => return Err(format!("unknown chaos kind '{other}'")),
            }
        }
        Ok(spec)
    }

    /// Whether no directives are present.
    pub fn is_empty(&self) -> bool {
        self.panic.is_empty() && self.abort.is_empty() && self.hang.is_empty()
    }

    /// The directive for one attempt of one cell, if any.
    pub fn directive(&self, index: usize, attempt: u32) -> Option<&'static str> {
        if self.hang.contains(&index) {
            return Some("hang");
        }
        if attempt == 0 {
            if self.panic.contains(&index) {
                return Some("panic");
            }
            if self.abort.contains(&index) {
                return Some("abort");
            }
        }
        None
    }
}

/// Runs each attempt in a freshly spawned worker process (the
/// `memfwd_sweep --worker-cell` mode of `exe`), with the sealed
/// result-file protocol and a no-progress deadline monitor.
#[derive(Debug)]
pub struct SubprocessRunner {
    /// The binary to re-exec (normally `std::env::current_exe()`).
    pub exe: PathBuf,
    /// Directory for result and checkpoint files.
    pub farm_dir: PathBuf,
    /// No-progress deadline per attempt.
    pub cell_timeout: Option<Duration>,
    /// Worker checkpoint cadence in demand references; `None` leaves the
    /// application default.
    pub ckpt_every: Option<u64>,
    /// Failure-injection plan for chaos campaigns.
    pub chaos: ChaosSpec,
}

/// How often the deadline monitor polls a worker.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Smoke => "smoke",
        Scale::Bench => "bench",
    }
}

impl SubprocessRunner {
    fn result_path(&self, key: u64) -> PathBuf {
        self.farm_dir.join(format!("cell-{key:016x}.result"))
    }

    /// The checkpoint path for a cell — shared across attempts, so a
    /// killed attempt's progress carries into the retry.
    pub fn ckpt_path(&self, key: u64) -> PathBuf {
        self.farm_dir.join(format!("cell-{key:016x}.ckpt"))
    }

    fn spawn_attempt(&self, ctx: &CellCtx) -> Result<std::process::Child, String> {
        let result_file = self.result_path(ctx.key);
        // A stale result file from a previous supervisor life must not be
        // mistaken for this attempt's output.
        std::fs::remove_file(&result_file).ok();
        let mut cmd = Command::new(&self.exe);
        cmd.arg("--worker-cell")
            .arg("--app")
            .arg(ctx.spec.app.name())
            .arg("--variant")
            .arg(ctx.spec.variant.name())
            .arg("--line-bytes")
            .arg(ctx.spec.line_bytes.to_string())
            .arg("--mem-latency")
            .arg(ctx.spec.mem_latency.to_string())
            .arg("--seeds")
            .arg(ctx.spec.seed.to_string())
            .arg("--scale")
            .arg(scale_name(ctx.scale))
            .arg("--cell-key")
            .arg(ctx.key.to_string())
            .arg("--result-file")
            .arg(&result_file)
            .arg("--ckpt-file")
            .arg(self.ckpt_path(ctx.key));
        if let Some(every) = self.ckpt_every {
            cmd.arg("--ckpt-every").arg(every.to_string());
        }
        cmd.stdout(Stdio::null()).stderr(Stdio::inherit());
        cmd.env_remove(CHAOS_ENV);
        if let Some(directive) = self.chaos.directive(ctx.index, ctx.attempt) {
            cmd.env(CHAOS_ENV, directive);
        }
        cmd.spawn().map_err(|e| format!("spawning worker: {e}"))
    }

    fn ckpt_mtime(&self, key: u64) -> Option<SystemTime> {
        std::fs::metadata(self.ckpt_path(key))
            .and_then(|m| m.modified())
            .ok()
    }
}

impl CellRunner for SubprocessRunner {
    fn run_cell(&self, ctx: &CellCtx) -> Attempt {
        let mut child = match self.spawn_attempt(ctx) {
            Ok(child) => child,
            Err(e) => return Attempt::Failed(e),
        };
        // No-progress deadline, PR-2 watchdog style: the clock rearms
        // whenever the worker's checkpoint advances, so a slow-but-alive
        // cell is never shot while a wedged one always is.
        let mut last_progress = Instant::now();
        let mut last_mtime = self.ckpt_mtime(ctx.key);
        let status = loop {
            match child.try_wait() {
                Ok(Some(status)) => break status,
                Ok(None) => {}
                Err(e) => {
                    child.kill().ok();
                    child.wait().ok();
                    return Attempt::Failed(format!("waiting for worker: {e}"));
                }
            }
            if let Some(deadline) = self.cell_timeout {
                let mtime = self.ckpt_mtime(ctx.key);
                if mtime != last_mtime {
                    last_mtime = mtime;
                    last_progress = Instant::now();
                }
                if last_progress.elapsed() > deadline {
                    child.kill().ok();
                    child.wait().ok();
                    return Attempt::TimedOut(format!(
                        "no progress for {deadline:?}; worker killed"
                    ));
                }
            }
            std::thread::sleep(POLL_INTERVAL);
        };
        if !status.success() {
            return Attempt::Failed(format!("worker exited with {status}"));
        }
        let result_file = self.result_path(ctx.key);
        match read_result_file(&result_file) {
            Ok(r) if r.key == ctx.key => {
                std::fs::remove_file(&result_file).ok();
                Attempt::Completed(Box::new(r.to_cell_result(ctx.spec)))
            }
            Ok(r) => Attempt::Failed(format!(
                "result file carries foreign cell key {:#018x} (expected {:#018x})",
                r.key, ctx.key
            )),
            Err(e) => Attempt::Failed(format!("worker exited 0 but result file is unusable: {e}")),
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic exponential backoff with jitter: attempt `n` (0-based
/// count of failures so far) waits in `[base·2ⁿ/2, base·2ⁿ]` ms, the
/// jitter drawn from splitmix64 over `(seed, key, n)`.
pub fn backoff_delay(seed: u64, key: u64, attempt: u32, base_ms: u64) -> Duration {
    if base_ms == 0 {
        return Duration::ZERO;
    }
    let exp = base_ms.saturating_mul(1u64 << attempt.min(6));
    let h = splitmix64(seed ^ key.rotate_left(17) ^ u64::from(attempt));
    let jitter = h % (exp / 2 + 1);
    Duration::from_millis(exp / 2 + jitter)
}

/// The per-cell slice of [`FarmOptions`]: how many times to retry a
/// failing cell and how to pace the retries.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum retries after the first attempt.
    pub retries: u32,
    /// Base backoff in milliseconds (0 disables the sleeps).
    pub backoff_ms: u64,
    /// Seed of the deterministic backoff jitter.
    pub backoff_seed: u64,
}

impl From<&FarmOptions> for RetryPolicy {
    fn from(o: &FarmOptions) -> RetryPolicy {
        RetryPolicy {
            retries: o.retries,
            backoff_ms: o.backoff_ms,
            backoff_seed: o.backoff_seed,
        }
    }
}

/// Drives one cell to a terminal [`CellOutcome`]: attempts through
/// `runner` (each attempt `catch_unwind`-guarded, so a runner bug is a
/// failed attempt, never an unwinding supervisor), retries with
/// seeded-deterministic exponential backoff up to the policy's budget,
/// then quarantines as [`CellOutcome::Poisoned`] or
/// [`CellOutcome::TimedOut`].
///
/// `abort` is polled between attempts; when it turns true the cell is
/// abandoned un-journaled (as a real SIGKILL would leave it) and `None`
/// is returned. This is the shared engine of [`run_campaign`] and the
/// `memfwd_served` job scheduler.
pub fn supervise_cell(
    mut ctx: CellCtx,
    policy: &RetryPolicy,
    runner: &dyn CellRunner,
    abort: &(dyn Fn() -> bool + Sync),
) -> Option<CellReport> {
    let mut attempts = 0u32;
    // The last failed attempt's description and whether it was a timeout
    // (decides Poisoned vs TimedOut).
    let mut last_failure: Option<(String, bool)> = None;
    loop {
        ctx.attempt = attempts;
        let attempt_result = match catch_unwind(AssertUnwindSafe(|| runner.run_cell(&ctx))) {
            Ok(a) => a,
            Err(payload) => Attempt::Failed(describe_panic(payload)),
        };
        attempts += 1;
        match attempt_result {
            Attempt::Completed(result) => {
                let outcome = if attempts == 1 {
                    CellOutcome::Ok
                } else {
                    CellOutcome::Retried(attempts - 1)
                };
                return Some(CellReport {
                    spec: ctx.spec,
                    outcome,
                    attempts,
                    sim: Some(*result),
                    error: last_failure.map(|(e, _)| e),
                });
            }
            Attempt::Failed(e) => last_failure = Some((e, false)),
            Attempt::TimedOut(e) => last_failure = Some((e, true)),
        }
        if attempts > policy.retries {
            let (error, was_timeout) =
                last_failure.expect("attempt loop always records its failure");
            let outcome = if was_timeout {
                CellOutcome::TimedOut
            } else {
                CellOutcome::Poisoned
            };
            return Some(CellReport {
                spec: ctx.spec,
                outcome,
                attempts,
                sim: None,
                error: Some(error),
            });
        }
        if abort() {
            return None;
        }
        std::thread::sleep(backoff_delay(
            policy.backoff_seed,
            ctx.key,
            attempts - 1,
            policy.backoff_ms,
        ));
    }
}

/// The outcome of one supervisor run over a campaign.
#[derive(Debug)]
pub struct CampaignRun {
    /// The completed report, in spec order — `None` if the run crashed
    /// (see [`FarmOptions::crash_after_appends`]).
    pub report: Option<SweepReport>,
    /// Cells restored from the journal without recomputation.
    pub from_journal: usize,
    /// Cells actually executed (attempted at least once) this run.
    pub executed: usize,
    /// Whether the run stopped at the deterministic crash point.
    pub crashed: bool,
    /// Whether the run ended early because [`FarmOptions::stop`] turned
    /// true (graceful drain): in-flight cells were journaled, unclaimed
    /// cells were left for a later resume.
    pub stopped: bool,
}

/// Runs (or resumes) a campaign: every cell of `spec` reaches a terminal
/// [`CellOutcome`], journaled cells are reused verbatim, and each new
/// terminal outcome is durably journaled the moment it is reached.
///
/// # Errors
///
/// [`JournalError`] if a journal append fails — without durability the
/// campaign's resume guarantee is void, so the run stops rather than
/// continue untracked.
pub fn run_campaign(
    spec: &SweepSpec,
    opts: &FarmOptions,
    runner: &dyn CellRunner,
    journal: &mut Journal,
) -> Result<CampaignRun, JournalError> {
    let cells = spec.expand();
    let jobs = opts.jobs.max(1);
    let workers = jobs.min(cells.len().max(1));
    let t0 = Instant::now();
    let next = AtomicUsize::new(0);
    let crashed = AtomicBool::new(false);
    let from_journal = AtomicUsize::new(0);
    let executed = AtomicUsize::new(0);
    let appends = AtomicUsize::new(0);
    // The journal is shared by every worker thread; appends serialize on
    // this lock (they are tiny next to a cell's simulation time).
    let journal = Mutex::new(journal);
    let (tx, rx) = mpsc::channel::<(usize, Result<CellReport, JournalError>)>();

    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let crashed = &crashed;
            let from_journal = &from_journal;
            let executed = &executed;
            let appends = &appends;
            let journal = &journal;
            let cells = &cells;
            s.spawn(move || loop {
                if crashed.load(Ordering::SeqCst) {
                    break;
                }
                if opts.stop.as_ref().is_some_and(|s| s.load(Ordering::SeqCst)) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let spec_i = cells[i];
                let key = cell_key(spec.scale, &spec_i);

                // Resume path: a journaled terminal outcome is reused
                // verbatim — zero recomputation.
                let journaled = {
                    let guard = journal.lock().expect("journal lock");
                    guard.get(key).cloned()
                };
                if let Some(rec) = journaled {
                    from_journal.fetch_add(1, Ordering::Relaxed);
                    if tx.send((i, Ok(rec.to_report(spec_i)))).is_err() {
                        break;
                    }
                    continue;
                }

                executed.fetch_add(1, Ordering::Relaxed);
                let ctx = CellCtx {
                    spec: spec_i,
                    scale: spec.scale,
                    index: i,
                    attempt: 0,
                    key,
                };
                // When the abort flag turns true the campaign is "dead";
                // the cell is abandoned un-journaled, as a real SIGKILL
                // would leave it.
                let report = match supervise_cell(ctx, &RetryPolicy::from(opts), runner, &|| {
                    crashed.load(Ordering::SeqCst)
                }) {
                    Some(report) => report,
                    None => return,
                };

                // Durably journal the terminal outcome before reporting
                // it. Everything after a crash point is discarded.
                let append = {
                    let mut guard = journal.lock().expect("journal lock");
                    if crashed.load(Ordering::SeqCst) {
                        return;
                    }
                    let r = guard.append(JournalRecord::from_report(spec.scale, &report));
                    if r.is_ok() {
                        let n = appends.fetch_add(1, Ordering::SeqCst) + 1;
                        if opts.crash_after_appends.is_some_and(|k| n as u64 >= k) {
                            crashed.store(true, Ordering::SeqCst);
                        }
                    }
                    r
                };
                let msg = append.map(|()| report);
                if tx.send((i, msg)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);

    let mut slots: Vec<Option<CellReport>> = vec![None; cells.len()];
    let mut first_err = None;
    for (i, r) in rx {
        match r {
            Ok(report) => slots[i] = Some(report),
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    let did_crash = crashed.load(Ordering::SeqCst);
    let did_stop = opts.stop.as_ref().is_some_and(|s| s.load(Ordering::SeqCst));
    let report = if did_crash || slots.iter().any(|s| s.is_none()) {
        None
    } else {
        Some(SweepReport {
            jobs,
            threads: crate::sweep::epoch_threads(),
            scale: spec.scale,
            cells: slots
                .into_iter()
                .map(|s| s.expect("checked above"))
                .collect(),
            host_wall_nanos: t0.elapsed().as_nanos() as u64,
            selftest_refs_per_second: None,
        })
    };
    Ok(CampaignRun {
        report,
        from_journal: from_journal.load(Ordering::Relaxed),
        executed: executed.load(Ordering::Relaxed),
        crashed: did_crash,
        stopped: did_stop,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_spec_parses_and_targets() {
        let c = ChaosSpec::parse("panic@1,abort@3,hang@5").expect("parse");
        assert_eq!(c.directive(1, 0), Some("panic"));
        assert_eq!(c.directive(1, 1), None, "panic is attempt-0 only");
        assert_eq!(c.directive(3, 0), Some("abort"));
        assert_eq!(c.directive(5, 0), Some("hang"));
        assert_eq!(c.directive(5, 2), Some("hang"), "hang fires every attempt");
        assert_eq!(c.directive(0, 0), None);
        assert!(ChaosSpec::parse("").expect("empty ok").is_empty());
        assert!(ChaosSpec::parse("explode@1").is_err());
        assert!(ChaosSpec::parse("panic").is_err());
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_exponential() {
        let a = backoff_delay(7, 99, 0, 40);
        assert_eq!(a, backoff_delay(7, 99, 0, 40), "same inputs, same delay");
        assert!(a >= Duration::from_millis(20) && a <= Duration::from_millis(40));
        let b = backoff_delay(7, 99, 3, 40);
        assert!(b >= Duration::from_millis(160) && b <= Duration::from_millis(320));
        assert_eq!(backoff_delay(7, 99, 0, 0), Duration::ZERO);
    }
}
