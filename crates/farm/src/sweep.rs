//! Declarative parallel sweeps: the engine behind the `memfwd_sweep` binary.
//!
//! A [`SweepSpec`] names the axes of a paper figure — applications ×
//! variants × line sizes × memory latencies × seeds — and expands into
//! independent simulator runs. [`run_sweep`] executes the cells on a
//! `std::thread` worker pool (workers steal the next unclaimed cell from a
//! shared atomic counter) and collects results **in spec order**, so the
//! report is byte-identical at any `--jobs` value: every cell is a fully
//! independent `Machine`, and only the `host_`-prefixed timing fields
//! depend on the host.
//!
//! Every cell carries a typed [`CellOutcome`]: a cell that panics or
//! faults is caught at the pool boundary and shipped as a
//! [`CellOutcome::Poisoned`] hole with its error text — it never unwinds
//! across the pool and never takes the other cells down. The supervised
//! campaign runner in [`crate::supervisor`] adds retry, out-of-process
//! isolation, and timeouts on top of the same report types.
//!
//! The report serializes to `BENCH_sweep.json` via [`SweepReport::to_json`];
//! [`strip_host_lines`] removes the host-timing lines and
//! [`strip_volatile_lines`] additionally removes outcome/attempt lines so
//! a degraded or resumed campaign can be diffed against a clean golden
//! run; [`validate_report`] checks the schema (see EXPERIMENTS.md for the
//! field-by-field description).

use crate::minijson::{json_escape, parse_json, Json};
use memfwd::RunStats;
use memfwd_apps::{run, App, RunConfig, Scale, Variant};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// Version stamped into every report; bump when the schema changes shape.
/// Version 2 added per-cell `outcome`/`attempts` fields and the campaign
/// `summary` line.
pub const SCHEMA_VERSION: u64 = 2;

/// The axes of a sweep. Cells are expanded in nested order — app, variant,
/// line bytes, memory latency, seed — which is also the order of the
/// report's `cells` array.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Applications to run.
    pub apps: Vec<App>,
    /// Layout variants per application.
    pub variants: Vec<Variant>,
    /// Cache line sizes in bytes (the Fig. 5/6 axis).
    pub line_bytes: Vec<u64>,
    /// Main-memory latencies in cycles (the Fig. 9 axis).
    pub mem_latency: Vec<u64>,
    /// Workload seeds.
    pub seeds: Vec<u64>,
    /// Workload scale for every cell.
    pub scale: Scale,
}

impl Default for SweepSpec {
    fn default() -> SweepSpec {
        SweepSpec {
            apps: App::ALL.to_vec(),
            variants: vec![Variant::Original, Variant::Optimized],
            line_bytes: vec![32],
            mem_latency: vec![75],
            seeds: vec![12345],
            scale: Scale::Smoke,
        }
    }
}

/// One fully specified simulator run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellSpec {
    /// Application.
    pub app: App,
    /// Layout variant.
    pub variant: Variant,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Main-memory latency in cycles.
    pub mem_latency: u64,
    /// Workload seed.
    pub seed: u64,
}

impl SweepSpec {
    /// Expands the axes into the ordered cell list.
    pub fn expand(&self) -> Vec<CellSpec> {
        let mut cells = Vec::new();
        for &app in &self.apps {
            for &variant in &self.variants {
                for &line_bytes in &self.line_bytes {
                    for &mem_latency in &self.mem_latency {
                        for &seed in &self.seeds {
                            cells.push(CellSpec {
                                app,
                                variant,
                                line_bytes,
                                mem_latency,
                                seed,
                            });
                        }
                    }
                }
            }
        }
        cells
    }
}

/// Result of one completed cell: the simulated outputs (deterministic)
/// plus host timing (not).
#[derive(Debug, Clone, Copy)]
pub struct CellResult {
    /// The cell that was run.
    pub spec: CellSpec,
    /// Layout-independent output digest.
    pub checksum: u64,
    /// Full simulator statistics.
    pub stats: RunStats,
    /// Demand references issued (loads + stores).
    pub refs: u64,
    /// Host nanoseconds spent simulating this cell.
    pub host_nanos: u64,
}

impl CellResult {
    /// Host-side simulation rate in demand references per second.
    pub fn refs_per_second(&self) -> f64 {
        if self.host_nanos == 0 {
            0.0
        } else {
            self.refs as f64 * 1e9 / self.host_nanos as f64
        }
    }
}

/// How a cell's campaign ended. `Ok` and `Retried` cells carry a
/// [`CellResult`]; `Poisoned` and `TimedOut` cells are typed holes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellOutcome {
    /// Completed on the first attempt.
    Ok,
    /// Completed after this many *failed* attempts.
    Retried(u32),
    /// Every attempt failed (panic, abort, machine fault, lost worker);
    /// the cell is quarantined.
    Poisoned,
    /// Every attempt exceeded the no-progress deadline and was killed.
    TimedOut,
}

impl CellOutcome {
    /// The report's stable outcome name.
    pub fn name(self) -> &'static str {
        match self {
            CellOutcome::Ok => "ok",
            CellOutcome::Retried(_) => "retried",
            CellOutcome::Poisoned => "poisoned",
            CellOutcome::TimedOut => "timed_out",
        }
    }

    /// Whether the cell produced a simulated result.
    pub fn is_completed(self) -> bool {
        matches!(self, CellOutcome::Ok | CellOutcome::Retried(_))
    }
}

/// One cell of a (possibly degraded) campaign report.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// The cell that was scheduled.
    pub spec: CellSpec,
    /// How the cell ended.
    pub outcome: CellOutcome,
    /// Total attempts made (>= 1).
    pub attempts: u32,
    /// The simulated result, present iff `outcome.is_completed()`.
    pub sim: Option<CellResult>,
    /// The last failure's description, for quarantined cells and as an
    /// audit trail on retried ones.
    pub error: Option<String>,
}

impl CellReport {
    /// A first-attempt success.
    pub fn completed(result: CellResult) -> CellReport {
        CellReport {
            spec: result.spec,
            outcome: CellOutcome::Ok,
            attempts: 1,
            sim: Some(result),
            error: None,
        }
    }

    /// The simulated result of a completed cell.
    pub fn sim(&self) -> Option<&CellResult> {
        self.sim.as_ref()
    }
}

/// Per-outcome cell counts of a campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignSummary {
    /// Cells completed on the first attempt.
    pub ok: usize,
    /// Cells completed after at least one retry.
    pub retried: usize,
    /// Cells quarantined after exhausting retries.
    pub poisoned: usize,
    /// Cells killed by the no-progress deadline on every attempt.
    pub timed_out: usize,
}

impl CampaignSummary {
    /// Whether every cell completed (the campaign is not degraded).
    pub fn is_clean(&self) -> bool {
        self.poisoned == 0 && self.timed_out == 0
    }
}

/// A completed sweep, cells in spec order.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Worker count the sweep ran with.
    pub jobs: usize,
    /// Per-cell epoch worker count (`SimConfig::epoch_threads`) the cells
    /// ran with. Host-tuning only — simulated results are bit-identical at
    /// any value — so it serializes as a `host_`-prefixed field.
    pub threads: usize,
    /// Scale every cell ran at.
    pub scale: Scale,
    /// Per-cell results, in [`SweepSpec::expand`] order.
    pub cells: Vec<CellReport>,
    /// Host wall-clock for the whole sweep, in nanoseconds.
    pub host_wall_nanos: u64,
    /// Refs-per-second of the single-run selftest, when one was taken.
    pub selftest_refs_per_second: Option<f64>,
}

impl SweepReport {
    /// Tallies the per-outcome cell counts.
    pub fn summary(&self) -> CampaignSummary {
        let mut s = CampaignSummary::default();
        for c in &self.cells {
            match c.outcome {
                CellOutcome::Ok => s.ok += 1,
                CellOutcome::Retried(_) => s.retried += 1,
                CellOutcome::Poisoned => s.poisoned += 1,
                CellOutcome::TimedOut => s.timed_out += 1,
            }
        }
        s
    }
}

/// Renders a caught panic payload as an error string, preferring the typed
/// [`memfwd::MachineFault`] the faulting thread recorded (the apps' panic
/// protocol) over the raw payload text.
pub fn describe_panic(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(fault) = memfwd::take_last_fault() {
        return format!("machine fault: {fault}");
    }
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: (non-string payload)".to_string()
    }
}

/// When set, every cell (and the selftest probe) runs with
/// `SimConfig::scalar_path`: the fully general one-reference-at-a-time
/// demand path, the batched hot path's escape hatch and differential
/// baseline. Process-wide because the worker pool shares one spec.
static SCALAR_PATH: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Forces (or restores) the scalar demand path for subsequent cells; the
/// `--scalar` flag of `memfwd_sweep`. Simulated results are bit-identical
/// either way — only host speed changes.
pub fn set_scalar_path(on: bool) {
    SCALAR_PATH.store(on, Ordering::Relaxed);
}

/// Epoch worker count (`SimConfig::epoch_threads`) for subsequent cells;
/// the `--threads` flag of `memfwd_sweep`/`memfwd_sim`. 0 (the default)
/// runs epochs serially in the calling thread. Process-wide, like
/// [`set_scalar_path`].
static EPOCH_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the epoch worker count for subsequent cells. Simulated results are
/// bit-identical at every count ≥ 1 (and differ from 0 only in the
/// `RunStats::epoch` bookkeeping block); only host speed changes.
pub fn set_epoch_threads(threads: usize) {
    EPOCH_THREADS.store(threads, Ordering::Relaxed);
}

/// The epoch worker count subsequent cells will run with.
pub fn epoch_threads() -> usize {
    EPOCH_THREADS.load(Ordering::Relaxed)
}

/// Runs one cell in-process, mapping a machine fault to a typed error
/// string instead of panicking. Panics from simulator bugs still unwind;
/// the worker pool catches those at its boundary.
pub fn run_cell(scale: Scale, c: CellSpec) -> Result<CellResult, String> {
    let mut cfg = RunConfig::new(c.variant);
    cfg.scale = scale;
    cfg.seed = c.seed;
    cfg.sim = cfg.sim.with_line_bytes(c.line_bytes);
    cfg.sim.hierarchy.mem_latency = c.mem_latency;
    cfg.sim.scalar_path = SCALAR_PATH.load(Ordering::Relaxed);
    cfg.sim.epoch_threads = EPOCH_THREADS.load(Ordering::Relaxed);
    let t = Instant::now();
    let out = run(c.app, &cfg).map_err(|fault| format!("machine fault: {fault}"))?;
    let host_nanos = t.elapsed().as_nanos() as u64;
    Ok(CellResult {
        spec: c,
        checksum: out.checksum,
        stats: out.stats,
        refs: out.stats.fwd.loads + out.stats.fwd.stores,
        host_nanos,
    })
}

/// Runs every cell of `spec` on `jobs` worker threads with the stock
/// in-process cell runner. See [`run_sweep_with`].
pub fn run_sweep(spec: &SweepSpec, jobs: usize) -> SweepReport {
    run_sweep_with(spec, jobs, &|scale, c| run_cell(scale, c))
}

/// Runs every cell of `spec` on `jobs` worker threads.
///
/// Workers claim the next unclaimed cell index from a shared atomic counter
/// (work stealing at cell granularity: a worker that finishes early keeps
/// claiming while slower cells run elsewhere), so wall-clock scales with
/// `jobs` while the report content stays identical.
///
/// Each `runner` call is wrapped in `catch_unwind`: a panicking or failing
/// cell becomes a typed [`CellOutcome::Poisoned`] entry in the report
/// instead of unwinding across the pool and poisoning the whole sweep.
pub fn run_sweep_with(
    spec: &SweepSpec,
    jobs: usize,
    runner: &(dyn Fn(Scale, CellSpec) -> Result<CellResult, String> + Sync),
) -> SweepReport {
    let cells = spec.expand();
    let jobs = jobs.max(1);
    let workers = jobs.min(cells.len().max(1));
    let t0 = Instant::now();
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, CellReport)>();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let cells = &cells;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let spec_i = cells[i];
                let r = match catch_unwind(AssertUnwindSafe(|| runner(spec.scale, spec_i))) {
                    Ok(Ok(result)) => CellReport::completed(result),
                    Ok(Err(error)) => CellReport {
                        spec: spec_i,
                        outcome: CellOutcome::Poisoned,
                        attempts: 1,
                        sim: None,
                        error: Some(error),
                    },
                    Err(payload) => CellReport {
                        spec: spec_i,
                        outcome: CellOutcome::Poisoned,
                        attempts: 1,
                        sim: None,
                        error: Some(describe_panic(payload)),
                    },
                };
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<CellReport>> = vec![None; cells.len()];
    for (i, r) in rx {
        slots[i] = Some(r);
    }
    SweepReport {
        jobs,
        threads: epoch_threads(),
        scale: spec.scale,
        cells: slots
            .into_iter()
            .map(|s| s.expect("every cell was claimed exactly once"))
            .collect(),
        host_wall_nanos: t0.elapsed().as_nanos() as u64,
        selftest_refs_per_second: None,
    }
}

/// The fixed single cell measured by `--selftest`: `health`, optimized
/// layout, default geometry — the repo's refs-per-second trajectory probe.
pub const SELFTEST_CELL: CellSpec = CellSpec {
    app: App::Health,
    variant: Variant::Optimized,
    line_bytes: 32,
    mem_latency: 75,
    seed: 12345,
};

/// Runs the selftest cell at `scale` and returns its result (host timing
/// included); the caller records [`CellResult::refs_per_second`] in the
/// report.
///
/// # Panics
///
/// If the probe cell faults — the probe is a known-good configuration, so
/// a fault there is a simulator bug.
pub fn selftest(scale: Scale) -> CellResult {
    match run_cell(scale, SELFTEST_CELL) {
        Ok(r) => r,
        Err(e) => panic!("selftest cell failed: {e}"),
    }
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Smoke => "smoke",
        Scale::Bench => "bench",
    }
}

impl SweepReport {
    /// Serializes the report as pretty-printed JSON, one key per line.
    ///
    /// Every host-dependent field is prefixed `host_`; everything except
    /// the campaign bookkeeping (`outcome`, `attempts`, `error`,
    /// `summary`) is a pure function of the sweep spec, so two reports
    /// from the same spec agree exactly after [`strip_host_lines`]
    /// regardless of `jobs`, and a recovered chaos campaign agrees with a
    /// clean run after [`strip_volatile_lines`].
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
        out.push_str(&format!("  \"scale\": \"{}\",\n", scale_name(self.scale)));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!("  \"host_threads\": {},\n", self.threads));
        out.push_str(&format!(
            "  \"host_wall_nanos\": {},\n",
            self.host_wall_nanos
        ));
        if let Some(rps) = self.selftest_refs_per_second {
            out.push_str(&format!("  \"host_selftest_refs_per_second\": {rps:.1},\n"));
        }
        let s = self.summary();
        out.push_str(&format!(
            "  \"summary\": {{ \"ok\": {}, \"retried\": {}, \"poisoned\": {}, \"timed_out\": {} }},\n",
            s.ok, s.retried, s.poisoned, s.timed_out
        ));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"app\": \"{}\",\n", c.spec.app.name()));
            out.push_str(&format!(
                "      \"variant\": \"{}\",\n",
                c.spec.variant.name()
            ));
            out.push_str(&format!("      \"line_bytes\": {},\n", c.spec.line_bytes));
            out.push_str(&format!("      \"mem_latency\": {},\n", c.spec.mem_latency));
            out.push_str(&format!("      \"seed\": {},\n", c.spec.seed));
            out.push_str(&format!("      \"outcome\": \"{}\",\n", c.outcome.name()));
            // The last key of the cell object must not have a trailing
            // comma; collect the tail keys and join.
            let mut tail: Vec<String> = Vec::new();
            tail.push(format!("      \"attempts\": {}", c.attempts));
            if let Some(err) = &c.error {
                tail.push(format!("      \"error\": \"{}\"", json_escape(err)));
            }
            if let Some(r) = &c.sim {
                tail.push(format!("      \"checksum\": \"{:#018x}\"", r.checksum));
                tail.push(format!("      \"refs\": {}", r.refs));
                tail.push(format!("      \"cycles\": {}", r.stats.cycles()));
                // The epoch block records how the host *executed* the cell
                // (speculation bookkeeping), not what it computed — like
                // `jobs`, it may differ between an engine-off worker and an
                // engine-on CLI run, so it rides on a stripped `host_` line
                // while the deterministic stats stay engine-agnostic.
                tail.push(format!(
                    "      \"stats\": \"{}\"",
                    json_escape(&format!("{:?}", r.stats.sans_epoch()))
                ));
                tail.push(format!(
                    "      \"host_epoch\": \"{}\"",
                    json_escape(&format!("{:?}", r.stats.epoch))
                ));
                tail.push(format!(
                    "      \"host_refs_per_second\": {:.1}",
                    r.refs_per_second()
                ));
                tail.push(format!("      \"host_nanos\": {}", r.host_nanos));
            }
            out.push_str(&tail.join(",\n"));
            out.push('\n');
            out.push_str(if i + 1 == self.cells.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

/// Removes every line carrying a `host_`-prefixed key, plus the `jobs`
/// line (how the sweep was parallelized, not what it computed), leaving
/// only the deterministic content. The result is for *comparison* (string
/// equality between two stripped reports), not for parsing.
pub fn strip_host_lines(report: &str) -> String {
    report
        .lines()
        .filter(|l| {
            let l = l.trim_start();
            !l.starts_with("\"host_") && !l.starts_with("\"jobs\"")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// [`strip_host_lines`] plus the campaign-bookkeeping lines (`outcome`,
/// `attempts`, `error`, `summary`): what is left is a pure function of the
/// sweep spec for every *completed* cell, so a chaos campaign in which
/// every cell eventually completed compares equal to a clean golden run.
pub fn strip_volatile_lines(report: &str) -> String {
    strip_host_lines(report)
        .lines()
        .filter(|l| {
            let l = l.trim_start();
            !l.starts_with("\"outcome\"")
                && !l.starts_with("\"attempts\"")
                && !l.starts_with("\"error\"")
                && !l.starts_with("\"summary\"")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

// ---------------------------------------------------------------------
// Schema validation: a minimal JSON parser (no crates.io here) plus the
// BENCH_sweep.json shape checks used by CI.
// ---------------------------------------------------------------------

fn require<'a>(obj: &'a Json, key: &str, what: &str) -> Result<&'a Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("{what}: missing required key \"{key}\""))
}

/// Validates that `text` is a well-formed `BENCH_sweep.json` report:
/// parseable JSON with the documented top-level and per-cell keys, a known
/// schema version, a campaign summary, a typed outcome per cell, and —
/// for completed cells — a non-empty hex checksum and statistics block.
///
/// # Errors
///
/// A human-readable description of the first problem found.
pub fn validate_report(text: &str) -> Result<(), String> {
    let root = parse_json(text)?;
    let version = require(&root, "schema_version", "report")?;
    if *version != Json::Num(SCHEMA_VERSION as f64) {
        return Err(format!(
            "report: unsupported schema_version (expected {SCHEMA_VERSION})"
        ));
    }
    match require(&root, "scale", "report")? {
        Json::Str(s) if s == "smoke" || s == "bench" => {}
        _ => return Err("report: \"scale\" must be \"smoke\" or \"bench\"".into()),
    }
    match require(&root, "jobs", "report")? {
        Json::Num(n) if *n >= 1.0 => {}
        _ => return Err("report: \"jobs\" must be a number >= 1".into()),
    }
    require(&root, "host_wall_nanos", "report")?;
    let summary = require(&root, "summary", "report")?;
    for key in ["ok", "retried", "poisoned", "timed_out"] {
        match require(summary, key, "summary")? {
            Json::Num(n) if *n >= 0.0 => {}
            _ => return Err(format!("summary: \"{key}\" must be a number >= 0")),
        }
    }
    let cells = match require(&root, "cells", "report")? {
        Json::Arr(cells) => cells,
        _ => return Err("report: \"cells\" must be an array".into()),
    };
    for (i, cell) in cells.iter().enumerate() {
        let what = format!("cell {i}");
        match require(cell, "app", &what)? {
            Json::Str(name) if App::from_name(name).is_some() => {}
            _ => return Err(format!("{what}: \"app\" is not a known application")),
        }
        match require(cell, "variant", &what)? {
            Json::Str(name) if Variant::from_name(name).is_some() => {}
            _ => return Err(format!("{what}: \"variant\" is not a known variant")),
        }
        for key in ["line_bytes", "mem_latency", "seed"] {
            match require(cell, key, &what)? {
                Json::Num(_) => {}
                _ => return Err(format!("{what}: \"{key}\" must be a number")),
            }
        }
        let completed = match require(cell, "outcome", &what)? {
            Json::Str(s) if s == "ok" || s == "retried" => true,
            Json::Str(s) if s == "poisoned" || s == "timed_out" => false,
            _ => {
                return Err(format!(
                    "{what}: \"outcome\" must be ok|retried|poisoned|timed_out"
                ))
            }
        };
        match require(cell, "attempts", &what)? {
            Json::Num(n) if *n >= 1.0 => {}
            _ => return Err(format!("{what}: \"attempts\" must be a number >= 1")),
        }
        if !completed {
            match require(cell, "error", &what)? {
                Json::Str(_) => {}
                _ => return Err(format!("{what}: a failed cell needs an \"error\" string")),
            }
            continue;
        }
        for key in ["refs", "cycles"] {
            match require(cell, key, &what)? {
                Json::Num(_) => {}
                _ => return Err(format!("{what}: \"{key}\" must be a number")),
            }
        }
        match require(cell, "checksum", &what)? {
            Json::Str(s)
                if s.starts_with("0x")
                    && s.len() == 18
                    && s[2..].bytes().all(|b| b.is_ascii_hexdigit()) => {}
            _ => {
                return Err(format!(
                    "{what}: \"checksum\" must be an 0x 16-digit hex string"
                ))
            }
        }
        match require(cell, "stats", &what)? {
            Json::Str(s) if s.starts_with("RunStats") => {}
            _ => return Err(format!("{what}: \"stats\" must be a RunStats debug string")),
        }
        require(cell, "host_nanos", &what)?;
        require(cell, "host_refs_per_second", &what)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            apps: vec![App::Vis, App::Mst],
            variants: vec![Variant::Original, Variant::Optimized],
            line_bytes: vec![32],
            mem_latency: vec![75],
            seeds: vec![12345],
            scale: Scale::Smoke,
        }
    }

    #[test]
    fn expand_order_is_nested() {
        let cells = tiny_spec().expand();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].app, App::Vis);
        assert_eq!(cells[0].variant, Variant::Original);
        assert_eq!(cells[1].variant, Variant::Optimized);
        assert_eq!(cells[2].app, App::Mst);
    }

    #[test]
    fn sweep_is_deterministic_across_jobs() {
        let spec = tiny_spec();
        let a = run_sweep(&spec, 1);
        let b = run_sweep(&spec, 4);
        assert_eq!(
            strip_host_lines(&a.to_json()),
            strip_host_lines(&b.to_json())
        );
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.outcome, CellOutcome::Ok);
            let (x, y) = (x.sim().expect("completed"), y.sim().expect("completed"));
            assert_eq!(x.checksum, y.checksum);
            assert_eq!(x.stats, y.stats);
        }
    }

    #[test]
    fn report_validates_and_strip_removes_only_host_lines() {
        let mut report = run_sweep(&tiny_spec(), 2);
        report.selftest_refs_per_second = Some(123.4);
        let json = report.to_json();
        validate_report(&json).expect("valid schema");
        let stripped = strip_host_lines(&json);
        assert!(!stripped.contains("host_"));
        assert!(stripped.contains("\"checksum\""));
        assert!(stripped.contains("\"stats\""));
        assert!(stripped.contains("\"outcome\""));
        let volatile = strip_volatile_lines(&json);
        assert!(!volatile.contains("\"outcome\""));
        assert!(!volatile.contains("\"summary\""));
        assert!(volatile.contains("\"checksum\""));
    }

    #[test]
    fn panicking_cell_is_a_typed_hole_not_a_poisoned_sweep() {
        let spec = tiny_spec();
        let poison_target = spec.expand()[1];
        let report = run_sweep_with(&spec, 2, &move |scale, c| {
            if c == poison_target {
                panic!("injected cell panic");
            }
            run_cell(scale, c)
        });
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.cells[1].outcome, CellOutcome::Poisoned);
        assert!(report.cells[1].sim.is_none());
        assert!(
            report.cells[1]
                .error
                .as_deref()
                .is_some_and(|e| e.contains("injected cell panic")),
            "{:?}",
            report.cells[1].error
        );
        // Every other cell completed normally and the report still
        // serializes and validates — graceful degradation.
        for (i, c) in report.cells.iter().enumerate() {
            if i != 1 {
                assert_eq!(c.outcome, CellOutcome::Ok, "cell {i}");
                assert!(c.sim.is_some());
            }
        }
        let json = report.to_json();
        validate_report(&json).expect("degraded report still validates");
        assert_eq!(report.summary().poisoned, 1);
        assert!(!report.summary().is_clean());
    }

    #[test]
    fn failing_cell_error_is_preserved() {
        let spec = SweepSpec {
            apps: vec![App::Vis],
            variants: vec![Variant::Original],
            ..tiny_spec()
        };
        let report = run_sweep_with(&spec, 1, &|_, _| Err("typed failure".to_string()));
        assert_eq!(report.cells[0].outcome, CellOutcome::Poisoned);
        assert_eq!(report.cells[0].error.as_deref(), Some("typed failure"));
    }

    #[test]
    fn validator_rejects_garbage_and_missing_keys() {
        assert!(validate_report("not json").is_err());
        assert!(validate_report("{}").is_err());
        let bad_version = format!("{{\"schema_version\": {}}}", SCHEMA_VERSION + 1);
        assert!(validate_report(&bad_version).is_err());
        // A structurally valid report with a corrupted checksum fails.
        let report = run_sweep(
            &SweepSpec {
                apps: vec![App::Vis],
                variants: vec![Variant::Original],
                ..tiny_spec()
            },
            1,
        );
        let json = report.to_json().replace("\"0x", "\"zz");
        assert!(validate_report(&json).is_err());
        // A failed cell without an error string fails validation.
        let json = report
            .to_json()
            .replace("\"outcome\": \"ok\"", "\"outcome\": \"poisoned\"");
        assert!(validate_report(&json).is_err());
    }

    #[test]
    fn selftest_measures_the_probe_cell() {
        let r = selftest(Scale::Smoke);
        assert_eq!(r.spec, SELFTEST_CELL);
        assert!(r.refs > 0);
        assert!(r.refs_per_second() > 0.0);
    }
}
