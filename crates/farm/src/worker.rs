//! The out-of-process worker: one cell per process.
//!
//! The supervisor re-executes the `memfwd_sweep` binary in its hidden
//! `--worker-cell` mode, which lands in [`run_worker_cell`]. The worker
//! runs exactly one grid cell and hands its result back through a sealed,
//! checksummed *result file* (same container discipline as snapshots and
//! the journal, magic `MFWDCELL`), written atomically next to the cell's
//! checkpoint. The process boundary is the isolation mechanism: a panic,
//! abort, OOM kill, or SIGKILL takes down this process only, and the
//! supervisor sees a missing/invalid result file plus a nonzero (or
//! signal) exit status — never a poisoned campaign.
//!
//! Long cells are crash-resumable: when the supervisor passes a
//! checkpoint path, the worker periodically writes PR-2 machine snapshots
//! there, and a *re-spawned* worker for the same cell first validates the
//! leftover image up front with [`memfwd::check_snapshot_config`] and
//! resumes from it. A corrupt or config-skewed leftover is deleted and
//! the cell restarts from zero — degraded to slow, never to wrong.
//!
//! Chaos injection for the test suite and the CI chaos job is driven by
//! the `MEMFWD_FARM_CHAOS` environment variable, set per-attempt by the
//! supervisor: `panic` unwinds, `abort` dies by SIGABRT, `hang` spins
//! forever (exercising the no-progress deadline).

use crate::journal::{fnv1a64, JournalError};
use crate::sweep::{CellResult, CellSpec};
use memfwd::RunStats;
use memfwd_apps::{run_ck, Checkpointer, CkOutcome, RunConfig, Scale};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Environment variable carrying a chaos directive for this worker
/// process: `panic`, `abort`, or `hang`.
pub const CHAOS_ENV: &str = "MEMFWD_FARM_CHAOS";

/// Leading magic of a worker result file.
pub const RESULT_MAGIC: [u8; 8] = *b"MFWDCELL";

/// Result-file format version. Version 2 extended the embedded `RunStats`
/// codec with the epoch-execution block.
pub const RESULT_VERSION: u32 = 2;

const HEADER_BYTES: usize = 28;

/// Everything a worker process needs to run its one cell.
#[derive(Debug, Clone)]
pub struct WorkerArgs {
    /// The cell to run.
    pub spec: CellSpec,
    /// Workload scale.
    pub scale: Scale,
    /// The cell's journal key, echoed into the result file so the
    /// supervisor can detect a result file from a stale or foreign cell.
    pub key: u64,
    /// Where to write the sealed result on success.
    pub result_file: PathBuf,
    /// Checkpoint image path; enables periodic snapshots and resume.
    pub ckpt_file: Option<PathBuf>,
    /// Checkpoint cadence in demand references.
    pub ckpt_every: Option<u64>,
}

/// Parses a worker process's single-cell arguments (everything after the
/// hidden `--worker-cell` flag). Shared by every binary that re-execs
/// itself as a farm worker (`memfwd_sweep`, `memfwd_served`); flags reuse
/// the sweep-mode names but take exactly one value each.
///
/// # Errors
///
/// A description of the first malformed or missing argument.
pub fn parse_worker_args(mut args: impl Iterator<Item = String>) -> Result<WorkerArgs, String> {
    use memfwd_apps::{App, Variant};
    let mut app = None;
    let mut variant = None;
    let mut line_bytes = 32u64;
    let mut mem_latency = 75u64;
    let mut seed = 12345u64;
    let mut scale = Scale::Smoke;
    let mut key = None;
    let mut result_file = None;
    let mut ckpt_file = None;
    let mut ckpt_every = None;
    let next_val = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--app" => {
                let v = next_val(&mut args, "--app")?;
                app = Some(App::from_name(&v).ok_or_else(|| format!("unknown app '{v}'"))?);
            }
            "--variant" => {
                let v = next_val(&mut args, "--variant")?;
                variant =
                    Some(Variant::from_name(&v).ok_or_else(|| format!("unknown variant '{v}'"))?);
            }
            "--line-bytes" => {
                line_bytes = next_val(&mut args, "--line-bytes")?
                    .parse()
                    .map_err(|e| format!("--line-bytes: {e}"))?;
            }
            "--mem-latency" => {
                mem_latency = next_val(&mut args, "--mem-latency")?
                    .parse()
                    .map_err(|e| format!("--mem-latency: {e}"))?;
            }
            "--seeds" => {
                seed = next_val(&mut args, "--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?;
            }
            "--scale" => {
                scale = match next_val(&mut args, "--scale")?.as_str() {
                    "smoke" => Scale::Smoke,
                    "bench" => Scale::Bench,
                    other => return Err(format!("unknown scale '{other}'")),
                };
            }
            "--cell-key" => {
                key = Some(
                    next_val(&mut args, "--cell-key")?
                        .parse()
                        .map_err(|e| format!("--cell-key: {e}"))?,
                );
            }
            "--result-file" => {
                result_file = Some(PathBuf::from(next_val(&mut args, "--result-file")?));
            }
            "--ckpt-file" => {
                ckpt_file = Some(PathBuf::from(next_val(&mut args, "--ckpt-file")?));
            }
            "--ckpt-every" => {
                ckpt_every = Some(
                    next_val(&mut args, "--ckpt-every")?
                        .parse()
                        .map_err(|e| format!("--ckpt-every: {e}"))?,
                );
            }
            other => return Err(format!("worker mode: unknown option '{other}'")),
        }
    }
    let spec = CellSpec {
        app: app.ok_or("worker mode: --app is required")?,
        variant: variant.ok_or("worker mode: --variant is required")?,
        line_bytes,
        mem_latency,
        seed,
    };
    let key = key.unwrap_or_else(|| crate::journal::cell_key(scale, &spec));
    Ok(WorkerArgs {
        spec,
        scale,
        key,
        result_file: result_file.ok_or("worker mode: --result-file is required")?,
        ckpt_file,
        ckpt_every,
    })
}

/// The payload of a sealed result file.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResultFile {
    /// The cell's journal key.
    pub key: u64,
    /// Output digest.
    pub checksum: u64,
    /// Demand references issued.
    pub refs: u64,
    /// Host nanoseconds this worker spent simulating.
    pub host_nanos: u64,
    /// Full statistics block.
    pub stats: RunStats,
}

/// Seals and atomically writes a result file.
///
/// # Errors
///
/// [`JournalError::Io`] if the write or rename fails.
pub fn write_result_file(path: &Path, r: &CellResultFile) -> Result<(), JournalError> {
    let mut enc = memfwd_tagmem::SnapEncoder::new();
    enc.u64(r.key);
    enc.u64(r.checksum);
    enc.u64(r.refs);
    enc.u64(r.host_nanos);
    r.stats.snapshot_encode(&mut enc);
    let payload = enc.into_bytes();
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
    out.extend_from_slice(&RESULT_MAGIC);
    out.extend_from_slice(&RESULT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, &out).map_err(|e| JournalError::Io(e.kind()))?;
    std::fs::rename(&tmp, path).map_err(|e| JournalError::Io(e.kind()))
}

/// Reads and validates a sealed result file.
///
/// # Errors
///
/// Any [`JournalError`]: a missing, truncated, bit-flipped, or
/// version-skewed result file is rejected wholesale, and the supervisor
/// treats the attempt as failed.
pub fn read_result_file(path: &Path) -> Result<CellResultFile, JournalError> {
    let bytes = std::fs::read(path).map_err(|e| JournalError::Io(e.kind()))?;
    if bytes.len() < HEADER_BYTES {
        return Err(JournalError::Truncated);
    }
    if bytes[0..8] != RESULT_MAGIC {
        return Err(JournalError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != RESULT_VERSION {
        return Err(JournalError::BadVersion { found: version });
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let payload = &bytes[HEADER_BYTES..];
    if (payload.len() as u64) < len {
        return Err(JournalError::Truncated);
    }
    if (payload.len() as u64) > len {
        return Err(JournalError::BadValue);
    }
    let checksum = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
    if fnv1a64(payload) != checksum {
        return Err(JournalError::BadChecksum);
    }
    let mut dec = memfwd_tagmem::SnapDecoder::new(payload);
    let r = CellResultFile {
        key: dec.u64()?,
        checksum: dec.u64()?,
        refs: dec.u64()?,
        host_nanos: dec.u64()?,
        stats: RunStats::snapshot_decode(&mut dec)?,
    };
    if !dec.is_exhausted() {
        return Err(JournalError::BadValue);
    }
    Ok(r)
}

impl CellResultFile {
    /// Reconstitutes the supervisor-side [`CellResult`] for `spec`.
    pub fn to_cell_result(&self, spec: CellSpec) -> CellResult {
        CellResult {
            spec,
            checksum: self.checksum,
            stats: self.stats,
            refs: self.refs,
            host_nanos: self.host_nanos,
        }
    }
}

/// Obeys a chaos directive, if one is set for this process. `panic` and
/// `abort` never return; `hang` spins in 50 ms sleeps until the
/// supervisor's deadline monitor kills the process.
fn obey_chaos() {
    match std::env::var(CHAOS_ENV).as_deref() {
        Ok("panic") => panic!("chaos: injected worker panic"),
        Ok("abort") => std::process::abort(),
        Ok("hang") => loop {
            std::thread::sleep(std::time::Duration::from_millis(50));
        },
        _ => {}
    }
}

/// Runs one cell to completion in this process and writes the sealed
/// result file. Returns the process exit code: 0 on success, the typed
/// [`memfwd::MachineFault::exit_code`] on a simulated fault, 1 on a
/// result-file write failure.
///
/// A leftover checkpoint image (from a previous attempt of the same cell
/// that was killed mid-flight) is validated up front and resumed from;
/// corrupt or config-skewed leftovers are deleted and the cell restarts
/// fresh.
pub fn run_worker_cell(args: &WorkerArgs) -> i32 {
    obey_chaos();
    let c = args.spec;
    let mut cfg = RunConfig::new(c.variant);
    cfg.scale = args.scale;
    cfg.seed = c.seed;
    cfg.sim = cfg.sim.with_line_bytes(c.line_bytes);
    cfg.sim.hierarchy.mem_latency = c.mem_latency;

    let mut ck = match &args.ckpt_file {
        Some(path) => {
            let mut ck = Checkpointer::to_file(path.clone());
            if let Some(every) = args.ckpt_every {
                ck = ck.with_every(every);
            }
            if path.exists() {
                match memfwd::read_snapshot_file(path)
                    .and_then(|img| memfwd::check_snapshot_config(&img, &cfg.sim).map(|()| img))
                {
                    Ok(img) => {
                        eprintln!("worker: resuming cell from checkpoint {}", path.display());
                        ck = ck.resume_from(img);
                    }
                    Err(e) => {
                        eprintln!(
                            "worker: discarding unusable checkpoint {}: {e}",
                            path.display()
                        );
                        std::fs::remove_file(path).ok();
                    }
                }
            }
            ck
        }
        None => Checkpointer::disabled(),
    };

    let t = Instant::now();
    let out = match run_ck(c.app, &cfg, &mut ck) {
        Ok(CkOutcome::Done(out)) => out,
        Ok(CkOutcome::Stopped) => {
            // Unreachable with a to-file checkpointer, but keep it total.
            eprintln!("worker: checkpointer stopped a to-file run");
            return 1;
        }
        Err(fault) => {
            eprintln!("worker: cell faulted: {fault}");
            return fault.exit_code();
        }
    };
    let host_nanos = t.elapsed().as_nanos() as u64;
    let result = CellResultFile {
        key: args.key,
        checksum: out.checksum,
        refs: out.stats.fwd.loads + out.stats.fwd.stores,
        host_nanos,
        stats: out.stats,
    };
    if let Err(e) = write_result_file(&args.result_file, &result) {
        eprintln!(
            "worker: writing result file {}: {e}",
            args.result_file.display()
        );
        return 1;
    }
    // The checkpoint image has served its purpose; remove it so a future
    // attempt of a *different* campaign reusing the farm dir cannot trip
    // over it (it would be rejected by the fingerprint check anyway).
    if let Some(path) = &args.ckpt_file {
        std::fs::remove_file(path).ok();
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::cell_key;
    use memfwd_apps::{App, Variant};

    fn tmp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("memfwd-worker-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    fn sample() -> CellResultFile {
        let mut stats = RunStats::default();
        stats.pipeline.cycles = 123;
        CellResultFile {
            key: 0xFEED,
            checksum: 0xABCD,
            refs: 99,
            host_nanos: 1,
            stats,
        }
    }

    #[test]
    fn result_file_roundtrip_and_corruption_rejection() {
        let path = tmp_dir().join("cell.result");
        let r = sample();
        write_result_file(&path, &r).expect("write");
        assert_eq!(read_result_file(&path).expect("read"), r);
        // Bit-flip anywhere is rejected with a typed error.
        let mut bytes = std::fs::read(&path).expect("read bytes");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).expect("rewrite");
        assert!(read_result_file(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_result_file_is_typed_io() {
        let r = read_result_file(Path::new("/nonexistent/cell.result"));
        assert!(matches!(r, Err(JournalError::Io(_))));
    }

    #[test]
    fn worker_cell_runs_in_process_and_matches_direct_run() {
        // run_worker_cell is normally exercised across a process boundary
        // (crates/bench integration tests); this pins the in-process
        // contract: result file content equals a direct run.
        let dir = tmp_dir();
        let spec = CellSpec {
            app: App::Mst,
            variant: Variant::Optimized,
            line_bytes: 32,
            mem_latency: 75,
            seed: 12345,
        };
        let key = cell_key(Scale::Smoke, &spec);
        let result_file = dir.join("mst.result");
        let ckpt_file = dir.join("mst.ckpt");
        let code = run_worker_cell(&WorkerArgs {
            spec,
            scale: Scale::Smoke,
            key,
            result_file: result_file.clone(),
            ckpt_file: Some(ckpt_file.clone()),
            ckpt_every: Some(64),
        });
        assert_eq!(code, 0);
        let r = read_result_file(&result_file).expect("result file");
        assert_eq!(r.key, key);
        let direct = crate::sweep::run_cell(Scale::Smoke, spec).expect("direct run");
        assert_eq!(r.checksum, direct.checksum);
        assert_eq!(r.stats, direct.stats);
        assert_eq!(r.refs, direct.refs);
        assert!(!ckpt_file.exists(), "checkpoint cleaned up on success");
        std::fs::remove_file(&result_file).ok();
    }
}
