//! Out-of-order superscalar timing skeleton for the Memory Forwarding
//! reproduction.
//!
//! This crate models the parts of a late-1990s dynamically-scheduled
//! processor that the paper's evaluation measures:
//!
//! - a dispatch/graduation pipeline of configurable width with a reorder
//!   buffer that back-pressures dispatch when memory latency piles up;
//! - **graduation-slot accounting** in the exact categories of the paper's
//!   Fig. 5: `busy` slots (an instruction graduates), `load stall` / `store
//!   stall` slots (the oldest instruction is a load/store that suffered a
//!   D-cache miss and has not completed), and `inst stall` (all other
//!   non-graduating slots);
//! - **data-dependence speculation** (§3.2): loads issue before earlier
//!   stores whose *final* addresses are still unknown because the store may
//!   be forwarded; a violation triggers a replay flush.
//!
//! The model is *one-pass analytic*: the program runs functionally in
//! program order while timing is derived from dataflow tokens and the
//! memory system's completion times. This reproduces the paper's stall
//! breakdown without a full microarchitectural replay.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grad;
mod pipeline;
mod spec;
mod token;

pub use grad::{GradAccountant, SlotCounts, StallClass};
pub use pipeline::{OpClass, Pipeline, PipelineConfig, PipelineStats};
pub use spec::{SpecQueue, Violation};
pub use token::Token;
