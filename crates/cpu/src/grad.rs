//! Graduation-slot accounting — the paper's Fig. 5 execution-time breakdown.
//!
//! "The bottom section (busy) is the number of slots when instructions
//! actually graduate, the top two sections are any non-graduating slots that
//! are immediately caused by the oldest instruction suffering either a load
//! or store miss, and the inst stall section is all other slots where
//! instructions do not graduate."

/// Why a graduation slot did not retire an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallClass {
    /// Oldest instruction is a load that missed the D-cache.
    LoadStall,
    /// Oldest instruction is a store that missed the D-cache.
    StoreStall,
    /// Any other non-graduating slot.
    InstStall,
}

/// Counts of graduation slots by category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlotCounts {
    /// Slots in which an instruction graduated.
    pub busy: u64,
    /// Slots stalled behind a missed load.
    pub load_stall: u64,
    /// Slots stalled behind a missed store.
    pub store_stall: u64,
    /// All other idle slots.
    pub inst_stall: u64,
}

impl SlotCounts {
    /// Total slots accounted.
    pub fn total(&self) -> u64 {
        self.busy + self.load_stall + self.store_stall + self.inst_stall
    }

    /// Fraction of slots in a category, as (busy, load, store, inst).
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let t = self.total().max(1) as f64;
        (
            self.busy as f64 / t,
            self.load_stall as f64 / t,
            self.store_stall as f64 / t,
            self.inst_stall as f64 / t,
        )
    }
}

/// Consumes retiring instructions in program order and attributes every
/// potential graduation slot to a category.
#[derive(Debug)]
pub struct GradAccountant {
    width: u32,
    gcycle: u64,
    gslot: u32,
    counts: SlotCounts,
}

impl GradAccountant {
    /// Creates an accountant graduating up to `width` instructions/cycle.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: u32) -> GradAccountant {
        assert!(width > 0);
        GradAccountant {
            width,
            gcycle: 0,
            gslot: 0,
            counts: SlotCounts::default(),
        }
    }

    /// Graduates one instruction whose result is complete at `complete` and
    /// which may not graduate before `earliest` (dispatch + pipeline depth).
    /// `stall` classifies the slots wasted while this instruction is the
    /// oldest and incomplete. Returns the cycle in which it graduated.
    pub fn graduate(&mut self, complete: u64, earliest: u64, stall: StallClass) -> u64 {
        let target = complete.max(earliest);
        if self.gcycle < target {
            // Closed form of advancing cycle by cycle: the current partial
            // cycle wastes its remaining slots, every further cycle up to
            // `target` wastes all `width`.
            let idle = u64::from(self.width - self.gslot)
                + (target - self.gcycle - 1) * u64::from(self.width);
            match stall {
                StallClass::LoadStall => self.counts.load_stall += idle,
                StallClass::StoreStall => self.counts.store_stall += idle,
                StallClass::InstStall => self.counts.inst_stall += idle,
            }
            self.gcycle = target;
            self.gslot = 0;
        }
        self.counts.busy += 1;
        let at = self.gcycle;
        self.gslot += 1;
        if self.gslot == self.width {
            self.gcycle += 1;
            self.gslot = 0;
        }
        at
    }

    /// Cycle count so far (the cycle the next graduation would occupy).
    pub fn cycles(&self) -> u64 {
        if self.gslot == 0 {
            self.gcycle
        } else {
            self.gcycle + 1
        }
    }

    /// Closes out the current partially-filled cycle (remaining slots are
    /// idle `inst` slots) and returns the final counts.
    pub fn finish(mut self) -> (u64, SlotCounts) {
        if self.gslot != 0 {
            self.counts.inst_stall += u64::from(self.width - self.gslot);
            self.gcycle += 1;
            self.gslot = 0;
        }
        (self.gcycle, self.counts)
    }

    /// Counts accumulated so far.
    pub fn counts(&self) -> SlotCounts {
        self.counts
    }

    /// Serializes the accountant.
    pub fn snapshot_encode(&self, enc: &mut memfwd_tagmem::SnapEncoder) {
        enc.u32(self.width);
        enc.u64(self.gcycle);
        enc.u32(self.gslot);
        enc.u64(self.counts.busy);
        enc.u64(self.counts.load_stall);
        enc.u64(self.counts.store_stall);
        enc.u64(self.counts.inst_stall);
    }

    /// Rebuilds an accountant written by [`GradAccountant::snapshot_encode`].
    pub fn snapshot_decode(
        dec: &mut memfwd_tagmem::SnapDecoder<'_>,
    ) -> Result<GradAccountant, memfwd_tagmem::SnapCodecError> {
        let width = dec.u32()?;
        if width == 0 {
            return Err(memfwd_tagmem::SnapCodecError::BadValue);
        }
        let gcycle = dec.u64()?;
        let gslot = dec.u32()?;
        if gslot >= width {
            return Err(memfwd_tagmem::SnapCodecError::BadValue);
        }
        let counts = SlotCounts {
            busy: dec.u64()?,
            load_stall: dec.u64()?,
            store_stall: dec.u64()?,
            inst_stall: dec.u64()?,
        };
        Ok(GradAccountant {
            width,
            gcycle,
            gslot,
            counts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_graduation_fills_slots() {
        let mut g = GradAccountant::new(4);
        for _ in 0..8 {
            g.graduate(0, 0, StallClass::InstStall);
        }
        let (cycles, c) = g.finish();
        assert_eq!(cycles, 2);
        assert_eq!(c.busy, 8);
        assert_eq!(c.total(), 8);
    }

    #[test]
    fn load_miss_stall_attribution() {
        let mut g = GradAccountant::new(4);
        g.graduate(0, 0, StallClass::InstStall); // slot 0 of cycle 0
                                                 // Next instruction completes at cycle 3: 3 slots of cycle 0 and all
                                                 // of cycles 1,2 stall behind it.
        g.graduate(3, 0, StallClass::LoadStall);
        let c = g.counts();
        assert_eq!(c.busy, 2);
        assert_eq!(c.load_stall, 3 + 4 + 4);
    }

    #[test]
    fn earliest_bound_applies() {
        let mut g = GradAccountant::new(2);
        let at = g.graduate(0, 5, StallClass::InstStall);
        assert_eq!(at, 5);
        assert_eq!(g.counts().inst_stall, 10);
    }

    #[test]
    fn store_stall_category() {
        let mut g = GradAccountant::new(1);
        g.graduate(2, 0, StallClass::StoreStall);
        let (cycles, c) = g.finish();
        assert_eq!(cycles, 3);
        assert_eq!(c.store_stall, 2);
        assert_eq!(c.busy, 1);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn finish_pads_last_cycle() {
        let mut g = GradAccountant::new(4);
        g.graduate(0, 0, StallClass::InstStall);
        let (cycles, c) = g.finish();
        assert_eq!(cycles, 1);
        assert_eq!(c.busy, 1);
        assert_eq!(c.inst_stall, 3);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn total_equals_cycles_times_width() {
        let mut g = GradAccountant::new(4);
        for i in 0..100u64 {
            g.graduate(i * 2, i, StallClass::LoadStall);
        }
        let (cycles, c) = g.finish();
        assert_eq!(c.total(), cycles * 4);
    }

    #[test]
    fn fractions_sum_to_one() {
        let c = SlotCounts {
            busy: 10,
            load_stall: 20,
            store_stall: 5,
            inst_stall: 5,
        };
        let (b, l, s, i) = c.fractions();
        assert!((b + l + s + i - 1.0).abs() < 1e-12);
    }
}
