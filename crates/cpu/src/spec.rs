//! Data-dependence speculation (paper §3.2).
//!
//! With memory forwarding, a store's *final* address is not known until the
//! store actually completes — so a conservative machine could never move a
//! load above an earlier store. Instead the processor speculates that final
//! address = initial address. The speculation is wrong only when the load
//! and store had different initial addresses but the same final address;
//! then the violated load (and everything after it) must re-execute.

use std::collections::VecDeque;

/// A detected dependence violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// Word (line-independent, word-granular) address both references
    /// finally resolved to.
    pub final_word: u64,
    /// The cycle at which the conflicting store's final address resolved.
    pub store_resolved_at: u64,
}

#[derive(Debug, Clone, Copy)]
struct StoreRec {
    init_word: u64,
    final_word: u64,
    resolved_at: u64,
}

/// Tracks in-flight stores whose final addresses resolve late, and checks
/// speculatively issued loads against them.
#[derive(Debug, Default)]
pub struct SpecQueue {
    stores: VecDeque<StoreRec>,
}

impl SpecQueue {
    /// Creates an empty queue.
    pub fn new() -> SpecQueue {
        SpecQueue::default()
    }

    /// Records a store: `init_word`/`final_word` are word addresses before
    /// and after forwarding; `resolved_at` is when the final address became
    /// known (the store's completion).
    pub fn on_store(&mut self, init_word: u64, final_word: u64, resolved_at: u64) {
        self.stores.push_back(StoreRec {
            init_word,
            final_word,
            resolved_at,
        });
        // Bound the window (a real LSQ is finite).
        if self.stores.len() > 128 {
            self.stores.pop_front();
        }
    }

    /// Drops stores whose final addresses were already resolved at `now`;
    /// they can no longer be mis-speculated against.
    pub fn prune(&mut self, now: u64) {
        self.stores.retain(|s| s.resolved_at > now);
    }

    /// Checks a load that issued at `issue` and finally resolved to
    /// `final_word`. Returns a violation if an earlier store's late-resolved
    /// final address collides while its initial address did not.
    pub fn check_load(&mut self, issue: u64, init_word: u64, final_word: u64) -> Option<Violation> {
        self.prune(issue);
        self.stores
            .iter()
            .find(|s| {
                s.resolved_at > issue       // store unresolved when load issued
                    && s.final_word == final_word
                    && s.init_word != init_word // same initial word would have been caught by the LSQ
            })
            .map(|s| Violation {
                final_word,
                store_resolved_at: s.resolved_at,
            })
    }

    /// Number of stores currently tracked.
    pub fn len(&self) -> usize {
        self.stores.len()
    }

    /// True when no stores are tracked.
    pub fn is_empty(&self) -> bool {
        self.stores.is_empty()
    }

    /// Serializes the queue in store order.
    pub fn snapshot_encode(&self, enc: &mut memfwd_tagmem::SnapEncoder) {
        enc.seq(self.stores.iter(), |e, s| {
            e.u64(s.init_word);
            e.u64(s.final_word);
            e.u64(s.resolved_at);
        });
    }

    /// Rebuilds a queue written by [`SpecQueue::snapshot_encode`].
    pub fn snapshot_decode(
        dec: &mut memfwd_tagmem::SnapDecoder<'_>,
    ) -> Result<SpecQueue, memfwd_tagmem::SnapCodecError> {
        let n = dec.seq_len(24)?;
        let mut stores = VecDeque::with_capacity(n);
        for _ in 0..n {
            stores.push_back(StoreRec {
                init_word: dec.u64()?,
                final_word: dec.u64()?,
                resolved_at: dec.u64()?,
            });
        }
        Ok(SpecQueue { stores })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_stores_no_violation() {
        let mut q = SpecQueue::new();
        assert!(q.check_load(10, 0x100, 0x100).is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn forwarded_store_conflicts_with_speculative_load() {
        let mut q = SpecQueue::new();
        // Store to 0x100 forwarded to 0x500, resolving at cycle 50.
        q.on_store(0x100, 0x500, 50);
        // Load issued at cycle 20 directly to 0x500 (different initial
        // address, same final): violated.
        let v = q.check_load(20, 0x500, 0x500).unwrap();
        assert_eq!(v.final_word, 0x500);
        assert_eq!(v.store_resolved_at, 50);
    }

    #[test]
    fn resolved_store_is_safe() {
        let mut q = SpecQueue::new();
        q.on_store(0x100, 0x500, 50);
        // Load issued after the store resolved: LSQ sees the real address.
        assert!(q.check_load(60, 0x500, 0x500).is_none());
    }

    #[test]
    fn same_initial_address_not_a_violation() {
        let mut q = SpecQueue::new();
        q.on_store(0x100, 0x500, 50);
        // Load with the same initial word is ordered by the LSQ.
        assert!(q.check_load(20, 0x100, 0x500).is_none());
    }

    #[test]
    fn different_final_word_no_conflict() {
        let mut q = SpecQueue::new();
        q.on_store(0x100, 0x500, 50);
        assert!(q.check_load(20, 0x600, 0x600).is_none());
    }

    #[test]
    fn prune_and_bound() {
        let mut q = SpecQueue::new();
        for i in 0..200u64 {
            q.on_store(i * 8, i * 8 + 0x1000, 100);
        }
        assert!(q.len() <= 128);
        q.prune(100);
        assert!(q.is_empty());
    }
}
