//! Data-dependence speculation (paper §3.2).
//!
//! With memory forwarding, a store's *final* address is not known until the
//! store actually completes — so a conservative machine could never move a
//! load above an earlier store. Instead the processor speculates that final
//! address = initial address. The speculation is wrong only when the load
//! and store had different initial addresses but the same final address;
//! then the violated load (and everything after it) must re-execute.

use std::collections::VecDeque;

/// A detected dependence violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// Word (line-independent, word-granular) address both references
    /// finally resolved to.
    pub final_word: u64,
    /// The cycle at which the conflicting store's final address resolved.
    pub store_resolved_at: u64,
}

#[derive(Debug, Clone, Copy)]
struct StoreRec {
    init_word: u64,
    final_word: u64,
    resolved_at: u64,
    /// Length of the deferred-prune log when this store was recorded; only
    /// log entries at or past this index apply to it.
    epoch: u32,
}

/// Deferred prunes are replayed before the log can grow past this bound, so
/// replay cost stays O(1) amortized per check.
const PRUNE_LOG_CAP: usize = 256;

/// `out[k]` = max of `log[k..]`; `out[log.len()]` is a sentinel never used
/// (entries inserted after the last prune are always kept).
fn suffix_max(log: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; log.len() + 1];
    for k in (0..log.len()).rev() {
        out[k] = log[k].max(out[k + 1]);
    }
    out
}

/// Tracks in-flight stores whose final addresses resolve late, and checks
/// speculatively issued loads against them.
///
/// A violation requires a *final*-address collision without an
/// *initial*-address collision, which is impossible unless the store or the
/// load was forwarded. The queue exploits that: checks by unforwarded loads
/// against a queue of unforwarded stores — the overwhelmingly common case —
/// defer their prune into a log and return `None` in O(1). The log is
/// replayed, entry-exactly, before anything whose outcome could depend on
/// queue content: a check that can match, the capacity bound, an explicit
/// prune, or a snapshot.
#[derive(Debug, Default)]
pub struct SpecQueue {
    stores: VecDeque<StoreRec>,
    /// Upper bound on `resolved_at` across tracked stores (monotone; never
    /// lowered on removal). When it is `<= issue`, every tracked store has
    /// resolved and a check can clear-and-exit without scanning.
    max_resolved: u64,
    /// Prune issues deferred by fast-path checks, in order.
    prune_log: Vec<u64>,
    /// Forwarded stores (`init != final`) currently in `stores`. Counted
    /// over the deferred queue, which is a superset of the pruned one, so
    /// zero here proves zero in the exact queue.
    fwd_count: usize,
}

impl SpecQueue {
    /// Creates an empty queue with its store window and prune log
    /// pre-reserved, so the demand hot loop never grows either in steady
    /// state.
    pub fn new() -> SpecQueue {
        SpecQueue {
            stores: VecDeque::with_capacity(130),
            max_resolved: 0,
            prune_log: Vec::with_capacity(PRUNE_LOG_CAP + 1),
            fwd_count: 0,
        }
    }

    /// Records a store: `init_word`/`final_word` are word addresses before
    /// and after forwarding; `resolved_at` is when the final address became
    /// known (the store's completion).
    pub fn on_store(&mut self, init_word: u64, final_word: u64, resolved_at: u64) {
        self.max_resolved = self.max_resolved.max(resolved_at);
        self.stores.push_back(StoreRec {
            init_word,
            final_word,
            resolved_at,
            epoch: self.prune_log.len() as u32,
        });
        if init_word != final_word {
            self.fwd_count += 1;
        }
        // Bound the window (a real LSQ is finite). The bound applies to the
        // *pruned* queue, so replay deferred prunes before deciding to pop.
        if self.stores.len() > 128 {
            self.materialize();
            if self.stores.len() > 128 {
                if let Some(s) = self.stores.pop_front() {
                    if s.init_word != s.final_word {
                        self.fwd_count -= 1;
                    }
                }
            }
        }
    }

    /// Drops stores whose final addresses were already resolved at `now`;
    /// they can no longer be mis-speculated against.
    pub fn prune(&mut self, now: u64) {
        self.materialize();
        let mut fwd = self.fwd_count;
        self.stores.retain(|s| {
            let keep = s.resolved_at > now;
            if !keep && s.init_word != s.final_word {
                fwd -= 1;
            }
            keep
        });
        self.fwd_count = fwd;
    }

    /// Checks a load that issued at `issue` and finally resolved to
    /// `final_word`. Returns a violation if an earlier store's late-resolved
    /// final address collides while its initial address did not.
    pub fn check_load(&mut self, issue: u64, init_word: u64, final_word: u64) -> Option<Violation> {
        if self.max_resolved <= issue {
            // Every tracked store already resolved: the prune would drop
            // them all and the scan would find nothing.
            self.stores.clear();
            self.prune_log.clear();
            self.fwd_count = 0;
            return None;
        }
        if self.fwd_count == 0 && init_word == final_word {
            // Unforwarded load against a queue of unforwarded stores: a
            // match would need `s.final == final == init` yet
            // `s.init != init` with `s.init == s.final` — contradiction.
            // Only the prune has an effect, and it can be deferred.
            if self.prune_log.len() >= PRUNE_LOG_CAP {
                self.materialize();
            }
            self.prune_log.push(issue);
            return None;
        }
        self.materialize();
        // One pass doing both the prune and the scan: entries surviving the
        // retain are exactly the unresolved ones (`resolved_at > issue`),
        // and the first survivor whose final word collides while its
        // initial word did not (the same initial word would have been
        // caught by the LSQ) is the violation.
        let mut hit: Option<Violation> = None;
        let mut fwd = self.fwd_count;
        self.stores.retain(|s| {
            if s.resolved_at <= issue {
                if s.init_word != s.final_word {
                    fwd -= 1;
                }
                return false;
            }
            if hit.is_none() && s.final_word == final_word && s.init_word != init_word {
                hit = Some(Violation {
                    final_word,
                    store_resolved_at: s.resolved_at,
                });
            }
            true
        });
        self.fwd_count = fwd;
        hit
    }

    /// Replays the deferred prunes, restoring the queue to exactly the
    /// content eager per-check pruning would have produced: an entry is
    /// dropped iff some prune logged *after* its insertion had
    /// `issue >= resolved_at`, i.e. iff the max issue over the log suffix
    /// starting at its epoch reaches its `resolved_at`.
    fn materialize(&mut self) {
        if self.prune_log.is_empty() {
            return;
        }
        let sm = suffix_max(&self.prune_log);
        let n = self.prune_log.len();
        let mut fwd = self.fwd_count;
        self.stores.retain(|s| {
            let keep = s.epoch as usize == n || s.resolved_at > sm[s.epoch as usize];
            if !keep && s.init_word != s.final_word {
                fwd -= 1;
            }
            keep
        });
        self.fwd_count = fwd;
        for s in self.stores.iter_mut() {
            s.epoch = 0;
        }
        self.prune_log.clear();
    }

    /// Iterates the live (pruned-view) entries without mutating the queue.
    fn live(&self) -> impl Iterator<Item = &StoreRec> {
        let n = self.prune_log.len();
        let sm = if n == 0 {
            Vec::new()
        } else {
            suffix_max(&self.prune_log)
        };
        self.stores
            .iter()
            .filter(move |s| s.epoch as usize == n || s.resolved_at > sm[s.epoch as usize])
    }

    /// Number of stores currently tracked.
    pub fn len(&self) -> usize {
        if self.prune_log.is_empty() {
            self.stores.len()
        } else {
            self.live().count()
        }
    }

    /// True when no stores are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the queue in store order.
    pub fn snapshot_encode(&self, enc: &mut memfwd_tagmem::SnapEncoder) {
        let live: Vec<&StoreRec> = self.live().collect();
        enc.seq(live.into_iter(), |e, s| {
            e.u64(s.init_word);
            e.u64(s.final_word);
            e.u64(s.resolved_at);
        });
    }

    /// Rebuilds a queue written by [`SpecQueue::snapshot_encode`].
    pub fn snapshot_decode(
        dec: &mut memfwd_tagmem::SnapDecoder<'_>,
    ) -> Result<SpecQueue, memfwd_tagmem::SnapCodecError> {
        let n = dec.seq_len(24)?;
        let mut stores = VecDeque::with_capacity(n);
        for _ in 0..n {
            stores.push_back(StoreRec {
                init_word: dec.u64()?,
                final_word: dec.u64()?,
                resolved_at: dec.u64()?,
                epoch: 0,
            });
        }
        let max_resolved = stores.iter().map(|s| s.resolved_at).max().unwrap_or(0);
        let fwd_count = stores
            .iter()
            .filter(|s| s.init_word != s.final_word)
            .count();
        Ok(SpecQueue {
            stores,
            max_resolved,
            prune_log: Vec::new(),
            fwd_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_stores_no_violation() {
        let mut q = SpecQueue::new();
        assert!(q.check_load(10, 0x100, 0x100).is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn forwarded_store_conflicts_with_speculative_load() {
        let mut q = SpecQueue::new();
        // Store to 0x100 forwarded to 0x500, resolving at cycle 50.
        q.on_store(0x100, 0x500, 50);
        // Load issued at cycle 20 directly to 0x500 (different initial
        // address, same final): violated.
        let v = q.check_load(20, 0x500, 0x500).unwrap();
        assert_eq!(v.final_word, 0x500);
        assert_eq!(v.store_resolved_at, 50);
    }

    #[test]
    fn resolved_store_is_safe() {
        let mut q = SpecQueue::new();
        q.on_store(0x100, 0x500, 50);
        // Load issued after the store resolved: LSQ sees the real address.
        assert!(q.check_load(60, 0x500, 0x500).is_none());
    }

    #[test]
    fn same_initial_address_not_a_violation() {
        let mut q = SpecQueue::new();
        q.on_store(0x100, 0x500, 50);
        // Load with the same initial word is ordered by the LSQ.
        assert!(q.check_load(20, 0x100, 0x500).is_none());
    }

    #[test]
    fn different_final_word_no_conflict() {
        let mut q = SpecQueue::new();
        q.on_store(0x100, 0x500, 50);
        assert!(q.check_load(20, 0x600, 0x600).is_none());
    }

    #[test]
    fn prune_and_bound() {
        let mut q = SpecQueue::new();
        for i in 0..200u64 {
            q.on_store(i * 8, i * 8 + 0x1000, 100);
        }
        assert!(q.len() <= 128);
        q.prune(100);
        assert!(q.is_empty());
    }
}
