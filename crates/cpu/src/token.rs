//! Dataflow readiness tokens.

/// The cycle at which a value becomes available.
///
/// Applications thread tokens through pointer-chasing code so that the
/// timing model serializes dependent loads (the *pointer-chasing problem*
/// of paper §2.2): the address of the next node is not known until the
/// previous load completes.
///
/// # Example
///
/// ```
/// use memfwd_cpu::Token;
/// let a = Token::ready();          // available immediately
/// let b = Token::at(100);          // produced by a load completing at 100
/// assert_eq!(a.join(b).cycle(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Token(u64);

impl Token {
    /// A token that is ready at cycle zero (e.g. an immediate operand).
    pub fn ready() -> Token {
        Token(0)
    }

    /// A token ready at the given cycle.
    pub fn at(cycle: u64) -> Token {
        Token(cycle)
    }

    /// The cycle at which the value is available.
    pub fn cycle(self) -> u64 {
        self.0
    }

    /// Combines two dependences: ready when both inputs are ready.
    #[must_use]
    pub fn join(self, other: Token) -> Token {
        Token(self.0.max(other.0))
    }

    /// A token delayed by `cycles` (e.g. an ALU op consuming this value).
    #[must_use]
    pub fn delay(self, cycles: u64) -> Token {
        Token(self.0 + cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_takes_max() {
        assert_eq!(Token::at(5).join(Token::at(9)), Token::at(9));
        assert_eq!(Token::ready().join(Token::at(3)).cycle(), 3);
    }

    #[test]
    fn delay_adds() {
        assert_eq!(Token::at(5).delay(2).cycle(), 7);
    }

    #[test]
    fn default_is_ready() {
        assert_eq!(Token::default(), Token::ready());
    }
}
