//! Dispatch/graduation plumbing with reorder-buffer backpressure.

use crate::grad::{GradAccountant, SlotCounts, StallClass};
use std::collections::VecDeque;

/// Static configuration of the pipeline model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Dispatch and graduation width (instructions per cycle).
    pub width: u32,
    /// Reorder-buffer entries (in-flight instructions).
    pub rob_entries: usize,
    /// Minimum cycles between dispatch and graduation (pipeline depth).
    pub min_depth: u64,
    /// Flush penalty, in cycles, of a data-dependence misspeculation
    /// (re-executing all instructions after the violated load).
    pub replay_penalty: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            width: 4,
            rob_entries: 64,
            min_depth: 5,
            replay_penalty: 12,
        }
    }
}

/// The class of an instruction, for stall attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// An ALU/branch instruction.
    Compute,
    /// A demand load.
    Load,
    /// A demand store.
    Store,
    /// A non-binding prefetch (graduates immediately).
    Prefetch,
}

/// Final statistics of a pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineStats {
    /// Total execution cycles.
    pub cycles: u64,
    /// Graduation-slot breakdown (Fig. 5 categories).
    pub slots: SlotCounts,
    /// Instructions dispatched.
    pub dispatched: u64,
    /// Data-dependence replay flushes taken.
    pub replays: u64,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    complete: u64,
    earliest: u64,
    stall: StallClass,
}

/// The one-pass out-of-order pipeline model.
///
/// Call [`Pipeline::dispatch`] to obtain the dispatch cycle of the next
/// instruction (this is where ROB backpressure appears), compute its
/// completion time against the memory system, then call
/// [`Pipeline::complete`] to enter it for graduation accounting. Call
/// [`Pipeline::finish`] at the end of the program.
#[derive(Debug)]
pub struct Pipeline {
    cfg: PipelineConfig,
    dispatch_cycle: u64,
    dispatched_this_cycle: u32,
    pending: VecDeque<Pending>,
    grad: GradAccountant,
    dispatched: u64,
    replays: u64,
}

impl Pipeline {
    /// Creates a pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero width or ROB).
    pub fn new(cfg: PipelineConfig) -> Pipeline {
        assert!(cfg.width > 0 && cfg.rob_entries > 0);
        Pipeline {
            grad: GradAccountant::new(cfg.width),
            cfg,
            dispatch_cycle: 0,
            dispatched_this_cycle: 0,
            pending: VecDeque::new(),
            dispatched: 0,
            replays: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Current dispatch cycle (a lower bound on "now" for new work).
    pub fn now(&self) -> u64 {
        self.dispatch_cycle
    }

    fn retire_oldest(&mut self) {
        let p = self.pending.pop_front().expect("rob not empty");
        let at = self.grad.graduate(p.complete, p.earliest, p.stall);
        if at > self.dispatch_cycle {
            self.dispatch_cycle = at;
            self.dispatched_this_cycle = 0;
        }
    }

    /// Allocates a dispatch slot and returns its cycle. If the reorder
    /// buffer is full, the oldest instruction is graduated first and
    /// dispatch stalls until its slot frees — this couples memory latency
    /// back into the front end.
    pub fn dispatch(&mut self) -> u64 {
        while self.pending.len() >= self.cfg.rob_entries {
            self.retire_oldest();
        }
        let d = self.dispatch_cycle;
        self.dispatched += 1;
        self.dispatched_this_cycle += 1;
        if self.dispatched_this_cycle >= self.cfg.width {
            self.dispatch_cycle += 1;
            self.dispatched_this_cycle = 0;
        }
        d
    }

    /// Enters a dispatched instruction for graduation accounting.
    ///
    /// `dispatched_at` must be the value returned by the matching
    /// [`Pipeline::dispatch`]; `complete` is when its result is available;
    /// `l1_miss` records whether a memory instruction missed the D-cache
    /// (this selects the Fig. 5 stall category).
    pub fn complete(&mut self, class: OpClass, dispatched_at: u64, complete: u64, l1_miss: bool) {
        let stall = match (class, l1_miss) {
            (OpClass::Load, true) => StallClass::LoadStall,
            (OpClass::Store, true) => StallClass::StoreStall,
            _ => StallClass::InstStall,
        };
        self.pending.push_back(Pending {
            complete,
            earliest: dispatched_at + self.cfg.min_depth,
            stall,
        });
    }

    /// Convenience: dispatch and complete one single-cycle ALU instruction
    /// whose inputs are ready at `ready`. Returns the completion cycle.
    pub fn compute(&mut self, ready: u64) -> u64 {
        let d = self.dispatch();
        let done = d.max(ready) + 1;
        self.complete(OpClass::Compute, d, done, false);
        done
    }

    /// Applies a data-dependence replay flush: the front end restarts
    /// `replay_penalty` cycles after the violation resolves.
    pub fn replay(&mut self, resolved_at: u64) {
        self.replays += 1;
        let restart = resolved_at + self.cfg.replay_penalty;
        if restart > self.dispatch_cycle {
            self.dispatch_cycle = restart;
            self.dispatched_this_cycle = 0;
        }
    }

    /// Number of instructions dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Serializes the pipeline's runtime state. The configuration is not
    /// encoded; [`Pipeline::snapshot_decode`] takes it as a parameter.
    pub fn snapshot_encode(&self, enc: &mut memfwd_tagmem::SnapEncoder) {
        enc.u64(self.dispatch_cycle);
        enc.u32(self.dispatched_this_cycle);
        enc.seq(self.pending.iter(), |e, p| {
            e.u64(p.complete);
            e.u64(p.earliest);
            e.u8(match p.stall {
                StallClass::LoadStall => 0,
                StallClass::StoreStall => 1,
                StallClass::InstStall => 2,
            });
        });
        self.grad.snapshot_encode(enc);
        enc.u64(self.dispatched);
        enc.u64(self.replays);
    }

    /// Rebuilds a pipeline written by [`Pipeline::snapshot_encode`] under
    /// configuration `cfg` (which must match the one in force at save time).
    pub fn snapshot_decode(
        dec: &mut memfwd_tagmem::SnapDecoder<'_>,
        cfg: PipelineConfig,
    ) -> Result<Pipeline, memfwd_tagmem::SnapCodecError> {
        let dispatch_cycle = dec.u64()?;
        let dispatched_this_cycle = dec.u32()?;
        let n = dec.seq_len(17)?;
        if n > cfg.rob_entries {
            return Err(memfwd_tagmem::SnapCodecError::BadValue);
        }
        let mut pending = VecDeque::with_capacity(n);
        for _ in 0..n {
            let complete = dec.u64()?;
            let earliest = dec.u64()?;
            let stall = match dec.u8()? {
                0 => StallClass::LoadStall,
                1 => StallClass::StoreStall,
                2 => StallClass::InstStall,
                _ => return Err(memfwd_tagmem::SnapCodecError::BadValue),
            };
            pending.push_back(Pending {
                complete,
                earliest,
                stall,
            });
        }
        let grad = GradAccountant::snapshot_decode(dec)?;
        Ok(Pipeline {
            cfg,
            dispatch_cycle,
            dispatched_this_cycle,
            pending,
            grad,
            dispatched: dec.u64()?,
            replays: dec.u64()?,
        })
    }

    /// Drains the reorder buffer and returns the final statistics.
    pub fn finish(mut self) -> PipelineStats {
        while !self.pending.is_empty() {
            self.retire_oldest();
        }
        let (cycles, slots) = self.grad.finish();
        PipelineStats {
            cycles,
            slots,
            dispatched: self.dispatched,
            replays: self.replays,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipe() -> Pipeline {
        Pipeline::new(PipelineConfig::default())
    }

    #[test]
    fn ideal_ipc_equals_width() {
        let mut p = pipe();
        for _ in 0..4000 {
            let d = p.dispatch();
            p.complete(OpClass::Compute, d, d + 1, false);
        }
        let s = p.finish();
        assert_eq!(s.dispatched, 4000);
        // 4-wide: ~1000 cycles (+ pipeline depth at the tail).
        assert!(
            s.cycles >= 1000 && s.cycles <= 1010,
            "cycles = {}",
            s.cycles
        );
        assert_eq!(s.slots.busy, 4000);
    }

    #[test]
    fn long_latency_load_creates_load_stall() {
        let mut p = pipe();
        let d = p.dispatch();
        p.complete(OpClass::Load, d, d + 100, true);
        let s = p.finish();
        assert!(s.cycles >= 100);
        assert!(
            s.slots.load_stall > 300,
            "load stall = {}",
            s.slots.load_stall
        );
        assert_eq!(s.slots.busy, 1);
    }

    #[test]
    fn store_miss_attributed_to_store_stall() {
        let mut p = pipe();
        let d = p.dispatch();
        p.complete(OpClass::Store, d, d + 50, true);
        let s = p.finish();
        assert!(s.slots.store_stall > 0);
        assert_eq!(s.slots.load_stall, 0);
    }

    #[test]
    fn hit_under_depth_is_inst_stall_not_load_stall() {
        let mut p = pipe();
        let d = p.dispatch();
        p.complete(OpClass::Load, d, d + 1, false);
        let s = p.finish();
        assert_eq!(s.slots.load_stall, 0);
    }

    #[test]
    fn rob_backpressure_throttles_dispatch() {
        // With a full ROB of slow loads, dispatch cannot run ahead.
        let mut p = Pipeline::new(PipelineConfig {
            rob_entries: 4,
            ..PipelineConfig::default()
        });
        let mut last = 0;
        for i in 0..16 {
            let d = p.dispatch();
            p.complete(OpClass::Load, d, d + 100, true);
            last = d;
            if i >= 4 {
                assert!(d > i / 4, "dispatch must have stalled");
            }
        }
        assert!(
            last >= 100,
            "dispatch ran {last} cycles: ROB should stall it"
        );
        let s = p.finish();
        assert_eq!(s.dispatched, 16);
    }

    #[test]
    fn overlapping_misses_cost_less_than_serial() {
        // Two independent 100-cycle loads through a big ROB overlap.
        let mut p = pipe();
        for _ in 0..2 {
            let d = p.dispatch();
            p.complete(OpClass::Load, d, d + 100, true);
        }
        let s = p.finish();
        assert!(s.cycles < 160, "parallel misses overlapped: {}", s.cycles);
    }

    #[test]
    fn replay_pushes_dispatch_forward() {
        let mut p = pipe();
        let d0 = p.dispatch();
        p.complete(OpClass::Load, d0, d0 + 10, true);
        p.replay(50);
        let d1 = p.dispatch();
        assert_eq!(d1, 50 + p.config().replay_penalty);
        let s = p.finish();
        assert_eq!(s.replays, 1);
    }

    #[test]
    fn compute_helper_serializes_on_inputs() {
        let mut p = pipe();
        let done = p.compute(100);
        assert_eq!(done, 101);
        let s = p.finish();
        assert_eq!(s.dispatched, 1);
    }

    #[test]
    fn slot_conservation() {
        let mut p = pipe();
        for i in 0..1000u64 {
            let d = p.dispatch();
            let (class, lat, miss) = match i % 5 {
                0 => (OpClass::Load, 30, true),
                1 => (OpClass::Store, 15, true),
                _ => (OpClass::Compute, 1, false),
            };
            p.complete(class, d, d + lat, miss);
        }
        let s = p.finish();
        assert_eq!(s.slots.total(), s.cycles * 4);
        assert_eq!(s.slots.busy, 1000);
    }
}
