//! Property-based checks of the pipeline model.

use memfwd_cpu::{OpClass, Pipeline, PipelineConfig, SpecQueue, Token};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Slot conservation holds for arbitrary op mixes: every dispatched
    /// instruction graduates exactly once and total slots = cycles x width.
    #[test]
    fn slot_conservation(
        width in 1u32..8,
        rob in 1usize..96,
        ops in proptest::collection::vec((0u8..4, 0u64..200, any::<bool>()), 1..300),
    ) {
        let mut p = Pipeline::new(PipelineConfig {
            width,
            rob_entries: rob,
            min_depth: 5,
            replay_penalty: 12,
        });
        let n = ops.len() as u64;
        for (class, latency, miss) in ops {
            let d = p.dispatch();
            let class = match class {
                0 => OpClass::Compute,
                1 => OpClass::Load,
                2 => OpClass::Store,
                _ => OpClass::Prefetch,
            };
            p.complete(class, d, d + 1 + latency, miss);
        }
        let s = p.finish();
        prop_assert_eq!(s.dispatched, n);
        prop_assert_eq!(s.slots.busy, n);
        prop_assert_eq!(s.slots.total(), s.cycles * u64::from(width));
    }

    /// Dispatch cycles are monotonically non-decreasing and never pack
    /// more than `width` instructions into one cycle.
    #[test]
    fn dispatch_respects_width(width in 1u32..8, n in 1usize..200) {
        let mut p = Pipeline::new(PipelineConfig {
            width,
            rob_entries: 1024,
            min_depth: 1,
            replay_penalty: 1,
        });
        let mut last = 0u64;
        let mut in_cycle = 0u32;
        for _ in 0..n {
            let d = p.dispatch();
            prop_assert!(d >= last);
            if d == last {
                in_cycle += 1;
                prop_assert!(in_cycle <= width, "over-packed cycle {d}");
            } else {
                in_cycle = 1;
                last = d;
            }
            p.complete(OpClass::Compute, d, d + 1, false);
        }
    }

    /// A tiny ROB forces dispatch to trail completion: with single-entry
    /// ROB, instructions fully serialize.
    #[test]
    fn single_entry_rob_serializes(latency in 1u64..100, n in 2u64..40) {
        let mut p = Pipeline::new(PipelineConfig {
            width: 4,
            rob_entries: 1,
            min_depth: 1,
            replay_penalty: 1,
        });
        for _ in 0..n {
            let d = p.dispatch();
            p.complete(OpClass::Load, d, d + latency, true);
        }
        let s = p.finish();
        prop_assert!(s.cycles >= (n - 1) * latency, "{} < {}", s.cycles, (n - 1) * latency);
    }

    /// The speculation queue flags exactly the violations a brute-force
    /// check finds.
    #[test]
    fn spec_queue_matches_brute_force(
        stores in proptest::collection::vec((0u64..8, 0u64..8, 1u64..100), 0..40),
        load in (0u64..8, 0u64..8, 0u64..100),
    ) {
        let mut q = SpecQueue::new();
        for &(init, fin, t) in &stores {
            q.on_store(init, fin, t);
        }
        let (l_init, l_final, l_issue) = load;
        let got = q.check_load(l_issue, l_init, l_final).is_some();
        let want = stores.iter().any(|&(init, fin, t)| {
            t > l_issue && fin == l_final && init != l_init
        });
        prop_assert_eq!(got, want);
    }

    /// Token algebra: join is commutative/associative/idempotent, delay
    /// distributes over max.
    #[test]
    fn token_laws(a in 0u64..1000, b in 0u64..1000, c in 0u64..1000, d in 0u64..50) {
        let (ta, tb, tc) = (Token::at(a), Token::at(b), Token::at(c));
        prop_assert_eq!(ta.join(tb), tb.join(ta));
        prop_assert_eq!(ta.join(tb).join(tc), ta.join(tb.join(tc)));
        prop_assert_eq!(ta.join(ta), ta);
        prop_assert_eq!(ta.join(tb).delay(d), ta.delay(d).join(tb.delay(d)));
    }

    /// Replays only ever push time forward.
    #[test]
    fn replay_monotone(points in proptest::collection::vec(0u64..500, 1..30)) {
        let mut p = Pipeline::new(PipelineConfig::default());
        let mut last = 0;
        for at in points {
            p.replay(at);
            let d = p.dispatch();
            prop_assert!(d >= last, "dispatch went backwards");
            last = d;
            p.complete(OpClass::Compute, d, d + 1, false);
        }
    }
}
