//! Property-based checks of the SMP coherence model: whatever the
//! interleaving of loads, stores and relocations across cores, the memory
//! behaves like one flat, sequentially consistent store.

use memfwd::{SimConfig, SmpConfig, SmpMachine};
use memfwd_tagmem::{Addr, Pool};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Store { core: u8, word: u8, value: u64 },
    Load { core: u8, word: u8 },
    Relocate { core: u8, word: u8 },
    Barrier,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..4, 0u8..16, any::<u64>())
            .prop_map(|(core, word, value)| Op::Store { core, word, value }),
        4 => (0u8..4, 0u8..16).prop_map(|(core, word)| Op::Load { core, word }),
        1 => (0u8..4, 0u8..16).prop_map(|(core, word)| Op::Relocate { core, word }),
        1 => Just(Op::Barrier),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn smp_memory_is_sequentially_consistent_with_relocation(
        ops in proptest::collection::vec(op_strategy(), 1..150)
    ) {
        let mut m = SmpMachine::new(
            SmpConfig { cores: 4, ..SmpConfig::default() },
            SimConfig::default(),
        );
        let mut pool = Pool::new(4096);
        // 16 shared words, each its own object so relocation is per-word.
        let homes: Vec<Addr> = (0..16).map(|_| m.malloc(8)).collect();
        let mut current: Vec<Addr> = homes.clone();
        let mut model: HashMap<u8, u64> = HashMap::new();

        for op in ops {
            match op {
                Op::Store { core, word, value } => {
                    // Half the stores go through the ORIGINAL address.
                    let addr = if value % 2 == 0 { homes[word as usize] } else { current[word as usize] };
                    m.store(core as usize % 4, addr, 8, value);
                    model.insert(word, value);
                }
                Op::Load { core, word } => {
                    let addr = if word % 2 == 0 { homes[word as usize] } else { current[word as usize] };
                    let got = m.load(core as usize % 4, addr, 8);
                    prop_assert_eq!(got, model.get(&word).copied().unwrap_or(0));
                }
                Op::Relocate { core, word } => {
                    let tgt = m.pool_alloc(&mut pool, 8);
                    // Relocate via the oldest name: appends to the chain end.
                    m.relocate(core as usize % 4, homes[word as usize], tgt, 1);
                    current[word as usize] = tgt;
                }
                Op::Barrier => m.barrier(),
            }
        }
        // Every word readable from every core through either name.
        for w in 0..16u8 {
            let want = model.get(&w).copied().unwrap_or(0);
            for core in 0..4 {
                prop_assert_eq!(m.load(core, homes[w as usize], 8), want);
                prop_assert_eq!(m.load(core, current[w as usize], 8), want);
            }
        }
    }

    #[test]
    fn core_clocks_never_run_backwards(ops in proptest::collection::vec((0u8..3, 0u8..8), 1..100)) {
        let mut m = SmpMachine::new(
            SmpConfig { cores: 3, ..SmpConfig::default() },
            SimConfig::default(),
        );
        let a = m.malloc(64);
        let mut last_total = 0;
        for (core, word) in ops {
            m.store(core as usize, a.add_words(u64::from(word)), 8, 1);
            let now = m.cycles();
            prop_assert!(now >= last_total);
            last_total = now;
        }
        let t = m.total_stats();
        prop_assert_eq!(t.hits + t.misses, t.loads + t.stores);
    }
}
