//! Batched demand references.
//!
//! Applications mostly issue short, basic-block-sized windows of references
//! whose addresses are all known at emission time: payload field reads on a
//! just-visited node, the member stores of an initializer, an array-chunk
//! scan. [`RefBatch`] lets an application emit such a window as data and
//! hand the whole thing to [`Machine::run_batch`], which consumes it in one
//! call: one fast-path eligibility check, one forwarding-bitmap span scan
//! (the chunked u64-lane kernel in `memfwd-tagmem`), and a tight dispatch
//! loop, instead of one fully general demand call per reference.
//!
//! Intra-batch dependences are expressed positionally ([`BatchDep::Prev`]):
//! op *k* may consume the completion token of any earlier op in the same
//! batch, so pointer-style serialization inside the window is modelled
//! faithfully without the caller juggling tokens.
//!
//! The batch path is **bit-identical** to issuing the same operations
//! through [`Machine::load_dep`]/[`Machine::store_dep`] one at a time: each
//! op goes through exactly the same demand machinery in the same order, and
//! the span pre-scan only decides whether the per-op fast-path probe can be
//! entered directly. `SimConfig::scalar_path` (`--scalar`) forces the fully
//! general path for every op, which the differential tests use to prove the
//! identity on whole application runs.
//!
//! [`BatchOut`] is caller-owned and reusable: in steady state a
//! batch-emitting loop performs no host allocation at all.

use crate::fault::{record_last_fault, MachineFault};
use crate::machine::Machine;
use memfwd_cpu::Token;
use memfwd_tagmem::{Addr, WORD_BYTES};

/// Maximum operations per batch — sized like a generous basic block /
/// dispatch window, and small enough that a batch's token file lives in
/// one cache line's worth of state.
pub const BATCH_CAPACITY: usize = 32;

/// Address-dependence of one batched operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchDep {
    /// The address is available at dispatch.
    Ready,
    /// The op depends on a token produced before the batch (e.g. the load
    /// of the node pointer the batch's fields hang off).
    External(Token),
    /// The op depends on the completion of an earlier op *in this batch*
    /// (by index). Must reference a strictly earlier slot.
    Prev(u8),
}

/// One batched demand reference.
#[derive(Debug, Clone, Copy)]
pub struct BatchOp {
    /// Store (`true`) or load (`false`).
    pub is_store: bool,
    /// Initial (pre-forwarding) address.
    pub addr: Addr,
    /// Access size in bytes (1, 2, 4 or 8).
    pub size: u8,
    /// Value to store (ignored for loads).
    pub val: u64,
    /// Address dependence.
    pub dep: BatchDep,
}

const NOP: BatchOp = BatchOp {
    is_store: false,
    addr: Addr(0),
    size: WORD_BYTES as u8,
    val: 0,
    dep: BatchDep::Ready,
};

/// A fixed-capacity window of demand references, filled by an application
/// and consumed whole by [`Machine::run_batch`].
#[derive(Debug)]
pub struct RefBatch {
    ops: [BatchOp; BATCH_CAPACITY],
    len: usize,
    /// Optional contiguous word span covering every op's target, set by
    /// the emitter when it knows one (e.g. the fields of a single record).
    /// Enables the batch-level forwarding-bitmap pre-scan.
    span: Option<(Addr, u64)>,
}

impl Default for RefBatch {
    fn default() -> Self {
        RefBatch::new()
    }
}

impl RefBatch {
    /// An empty batch.
    pub fn new() -> RefBatch {
        RefBatch {
            ops: [NOP; BATCH_CAPACITY],
            len: 0,
            span: None,
        }
    }

    /// Empties the batch for reuse.
    pub fn clear(&mut self) {
        self.len = 0;
        self.span = None;
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when the batch cannot take another operation.
    pub fn is_full(&self) -> bool {
        self.len == BATCH_CAPACITY
    }

    /// Declares that every op in the batch targets a word inside the
    /// contiguous `n_words`-word span starting at `base`'s word. The span
    /// is a performance hint only — it lets [`Machine::run_batch`] certify
    /// the whole window unforwarded with one chunked bitmap scan.
    pub fn set_span(&mut self, base: Addr, n_words: u64) {
        self.span = Some((base, n_words));
    }

    pub(crate) fn span(&self) -> Option<(Addr, u64)> {
        self.span
    }

    pub(crate) fn op(&self, i: usize) -> BatchOp {
        self.ops[i]
    }

    /// Queues a load; returns its batch index (usable as a
    /// [`BatchDep::Prev`] target by later ops).
    ///
    /// # Panics
    ///
    /// Panics if the batch is full or `dep` references this or a later slot.
    pub fn push_load(&mut self, addr: Addr, size: u64, dep: BatchDep) -> usize {
        self.push(BatchOp {
            is_store: false,
            addr,
            size: size as u8,
            val: 0,
            dep,
        })
    }

    /// Queues a store; returns its batch index.
    ///
    /// # Panics
    ///
    /// As for [`RefBatch::push_load`].
    pub fn push_store(&mut self, addr: Addr, size: u64, val: u64, dep: BatchDep) -> usize {
        self.push(BatchOp {
            is_store: true,
            addr,
            size: size as u8,
            val,
            dep,
        })
    }

    fn push(&mut self, op: BatchOp) -> usize {
        assert!(self.len < BATCH_CAPACITY, "RefBatch overflow");
        if let BatchDep::Prev(i) = op.dep {
            assert!(
                (i as usize) < self.len,
                "BatchDep::Prev must reference an earlier op"
            );
        }
        self.ops[self.len] = op;
        self.len += 1;
        self.len - 1
    }
}

/// Reusable results arena for [`Machine::run_batch`]: per-op load values
/// and completion tokens. Allocation happens on first use and is amortized
/// away across batches.
#[derive(Debug, Default)]
pub struct BatchOut {
    vals: Vec<u64>,
    toks: Vec<Token>,
}

impl BatchOut {
    /// An empty results arena.
    pub fn new() -> BatchOut {
        BatchOut::default()
    }

    /// Loaded value of op `i` (0 for stores).
    pub fn val(&self, i: usize) -> u64 {
        self.vals[i]
    }

    /// Completion token of op `i`.
    pub fn tok(&self, i: usize) -> Token {
        self.toks[i]
    }

    /// Completion token of the batch's last op (`Token::ready()` when the
    /// batch was empty).
    pub fn last_tok(&self) -> Token {
        self.toks.last().copied().unwrap_or_else(Token::ready)
    }

    pub(crate) fn reset(&mut self) {
        self.vals.clear();
        self.toks.clear();
        if self.vals.capacity() < BATCH_CAPACITY {
            self.vals.reserve(BATCH_CAPACITY);
            self.toks.reserve(BATCH_CAPACITY);
        }
    }

    /// Appends one op's result — the speculative interpreter's
    /// [`crate::epoch`] batch path fills the arena through this.
    pub(crate) fn push_result(&mut self, val: u64, tok: Token) {
        self.vals.push(val);
        self.toks.push(tok);
    }
}

impl Machine {
    /// Consumes a whole reference batch, leaving per-op results in `out`.
    ///
    /// Equivalent — statistic for statistic, cycle for cycle — to issuing
    /// the ops through the one-at-a-time demand API in batch order. When
    /// the machine is fast-path eligible and the batch's span hint scans
    /// forwarding-clear, every op enters the streamlined path directly.
    ///
    /// # Panics
    ///
    /// As for [`Machine::load`] (the simulated program is aborted on a
    /// machine fault). [`Machine::try_run_batch`] is the non-panicking
    /// twin.
    pub fn run_batch(&mut self, batch: &RefBatch, out: &mut BatchOut) {
        if let Err(fault) = self.try_run_batch(batch, out) {
            record_last_fault(fault);
            panic!("{fault}");
        }
    }

    /// Fallible [`Machine::run_batch`].
    ///
    /// Ops before the faulting one have completed exactly as in the scalar
    /// sequence; `out` holds their results.
    ///
    /// # Errors
    ///
    /// As for [`Machine::try_load`], from the first op that faults.
    pub fn try_run_batch(
        &mut self,
        batch: &RefBatch,
        out: &mut BatchOut,
    ) -> Result<(), MachineFault> {
        out.reset();
        // One chunked bitmap scan certifies the whole window unforwarded:
        // every op may then enter the streamlined path directly, skipping
        // the per-op general-path dispatch. Pure pre-check — a batch that
        // fails it (or has no span hint) runs op-by-op through the same
        // gate `try_demand` applies anyway, so results are identical.
        let span_clear = self.fast_path_enabled()
            && batch
                .span()
                .is_some_and(|(base, n)| self.mem.fbits_clear_range(base, n));
        for i in 0..batch.len() {
            let op = batch.op(i);
            let dep = match op.dep {
                BatchDep::Ready => Token::ready(),
                BatchDep::External(t) => t,
                BatchDep::Prev(j) => out.tok(j as usize),
            };
            let size = u64::from(op.size);
            let r = if span_clear {
                // The span scan proved the fbit clear; the probe inside
                // `demand_fast` re-confirms it for free on the word read.
                match self.demand_fast(op.is_store, op.addr, size, op.val, dep) {
                    Some(r) => Ok(r),
                    None => self.try_demand_entry(op.is_store, op.addr, size, op.val, dep),
                }
            } else {
                self.try_demand_entry(op.is_store, op.addr, size, op.val, dep)
            };
            let (v, t) = r?;
            out.vals.push(v);
            out.toks.push(t);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn machine() -> Machine {
        Machine::new(SimConfig::default())
    }

    /// The bit-identity contract, in miniature: the same op sequence via
    /// run_batch and via the scalar API must leave two machines in
    /// statistically identical states.
    #[test]
    fn batch_matches_scalar_sequence() {
        let build = |batched: bool| {
            let mut m = machine();
            let a = m.malloc(256);
            // A store window, then a dependent read-back window.
            if batched {
                let mut b = RefBatch::new();
                b.set_span(a, 8);
                for i in 0..8u64 {
                    b.push_store(a.add_words(i), 8, 100 + i, BatchDep::Ready);
                }
                let mut out = BatchOut::new();
                m.run_batch(&b, &mut out);
                b.clear();
                b.set_span(a, 8);
                let first = b.push_load(a, 8, BatchDep::Ready);
                for i in 1..8u64 {
                    b.push_load(a.add_words(i), 4, BatchDep::Prev(first as u8));
                }
                m.run_batch(&b, &mut out);
                let got: Vec<u64> = (0..8).map(|i| out.val(i)).collect();
                (m.finish(), got)
            } else {
                for i in 0..8u64 {
                    m.store_dep(a.add_words(i), 8, 100 + i, Token::ready());
                }
                let (v0, t0) = m.load_dep(a, 8, Token::ready());
                let mut got = vec![v0];
                for i in 1..8u64 {
                    got.push(m.load_dep(a.add_words(i), 4, t0).0);
                }
                (m.finish(), got)
            }
        };
        let (sb, vb) = build(true);
        let (ss, vs) = build(false);
        assert_eq!(vb, vs);
        assert_eq!(format!("{sb:?}"), format!("{ss:?}"));
    }

    #[test]
    fn batch_matches_scalar_on_forwarded_words() {
        // Forwarded targets force the span scan to fail and every op down
        // the general path — still identical to scalar.
        let build = |batched: bool| {
            let mut m = machine();
            let old = m.malloc(64);
            let new = m.malloc(64);
            for i in 0..4u64 {
                m.store_word(new.add_words(i), 7 + i);
                m.unforwarded_write(old.add_words(i), new.add_words(i).0, true);
            }
            let vals: Vec<u64> = if batched {
                let mut b = RefBatch::new();
                b.set_span(old, 4);
                for i in 0..4u64 {
                    b.push_load(old.add_words(i), 8, BatchDep::Ready);
                }
                let mut out = BatchOut::new();
                m.run_batch(&b, &mut out);
                (0..4).map(|i| out.val(i)).collect()
            } else {
                (0..4u64).map(|i| m.load_word(old.add_words(i))).collect()
            };
            (m.finish(), vals)
        };
        let (sb, vb) = build(true);
        let (ss, vs) = build(false);
        assert_eq!(vb, vs);
        assert_eq!(vb, vec![7, 8, 9, 10]);
        assert_eq!(format!("{sb:?}"), format!("{ss:?}"));
    }

    #[test]
    fn batch_faults_are_typed_and_prefix_completes() {
        let mut m = machine();
        let a = m.malloc(64);
        let mut b = RefBatch::new();
        b.push_store(a, 8, 1, BatchDep::Ready);
        b.push_load(Addr::NULL, 8, BatchDep::Ready);
        let mut out = BatchOut::new();
        assert!(matches!(
            m.try_run_batch(&b, &mut out),
            Err(MachineFault::NullDeref { is_store: false })
        ));
        assert_eq!(out.toks.len(), 1, "prefix before the fault completed");
        assert_eq!(m.load_word(a), 1);
    }

    #[test]
    #[should_panic(expected = "earlier op")]
    fn forward_prev_dep_rejected() {
        let mut b = RefBatch::new();
        b.push_load(Addr(64), 8, BatchDep::Prev(0));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_rejected() {
        let mut b = RefBatch::new();
        for _ in 0..=BATCH_CAPACITY {
            b.push_load(Addr(64), 8, BatchDep::Ready);
        }
    }
}
