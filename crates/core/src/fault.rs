//! Typed machine faults (the recoverable-exception story of paper §3.2).
//!
//! The paper's safety argument is that every stray access to relocated data
//! is either forwarded transparently or raised as a *recoverable* exception
//! that software can repair (hop-limit exceptions with an accurate cycle
//! check, user-level traps that fix stray pointers on the fly). This module
//! gives that story a first-class type: every abnormal condition the
//! simulated machine can encounter is a [`MachineFault`], produced by the
//! fallible `try_*` operations on [`crate::Machine`] (and
//! [`crate::SmpMachine`]), deliverable to a registered supervisor handler
//! (see `Machine::set_fault_handler`), and reportable by the CLI with a distinct exit
//! code.
//!
//! The original infallible API (`load`, `store`, `malloc`, ...) remains and
//! panics with the same messages as before; each such panic first records
//! the typed fault in a thread-local slot so that a harness catching the
//! unwind (e.g. `memfwd_apps::run`) can recover the precise
//! [`MachineFault`] via [`take_last_fault`].
//!
//! # Worked example: repairing a forwarding cycle
//!
//! Mirrors `tests/failure_injection.rs::unforwarded_write_can_repair_a_cycle`,
//! but through the typed API — the supervisor handler receives the fault,
//! repairs the chain with `Unforwarded_Write`, and execution resumes:
//!
//! ```
//! use memfwd::{Machine, MachineFault, SimConfig, TrapOutcome};
//!
//! let mut m = Machine::new(SimConfig::default());
//! let a = m.malloc(8);
//! let b = m.malloc(8);
//! m.unforwarded_write(a, b.0, true);
//! m.unforwarded_write(b, a.0, true); // corrupt: a <-> b
//!
//! // Register a supervisor: make `b` the terminal again, give it the data.
//! m.set_fault_handler(Box::new(move |m, fault| {
//!     assert!(matches!(fault, MachineFault::ForwardingCycle { .. }));
//!     m.unforwarded_write(b, 4242, false);
//!     TrapOutcome::Retry
//! }));
//!
//! // The access faults, the handler repairs, the access retries: no abort.
//! assert_eq!(m.try_load_word(a).unwrap(), 4242);
//! ```

use crate::snapshot::SnapshotError;
use memfwd_tagmem::{Addr, CycleError, TagMemError};
use std::cell::Cell;
use std::error::Error;
use std::fmt;

/// Every abnormal condition the simulated machine can raise, typed.
///
/// Display strings deliberately match the panic messages of the legacy
/// infallible API, so `should_panic(expected = ...)` tests and log scrapers
/// keep working unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum MachineFault {
    /// A genuine forwarding cycle: the accurate software check (§3.2)
    /// revisited a chain word. Recoverable by a supervisor that breaks the
    /// cycle with `Unforwarded_Write`.
    ForwardingCycle {
        /// The word whose resolution revisited an earlier chain element.
        at: Addr,
        /// Hops performed before the cycle closed.
        hops: u32,
    },
    /// The simulated heap cannot satisfy an allocation request.
    HeapExhausted {
        /// Size of the failed request in bytes.
        requested: u64,
    },
    /// A relocation pool cannot obtain a new slab from the heap.
    PoolExhausted {
        /// Size of the failed request in bytes.
        requested: u64,
    },
    /// A data access that is not naturally aligned (or of an unsupported
    /// size) — a bug in the simulated program, as on the paper's MIPS
    /// target.
    Misaligned {
        /// The offending address.
        addr: Addr,
        /// The access size in bytes.
        size: u64,
    },
    /// The simulated program dereferenced the null address.
    NullDeref {
        /// Whether the faulting reference was a store.
        is_store: bool,
    },
    /// `free` of an address that is not the base of a live allocation.
    InvalidFree {
        /// The offending address.
        addr: Addr,
    },
    /// A forwarding chain exceeded the configured hard hop budget
    /// ([`crate::SimConfig::hard_hop_budget`]) without terminating. Unlike
    /// [`MachineFault::ForwardingCycle`] the chain may be acyclic — the
    /// machine refuses pathological chains outright (graceful degradation
    /// under corruption).
    HopLimitExceeded {
        /// The last chain word reached before the budget ran out.
        at: Addr,
        /// Hops performed (equals the budget).
        hops: u32,
    },
    /// A checkpoint snapshot could not be restored: truncated, bit-flipped,
    /// version-skewed, or written under a different configuration. The
    /// snapshot is rejected wholesale — never partially applied.
    CorruptSnapshot {
        /// Why the snapshot was rejected.
        error: SnapshotError,
    },
    /// The progress watchdog observed a demand reference stalled past
    /// [`crate::WatchdogConfig::stall_cycles`] cycles without graduating.
    NoProgress {
        /// The initial address of the stalled reference.
        at: Addr,
        /// Cycles the reference spent from issue to (would-be) completion.
        stalled: u64,
    },
    /// The progress watchdog observed more forwarding-walk hops within its
    /// sliding window than [`crate::WatchdogConfig::walk_hop_budget`]
    /// allows — the signature of a forwarding livelock.
    WalkStorm {
        /// Total hops walked within the window.
        hops: u64,
        /// Window length in demand references.
        window: u64,
    },
}

impl fmt::Display for MachineFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MachineFault::ForwardingCycle { at, hops } => {
                write!(
                    f,
                    "forwarding cycle at {at} after {hops} hops: execution aborted"
                )
            }
            MachineFault::HeapExhausted { requested } => {
                write!(f, "simulated heap exhausted by {requested}-byte request")
            }
            MachineFault::PoolExhausted { requested } => {
                write!(
                    f,
                    "simulated heap exhausted by {requested}-byte relocation-pool request"
                )
            }
            MachineFault::Misaligned { addr, size } => {
                if matches!(size, 1 | 2 | 4 | 8) {
                    write!(f, "misaligned {size}-byte access at {addr}")
                } else {
                    write!(f, "unsupported access size {size} at {addr}")
                }
            }
            MachineFault::NullDeref { is_store: _ } => {
                write!(f, "null dereference in simulated program")
            }
            MachineFault::InvalidFree { addr } => {
                write!(f, "free of non-allocated address {addr}")
            }
            MachineFault::HopLimitExceeded { at, hops } => {
                write!(
                    f,
                    "forwarding hop budget exceeded at {at} after {hops} hops"
                )
            }
            MachineFault::CorruptSnapshot { error } => {
                write!(f, "corrupt snapshot rejected: {error}")
            }
            MachineFault::NoProgress { at, stalled } => {
                write!(
                    f,
                    "watchdog: no progress at {at} after {stalled} stalled cycles"
                )
            }
            MachineFault::WalkStorm { hops, window } => {
                write!(
                    f,
                    "watchdog: forwarding walk storm ({hops} hops within {window} references)"
                )
            }
        }
    }
}

impl Error for MachineFault {}

impl From<CycleError> for MachineFault {
    fn from(c: CycleError) -> Self {
        MachineFault::ForwardingCycle {
            at: c.at,
            hops: c.hops,
        }
    }
}

impl From<TagMemError> for MachineFault {
    fn from(e: TagMemError) -> Self {
        match e {
            TagMemError::Cycle(c) => c.into(),
            TagMemError::OutOfMemory { requested } => MachineFault::HeapExhausted { requested },
            TagMemError::InvalidFree { addr } => MachineFault::InvalidFree { addr },
            TagMemError::Misaligned { addr, size } => MachineFault::Misaligned { addr, size },
            _ => MachineFault::HeapExhausted { requested: 0 },
        }
    }
}

impl MachineFault {
    /// A short stable name for the fault kind (used by the CLI report).
    pub fn kind(&self) -> &'static str {
        match self {
            MachineFault::ForwardingCycle { .. } => "forwarding-cycle",
            MachineFault::HeapExhausted { .. } => "heap-exhausted",
            MachineFault::PoolExhausted { .. } => "pool-exhausted",
            MachineFault::Misaligned { .. } => "misaligned",
            MachineFault::NullDeref { .. } => "null-deref",
            MachineFault::InvalidFree { .. } => "invalid-free",
            MachineFault::HopLimitExceeded { .. } => "hop-limit-exceeded",
            MachineFault::CorruptSnapshot { .. } => "corrupt-snapshot",
            MachineFault::NoProgress { .. } => "no-progress",
            MachineFault::WalkStorm { .. } => "walk-storm",
        }
    }

    /// A distinct, stable process exit code per fault kind (the `memfwd_sim`
    /// CLI exits with this when a run faults). Codes start at 10 to stay
    /// clear of conventional codes 0–2.
    pub fn exit_code(&self) -> i32 {
        match self {
            MachineFault::ForwardingCycle { .. } => 10,
            MachineFault::HeapExhausted { .. } => 11,
            MachineFault::PoolExhausted { .. } => 12,
            MachineFault::Misaligned { .. } => 13,
            MachineFault::NullDeref { .. } => 14,
            MachineFault::InvalidFree { .. } => 15,
            MachineFault::HopLimitExceeded { .. } => 16,
            MachineFault::CorruptSnapshot { .. } => 17,
            MachineFault::NoProgress { .. } => 18,
            MachineFault::WalkStorm { .. } => 19,
        }
    }
}

impl From<SnapshotError> for MachineFault {
    fn from(error: SnapshotError) -> Self {
        MachineFault::CorruptSnapshot { error }
    }
}

thread_local! {
    static LAST_FAULT: Cell<Option<MachineFault>> = const { Cell::new(None) };
}

/// Records `fault` in the thread-local last-fault slot. Called by the
/// infallible API wrappers immediately before they panic, so a harness that
/// catches the unwind can recover the typed fault with [`take_last_fault`].
pub fn record_last_fault(fault: MachineFault) {
    LAST_FAULT.with(|c| c.set(Some(fault)));
}

/// Takes (and clears) the most recently recorded fault on this thread.
///
/// Returns `None` if no machine fault has been recorded since the last
/// take — in particular, a caught panic with no recorded fault did *not*
/// originate from the machine's fault paths and should be re-raised.
pub fn take_last_fault() -> Option<MachineFault> {
    LAST_FAULT.with(|c| c.take())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_panic_messages() {
        assert_eq!(
            MachineFault::ForwardingCycle {
                at: Addr(0x100),
                hops: 3
            }
            .to_string(),
            "forwarding cycle at 0x100 after 3 hops: execution aborted"
        );
        assert_eq!(
            MachineFault::HeapExhausted { requested: 64 }.to_string(),
            "simulated heap exhausted by 64-byte request"
        );
        assert!(MachineFault::PoolExhausted { requested: 8 }
            .to_string()
            .contains("simulated heap exhausted"));
        assert_eq!(
            MachineFault::Misaligned {
                addr: Addr(0x1001),
                size: 4
            }
            .to_string(),
            "misaligned 4-byte access at 0x1001"
        );
        assert_eq!(
            MachineFault::Misaligned {
                addr: Addr(0x1000),
                size: 3
            }
            .to_string(),
            "unsupported access size 3 at 0x1000"
        );
        assert_eq!(
            MachineFault::NullDeref { is_store: false }.to_string(),
            "null dereference in simulated program"
        );
        assert_eq!(
            MachineFault::InvalidFree { addr: Addr(8) }.to_string(),
            "free of non-allocated address 0x8"
        );
        assert!(MachineFault::HopLimitExceeded {
            at: Addr(1),
            hops: 9
        }
        .to_string()
        .contains("hop budget"));
    }

    #[test]
    fn conversions() {
        let c = CycleError {
            at: Addr(0x10),
            hops: 2,
        };
        assert_eq!(
            MachineFault::from(c),
            MachineFault::ForwardingCycle {
                at: Addr(0x10),
                hops: 2
            }
        );
        assert_eq!(
            MachineFault::from(TagMemError::OutOfMemory { requested: 9 }),
            MachineFault::HeapExhausted { requested: 9 }
        );
        assert_eq!(
            MachineFault::from(TagMemError::InvalidFree { addr: Addr(4) }),
            MachineFault::InvalidFree { addr: Addr(4) }
        );
    }

    #[test]
    fn exit_codes_are_distinct() {
        let faults = [
            MachineFault::ForwardingCycle {
                at: Addr(0),
                hops: 0,
            },
            MachineFault::HeapExhausted { requested: 0 },
            MachineFault::PoolExhausted { requested: 0 },
            MachineFault::Misaligned {
                addr: Addr(0),
                size: 0,
            },
            MachineFault::NullDeref { is_store: false },
            MachineFault::InvalidFree { addr: Addr(0) },
            MachineFault::HopLimitExceeded {
                at: Addr(0),
                hops: 0,
            },
            MachineFault::CorruptSnapshot {
                error: SnapshotError::Truncated,
            },
            MachineFault::NoProgress {
                at: Addr(0),
                stalled: 0,
            },
            MachineFault::WalkStorm { hops: 0, window: 0 },
        ];
        let mut codes: Vec<i32> = faults.iter().map(|f| f.exit_code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), faults.len());
        for f in &faults {
            assert!(!f.kind().is_empty());
        }
    }

    #[test]
    fn last_fault_slot_records_and_clears() {
        assert_eq!(take_last_fault(), None);
        record_last_fault(MachineFault::NullDeref { is_store: true });
        assert_eq!(
            take_last_fault(),
            Some(MachineFault::NullDeref { is_store: true })
        );
        assert_eq!(take_last_fault(), None, "taking clears the slot");
    }
}
