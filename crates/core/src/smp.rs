//! A small shared-memory multiprocessor model for the paper's §2.2
//! *Reducing False Sharing* optimization.
//!
//! In a cache-coherent system, false sharing occurs when two processors
//! access distinct data items that happen to fall within the same cache
//! line (the unit of coherence) and at least one access is a write: the
//! line ping-pongs between the caches although no real communication takes
//! place. Relocating the unrelated items to distinct lines fixes it — and
//! memory forwarding makes that relocation safe even when not all pointers
//! to the items can be updated.
//!
//! The model: each core has a private L1 with an MSI invalidation protocol
//! over a shared tagged memory, and its own cycle clock (cores are
//! synchronized explicitly with [`SmpMachine::barrier`]). Loads and stores
//! follow forwarding chains exactly as the uniprocessor machine does.
//! Coherence misses are classified as *true* or *false* sharing by
//! tracking which words of a line each core actually touched.

use crate::config::SimConfig;
use crate::fault::{record_last_fault, MachineFault};
use crate::inject::{Corruption, InjectKind, Injector};
use memfwd_cache::CacheLevel;
use memfwd_tagmem::{validate_access, Addr, Heap, Pool, TaggedMemory, DEFAULT_HOP_LIMIT};
use std::collections::HashMap;

/// Configuration of the SMP model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmpConfig {
    /// Number of processors.
    pub cores: usize,
    /// Cache line size (the coherence unit).
    pub line_bytes: u64,
    /// L1 hit latency in cycles.
    pub hit_latency: u64,
    /// Latency of a miss serviced by memory (or another cache).
    pub miss_latency: u64,
    /// Extra latency when a miss also had to invalidate remote copies.
    pub invalidate_latency: u64,
    /// Extra cycles per forwarding hop.
    pub fwd_hop_penalty: u64,
}

impl Default for SmpConfig {
    fn default() -> Self {
        SmpConfig {
            cores: 4,
            line_bytes: 64,
            hit_latency: 1,
            miss_latency: 60,
            invalidate_latency: 20,
            fwd_hop_penalty: 4,
        }
    }
}

/// One entry of the optional SMP event trace (see
/// [`SmpMachine::enable_event_trace`]).
///
/// The trace records the logical shared-memory behaviour of a campaign —
/// which core touched which word, and where the global barriers fell — in
/// execution order. It is the input to the happens-before race detector in
/// `memfwd-analyze`: with barriers as the only synchronization primitive,
/// two accesses to the same word by different cores race unless a barrier
/// separates them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmpEvent {
    /// A coherent access by `core` to the word at `word` (a word-base
    /// address). Forwarding-chain reads during a walk and the
    /// forwarding-address installs done by [`SmpMachine::relocate`] appear
    /// here too — chain words are shared data like any other.
    Access {
        /// The accessing core.
        core: usize,
        /// Word-base address of the touched word.
        word: Addr,
        /// True for a store (including a forwarding-address install).
        is_store: bool,
    },
    /// A global [`SmpMachine::barrier`].
    Barrier,
}

/// Per-core statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoreStats {
    /// Loads issued by this core.
    pub loads: u64,
    /// Stores issued by this core.
    pub stores: u64,
    /// L1 hits.
    pub hits: u64,
    /// Misses of any kind.
    pub misses: u64,
    /// Misses caused by coherence (a remote write invalidated our copy, or
    /// our write had to invalidate remote copies).
    pub coherence_misses: u64,
    /// Coherence misses where the conflicting cores touched disjoint words
    /// of the line — false sharing.
    pub false_sharing_misses: u64,
    /// References that dereferenced at least one forwarding address.
    pub forwarded: u64,
}

#[derive(Debug, Default, Clone)]
pub(crate) struct LineInfo {
    /// Which cores hold the line (bitmask).
    pub(crate) sharers: u32,
    /// Core holding the line modified, if any.
    pub(crate) owner: Option<usize>,
    /// Per-core mask of words of this line the core has touched since it
    /// last (re)acquired the line.
    pub(crate) touched: HashMap<usize, u64>,
    /// Word mask written by the last writer.
    pub(crate) written: u64,
}

pub(crate) struct Core {
    pub(crate) l1: CacheLevel,
    pub(crate) now: u64,
    pub(crate) stats: CoreStats,
}

/// The multiprocessor machine.
///
/// # Example
///
/// ```
/// use memfwd::{SmpConfig, SmpMachine};
///
/// let mut smp = SmpMachine::new(SmpConfig::default(), Default::default());
/// let a = smp.malloc(16);
/// smp.store(0, a, 8, 7);
/// smp.barrier();
/// assert_eq!(smp.load(1, a, 8), 7);
/// ```
pub struct SmpMachine {
    pub(crate) cfg: SmpConfig,
    pub(crate) sim: SimConfig,
    pub(crate) mem: TaggedMemory,
    pub(crate) heap: Heap,
    pub(crate) cores: Vec<Core>,
    pub(crate) lines: HashMap<u64, LineInfo>,
    pub(crate) injector: Option<Injector>,
    pub(crate) injected_faults: u64,
    pub(crate) fault_repairs: u64,
    /// Optional event trace for the happens-before race detector. Purely
    /// observational — enabling it changes no timing or statistics — and
    /// transient: snapshots neither save nor restore it.
    pub(crate) events: Option<Vec<SmpEvent>>,
}

impl SmpMachine {
    /// Builds an SMP machine; `sim` supplies the heap layout parameters.
    pub fn new(cfg: SmpConfig, sim: SimConfig) -> SmpMachine {
        assert!(cfg.cores >= 1 && cfg.cores <= 32);
        let l1cfg = memfwd_cache::CacheLevelConfig {
            size_bytes: 16 * 1024,
            assoc: 2,
            hit_latency: cfg.hit_latency,
        };
        SmpMachine {
            mem: TaggedMemory::new(),
            heap: Heap::new(sim.heap_base, sim.heap_capacity),
            cores: (0..cfg.cores)
                .map(|_| Core {
                    l1: CacheLevel::new(l1cfg, cfg.line_bytes),
                    now: 0,
                    stats: CoreStats::default(),
                })
                .collect(),
            lines: HashMap::new(),
            injector: sim.fault_injection.map(Injector::new),
            injected_faults: 0,
            fault_repairs: 0,
            events: None,
            cfg,
            sim,
        }
    }

    /// Starts recording shared-memory events (accesses and barriers) for
    /// the happens-before race detector, discarding any prior trace. The
    /// trace is observational only: timing, coherence behaviour and
    /// statistics are identical with it on or off.
    pub fn enable_event_trace(&mut self) {
        self.events = Some(Vec::new());
    }

    /// Stops recording and returns the trace collected since
    /// [`SmpMachine::enable_event_trace`], or `None` if tracing was never
    /// enabled.
    pub fn take_event_trace(&mut self) -> Option<Vec<SmpEvent>> {
        self.events.take()
    }

    fn note_event(&mut self, ev: SmpEvent) {
        if let Some(events) = self.events.as_mut() {
            events.push(ev);
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// The coherence-unit size.
    pub fn line_bytes(&self) -> u64 {
        self.cfg.line_bytes
    }

    /// Read-only view of the shared tagged memory.
    pub fn mem(&self) -> &TaggedMemory {
        &self.mem
    }

    /// Per-core statistics.
    pub fn core_stats(&self, core: usize) -> CoreStats {
        self.cores[core].stats
    }

    /// Corruptions injected by the deterministic fault-injection engine.
    pub fn injected_faults(&self) -> u64 {
        self.injected_faults
    }

    /// Injected corruptions repaired by the auto-recovery path.
    pub fn fault_repairs(&self) -> u64 {
        self.fault_repairs
    }

    /// Consults the injector at the head of a coherent access by `core`
    /// and, if a roll hits, corrupts the target word — exactly the
    /// uniprocessor machine's adversary, here racing against all cores'
    /// accesses to shared memory. In recovery mode the corruption is
    /// repaired immediately (the repair is charged to the victim core like
    /// a trap-handler invalidation), so the access that follows always
    /// sees functionally correct memory.
    fn maybe_inject(&mut self, core: usize, addr: Addr) {
        let Some(inj) = self.injector.as_mut() else {
            return;
        };
        let scramble = inj.roll_chain_scramble();
        let flip = !scramble && inj.roll_fbit_flip();
        let recover = inj.config().recover;
        if !(scramble || flip) {
            return;
        }
        let word = addr.word_base();
        if word.is_null() {
            return;
        }
        let (saved_value, saved_fbit) = self.mem.unforwarded_read(word);
        let kind = if scramble {
            InjectKind::ChainScramble
        } else {
            InjectKind::FbitFlip
        };
        match kind {
            InjectKind::ChainScramble => self.mem.unforwarded_write(word, word.0, true),
            InjectKind::FbitFlip => self.mem.set_fbit(word, true),
        }
        self.injected_faults += 1;
        if let Some(inj) = self.injector.as_mut() {
            inj.record(Corruption {
                word,
                saved_value,
                saved_fbit,
                kind,
            });
        }
        if recover {
            let pending = self
                .injector
                .as_mut()
                .map(Injector::drain_log)
                .unwrap_or_default();
            if !pending.is_empty() {
                // Exception dispatch plus one coherent repair write each.
                self.cores[core].now += self.cfg.miss_latency;
                for c in pending.iter().rev() {
                    self.mem
                        .unforwarded_write(c.word, c.saved_value, c.saved_fbit);
                    self.cores[core].now += self.cfg.hit_latency;
                    self.fault_repairs += 1;
                }
            }
        }
    }

    /// Aggregated statistics over all cores.
    pub fn total_stats(&self) -> CoreStats {
        let mut t = CoreStats::default();
        for c in &self.cores {
            t.loads += c.stats.loads;
            t.stores += c.stats.stores;
            t.hits += c.stats.hits;
            t.misses += c.stats.misses;
            t.coherence_misses += c.stats.coherence_misses;
            t.false_sharing_misses += c.stats.false_sharing_misses;
            t.forwarded += c.stats.forwarded;
        }
        t
    }

    /// Execution time so far: the slowest core's clock.
    pub fn cycles(&self) -> u64 {
        self.cores.iter().map(|c| c.now).max().unwrap_or(0)
    }

    /// Synchronizes all core clocks to the slowest (a barrier).
    pub fn barrier(&mut self) {
        let max = self.cycles();
        for c in &mut self.cores {
            c.now = max;
        }
        self.note_event(SmpEvent::Barrier);
    }

    /// Charges `n` ALU cycles to `core`.
    pub fn compute(&mut self, core: usize, n: u64) {
        self.cores[core].now += n;
    }

    /// Fallible [`SmpMachine::malloc`].
    ///
    /// # Errors
    ///
    /// [`MachineFault::HeapExhausted`].
    pub fn try_malloc(&mut self, bytes: u64) -> Result<Addr, MachineFault> {
        self.heap.alloc(bytes).map_err(MachineFault::from)
    }

    /// Allocates shared heap memory (allocation itself is untimed here).
    ///
    /// # Panics
    ///
    /// Panics if the simulated heap is exhausted. [`SmpMachine::try_malloc`]
    /// is the non-panicking twin.
    pub fn malloc(&mut self, bytes: u64) -> Addr {
        self.try_malloc(bytes).unwrap_or_else(|fault| {
            record_last_fault(fault);
            panic!("{fault}");
        })
    }

    /// Fallible [`SmpMachine::pool_alloc`].
    ///
    /// # Errors
    ///
    /// [`MachineFault::PoolExhausted`].
    pub fn try_pool_alloc(&mut self, pool: &mut Pool, bytes: u64) -> Result<Addr, MachineFault> {
        pool.alloc(&mut self.heap, bytes)
            .map_err(|_| MachineFault::PoolExhausted { requested: bytes })
    }

    /// Allocates from a relocation pool.
    ///
    /// # Panics
    ///
    /// Panics if the simulated heap is exhausted.
    /// [`SmpMachine::try_pool_alloc`] is the non-panicking twin.
    pub fn pool_alloc(&mut self, pool: &mut Pool, bytes: u64) -> Addr {
        self.try_pool_alloc(pool, bytes).unwrap_or_else(|fault| {
            record_last_fault(fault);
            panic!("{fault}");
        })
    }

    /// Fallible [`SmpMachine::pool_alloc_aligned`].
    ///
    /// # Errors
    ///
    /// [`MachineFault::PoolExhausted`].
    pub fn try_pool_alloc_aligned(
        &mut self,
        pool: &mut Pool,
        bytes: u64,
        align: u64,
    ) -> Result<Addr, MachineFault> {
        pool.alloc_aligned(&mut self.heap, bytes, align)
            .map_err(|_| MachineFault::PoolExhausted { requested: bytes })
    }

    /// Allocates an `align`-aligned chunk from a relocation pool — the
    /// placement primitive of the false-sharing fix (items must land in
    /// distinct cache lines).
    ///
    /// # Panics
    ///
    /// Panics if the simulated heap is exhausted.
    /// [`SmpMachine::try_pool_alloc_aligned`] is the non-panicking twin.
    pub fn pool_alloc_aligned(&mut self, pool: &mut Pool, bytes: u64, align: u64) -> Addr {
        self.try_pool_alloc_aligned(pool, bytes, align)
            .unwrap_or_else(|fault| {
                record_last_fault(fault);
                panic!("{fault}");
            })
    }

    fn word_mask(&self, addr: Addr, size: u64) -> (u64, u64) {
        let line = addr.0 / self.cfg.line_bytes;
        let word_in_line = (addr.0 % self.cfg.line_bytes) / 8;
        let words = size.div_ceil(8).max(1);
        let mut mask = 0u64;
        for w in 0..words {
            mask |= 1 << (word_in_line + w).min(63);
        }
        (line, mask)
    }

    /// One coherent access by `core`. Returns the access latency.
    fn access(&mut self, core: usize, addr: Addr, size: u64, is_store: bool) -> u64 {
        self.note_event(SmpEvent::Access {
            core,
            word: addr.word_base(),
            is_store,
        });
        let (line, mask) = self.word_mask(addr, size);
        let info = self.lines.entry(line).or_default();
        let had_copy = self.cores[core].l1.lookup(line);
        let bit = 1u32 << core;

        // Valid for a load if we are a sharer; for a store only if we are
        // the exclusive owner.
        let coherent = if is_store {
            info.owner == Some(core) && info.sharers == bit
        } else {
            info.sharers & bit != 0
        };

        let mut latency;
        if had_copy && coherent {
            latency = self.cfg.hit_latency;
            self.cores[core].stats.hits += 1;
        } else {
            latency = self.cfg.miss_latency;
            self.cores[core].stats.misses += 1;
            // Was this a coherence miss? We had lost (or never upgraded)
            // the line while some other core held it.
            let remote = info.sharers & !bit != 0;
            if remote && (is_store || info.owner.is_some_and(|o| o != core)) {
                self.cores[core].stats.coherence_misses += 1;
                // False sharing: the words we access are disjoint from the
                // words the conflicting writer wrote.
                let conflict_written = info.written;
                let ours = mask | info.touched.get(&core).copied().unwrap_or(0);
                if conflict_written & ours == 0 && (is_store || conflict_written != 0) {
                    self.cores[core].stats.false_sharing_misses += 1;
                }
            }
            if is_store {
                if remote {
                    latency += self.cfg.invalidate_latency;
                    // Invalidate all remote copies.
                    for other in 0..self.cores.len() {
                        if other != core && info.sharers & (1 << other) != 0 {
                            self.cores[other].l1.invalidate(line);
                            info.touched.remove(&other);
                        }
                    }
                }
                info.sharers = bit;
                info.owner = Some(core);
                info.written = mask;
            } else {
                // A load demotes a remote owner to sharer.
                if info.owner.is_some_and(|o| o != core) {
                    info.owner = None;
                }
                info.sharers |= bit;
            }
            if !self.cores[core].l1.probe(line) {
                self.cores[core].l1.fill(line, is_store);
            }
        }
        if is_store {
            info.written |= mask;
            info.owner = Some(core);
        }
        *info.touched.entry(core).or_default() |= mask;
        if is_store {
            self.cores[core].stats.stores += 1;
        } else {
            self.cores[core].stats.loads += 1;
        }
        latency
    }

    /// Fallible [`SmpMachine::load`].
    ///
    /// # Errors
    ///
    /// [`MachineFault::NullDeref`], [`MachineFault::Misaligned`], or
    /// [`MachineFault::ForwardingCycle`].
    pub fn try_load(&mut self, core: usize, addr: Addr, size: u64) -> Result<u64, MachineFault> {
        if addr.is_null() {
            return Err(MachineFault::NullDeref { is_store: false });
        }
        validate_access(addr, size)?;
        self.maybe_inject(core, addr);
        let final_addr = self.try_walk(core, addr)?;
        self.validate_final(final_addr, size, false)?;
        let lat = self.access(core, final_addr, size, false);
        self.cores[core].now += lat;
        Ok(self.mem.read_data(final_addr, size))
    }

    /// A coherent, forwarding-aware load by `core`.
    ///
    /// # Panics
    ///
    /// Panics on misalignment or a forwarding cycle.
    /// [`SmpMachine::try_load`] is the non-panicking twin.
    pub fn load(&mut self, core: usize, addr: Addr, size: u64) -> u64 {
        self.try_load(core, addr, size).unwrap_or_else(|fault| {
            record_last_fault(fault);
            panic!("{fault}");
        })
    }

    /// Fallible [`SmpMachine::store`].
    ///
    /// # Errors
    ///
    /// As for [`SmpMachine::try_load`].
    pub fn try_store(
        &mut self,
        core: usize,
        addr: Addr,
        size: u64,
        value: u64,
    ) -> Result<(), MachineFault> {
        if addr.is_null() {
            return Err(MachineFault::NullDeref { is_store: true });
        }
        validate_access(addr, size)?;
        self.maybe_inject(core, addr);
        let final_addr = self.try_walk(core, addr)?;
        self.validate_final(final_addr, size, true)?;
        let lat = self.access(core, final_addr, size, true);
        self.cores[core].now += lat;
        self.mem.write_data(final_addr, size, value);
        Ok(())
    }

    /// A coherent, forwarding-aware store by `core`.
    ///
    /// # Panics
    ///
    /// Panics on misalignment or a forwarding cycle.
    /// [`SmpMachine::try_store`] is the non-panicking twin.
    pub fn store(&mut self, core: usize, addr: Addr, size: u64, value: u64) {
        if let Err(fault) = self.try_store(core, addr, size, value) {
            record_last_fault(fault);
            panic!("{fault}");
        }
    }

    /// Re-validates the address a forwarding walk landed on: a healthy
    /// chain preserves the (already validated) access offset, but a
    /// corrupted forwarding word can point anywhere.
    fn validate_final(
        &self,
        final_addr: Addr,
        size: u64,
        is_store: bool,
    ) -> Result<(), MachineFault> {
        if final_addr.is_null() {
            return Err(MachineFault::NullDeref { is_store });
        }
        validate_access(final_addr, size)?;
        Ok(())
    }

    /// Resolves `addr` through the forwarding chain with coherent, timed
    /// reads of each chain word. Runs the hop counter with the accurate
    /// software cycle check of §3.2 (same switchover as the uniprocessor
    /// machine) instead of a blunt iteration guard.
    fn try_walk(&mut self, core: usize, addr: Addr) -> Result<Addr, MachineFault> {
        let mut cur = addr;
        let mut hops = 0u32;
        let mut counter = 0u32;
        let mut checking = false;
        // Lazily populated: `Vec::new` does not allocate, and nothing is
        // pushed until a hop-limit exception engages the accurate check.
        let mut scratch: Vec<Addr> = Vec::new();
        loop {
            // Word and forwarding bit in one page lookup.
            let (fwd, fbit) = self.mem.read_word_tagged(cur);
            if !fbit {
                break;
            }
            // The forwarding word itself is read coherently.
            let lat = self.access(core, cur.word_base(), 8, false);
            self.cores[core].now += lat + self.cfg.fwd_hop_penalty;
            let next = Addr(fwd) + cur.word_offset();
            hops += 1;
            counter += 1;
            if checking {
                if scratch.contains(&next.word_base()) {
                    return Err(MachineFault::ForwardingCycle {
                        at: next.word_base(),
                        hops,
                    });
                }
                scratch.push(next.word_base());
            } else if counter > DEFAULT_HOP_LIMIT {
                scratch.push(cur.word_base());
                scratch.push(next.word_base());
                checking = true;
                counter = 0;
            }
            cur = next;
        }
        if hops > 0 {
            self.cores[core].stats.forwarded += 1;
        }
        Ok(cur)
    }

    /// Relocates `n_words` from `src` to `tgt` (performed by `core`),
    /// leaving forwarding addresses — the §2.2 false-sharing fix.
    pub fn relocate(&mut self, core: usize, src: Addr, tgt: Addr, n_words: u64) {
        assert!(src.is_aligned(8) && tgt.is_aligned(8));
        for i in 0..n_words {
            let mut cur = src.add_words(i);
            loop {
                let (val, fbit) = self.mem.unforwarded_read(cur);
                let lat = self.access(core, cur.word_base(), 8, false);
                self.cores[core].now += lat;
                if !fbit {
                    let lat = self.access(core, tgt.add_words(i), 8, true);
                    self.cores[core].now += lat;
                    self.mem.write_data(tgt.add_words(i), 8, val);
                    self.mem.unforwarded_write(cur, tgt.add_words(i).0, true);
                    // The forwarding-address install rewrites the (shared)
                    // chain-terminal word; the race detector must see it as
                    // a store even though it bypasses the timed access path.
                    self.note_event(SmpEvent::Access {
                        core,
                        word: cur.word_base(),
                        is_store: true,
                    });
                    break;
                }
                cur = Addr(val);
            }
        }
    }
}

impl std::fmt::Debug for SmpMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmpMachine")
            .field("cores", &self.cores.len())
            .field("cycles", &self.cycles())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smp(cores: usize) -> SmpMachine {
        SmpMachine::new(
            SmpConfig {
                cores,
                ..SmpConfig::default()
            },
            SimConfig::default(),
        )
    }

    #[test]
    fn shared_memory_is_coherent() {
        let mut m = smp(2);
        let a = m.malloc(8);
        m.store(0, a, 8, 42);
        assert_eq!(m.load(1, a, 8), 42);
        m.store(1, a, 8, 43);
        assert_eq!(m.load(0, a, 8), 43);
    }

    #[test]
    fn write_write_ping_pong_counts_coherence_misses() {
        let mut m = smp(2);
        let a = m.malloc(64);
        for i in 0..10 {
            m.store(i % 2, a, 8, i as u64);
        }
        let t = m.total_stats();
        assert!(t.coherence_misses >= 8, "{t:?}");
        // Same word: TRUE sharing, not false.
        assert_eq!(t.false_sharing_misses, 0, "{t:?}");
    }

    #[test]
    fn disjoint_words_in_one_line_is_false_sharing() {
        let mut m = smp(2);
        let a = m.malloc(64); // one 64B line holds both counters
        for _ in 0..10 {
            m.store(0, a, 8, 1);
            m.store(1, a + 32, 8, 2);
        }
        let t = m.total_stats();
        assert!(t.coherence_misses >= 10, "{t:?}");
        assert!(
            t.false_sharing_misses >= 8,
            "disjoint words must classify as false sharing: {t:?}"
        );
    }

    #[test]
    fn separate_lines_do_not_ping_pong() {
        let mut m = smp(2);
        let a = m.malloc(256);
        for _ in 0..10 {
            m.store(0, a, 8, 1);
            m.store(1, a + 128, 8, 2); // different 64B line
        }
        let t = m.total_stats();
        assert_eq!(t.coherence_misses, 0, "{t:?}");
    }

    #[test]
    fn relocation_fixes_false_sharing_and_keeps_stale_pointers_working() {
        let mut m = smp(2);
        let shared = m.malloc(16); // two 8B counters in one line
        let stale0 = shared;
        let stale1 = shared + 8;
        m.store(0, stale0, 8, 5);
        m.store(1, stale1, 8, 6);
        // Fix: relocate each counter to its own line-aligned pool chunk.
        let mut pool0 = Pool::new(4096);
        let mut pool1 = Pool::new(4096);
        let line = m.line_bytes();
        let new0 = m.pool_alloc_aligned(&mut pool0, 64, line);
        let new1 = m.pool_alloc_aligned(&mut pool1, 64, line);
        m.relocate(0, stale0, new0, 1);
        m.relocate(1, stale1, new1, 1);
        m.barrier();
        let before = m.total_stats().coherence_misses;
        for _ in 0..20 {
            m.store(0, new0, 8, 1);
            m.store(1, new1, 8, 2);
        }
        let after = m.total_stats().coherence_misses;
        assert_eq!(after, before, "no ping-pong after relocation");
        // The stale pointers still observe the live values, via forwarding.
        assert_eq!(m.load(0, stale0, 8), 1);
        assert_eq!(m.load(0, stale1, 8), 2);
        assert!(m.total_stats().forwarded >= 2);
    }

    #[test]
    fn try_api_reports_typed_faults() {
        let mut m = smp(2);
        let a = m.malloc(8);
        let b = m.malloc(8);
        m.mem.unforwarded_write(a, b.0, true);
        m.mem.unforwarded_write(b, a.0, true);
        assert!(matches!(
            m.try_load(0, a, 8),
            Err(MachineFault::ForwardingCycle { .. })
        ));
        assert!(matches!(
            m.try_store(1, b, 8, 1),
            Err(MachineFault::ForwardingCycle { .. })
        ));
        assert_eq!(
            m.try_load(0, Addr::NULL, 8),
            Err(MachineFault::NullDeref { is_store: false })
        );
        assert_eq!(
            m.try_load(0, a + 1, 4),
            Err(MachineFault::Misaligned {
                addr: a + 1,
                size: 4
            })
        );
        // The machine keeps working after typed faults.
        let c = m.malloc(8);
        assert_eq!(m.try_store(0, c, 8, 7), Ok(()));
        assert_eq!(m.try_load(1, c, 8), Ok(7));
    }

    #[test]
    fn smp_accurate_check_tolerates_long_chains() {
        let mut m = smp(1);
        let blocks: Vec<Addr> = (0..DEFAULT_HOP_LIMIT as u64 + 8)
            .map(|_| m.malloc(8))
            .collect();
        m.mem.write_data(*blocks.last().unwrap(), 8, 99);
        for w in blocks.windows(2) {
            m.mem.unforwarded_write(w[0], w[1].0, true);
        }
        assert_eq!(m.try_load(0, blocks[0], 8), Ok(99), "long != cyclic");
    }

    #[test]
    fn event_trace_records_accesses_and_barriers() {
        let mut m = smp(2);
        let a = m.malloc(16);
        m.enable_event_trace();
        m.store(0, a, 8, 1);
        m.barrier();
        assert_eq!(m.load(1, a, 8), 1);
        let ev = m.take_event_trace().expect("trace was enabled");
        assert_eq!(
            ev,
            vec![
                SmpEvent::Access {
                    core: 0,
                    word: a,
                    is_store: true
                },
                SmpEvent::Barrier,
                SmpEvent::Access {
                    core: 1,
                    word: a,
                    is_store: false
                },
            ]
        );
        assert_eq!(m.take_event_trace(), None, "taking clears the trace");
    }

    #[test]
    fn event_trace_sees_relocation_installs_and_walks() {
        let mut m = smp(2);
        let a = m.malloc(8);
        let b = m.malloc(8);
        m.store(0, a, 8, 9);
        m.enable_event_trace();
        m.relocate(0, a, b, 1);
        m.barrier();
        assert_eq!(m.load(1, a, 8), 9, "stale pointer forwards");
        let ev = m.take_event_trace().expect("trace was enabled");
        // The relocation must surface a store to the old home (the
        // forwarding-address install) and the stale load must surface a
        // read of that chain word by the other core.
        assert!(ev.contains(&SmpEvent::Access {
            core: 0,
            word: a,
            is_store: true
        }));
        assert!(ev.contains(&SmpEvent::Access {
            core: 1,
            word: a,
            is_store: false
        }));
    }

    #[test]
    fn event_trace_does_not_perturb_timing_or_stats() {
        let run = |traced: bool| {
            let mut m = smp(2);
            let a = m.malloc(64);
            if traced {
                m.enable_event_trace();
            }
            for i in 0..10 {
                m.store(i % 2, a, 8, i as u64);
            }
            m.barrier();
            (m.cycles(), m.total_stats())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let mut m = smp(3);
        m.compute(0, 100);
        m.compute(1, 5);
        assert_eq!(m.cycles(), 100);
        m.barrier();
        m.compute(2, 1);
        assert_eq!(m.cycles(), 101);
    }

    #[test]
    fn load_sharing_does_not_invalidate() {
        let mut m = smp(4);
        let a = m.malloc(8);
        m.store(0, a, 8, 9);
        for c in 0..4 {
            assert_eq!(m.load(c, a, 8), 9);
        }
        let before = m.total_stats().misses;
        for c in 0..4 {
            assert_eq!(m.load(c, a, 8), 9);
        }
        assert_eq!(m.total_stats().misses, before, "read sharing is stable");
    }
}
