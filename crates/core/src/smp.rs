//! A small shared-memory multiprocessor model for the paper's §2.2
//! *Reducing False Sharing* optimization.
//!
//! In a cache-coherent system, false sharing occurs when two processors
//! access distinct data items that happen to fall within the same cache
//! line (the unit of coherence) and at least one access is a write: the
//! line ping-pongs between the caches although no real communication takes
//! place. Relocating the unrelated items to distinct lines fixes it — and
//! memory forwarding makes that relocation safe even when not all pointers
//! to the items can be updated.
//!
//! The model: each core has a private L1 with an MSI invalidation protocol
//! over a shared tagged memory, and its own cycle clock (cores are
//! synchronized explicitly with [`SmpMachine::barrier`]). Loads and stores
//! follow forwarding chains exactly as the uniprocessor machine does.
//! Coherence misses are classified as *true* or *false* sharing by
//! tracking which words of a line each core actually touched.
//!
//! ## Memory models
//!
//! The machine runs under one of two consistency models, selected by
//! [`SimConfig::memory_model`](crate::MemoryModel):
//!
//! - **SC** (the default): every store is globally visible the moment it
//!   executes. This path is bit-identical to the pre-TSO machine.
//! - **TSO**: each core issues stores into a private FIFO *store buffer*
//!   ([`SmpConfig::sb_entries`] deep). The issuing core forwards its own
//!   buffered values to later loads and chain walks; remote cores observe
//!   a store only once it **drains** to coherent memory. Demand stores
//!   resolve their forwarding chain at the drain (the coherent write),
//!   and the drain is charged through the ordinary timed access path.
//!   [`SmpMachine::fence`], [`SmpMachine::store_release`],
//!   [`SmpMachine::lock`]/[`SmpMachine::unlock`] and
//!   [`SmpMachine::barrier`] are the drain points. Under TSO,
//!   [`SmpMachine::relocate`] buffers both the data copy and the
//!   forwarding-bit install — which opens exactly the publication race
//!   window (a remote access racing an undrained fbit install) that the
//!   `memfwd-analyze` certifier's MF010/MF011/MF012 diagnostics exist to
//!   flag.

use crate::config::{MemoryModel, SimConfig};
use crate::fault::{record_last_fault, MachineFault};
use crate::inject::{Corruption, InjectKind, Injector};
use memfwd_cache::CacheLevel;
use memfwd_tagmem::{validate_access, Addr, Heap, Pool, TaggedMemory, DEFAULT_HOP_LIMIT};
use std::collections::{HashMap, VecDeque};

/// Configuration of the SMP model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmpConfig {
    /// Number of processors.
    pub cores: usize,
    /// Cache line size (the coherence unit).
    pub line_bytes: u64,
    /// L1 hit latency in cycles.
    pub hit_latency: u64,
    /// Latency of a miss serviced by memory (or another cache).
    pub miss_latency: u64,
    /// Extra latency when a miss also had to invalidate remote copies.
    pub invalidate_latency: u64,
    /// Extra cycles per forwarding hop.
    pub fwd_hop_penalty: u64,
    /// Store-buffer capacity per core under
    /// [`MemoryModel::Tso`]; issuing a store into a full buffer
    /// drains the oldest entry first. Ignored under SC.
    pub sb_entries: usize,
}

impl Default for SmpConfig {
    fn default() -> Self {
        SmpConfig {
            cores: 4,
            line_bytes: 64,
            hit_latency: 1,
            miss_latency: 60,
            invalidate_latency: 20,
            fwd_hop_penalty: 4,
            sb_entries: 8,
        }
    }
}

/// One entry of the optional SMP event trace (see
/// [`SmpMachine::enable_event_trace`]).
///
/// The trace records the logical shared-memory behaviour of a campaign —
/// which core touched which word, where the global barriers fell, and
/// (under TSO) where stores entered and left the store buffers — in
/// execution order. It is the input to the happens-before race detector
/// in `memfwd-analyze`.
///
/// Under SC the trace contains only [`SmpEvent::Access`],
/// [`SmpEvent::Barrier`], and whichever explicit synchronization events
/// (`Fence`/`Acquire`/`Release`/`Lock`/`Unlock`) the campaign invokes —
/// a campaign that calls none produces exactly the pre-TSO trace. The
/// buffer events (`StoreBuffered`/`FbitInstall`/`Drain`) appear only
/// under [`MemoryModel::Tso`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmpEvent {
    /// A coherent access by `core` to the word at `word` (a word-base
    /// address). Forwarding-chain reads during a walk and the
    /// forwarding-address installs done by [`SmpMachine::relocate`] appear
    /// here too — chain words are shared data like any other. Under TSO a
    /// store's `Access` is emitted when it *drains* (its coherent write);
    /// buffer-forwarded loads emit an `Access` read at the forwarded word.
    Access {
        /// The accessing core.
        core: usize,
        /// Word-base address of the touched word.
        word: Addr,
        /// True for a store (including a forwarding-address install).
        is_store: bool,
    },
    /// A global [`SmpMachine::barrier`].
    Barrier,
    /// TSO: `core` issued a store to `word` into its store buffer. The
    /// address is the *virtual* (pre-walk) word; the eventual coherent
    /// write appears as the matching [`SmpEvent::Drain`].
    StoreBuffered {
        /// The issuing core.
        core: usize,
        /// Word-base address the store names (pre-walk).
        word: Addr,
    },
    /// TSO: `core` issued a forwarding-bit install (`word` → `to`) into
    /// its store buffer — the publication step of
    /// [`SmpMachine::relocate`].
    FbitInstall {
        /// The relocating core.
        core: usize,
        /// The old home: the chain-terminal word being turned into a
        /// forwarding word.
        word: Addr,
        /// The new home the install forwards to.
        to: Addr,
    },
    /// TSO: the oldest entry of `core`'s store buffer reached coherent
    /// memory. `word` is the *resolved* (post-walk) word actually
    /// written; entries drain in FIFO issue order, so the n-th `Drain` of
    /// a core completes its n-th undrained `StoreBuffered`/`FbitInstall`.
    Drain {
        /// The draining core.
        core: usize,
        /// Word-base address of the coherent write.
        word: Addr,
    },
    /// A full fence by `core` ([`SmpMachine::fence`]): drains the store
    /// buffer. A fence orders the fencing core's own accesses; it creates
    /// no cross-core happens-before edge by itself.
    Fence {
        /// The fencing core.
        core: usize,
    },
    /// An acquire load of `word` by `core`
    /// ([`SmpMachine::load_acquire`]): synchronizes-with the latest
    /// [`SmpEvent::Release`] of the same word.
    Acquire {
        /// The acquiring core.
        core: usize,
        /// Word-base address of the sync word (pre-walk).
        word: Addr,
    },
    /// A release store of `word` by `core`
    /// ([`SmpMachine::store_release`]): drains the buffer, then publishes.
    Release {
        /// The releasing core.
        core: usize,
        /// Word-base address of the sync word (pre-walk).
        word: Addr,
    },
    /// Per-word lock acquisition ([`SmpMachine::lock`]):
    /// synchronizes-with the latest [`SmpEvent::Unlock`] of `word`.
    Lock {
        /// The acquiring core.
        core: usize,
        /// Word-base address of the lock word.
        word: Addr,
    },
    /// Per-word lock release ([`SmpMachine::unlock`]).
    Unlock {
        /// The releasing core.
        core: usize,
        /// Word-base address of the lock word.
        word: Addr,
    },
}

/// Per-core statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoreStats {
    /// Loads issued by this core.
    pub loads: u64,
    /// Stores issued by this core.
    pub stores: u64,
    /// L1 hits.
    pub hits: u64,
    /// Misses of any kind.
    pub misses: u64,
    /// Misses caused by coherence (a remote write invalidated our copy, or
    /// our write had to invalidate remote copies).
    pub coherence_misses: u64,
    /// Coherence misses where the conflicting cores touched disjoint words
    /// of the line — false sharing.
    pub false_sharing_misses: u64,
    /// References that dereferenced at least one forwarding address.
    pub forwarded: u64,
    /// TSO: loads (and chain-walk reads) satisfied by forwarding from this
    /// core's own store buffer.
    pub sb_forwards: u64,
    /// TSO: store-buffer entries drained to coherent memory. Note that
    /// under TSO [`CoreStats::stores`] counts coherent writes, i.e. stores
    /// are counted when they drain, not when they issue.
    pub sb_drains: u64,
    /// Explicit fences executed ([`SmpMachine::fence`]).
    pub fences: u64,
}

#[derive(Debug, Default, Clone)]
pub(crate) struct LineInfo {
    /// Which cores hold the line (bitmask).
    pub(crate) sharers: u32,
    /// Core holding the line modified, if any.
    pub(crate) owner: Option<usize>,
    /// Per-core mask of words of this line the core has touched since it
    /// last (re)acquired the line.
    pub(crate) touched: HashMap<usize, u64>,
    /// Word mask written by the last writer.
    pub(crate) written: u64,
}

/// One pending store-buffer write (TSO only; always empty under SC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SbWrite {
    /// A demand store: the forwarding chain from `addr` is resolved at
    /// drain time (the coherent write), mirroring a real store buffer
    /// whose entries are (virtual address, value).
    Store { addr: Addr, size: u64, value: u64 },
    /// A relocation data copy: written raw to `addr` at drain (the target
    /// of a relocation is written directly, exactly as under SC).
    Copy { addr: Addr, value: u64 },
    /// A forwarding-bit install: `word` becomes a forwarding word to
    /// `fwd_to` when this entry drains. Until then, only the issuing core
    /// sees the redirect (through buffer-aware chain walks).
    Install { word: Addr, fwd_to: Addr },
}

pub(crate) struct Core {
    pub(crate) l1: CacheLevel,
    pub(crate) now: u64,
    pub(crate) stats: CoreStats,
    /// FIFO store buffer (TSO). Empty at all times under SC.
    pub(crate) sb: VecDeque<SbWrite>,
}

/// The issuing core's youngest buffered view of `word`, if any: the
/// (value, fbit) pair a buffer-aware read of that word observes.
fn sb_peek(sb: &VecDeque<SbWrite>, word: Addr) -> Option<(u64, bool)> {
    sb.iter().rev().find_map(|w| match *w {
        SbWrite::Install { word: iw, fwd_to } if iw.word_base() == word => Some((fwd_to.0, true)),
        SbWrite::Copy { addr, value } if addr.word_base() == word => Some((value, false)),
        SbWrite::Store { addr, size, value } if addr == word && size == 8 => Some((value, false)),
        _ => None,
    })
}

/// The multiprocessor machine.
///
/// # Example
///
/// ```
/// use memfwd::{SmpConfig, SmpMachine};
///
/// let mut smp = SmpMachine::new(SmpConfig::default(), Default::default());
/// let a = smp.malloc(16);
/// smp.store(0, a, 8, 7);
/// smp.barrier();
/// assert_eq!(smp.load(1, a, 8), 7);
/// ```
pub struct SmpMachine {
    pub(crate) cfg: SmpConfig,
    pub(crate) sim: SimConfig,
    pub(crate) mem: TaggedMemory,
    pub(crate) heap: Heap,
    pub(crate) cores: Vec<Core>,
    pub(crate) lines: HashMap<u64, LineInfo>,
    pub(crate) injector: Option<Injector>,
    pub(crate) injected_faults: u64,
    pub(crate) fault_repairs: u64,
    /// Holders of the per-word locks ([`SmpMachine::lock`]): word → core.
    pub(crate) lock_holders: HashMap<u64, usize>,
    /// Optional event trace for the happens-before race detector. Purely
    /// observational — enabling it changes no timing or statistics — and
    /// transient: snapshots neither save nor restore it.
    pub(crate) events: Option<Vec<SmpEvent>>,
}

impl SmpMachine {
    /// Builds an SMP machine; `sim` supplies the heap layout parameters.
    pub fn new(cfg: SmpConfig, sim: SimConfig) -> SmpMachine {
        assert!(cfg.cores >= 1 && cfg.cores <= 32);
        let l1cfg = memfwd_cache::CacheLevelConfig {
            size_bytes: 16 * 1024,
            assoc: 2,
            hit_latency: cfg.hit_latency,
        };
        SmpMachine {
            mem: TaggedMemory::new(),
            heap: Heap::new(sim.heap_base, sim.heap_capacity),
            cores: (0..cfg.cores)
                .map(|_| Core {
                    l1: CacheLevel::new(l1cfg, cfg.line_bytes),
                    now: 0,
                    stats: CoreStats::default(),
                    sb: VecDeque::new(),
                })
                .collect(),
            lines: HashMap::new(),
            injector: sim.fault_injection.map(Injector::new),
            injected_faults: 0,
            fault_repairs: 0,
            lock_holders: HashMap::new(),
            events: None,
            cfg,
            sim,
        }
    }

    /// Starts recording shared-memory events (accesses and barriers) for
    /// the happens-before race detector, discarding any prior trace. The
    /// trace is observational only: timing, coherence behaviour and
    /// statistics are identical with it on or off.
    pub fn enable_event_trace(&mut self) {
        self.events = Some(Vec::new());
    }

    /// Stops recording and returns the trace collected since
    /// [`SmpMachine::enable_event_trace`], or `None` if tracing was never
    /// enabled.
    pub fn take_event_trace(&mut self) -> Option<Vec<SmpEvent>> {
        self.events.take()
    }

    fn note_event(&mut self, ev: SmpEvent) {
        if let Some(events) = self.events.as_mut() {
            events.push(ev);
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// The coherence-unit size.
    pub fn line_bytes(&self) -> u64 {
        self.cfg.line_bytes
    }

    /// Read-only view of the shared tagged memory.
    pub fn mem(&self) -> &TaggedMemory {
        &self.mem
    }

    /// Per-core statistics.
    pub fn core_stats(&self, core: usize) -> CoreStats {
        self.cores[core].stats
    }

    /// Corruptions injected by the deterministic fault-injection engine.
    pub fn injected_faults(&self) -> u64 {
        self.injected_faults
    }

    /// Injected corruptions repaired by the auto-recovery path.
    pub fn fault_repairs(&self) -> u64 {
        self.fault_repairs
    }

    /// Consults the injector at the head of a coherent access by `core`
    /// and, if a roll hits, corrupts the target word — exactly the
    /// uniprocessor machine's adversary, here racing against all cores'
    /// accesses to shared memory. In recovery mode the corruption is
    /// repaired immediately (the repair is charged to the victim core like
    /// a trap-handler invalidation), so the access that follows always
    /// sees functionally correct memory.
    fn maybe_inject(&mut self, core: usize, addr: Addr) {
        let Some(inj) = self.injector.as_mut() else {
            return;
        };
        let scramble = inj.roll_chain_scramble();
        let flip = !scramble && inj.roll_fbit_flip();
        let recover = inj.config().recover;
        if !(scramble || flip) {
            return;
        }
        let word = addr.word_base();
        if word.is_null() {
            return;
        }
        let (saved_value, saved_fbit) = self.mem.unforwarded_read(word);
        let kind = if scramble {
            InjectKind::ChainScramble
        } else {
            InjectKind::FbitFlip
        };
        match kind {
            InjectKind::ChainScramble => self.mem.unforwarded_write(word, word.0, true),
            InjectKind::FbitFlip => self.mem.set_fbit(word, true),
        }
        self.injected_faults += 1;
        if let Some(inj) = self.injector.as_mut() {
            inj.record(Corruption {
                word,
                saved_value,
                saved_fbit,
                kind,
            });
        }
        if recover {
            let pending = self
                .injector
                .as_mut()
                .map(Injector::drain_log)
                .unwrap_or_default();
            if !pending.is_empty() {
                // Exception dispatch plus one coherent repair write each.
                self.cores[core].now += self.cfg.miss_latency;
                for c in pending.iter().rev() {
                    self.mem
                        .unforwarded_write(c.word, c.saved_value, c.saved_fbit);
                    self.cores[core].now += self.cfg.hit_latency;
                    self.fault_repairs += 1;
                }
            }
        }
    }

    /// Aggregated statistics over all cores.
    pub fn total_stats(&self) -> CoreStats {
        let mut t = CoreStats::default();
        for c in &self.cores {
            t.loads += c.stats.loads;
            t.stores += c.stats.stores;
            t.hits += c.stats.hits;
            t.misses += c.stats.misses;
            t.coherence_misses += c.stats.coherence_misses;
            t.false_sharing_misses += c.stats.false_sharing_misses;
            t.forwarded += c.stats.forwarded;
            t.sb_forwards += c.stats.sb_forwards;
            t.sb_drains += c.stats.sb_drains;
            t.fences += c.stats.fences;
        }
        t
    }

    /// True when the machine runs under [`MemoryModel::Tso`].
    pub fn is_tso(&self) -> bool {
        self.sim.memory_model == MemoryModel::Tso
    }

    /// The memory model the machine runs under.
    pub fn memory_model(&self) -> MemoryModel {
        self.sim.memory_model
    }

    /// Pending (undrained) store-buffer entries of `core`. Always 0
    /// under SC.
    pub fn store_buffer_depth(&self, core: usize) -> usize {
        self.cores[core].sb.len()
    }

    /// Execution time so far: the slowest core's clock.
    pub fn cycles(&self) -> u64 {
        self.cores.iter().map(|c| c.now).max().unwrap_or(0)
    }

    /// Fallible [`SmpMachine::barrier`].
    ///
    /// # Errors
    ///
    /// Under TSO a barrier drains every core's store buffer first, and a
    /// drain's chain resolution can raise any load/store fault (e.g.
    /// [`MachineFault::ForwardingCycle`]). Under SC it cannot fail.
    pub fn try_barrier(&mut self) -> Result<(), MachineFault> {
        for core in 0..self.cores.len() {
            self.try_drain(core)?;
        }
        let max = self.cycles();
        for c in &mut self.cores {
            c.now = max;
        }
        self.note_event(SmpEvent::Barrier);
        Ok(())
    }

    /// Synchronizes all core clocks to the slowest (a barrier). Under TSO
    /// this is also a global drain point: every buffered store reaches
    /// coherent memory before any core proceeds.
    ///
    /// # Panics
    ///
    /// Under TSO, panics if a deferred drain faults
    /// ([`SmpMachine::try_barrier`] is the non-panicking twin); under SC
    /// it never panics.
    pub fn barrier(&mut self) {
        if let Err(fault) = self.try_barrier() {
            record_last_fault(fault);
            panic!("{fault}");
        }
    }

    /// Drains the oldest store-buffer entry of `core` to coherent memory,
    /// charging the coherent write (and, for demand stores, the chain
    /// walk it resolves) to `core`'s clock. Returns `Ok(false)` when the
    /// buffer is empty.
    ///
    /// # Errors
    ///
    /// A demand-store drain resolves its forwarding chain here, so it can
    /// raise any fault [`SmpMachine::try_store`] predicts — store-buffer
    /// faults are imprecise: they surface at the drain point, not at the
    /// issuing store.
    pub fn try_drain_one(&mut self, core: usize) -> Result<bool, MachineFault> {
        let Some(entry) = self.cores[core].sb.pop_front() else {
            return Ok(false);
        };
        match entry {
            SbWrite::Store { addr, size, value } => {
                // Resolved against coherent memory: every older entry has
                // already drained, and younger entries have not yet
                // happened globally.
                let final_addr = self.try_walk(core, addr)?;
                self.validate_final(final_addr, size, true)?;
                let lat = self.access(core, final_addr, size, true);
                self.cores[core].now += lat;
                self.mem.write_data(final_addr, size, value);
                self.note_event(SmpEvent::Drain {
                    core,
                    word: final_addr.word_base(),
                });
            }
            SbWrite::Copy { addr, value } => {
                let lat = self.access(core, addr, 8, true);
                self.cores[core].now += lat;
                self.mem.write_data(addr, 8, value);
                self.note_event(SmpEvent::Drain {
                    core,
                    word: addr.word_base(),
                });
            }
            SbWrite::Install { word, fwd_to } => {
                // The invalidate-based fbit install of §5: a coherent
                // write of the forwarding word.
                let lat = self.access(core, word.word_base(), 8, true);
                self.cores[core].now += lat;
                self.mem.unforwarded_write(word, fwd_to.0, true);
                self.note_event(SmpEvent::Drain {
                    core,
                    word: word.word_base(),
                });
            }
        }
        self.cores[core].stats.sb_drains += 1;
        Ok(true)
    }

    /// Drains `core`'s store buffer completely (no-op under SC).
    ///
    /// # Errors
    ///
    /// As for [`SmpMachine::try_drain_one`].
    pub fn try_drain(&mut self, core: usize) -> Result<(), MachineFault> {
        while self.try_drain_one(core)? {}
        Ok(())
    }

    /// Fallible [`SmpMachine::fence`].
    ///
    /// # Errors
    ///
    /// As for [`SmpMachine::try_drain_one`].
    pub fn try_fence(&mut self, core: usize) -> Result<(), MachineFault> {
        self.try_drain(core)?;
        self.cores[core].stats.fences += 1;
        self.note_event(SmpEvent::Fence { core });
        Ok(())
    }

    /// A full fence by `core`: drains its store buffer, ordering all
    /// earlier stores before anything that follows *on this core*. A
    /// fence alone creates no cross-core happens-before edge — pair a
    /// [`SmpMachine::store_release`] with a [`SmpMachine::load_acquire`]
    /// (or use a barrier) to hand data to another core.
    ///
    /// # Panics
    ///
    /// Panics if a deferred drain faults ([`SmpMachine::try_fence`] is
    /// the non-panicking twin).
    pub fn fence(&mut self, core: usize) {
        if let Err(fault) = self.try_fence(core) {
            record_last_fault(fault);
            panic!("{fault}");
        }
    }

    /// Charges `n` ALU cycles to `core`.
    pub fn compute(&mut self, core: usize, n: u64) {
        self.cores[core].now += n;
    }

    /// Fallible [`SmpMachine::malloc`].
    ///
    /// # Errors
    ///
    /// [`MachineFault::HeapExhausted`].
    pub fn try_malloc(&mut self, bytes: u64) -> Result<Addr, MachineFault> {
        self.heap.alloc(bytes).map_err(MachineFault::from)
    }

    /// Allocates shared heap memory (allocation itself is untimed here).
    ///
    /// # Panics
    ///
    /// Panics if the simulated heap is exhausted. [`SmpMachine::try_malloc`]
    /// is the non-panicking twin.
    pub fn malloc(&mut self, bytes: u64) -> Addr {
        self.try_malloc(bytes).unwrap_or_else(|fault| {
            record_last_fault(fault);
            panic!("{fault}");
        })
    }

    /// Fallible [`SmpMachine::pool_alloc`].
    ///
    /// # Errors
    ///
    /// [`MachineFault::PoolExhausted`].
    pub fn try_pool_alloc(&mut self, pool: &mut Pool, bytes: u64) -> Result<Addr, MachineFault> {
        pool.alloc(&mut self.heap, bytes)
            .map_err(|_| MachineFault::PoolExhausted { requested: bytes })
    }

    /// Allocates from a relocation pool.
    ///
    /// # Panics
    ///
    /// Panics if the simulated heap is exhausted.
    /// [`SmpMachine::try_pool_alloc`] is the non-panicking twin.
    pub fn pool_alloc(&mut self, pool: &mut Pool, bytes: u64) -> Addr {
        self.try_pool_alloc(pool, bytes).unwrap_or_else(|fault| {
            record_last_fault(fault);
            panic!("{fault}");
        })
    }

    /// Fallible [`SmpMachine::pool_alloc_aligned`].
    ///
    /// # Errors
    ///
    /// [`MachineFault::PoolExhausted`].
    pub fn try_pool_alloc_aligned(
        &mut self,
        pool: &mut Pool,
        bytes: u64,
        align: u64,
    ) -> Result<Addr, MachineFault> {
        pool.alloc_aligned(&mut self.heap, bytes, align)
            .map_err(|_| MachineFault::PoolExhausted { requested: bytes })
    }

    /// Allocates an `align`-aligned chunk from a relocation pool — the
    /// placement primitive of the false-sharing fix (items must land in
    /// distinct cache lines).
    ///
    /// # Panics
    ///
    /// Panics if the simulated heap is exhausted.
    /// [`SmpMachine::try_pool_alloc_aligned`] is the non-panicking twin.
    pub fn pool_alloc_aligned(&mut self, pool: &mut Pool, bytes: u64, align: u64) -> Addr {
        self.try_pool_alloc_aligned(pool, bytes, align)
            .unwrap_or_else(|fault| {
                record_last_fault(fault);
                panic!("{fault}");
            })
    }

    fn word_mask(&self, addr: Addr, size: u64) -> (u64, u64) {
        let line = addr.0 / self.cfg.line_bytes;
        let word_in_line = (addr.0 % self.cfg.line_bytes) / 8;
        let words = size.div_ceil(8).max(1);
        let mut mask = 0u64;
        for w in 0..words {
            mask |= 1 << (word_in_line + w).min(63);
        }
        (line, mask)
    }

    /// One coherent access by `core`. Returns the access latency.
    fn access(&mut self, core: usize, addr: Addr, size: u64, is_store: bool) -> u64 {
        self.note_event(SmpEvent::Access {
            core,
            word: addr.word_base(),
            is_store,
        });
        let (line, mask) = self.word_mask(addr, size);
        let info = self.lines.entry(line).or_default();
        let had_copy = self.cores[core].l1.lookup(line);
        let bit = 1u32 << core;

        // Valid for a load if we are a sharer; for a store only if we are
        // the exclusive owner.
        let coherent = if is_store {
            info.owner == Some(core) && info.sharers == bit
        } else {
            info.sharers & bit != 0
        };

        let mut latency;
        if had_copy && coherent {
            latency = self.cfg.hit_latency;
            self.cores[core].stats.hits += 1;
        } else {
            latency = self.cfg.miss_latency;
            self.cores[core].stats.misses += 1;
            // Was this a coherence miss? We had lost (or never upgraded)
            // the line while some other core held it.
            let remote = info.sharers & !bit != 0;
            if remote && (is_store || info.owner.is_some_and(|o| o != core)) {
                self.cores[core].stats.coherence_misses += 1;
                // False sharing: the words we access are disjoint from the
                // words the conflicting writer wrote.
                let conflict_written = info.written;
                let ours = mask | info.touched.get(&core).copied().unwrap_or(0);
                if conflict_written & ours == 0 && (is_store || conflict_written != 0) {
                    self.cores[core].stats.false_sharing_misses += 1;
                }
            }
            if is_store {
                if remote {
                    latency += self.cfg.invalidate_latency;
                    // Invalidate all remote copies.
                    for other in 0..self.cores.len() {
                        if other != core && info.sharers & (1 << other) != 0 {
                            self.cores[other].l1.invalidate(line);
                            info.touched.remove(&other);
                        }
                    }
                }
                info.sharers = bit;
                info.owner = Some(core);
                info.written = mask;
            } else {
                // A load demotes a remote owner to sharer.
                if info.owner.is_some_and(|o| o != core) {
                    info.owner = None;
                }
                info.sharers |= bit;
            }
            if !self.cores[core].l1.probe(line) {
                self.cores[core].l1.fill(line, is_store);
            }
        }
        if is_store {
            info.written |= mask;
            info.owner = Some(core);
        }
        *info.touched.entry(core).or_default() |= mask;
        if is_store {
            self.cores[core].stats.stores += 1;
        } else {
            self.cores[core].stats.loads += 1;
        }
        latency
    }

    /// Fallible [`SmpMachine::load`].
    ///
    /// # Errors
    ///
    /// [`MachineFault::NullDeref`], [`MachineFault::Misaligned`], or
    /// [`MachineFault::ForwardingCycle`].
    pub fn try_load(&mut self, core: usize, addr: Addr, size: u64) -> Result<u64, MachineFault> {
        if addr.is_null() {
            return Err(MachineFault::NullDeref { is_store: false });
        }
        validate_access(addr, size)?;
        self.maybe_inject(core, addr);
        if self.is_tso() {
            return self.tso_load(core, addr, size);
        }
        let final_addr = self.try_walk(core, addr)?;
        self.validate_final(final_addr, size, false)?;
        let lat = self.access(core, final_addr, size, false);
        self.cores[core].now += lat;
        Ok(self.mem.read_data(final_addr, size))
    }

    /// The TSO load path: a buffer-aware chain walk, then store-to-load
    /// forwarding from the core's own buffer (youngest exact match wins;
    /// a partial overlap drains the buffer and reads coherent memory —
    /// the conservative hardware answer to a forwarding-width mismatch).
    fn tso_load(&mut self, core: usize, addr: Addr, size: u64) -> Result<u64, MachineFault> {
        let final_addr = self.try_walk_tso(core, addr)?;
        self.validate_final(final_addr, size, false)?;
        let (lo, hi) = (final_addr.0, final_addr.0 + size);
        for w in self.cores[core].sb.iter().rev() {
            let (wlo, whi, exact) = match *w {
                SbWrite::Store {
                    addr: a,
                    size: s,
                    value,
                } => (
                    a.0,
                    a.0 + s,
                    (a == final_addr && s == size).then_some(value),
                ),
                SbWrite::Copy { addr: a, value } => (
                    a.0,
                    a.0 + 8,
                    (a == final_addr && size == 8).then_some(value),
                ),
                SbWrite::Install { word, .. } => {
                    let b = word.word_base().0;
                    (b, b + 8, None)
                }
            };
            if lo < whi && wlo < hi {
                // Youngest overlapping entry decides the outcome.
                if let Some(value) = exact {
                    self.note_event(SmpEvent::Access {
                        core,
                        word: final_addr.word_base(),
                        is_store: false,
                    });
                    self.cores[core].now += self.cfg.hit_latency;
                    let st = &mut self.cores[core].stats;
                    st.loads += 1;
                    st.hits += 1;
                    st.sb_forwards += 1;
                    return Ok(value);
                }
                self.try_drain(core)?;
                break;
            }
        }
        let lat = self.access(core, final_addr, size, false);
        self.cores[core].now += lat;
        Ok(self.mem.read_data(final_addr, size))
    }

    /// A coherent, forwarding-aware load by `core`.
    ///
    /// # Panics
    ///
    /// Panics on misalignment or a forwarding cycle.
    /// [`SmpMachine::try_load`] is the non-panicking twin.
    pub fn load(&mut self, core: usize, addr: Addr, size: u64) -> u64 {
        self.try_load(core, addr, size).unwrap_or_else(|fault| {
            record_last_fault(fault);
            panic!("{fault}");
        })
    }

    /// Fallible [`SmpMachine::store`].
    ///
    /// # Errors
    ///
    /// As for [`SmpMachine::try_load`].
    pub fn try_store(
        &mut self,
        core: usize,
        addr: Addr,
        size: u64,
        value: u64,
    ) -> Result<(), MachineFault> {
        if addr.is_null() {
            return Err(MachineFault::NullDeref { is_store: true });
        }
        validate_access(addr, size)?;
        self.maybe_inject(core, addr);
        if self.is_tso() {
            // Admit into the FIFO store buffer: the chain resolves (and
            // the coherent write happens) at the drain. A full buffer
            // drains its oldest entry to make room, so a drain-time fault
            // can surface from the admitting store.
            self.note_event(SmpEvent::StoreBuffered {
                core,
                word: addr.word_base(),
            });
            self.cores[core].now += self.cfg.hit_latency;
            self.cores[core]
                .sb
                .push_back(SbWrite::Store { addr, size, value });
            return self.sb_trim(core);
        }
        let final_addr = self.try_walk(core, addr)?;
        self.validate_final(final_addr, size, true)?;
        let lat = self.access(core, final_addr, size, true);
        self.cores[core].now += lat;
        self.mem.write_data(final_addr, size, value);
        Ok(())
    }

    /// Drains until the buffer is back within [`SmpConfig::sb_entries`].
    fn sb_trim(&mut self, core: usize) -> Result<(), MachineFault> {
        while self.cores[core].sb.len() > self.cfg.sb_entries.max(1) {
            self.try_drain_one(core)?;
        }
        Ok(())
    }

    /// A coherent, forwarding-aware store by `core`.
    ///
    /// # Panics
    ///
    /// Panics on misalignment or a forwarding cycle.
    /// [`SmpMachine::try_store`] is the non-panicking twin.
    pub fn store(&mut self, core: usize, addr: Addr, size: u64, value: u64) {
        if let Err(fault) = self.try_store(core, addr, size, value) {
            record_last_fault(fault);
            panic!("{fault}");
        }
    }

    /// Fallible [`SmpMachine::store_release`].
    ///
    /// # Errors
    ///
    /// As for [`SmpMachine::try_store`], plus any deferred drain fault.
    pub fn try_store_release(
        &mut self,
        core: usize,
        addr: Addr,
        size: u64,
        value: u64,
    ) -> Result<(), MachineFault> {
        if addr.is_null() {
            return Err(MachineFault::NullDeref { is_store: true });
        }
        validate_access(addr, size)?;
        self.maybe_inject(core, addr);
        // Release semantics: every earlier store of this core reaches
        // coherent memory before the releasing store itself does, so an
        // acquirer that observes the release observes everything before
        // it. The release store bypasses the buffer (write-through).
        self.try_drain(core)?;
        let final_addr = self.try_walk(core, addr)?;
        self.validate_final(final_addr, size, true)?;
        let lat = self.access(core, final_addr, size, true);
        self.cores[core].now += lat;
        self.mem.write_data(final_addr, size, value);
        self.note_event(SmpEvent::Release {
            core,
            word: addr.word_base(),
        });
        Ok(())
    }

    /// A release store: drains the store buffer, then stores
    /// write-through, publishing everything this core wrote so far to
    /// whichever core performs a matching [`SmpMachine::load_acquire`] of
    /// the same word. Under SC the drain is a no-op and the event still
    /// records the release→acquire edge for the certifier.
    ///
    /// # Panics
    ///
    /// As for [`SmpMachine::store`]
    /// ([`SmpMachine::try_store_release`] is the non-panicking twin).
    pub fn store_release(&mut self, core: usize, addr: Addr, size: u64, value: u64) {
        if let Err(fault) = self.try_store_release(core, addr, size, value) {
            record_last_fault(fault);
            panic!("{fault}");
        }
    }

    /// Fallible [`SmpMachine::load_acquire`].
    ///
    /// # Errors
    ///
    /// As for [`SmpMachine::try_load`].
    pub fn try_load_acquire(
        &mut self,
        core: usize,
        addr: Addr,
        size: u64,
    ) -> Result<u64, MachineFault> {
        if addr.is_null() {
            return Err(MachineFault::NullDeref { is_store: false });
        }
        validate_access(addr, size)?;
        self.maybe_inject(core, addr);
        // The acquire edge is established before the read is performed,
        // so the read itself (and everything after it on this core) is
        // ordered after the matching release.
        self.note_event(SmpEvent::Acquire {
            core,
            word: addr.word_base(),
        });
        if self.is_tso() {
            return self.tso_load(core, addr, size);
        }
        let final_addr = self.try_walk(core, addr)?;
        self.validate_final(final_addr, size, false)?;
        let lat = self.access(core, final_addr, size, false);
        self.cores[core].now += lat;
        Ok(self.mem.read_data(final_addr, size))
    }

    /// An acquire load: synchronizes-with the latest
    /// [`SmpMachine::store_release`] of the same word, ordering this
    /// core's subsequent accesses after everything the releasing core
    /// published.
    ///
    /// # Panics
    ///
    /// As for [`SmpMachine::load`]
    /// ([`SmpMachine::try_load_acquire`] is the non-panicking twin).
    pub fn load_acquire(&mut self, core: usize, addr: Addr, size: u64) -> u64 {
        self.try_load_acquire(core, addr, size)
            .unwrap_or_else(|fault| {
                record_last_fault(fault);
                panic!("{fault}");
            })
    }

    /// Fallible [`SmpMachine::lock`].
    ///
    /// # Errors
    ///
    /// [`MachineFault::NullDeref`] on a null lock word, plus any deferred
    /// drain fault.
    ///
    /// # Panics
    ///
    /// Panics if `core` (or any core) already holds the lock: the
    /// simulator executes one deterministic schedule, so acquiring a held
    /// lock is not contention — it is a campaign deadlock.
    pub fn try_lock(&mut self, core: usize, addr: Addr) -> Result<(), MachineFault> {
        let word = addr.word_base();
        if word.is_null() {
            return Err(MachineFault::NullDeref { is_store: true });
        }
        // An atomic RMW is a full fence on entry.
        self.try_drain(core)?;
        if let Some(&holder) = self.lock_holders.get(&word.0) {
            panic!(
                "lock {:#x} is already held by core {holder}: the deterministic schedule deadlocks",
                word.0
            );
        }
        self.lock_holders.insert(word.0, core);
        // The acquire edge precedes the lock word's RMW access.
        self.note_event(SmpEvent::Lock { core, word });
        let lat = self.access(core, word, 8, true);
        self.cores[core].now += lat;
        self.mem.write_data(word, 8, 1);
        Ok(())
    }

    /// Acquires the per-word lock at `addr`'s word: a fencing atomic RMW
    /// that synchronizes-with the previous [`SmpMachine::unlock`] of the
    /// same word. Lock words are ordinary heap words; they must not be
    /// relocated.
    ///
    /// # Panics
    ///
    /// Panics on a null lock word, a deferred drain fault
    /// ([`SmpMachine::try_lock`] is the non-panicking twin), or
    /// acquiring a lock that is already held (a deterministic-schedule
    /// deadlock).
    pub fn lock(&mut self, core: usize, addr: Addr) {
        if let Err(fault) = self.try_lock(core, addr) {
            record_last_fault(fault);
            panic!("{fault}");
        }
    }

    /// Fallible [`SmpMachine::unlock`].
    ///
    /// # Errors
    ///
    /// [`MachineFault::NullDeref`] on a null lock word, plus any deferred
    /// drain fault.
    ///
    /// # Panics
    ///
    /// Panics if `core` does not hold the lock.
    pub fn try_unlock(&mut self, core: usize, addr: Addr) -> Result<(), MachineFault> {
        let word = addr.word_base();
        if word.is_null() {
            return Err(MachineFault::NullDeref { is_store: true });
        }
        match self.lock_holders.remove(&word.0) {
            Some(holder) if holder == core => {}
            holder => panic!(
                "core {core} unlocking {:#x} which it does not hold (holder: {holder:?})",
                word.0
            ),
        }
        // Everything written inside the critical section drains before
        // the lock word is released.
        self.try_drain(core)?;
        let lat = self.access(core, word, 8, true);
        self.cores[core].now += lat;
        self.mem.write_data(word, 8, 0);
        self.note_event(SmpEvent::Unlock { core, word });
        Ok(())
    }

    /// Releases the per-word lock at `addr`'s word, publishing the
    /// critical section to the next [`SmpMachine::lock`] of the same
    /// word.
    ///
    /// # Panics
    ///
    /// Panics on a null lock word, a deferred drain fault
    /// ([`SmpMachine::try_unlock`] is the non-panicking twin), or
    /// unlocking a lock this core does not hold.
    pub fn unlock(&mut self, core: usize, addr: Addr) {
        if let Err(fault) = self.try_unlock(core, addr) {
            record_last_fault(fault);
            panic!("{fault}");
        }
    }

    /// Re-validates the address a forwarding walk landed on: a healthy
    /// chain preserves the (already validated) access offset, but a
    /// corrupted forwarding word can point anywhere.
    fn validate_final(
        &self,
        final_addr: Addr,
        size: u64,
        is_store: bool,
    ) -> Result<(), MachineFault> {
        if final_addr.is_null() {
            return Err(MachineFault::NullDeref { is_store });
        }
        validate_access(final_addr, size)?;
        Ok(())
    }

    /// Resolves `addr` through the forwarding chain with coherent, timed
    /// reads of each chain word. Runs the hop counter with the accurate
    /// software cycle check of §3.2 (same switchover as the uniprocessor
    /// machine) instead of a blunt iteration guard.
    fn try_walk(&mut self, core: usize, addr: Addr) -> Result<Addr, MachineFault> {
        let mut cur = addr;
        let mut hops = 0u32;
        let mut counter = 0u32;
        let mut checking = false;
        // Lazily populated: `Vec::new` does not allocate, and nothing is
        // pushed until a hop-limit exception engages the accurate check.
        let mut scratch: Vec<Addr> = Vec::new();
        loop {
            // Word and forwarding bit in one page lookup.
            let (fwd, fbit) = self.mem.read_word_tagged(cur);
            if !fbit {
                break;
            }
            // The forwarding word itself is read coherently.
            let lat = self.access(core, cur.word_base(), 8, false);
            self.cores[core].now += lat + self.cfg.fwd_hop_penalty;
            let next = Addr(fwd) + cur.word_offset();
            hops += 1;
            counter += 1;
            if checking {
                if scratch.contains(&next.word_base()) {
                    return Err(MachineFault::ForwardingCycle {
                        at: next.word_base(),
                        hops,
                    });
                }
                scratch.push(next.word_base());
            } else if counter > DEFAULT_HOP_LIMIT {
                scratch.push(cur.word_base());
                scratch.push(next.word_base());
                checking = true;
                counter = 0;
            }
            cur = next;
        }
        if hops > 0 {
            self.cores[core].stats.forwarded += 1;
        }
        Ok(cur)
    }

    /// The TSO chain walk: as [`SmpMachine::try_walk`], but each chain
    /// word is read through the core's own store buffer first, so a core
    /// that buffered a forwarding-bit install already follows its own
    /// redirect (x86-style own-store visibility) while remote cores keep
    /// reading the un-installed word until the drain. Buffered chain
    /// reads hit at [`SmpConfig::hit_latency`] without touching the
    /// coherence state.
    fn try_walk_tso(&mut self, core: usize, addr: Addr) -> Result<Addr, MachineFault> {
        let mut cur = addr;
        let mut hops = 0u32;
        let mut counter = 0u32;
        let mut checking = false;
        let mut scratch: Vec<Addr> = Vec::new();
        loop {
            let buffered = sb_peek(&self.cores[core].sb, cur.word_base());
            let from_buffer = buffered.is_some();
            let (fwd, fbit) = buffered.unwrap_or_else(|| self.mem.read_word_tagged(cur));
            if !fbit {
                break;
            }
            if from_buffer {
                self.note_event(SmpEvent::Access {
                    core,
                    word: cur.word_base(),
                    is_store: false,
                });
                self.cores[core].now += self.cfg.hit_latency + self.cfg.fwd_hop_penalty;
                let st = &mut self.cores[core].stats;
                st.loads += 1;
                st.hits += 1;
                st.sb_forwards += 1;
            } else {
                let lat = self.access(core, cur.word_base(), 8, false);
                self.cores[core].now += lat + self.cfg.fwd_hop_penalty;
            }
            let next = Addr(fwd) + cur.word_offset();
            hops += 1;
            counter += 1;
            if checking {
                if scratch.contains(&next.word_base()) {
                    return Err(MachineFault::ForwardingCycle {
                        at: next.word_base(),
                        hops,
                    });
                }
                scratch.push(next.word_base());
            } else if counter > DEFAULT_HOP_LIMIT {
                scratch.push(cur.word_base());
                scratch.push(next.word_base());
                checking = true;
                counter = 0;
            }
            cur = next;
        }
        if hops > 0 {
            self.cores[core].stats.forwarded += 1;
        }
        Ok(cur)
    }

    /// The TSO relocation path: source-chain reads go through the store
    /// buffer (own pending installs are chased), and both the data copy
    /// and the forwarding-bit install are *buffered*, FIFO-ordered copy
    /// before install. Until the install drains, remote cores still see
    /// the old home — the publication window the certifier's
    /// MF010/MF011/MF012 diagnostics reason about.
    fn try_relocate_tso(
        &mut self,
        core: usize,
        src: Addr,
        tgt: Addr,
        n_words: u64,
    ) -> Result<(), MachineFault> {
        for i in 0..n_words {
            let mut cur = src.add_words(i);
            loop {
                let buffered = sb_peek(&self.cores[core].sb, cur.word_base());
                let from_buffer = buffered.is_some();
                let (val, fbit) = buffered.unwrap_or_else(|| self.mem.unforwarded_read(cur));
                if from_buffer {
                    self.note_event(SmpEvent::Access {
                        core,
                        word: cur.word_base(),
                        is_store: false,
                    });
                    self.cores[core].now += self.cfg.hit_latency;
                    let st = &mut self.cores[core].stats;
                    st.loads += 1;
                    st.hits += 1;
                    st.sb_forwards += 1;
                } else {
                    let lat = self.access(core, cur.word_base(), 8, false);
                    self.cores[core].now += lat;
                }
                if !fbit {
                    let t = tgt.add_words(i);
                    self.note_event(SmpEvent::StoreBuffered {
                        core,
                        word: t.word_base(),
                    });
                    self.cores[core].now += self.cfg.hit_latency;
                    self.cores[core].sb.push_back(SbWrite::Copy {
                        addr: t,
                        value: val,
                    });
                    self.sb_trim(core)?;
                    self.note_event(SmpEvent::FbitInstall {
                        core,
                        word: cur.word_base(),
                        to: t,
                    });
                    self.cores[core].now += self.cfg.hit_latency;
                    self.cores[core].sb.push_back(SbWrite::Install {
                        word: cur,
                        fwd_to: t,
                    });
                    self.sb_trim(core)?;
                    break;
                }
                cur = Addr(val);
            }
        }
        Ok(())
    }

    /// Relocates `n_words` from `src` to `tgt` (performed by `core`),
    /// leaving forwarding addresses — the §2.2 false-sharing fix. Under
    /// TSO the copy and the install are buffered: until they drain, the
    /// relocating core already follows its own redirect while remote
    /// cores still read the old home (the §5 publication window) — pair
    /// the relocation with a [`SmpMachine::store_release`] or a barrier
    /// before handing the data to another core.
    ///
    /// # Panics
    ///
    /// Under TSO, panics if a capacity-forced drain faults.
    pub fn relocate(&mut self, core: usize, src: Addr, tgt: Addr, n_words: u64) {
        assert!(src.is_aligned(8) && tgt.is_aligned(8));
        if self.is_tso() {
            if let Err(fault) = self.try_relocate_tso(core, src, tgt, n_words) {
                record_last_fault(fault);
                panic!("{fault}");
            }
            return;
        }
        for i in 0..n_words {
            let mut cur = src.add_words(i);
            loop {
                let (val, fbit) = self.mem.unforwarded_read(cur);
                let lat = self.access(core, cur.word_base(), 8, false);
                self.cores[core].now += lat;
                if !fbit {
                    let lat = self.access(core, tgt.add_words(i), 8, true);
                    self.cores[core].now += lat;
                    self.mem.write_data(tgt.add_words(i), 8, val);
                    self.mem.unforwarded_write(cur, tgt.add_words(i).0, true);
                    // The forwarding-address install rewrites the (shared)
                    // chain-terminal word; the race detector must see it as
                    // a store even though it bypasses the timed access path.
                    self.note_event(SmpEvent::Access {
                        core,
                        word: cur.word_base(),
                        is_store: true,
                    });
                    break;
                }
                cur = Addr(val);
            }
        }
    }
}

impl std::fmt::Debug for SmpMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmpMachine")
            .field("cores", &self.cores.len())
            .field("cycles", &self.cycles())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smp(cores: usize) -> SmpMachine {
        SmpMachine::new(
            SmpConfig {
                cores,
                ..SmpConfig::default()
            },
            SimConfig::default(),
        )
    }

    #[test]
    fn shared_memory_is_coherent() {
        let mut m = smp(2);
        let a = m.malloc(8);
        m.store(0, a, 8, 42);
        assert_eq!(m.load(1, a, 8), 42);
        m.store(1, a, 8, 43);
        assert_eq!(m.load(0, a, 8), 43);
    }

    #[test]
    fn write_write_ping_pong_counts_coherence_misses() {
        let mut m = smp(2);
        let a = m.malloc(64);
        for i in 0..10 {
            m.store(i % 2, a, 8, i as u64);
        }
        let t = m.total_stats();
        assert!(t.coherence_misses >= 8, "{t:?}");
        // Same word: TRUE sharing, not false.
        assert_eq!(t.false_sharing_misses, 0, "{t:?}");
    }

    #[test]
    fn disjoint_words_in_one_line_is_false_sharing() {
        let mut m = smp(2);
        let a = m.malloc(64); // one 64B line holds both counters
        for _ in 0..10 {
            m.store(0, a, 8, 1);
            m.store(1, a + 32, 8, 2);
        }
        let t = m.total_stats();
        assert!(t.coherence_misses >= 10, "{t:?}");
        assert!(
            t.false_sharing_misses >= 8,
            "disjoint words must classify as false sharing: {t:?}"
        );
    }

    #[test]
    fn separate_lines_do_not_ping_pong() {
        let mut m = smp(2);
        let a = m.malloc(256);
        for _ in 0..10 {
            m.store(0, a, 8, 1);
            m.store(1, a + 128, 8, 2); // different 64B line
        }
        let t = m.total_stats();
        assert_eq!(t.coherence_misses, 0, "{t:?}");
    }

    #[test]
    fn relocation_fixes_false_sharing_and_keeps_stale_pointers_working() {
        let mut m = smp(2);
        let shared = m.malloc(16); // two 8B counters in one line
        let stale0 = shared;
        let stale1 = shared + 8;
        m.store(0, stale0, 8, 5);
        m.store(1, stale1, 8, 6);
        // Fix: relocate each counter to its own line-aligned pool chunk.
        let mut pool0 = Pool::new(4096);
        let mut pool1 = Pool::new(4096);
        let line = m.line_bytes();
        let new0 = m.pool_alloc_aligned(&mut pool0, 64, line);
        let new1 = m.pool_alloc_aligned(&mut pool1, 64, line);
        m.relocate(0, stale0, new0, 1);
        m.relocate(1, stale1, new1, 1);
        m.barrier();
        let before = m.total_stats().coherence_misses;
        for _ in 0..20 {
            m.store(0, new0, 8, 1);
            m.store(1, new1, 8, 2);
        }
        let after = m.total_stats().coherence_misses;
        assert_eq!(after, before, "no ping-pong after relocation");
        // The stale pointers still observe the live values, via forwarding.
        assert_eq!(m.load(0, stale0, 8), 1);
        assert_eq!(m.load(0, stale1, 8), 2);
        assert!(m.total_stats().forwarded >= 2);
    }

    #[test]
    fn try_api_reports_typed_faults() {
        let mut m = smp(2);
        let a = m.malloc(8);
        let b = m.malloc(8);
        m.mem.unforwarded_write(a, b.0, true);
        m.mem.unforwarded_write(b, a.0, true);
        assert!(matches!(
            m.try_load(0, a, 8),
            Err(MachineFault::ForwardingCycle { .. })
        ));
        assert!(matches!(
            m.try_store(1, b, 8, 1),
            Err(MachineFault::ForwardingCycle { .. })
        ));
        assert_eq!(
            m.try_load(0, Addr::NULL, 8),
            Err(MachineFault::NullDeref { is_store: false })
        );
        assert_eq!(
            m.try_load(0, a + 1, 4),
            Err(MachineFault::Misaligned {
                addr: a + 1,
                size: 4
            })
        );
        // The machine keeps working after typed faults.
        let c = m.malloc(8);
        assert_eq!(m.try_store(0, c, 8, 7), Ok(()));
        assert_eq!(m.try_load(1, c, 8), Ok(7));
    }

    #[test]
    fn smp_accurate_check_tolerates_long_chains() {
        let mut m = smp(1);
        let blocks: Vec<Addr> = (0..DEFAULT_HOP_LIMIT as u64 + 8)
            .map(|_| m.malloc(8))
            .collect();
        m.mem.write_data(*blocks.last().unwrap(), 8, 99);
        for w in blocks.windows(2) {
            m.mem.unforwarded_write(w[0], w[1].0, true);
        }
        assert_eq!(m.try_load(0, blocks[0], 8), Ok(99), "long != cyclic");
    }

    #[test]
    fn event_trace_records_accesses_and_barriers() {
        let mut m = smp(2);
        let a = m.malloc(16);
        m.enable_event_trace();
        m.store(0, a, 8, 1);
        m.barrier();
        assert_eq!(m.load(1, a, 8), 1);
        let ev = m.take_event_trace().expect("trace was enabled");
        assert_eq!(
            ev,
            vec![
                SmpEvent::Access {
                    core: 0,
                    word: a,
                    is_store: true
                },
                SmpEvent::Barrier,
                SmpEvent::Access {
                    core: 1,
                    word: a,
                    is_store: false
                },
            ]
        );
        assert_eq!(m.take_event_trace(), None, "taking clears the trace");
    }

    #[test]
    fn event_trace_sees_relocation_installs_and_walks() {
        let mut m = smp(2);
        let a = m.malloc(8);
        let b = m.malloc(8);
        m.store(0, a, 8, 9);
        m.enable_event_trace();
        m.relocate(0, a, b, 1);
        m.barrier();
        assert_eq!(m.load(1, a, 8), 9, "stale pointer forwards");
        let ev = m.take_event_trace().expect("trace was enabled");
        // The relocation must surface a store to the old home (the
        // forwarding-address install) and the stale load must surface a
        // read of that chain word by the other core.
        assert!(ev.contains(&SmpEvent::Access {
            core: 0,
            word: a,
            is_store: true
        }));
        assert!(ev.contains(&SmpEvent::Access {
            core: 1,
            word: a,
            is_store: false
        }));
    }

    #[test]
    fn event_trace_does_not_perturb_timing_or_stats() {
        let run = |traced: bool| {
            let mut m = smp(2);
            let a = m.malloc(64);
            if traced {
                m.enable_event_trace();
            }
            for i in 0..10 {
                m.store(i % 2, a, 8, i as u64);
            }
            m.barrier();
            (m.cycles(), m.total_stats())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let mut m = smp(3);
        m.compute(0, 100);
        m.compute(1, 5);
        assert_eq!(m.cycles(), 100);
        m.barrier();
        m.compute(2, 1);
        assert_eq!(m.cycles(), 101);
    }

    #[test]
    fn load_sharing_does_not_invalidate() {
        let mut m = smp(4);
        let a = m.malloc(8);
        m.store(0, a, 8, 9);
        for c in 0..4 {
            assert_eq!(m.load(c, a, 8), 9);
        }
        let before = m.total_stats().misses;
        for c in 0..4 {
            assert_eq!(m.load(c, a, 8), 9);
        }
        assert_eq!(m.total_stats().misses, before, "read sharing is stable");
    }

    fn tso(cores: usize) -> SmpMachine {
        SmpMachine::new(
            SmpConfig {
                cores,
                ..SmpConfig::default()
            },
            SimConfig::default().with_memory_model(MemoryModel::Tso),
        )
    }

    #[test]
    fn tso_store_buffers_and_forwards_to_own_loads() {
        let mut m = tso(2);
        let a = m.malloc(8);
        m.store(0, a, 8, 7);
        assert_eq!(m.store_buffer_depth(0), 1);
        // Own load forwards from the store buffer...
        assert_eq!(m.load(0, a, 8), 7);
        // ...while the remote core still sees the stale memory word.
        assert_eq!(m.load(1, a, 8), 0);
        let t = m.total_stats();
        assert!(t.sb_forwards >= 1, "{t:?}");
        assert_eq!(t.sb_drains, 0, "{t:?}");
    }

    #[test]
    fn tso_fence_drains_and_publishes() {
        let mut m = tso(2);
        let a = m.malloc(8);
        m.store(0, a, 8, 7);
        assert_eq!(m.load(1, a, 8), 0, "undrained store is core-private");
        m.fence(0);
        assert_eq!(m.store_buffer_depth(0), 0);
        assert_eq!(m.load(1, a, 8), 7, "fence published the store");
        let t = m.total_stats();
        assert_eq!(t.fences, 1, "{t:?}");
        assert_eq!(t.sb_drains, 1, "{t:?}");
    }

    #[test]
    fn tso_capacity_drains_oldest_first() {
        let mut m = SmpMachine::new(
            SmpConfig {
                cores: 2,
                sb_entries: 2,
                ..SmpConfig::default()
            },
            SimConfig::default().with_memory_model(MemoryModel::Tso),
        );
        let a = m.malloc(32);
        m.store(0, a, 8, 1);
        m.store(0, a + 8, 8, 2);
        m.store(0, a + 16, 8, 3);
        assert_eq!(m.store_buffer_depth(0), 2);
        // FIFO: the capacity drain retired the oldest entry only.
        assert_eq!(m.load(1, a, 8), 1);
        assert_eq!(m.load(1, a + 8, 8), 0);
        assert_eq!(m.load(1, a + 16, 8), 0);
    }

    #[test]
    fn tso_sb_litmus_exhibits_store_load_reordering() {
        // Dekker/SB: each core stores its own flag then reads the other's.
        // With both stores buffered, both loads read the stale zeros — the
        // one reordering TSO permits. The same deterministic program order
        // under SC can never produce (0, 0).
        let mut m = tso(2);
        let x = m.malloc(8);
        let y = m.malloc(8);
        m.store(0, x, 8, 1);
        m.store(1, y, 8, 1);
        assert_eq!((m.load(0, y, 8), m.load(1, x, 8)), (0, 0));

        let mut m = smp(2);
        let x = m.malloc(8);
        let y = m.malloc(8);
        m.store(0, x, 8, 1);
        m.store(1, y, 8, 1);
        assert_eq!((m.load(0, y, 8), m.load(1, x, 8)), (1, 1));
    }

    #[test]
    fn tso_release_publishes_program_order_prefix() {
        let mut m = tso(2);
        let data = m.malloc(8);
        let flag = m.malloc(8);
        m.store(0, data, 8, 41);
        m.store_release(0, flag, 8, 1);
        assert_eq!(m.store_buffer_depth(0), 0, "release drains the buffer");
        // The message-passing idiom: acquire of the flag sees the payload.
        assert_eq!(m.load_acquire(1, flag, 8), 1);
        assert_eq!(m.load(1, data, 8), 41);
    }

    #[test]
    fn tso_partial_overlap_drains_instead_of_forwarding() {
        let mut m = tso(2);
        let a = m.malloc(8);
        m.store(0, a, 8, 0x1122_3344_5566_7788);
        // A narrower load overlapping the buffered word cannot forward;
        // the buffer drains and the load reads coherent memory.
        assert_eq!(m.load(0, a, 4), 0x5566_7788);
        assert_eq!(m.store_buffer_depth(0), 0);
        assert_eq!(m.total_stats().sb_drains, 1);
    }

    #[test]
    fn tso_lock_hands_off_critical_section() {
        let mut m = tso(2);
        let l = m.malloc(8);
        let d = m.malloc(8);
        m.lock(0, l);
        m.store(0, d, 8, 9);
        m.unlock(0, l); // drains before releasing the lock word
        m.lock(1, l);
        assert_eq!(m.load(1, d, 8), 9);
        m.unlock(1, l);
        assert_eq!(m.mem().read_data(l, 8), 0, "lock word released");
    }

    #[test]
    #[should_panic(expected = "deterministic schedule deadlocks")]
    fn tso_relocking_a_held_word_deadlocks() {
        let mut m = tso(2);
        let l = m.malloc(8);
        m.lock(0, l);
        m.lock(1, l);
    }

    #[test]
    fn tso_relocate_has_a_publication_window() {
        let mut m = tso(2);
        let old = m.malloc(16);
        m.store(0, old, 8, 111);
        m.store(0, old + 8, 8, 222);
        m.fence(0);
        let new = m.malloc(16);
        m.relocate(0, old, new, 2);
        // The install is still buffered: the relocating core's own store
        // through the stale pointer is redirected to the new home...
        m.store(0, old, 8, 999);
        assert_eq!(m.load(0, old, 8), 999);
        // ...but the remote core reads the un-installed old word.
        assert_eq!(m.load(1, old, 8), 111, "remote sees pre-install data");
        m.fence(0);
        // Post-drain the whole machine agrees, via forwarding.
        assert_eq!(m.load(1, old, 8), 999);
        assert_eq!(m.load(1, old + 8, 8), 222);
        assert!(m.total_stats().forwarded >= 2, "{:?}", m.total_stats());
    }

    #[test]
    fn tso_barrier_is_a_global_drain() {
        let mut m = tso(3);
        let a = m.malloc(24);
        for c in 0..3 {
            m.store(c, a.add_words(c as u64), 8, c as u64 + 1);
        }
        m.barrier();
        for c in 0..3 {
            assert_eq!(m.store_buffer_depth(c), 0);
        }
        for c in 0..3 {
            assert_eq!(m.load(0, a.add_words(c as u64), 8), c as u64 + 1);
        }
    }

    #[test]
    fn tso_event_trace_records_buffer_lifecycle() {
        let mut m = tso(2);
        let a = m.malloc(8);
        m.enable_event_trace();
        m.store(0, a, 8, 1);
        m.fence(0);
        let ev = m.take_event_trace().unwrap_or_default();
        let word = a.word_base();
        assert!(ev
            .iter()
            .any(|e| matches!(e, SmpEvent::StoreBuffered { core: 0, word: w } if *w == word)));
        assert!(ev
            .iter()
            .any(|e| matches!(e, SmpEvent::Drain { core: 0, word: w } if *w == word)));
        assert!(ev.iter().any(|e| matches!(e, SmpEvent::Fence { core: 0 })));
    }

    #[test]
    fn tso_relocate_trace_records_install_and_drain() {
        let mut m = tso(2);
        let old = m.malloc(8);
        m.store(0, old, 8, 5);
        m.fence(0);
        let new = m.malloc(8);
        m.enable_event_trace();
        m.relocate(0, old, new, 1);
        m.fence(0);
        let ev = m.take_event_trace().unwrap_or_default();
        assert!(ev.iter().any(
            |e| matches!(e, SmpEvent::FbitInstall { core: 0, word, to } if *word == old && *to == new)
        ));
        // Copy then install drain in FIFO order.
        let drains: Vec<_> = ev
            .iter()
            .filter_map(|e| match e {
                SmpEvent::Drain { word, .. } => Some(*word),
                _ => None,
            })
            .collect();
        assert_eq!(drains, vec![new.word_base(), old.word_base()]);
    }

    #[test]
    fn sc_mode_never_buffers() {
        let mut m = smp(2);
        let a = m.malloc(8);
        m.store(0, a, 8, 7);
        assert_eq!(m.store_buffer_depth(0), 0);
        assert_eq!(m.load(1, a, 8), 7, "SC stores are immediately visible");
        let t = m.total_stats();
        assert_eq!((t.sb_forwards, t.sb_drains, t.fences), (0, 0, 0), "{t:?}");
        // Fences and drains are no-ops apart from the fence counter.
        m.fence(0);
        assert_eq!(m.total_stats().fences, 1);
    }
}
