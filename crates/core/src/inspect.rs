//! Human-readable views of simulator state: forwarding chains, heap
//! occupancy and line-granular layout maps. These are debugging and
//! teaching aids — every formatter is a pure function of machine state.

use crate::machine::Machine;
use memfwd_tagmem::{chain_words, Addr, TaggedMemory};
use std::fmt::Write as _;

/// Renders the forwarding chain starting at `addr`, e.g.
/// `0x1000 -> 0x2000 -> 0x3000 (terminal, 2 hops)`, or a cycle diagnosis.
pub fn dump_chain(mem: &TaggedMemory, addr: Addr) -> String {
    match chain_words(mem, addr) {
        Ok(words) => {
            let mut s = String::new();
            for (i, w) in words.iter().enumerate() {
                if i > 0 {
                    s.push_str(" -> ");
                }
                let _ = write!(s, "{w}");
            }
            let _ = write!(s, " (terminal, {} hops)", words.len() - 1);
            s
        }
        Err(e) => format!("{e}"),
    }
}

/// One-paragraph heap summary: live bytes, footprint, fragmentation.
pub fn heap_summary(m: &Machine) -> String {
    let h = m.heap().stats();
    let footprint = m.heap().footprint();
    let frag = if footprint == 0 {
        0.0
    } else {
        100.0 * (1.0 - h.live_bytes as f64 / footprint as f64)
    };
    format!(
        "heap: {} live bytes in {} blocks ({} allocated / {} freed), \
         footprint {} bytes, {:.1}% holes, peak {} bytes",
        h.live_bytes,
        h.allocations - h.frees,
        h.allocations,
        h.frees,
        footprint,
        frag,
        h.peak_bytes
    )
}

/// A per-line map of `[start, start + bytes)`: for each cache line, one
/// character per word — `.` untouched zero word, `d` nonzero data, `F` a
/// word with its forwarding bit set.
///
/// # Panics
///
/// Panics if `start` is not line-aligned or `line_bytes` is not a multiple
/// of the word size.
pub fn line_map(mem: &TaggedMemory, start: Addr, bytes: u64, line_bytes: u64) -> String {
    assert!(line_bytes.is_multiple_of(8) && start.is_aligned(line_bytes));
    let mut s = String::new();
    let mut addr = start;
    while addr.0 < start.0 + bytes {
        let _ = write!(s, "{addr}: ");
        for w in 0..line_bytes / 8 {
            let a = addr.add_words(w);
            let c = if mem.fbit(a) {
                'F'
            } else if mem.read_data(a, 8) != 0 {
                'd'
            } else {
                '.'
            };
            s.push(c);
        }
        s.push('\n');
        addr += line_bytes;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::reloc::relocate;

    #[test]
    fn dump_chain_formats_hops() {
        let mut m = Machine::new(SimConfig::default());
        let a = m.malloc(8);
        let b = m.malloc(8);
        let c = m.malloc(8);
        relocate(&mut m, a, b, 1);
        relocate(&mut m, a, c, 1);
        let s = dump_chain(m.mem(), a);
        assert!(s.contains("->"), "{s}");
        assert!(s.ends_with("(terminal, 2 hops)"), "{s}");
        assert!(dump_chain(m.mem(), c).ends_with("(terminal, 0 hops)"));
    }

    #[test]
    fn dump_chain_reports_cycles() {
        let mut m = Machine::new(SimConfig::default());
        let a = m.malloc(8);
        let b = m.malloc(8);
        m.unforwarded_write(a, b.0, true);
        m.unforwarded_write(b, a.0, true);
        let s = dump_chain(m.mem(), a);
        assert!(s.contains("cycle"), "{s}");
    }

    #[test]
    fn heap_summary_mentions_live_bytes() {
        let mut m = Machine::new(SimConfig::default());
        let a = m.malloc(100);
        let _b = m.malloc(50);
        m.free(a);
        let s = heap_summary(&m);
        assert!(s.contains("56 live bytes"), "{s}");
        assert!(s.contains("2 allocated / 1 freed"), "{s}");
    }

    #[test]
    fn line_map_classifies_words() {
        let mut m = Machine::new(SimConfig::default());
        let base = Addr(0x2000);
        m.store_word(base, 7); // data
        m.unforwarded_write(base + 8, 0x9000, true); // forwarding
        let map = line_map(m.mem(), base, 32, 32);
        let row = map.lines().next().unwrap();
        assert!(row.ends_with("dF.."), "{row}");
    }
}
