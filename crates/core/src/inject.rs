//! Deterministic, seeded fault injection.
//!
//! The paper's central claim is *safety*: no matter how memory is laid out —
//! or mangled — an access either reaches the right data, traps to a handler
//! that can repair the damage, or aborts with a precise exception. This
//! module provides the adversary for that claim: a deterministic corruption
//! engine that flips forwarding bits, scrambles chain words, and fails
//! allocations with configured probabilities, driven by a seeded
//! [splitmix64](https://prng.di.unimi.it/splitmix64.c) stream so every
//! campaign is exactly reproducible.
//!
//! Wire it in with [`crate::SimConfig::fault_injection`]; the machine then
//! consults the [`Injector`] at the head of every demand access. Injected
//! corruption is logged with the overwritten value so a recovery handler
//! (or the machine's built-in auto-repair, when [`InjectConfig::recover`]
//! is set) can undo it with `Unforwarded_Write` — exactly the paper-§3.2
//! repair story, exercised under fire.

use memfwd_tagmem::Addr;

/// Probabilities are fixed-point parts-per-million so [`InjectConfig`] can
/// stay `Copy + Eq + Hash` alongside the rest of [`crate::SimConfig`].
pub const PPM: u32 = 1_000_000;

/// Configuration of the deterministic fault-injection campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InjectConfig {
    /// Seed of the splitmix64 stream; equal seeds replay identical
    /// campaigns down to the cycle.
    pub seed: u64,
    /// Probability (parts per million) that a demand access has the
    /// forwarding bit of its target word flipped on before resolution.
    pub fbit_flip_ppm: u32,
    /// Probability (ppm) that a demand access first has its target word
    /// turned into a forwarding self-loop — a guaranteed-detectable cycle.
    pub chain_scramble_ppm: u32,
    /// Probability (ppm) that an allocation request is forced to report
    /// heap exhaustion.
    pub alloc_fail_ppm: u32,
    /// When set, the machine repairs each injected corruption from the
    /// corruption log (charging handler cycles) as soon as the victim
    /// access detects it, and retries. When clear, corruption is left in
    /// place and surfaces as a typed fault or a forwarded read of the
    /// scrambled word.
    pub recover: bool,
    /// Hard cap on the number of injections for the whole run; 0 means
    /// unlimited.
    pub max_injections: u64,
}

impl Default for InjectConfig {
    fn default() -> Self {
        InjectConfig {
            seed: 0x5eed_f417,
            fbit_flip_ppm: 0,
            chain_scramble_ppm: 0,
            alloc_fail_ppm: 0,
            recover: true,
            max_injections: 0,
        }
    }
}

/// What a single injection did, for the corruption log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectKind {
    /// The word's forwarding bit was flipped on (its data became a bogus
    /// forwarding address).
    FbitFlip,
    /// The word was overwritten with a forwarding self-loop.
    ChainScramble,
}

/// One logged corruption: enough state to undo it with `Unforwarded_Write`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Corruption {
    /// The corrupted word (word-aligned).
    pub word: Addr,
    /// The word's value before corruption.
    pub saved_value: u64,
    /// The word's forwarding bit before corruption.
    pub saved_fbit: bool,
    /// What was done to it.
    pub kind: InjectKind,
}

/// The seeded corruption engine. Owned by the machine when
/// [`crate::SimConfig::fault_injection`] is set.
#[derive(Debug, Clone)]
pub struct Injector {
    cfg: InjectConfig,
    state: u64,
    injected: u64,
    /// Corruptions not yet repaired, newest last.
    pub log: Vec<Corruption>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Injector {
    /// Creates an injector replaying the campaign described by `cfg`.
    pub fn new(cfg: InjectConfig) -> Self {
        Injector {
            cfg,
            state: cfg.seed ^ 0x9e37_79b9_7f4a_7c15,
            injected: 0,
            log: Vec::new(),
        }
    }

    /// The campaign configuration.
    pub fn config(&self) -> InjectConfig {
        self.cfg
    }

    /// Total injections performed so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    fn budget_left(&self) -> bool {
        self.cfg.max_injections == 0 || self.injected < self.cfg.max_injections
    }

    fn roll(&mut self, ppm: u32) -> bool {
        if ppm == 0 || !self.budget_left() {
            return false;
        }
        (splitmix64(&mut self.state) % PPM as u64) < ppm as u64
    }

    /// Decides whether this demand access should have its target word's
    /// forwarding bit flipped. Advances the RNG deterministically.
    pub fn roll_fbit_flip(&mut self) -> bool {
        let hit = self.roll(self.cfg.fbit_flip_ppm);
        if hit {
            self.injected += 1;
        }
        hit
    }

    /// Decides whether this demand access should have its target word
    /// scrambled into a self-loop. Advances the RNG deterministically.
    pub fn roll_chain_scramble(&mut self) -> bool {
        let hit = self.roll(self.cfg.chain_scramble_ppm);
        if hit {
            self.injected += 1;
        }
        hit
    }

    /// Decides whether this allocation should be forced to fail.
    pub fn roll_alloc_fail(&mut self) -> bool {
        let hit = self.roll(self.cfg.alloc_fail_ppm);
        if hit {
            self.injected += 1;
        }
        hit
    }

    /// Records a corruption so recovery can undo it later.
    pub fn record(&mut self, c: Corruption) {
        self.log.push(c);
    }

    /// Drains the corruption log (used by the machine's auto-repair).
    pub fn drain_log(&mut self) -> Vec<Corruption> {
        std::mem::take(&mut self.log)
    }

    /// Serializes the injector's mutable state (RNG position, injection
    /// count, unrepaired-corruption log). The campaign configuration is
    /// *not* encoded: snapshots carry a configuration fingerprint instead,
    /// and [`Injector::snapshot_decode`] takes the config as a parameter.
    pub fn snapshot_encode(&self, enc: &mut memfwd_tagmem::SnapEncoder) {
        enc.u64(self.state);
        enc.u64(self.injected);
        enc.seq(self.log.iter(), |e, c| {
            e.addr(c.word);
            e.u64(c.saved_value);
            e.bool(c.saved_fbit);
            e.u8(match c.kind {
                InjectKind::FbitFlip => 0,
                InjectKind::ChainScramble => 1,
            });
        });
    }

    /// Rebuilds an injector written by [`Injector::snapshot_encode`],
    /// resuming the campaign `cfg` exactly where the snapshot left it.
    pub fn snapshot_decode(
        dec: &mut memfwd_tagmem::SnapDecoder<'_>,
        cfg: InjectConfig,
    ) -> Result<Injector, memfwd_tagmem::SnapCodecError> {
        let state = dec.u64()?;
        let injected = dec.u64()?;
        let n = dec.seq_len(18)?;
        let mut log = Vec::with_capacity(n);
        for _ in 0..n {
            let word = dec.addr()?;
            let saved_value = dec.u64()?;
            let saved_fbit = dec.bool()?;
            let kind = match dec.u8()? {
                0 => InjectKind::FbitFlip,
                1 => InjectKind::ChainScramble,
                _ => return Err(memfwd_tagmem::SnapCodecError::BadValue),
            };
            log.push(Corruption {
                word,
                saved_value,
                saved_fbit,
                kind,
            });
        }
        Ok(Injector {
            cfg,
            state,
            injected,
            log,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let cfg = InjectConfig {
            fbit_flip_ppm: 500_000,
            ..InjectConfig::default()
        };
        let mut a = Injector::new(cfg);
        let mut b = Injector::new(cfg);
        let seq_a: Vec<bool> = (0..64).map(|_| a.roll_fbit_flip()).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.roll_fbit_flip()).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|&h| h), "p=0.5 over 64 rolls must hit");
        assert!(!seq_a.iter().all(|&h| h), "p=0.5 over 64 rolls must miss");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Injector::new(InjectConfig {
            seed: 1,
            fbit_flip_ppm: 500_000,
            ..InjectConfig::default()
        });
        let mut b = Injector::new(InjectConfig {
            seed: 2,
            fbit_flip_ppm: 500_000,
            ..InjectConfig::default()
        });
        let seq_a: Vec<bool> = (0..256).map(|_| a.roll_fbit_flip()).collect();
        let seq_b: Vec<bool> = (0..256).map(|_| b.roll_fbit_flip()).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn zero_probability_never_fires() {
        let mut inj = Injector::new(InjectConfig::default());
        for _ in 0..1000 {
            assert!(!inj.roll_fbit_flip());
            assert!(!inj.roll_chain_scramble());
            assert!(!inj.roll_alloc_fail());
        }
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn max_injections_caps_campaign() {
        let mut inj = Injector::new(InjectConfig {
            fbit_flip_ppm: PPM, // always fire
            max_injections: 3,
            ..InjectConfig::default()
        });
        let hits: u64 = (0..100).map(|_| inj.roll_fbit_flip() as u64).sum();
        assert_eq!(hits, 3);
        assert_eq!(inj.injected(), 3);
    }

    #[test]
    fn log_records_and_drains() {
        let mut inj = Injector::new(InjectConfig::default());
        inj.record(Corruption {
            word: Addr(0x100),
            saved_value: 7,
            saved_fbit: false,
            kind: InjectKind::FbitFlip,
        });
        assert_eq!(inj.log.len(), 1);
        let drained = inj.drain_log();
        assert_eq!(drained.len(), 1);
        assert!(inj.log.is_empty());
        assert_eq!(drained[0].word, Addr(0x100));
    }
}
