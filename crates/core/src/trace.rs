//! Optional memory-reference tracing.
//!
//! When enabled, the [`crate::Machine`] records one [`TraceRecord`] per
//! demand reference — cycle, kind, initial and final address, hop count and
//! D-cache outcome. Traces power profiling tools of the kind the paper's
//! §3.2 envisions (finding the instructions/addresses that experience
//! forwarding or misses, so a future run can avoid them) and make the
//! simulator's behaviour inspectable in tests.

use memfwd_tagmem::Addr;
use std::collections::HashMap;

/// The kind of a traced reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// A demand load.
    Load,
    /// A demand store.
    Store,
}

/// One traced demand reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Cycle at which the reference issued.
    pub cycle: u64,
    /// Load or store.
    pub kind: TraceKind,
    /// The address the program used.
    pub initial: Addr,
    /// The address the data actually lived at.
    pub final_addr: Addr,
    /// Forwarding hops dereferenced.
    pub hops: u32,
    /// Whether the reference missed the L1 D-cache.
    pub l1_miss: bool,
    /// Ready cycle of the reference's address dependence (0 if none) —
    /// what lets [`crate::replay_trace`] reconstruct the dataflow.
    pub dep_cycle: u64,
    /// Cycle at which the reference completed.
    pub complete_cycle: u64,
}

/// A bounded reference trace.
#[derive(Debug, Default)]
pub(crate) struct Trace {
    records: Vec<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    pub(crate) fn new(capacity: usize) -> Trace {
        Trace {
            records: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    pub(crate) fn push(&mut self, r: TraceRecord) {
        if self.records.len() < self.capacity {
            self.records.push(r);
        } else {
            self.dropped += 1;
        }
    }

    pub(crate) fn take(&mut self) -> (Vec<TraceRecord>, u64) {
        (
            std::mem::take(&mut self.records),
            std::mem::take(&mut self.dropped),
        )
    }

    /// Serializes the buffered records, the capacity, and the drop count.
    pub(crate) fn snapshot_encode(&self, enc: &mut memfwd_tagmem::SnapEncoder) {
        enc.usize(self.capacity);
        enc.u64(self.dropped);
        enc.seq(self.records.iter(), |e, r| {
            e.u64(r.cycle);
            e.u8(match r.kind {
                TraceKind::Load => 0,
                TraceKind::Store => 1,
            });
            e.addr(r.initial);
            e.addr(r.final_addr);
            e.u32(r.hops);
            e.bool(r.l1_miss);
            e.u64(r.dep_cycle);
            e.u64(r.complete_cycle);
        });
    }

    /// Rebuilds a trace written by [`Trace::snapshot_encode`].
    pub(crate) fn snapshot_decode(
        dec: &mut memfwd_tagmem::SnapDecoder<'_>,
    ) -> Result<Trace, memfwd_tagmem::SnapCodecError> {
        let capacity = dec.usize()?;
        let dropped = dec.u64()?;
        let n = dec.seq_len(46)?;
        if n > capacity {
            return Err(memfwd_tagmem::SnapCodecError::BadValue);
        }
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            let cycle = dec.u64()?;
            let kind = match dec.u8()? {
                0 => TraceKind::Load,
                1 => TraceKind::Store,
                _ => return Err(memfwd_tagmem::SnapCodecError::BadValue),
            };
            records.push(TraceRecord {
                cycle,
                kind,
                initial: dec.addr()?,
                final_addr: dec.addr()?,
                hops: dec.u32()?,
                l1_miss: dec.bool()?,
                dep_cycle: dec.u64()?,
                complete_cycle: dec.u64()?,
            });
        }
        Ok(Trace {
            records,
            capacity,
            dropped,
        })
    }
}

/// The cache lines with the most L1 misses in a trace, hottest first —
/// the working input of a layout-tuning profiler.
pub fn hot_miss_lines(records: &[TraceRecord], line_bytes: u64, top: usize) -> Vec<(u64, u64)> {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for r in records.iter().filter(|r| r.l1_miss) {
        *counts.entry(r.final_addr.0 / line_bytes).or_default() += 1;
    }
    let mut v: Vec<(u64, u64)> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(top);
    v
}

/// The initial addresses that were forwarded, with hop counts — what a
/// §3.2 profiling trap handler would aggregate to find stray pointers.
pub fn forwarding_sources(records: &[TraceRecord]) -> Vec<(Addr, u32, u64)> {
    let mut counts: HashMap<(Addr, u32), u64> = HashMap::new();
    for r in records.iter().filter(|r| r.hops > 0) {
        *counts.entry((r.initial.word_base(), r.hops)).or_default() += 1;
    }
    let mut v: Vec<(Addr, u32, u64)> = counts.into_iter().map(|((a, h), c)| (a, h, c)).collect();
    v.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(cycle: u64, addr: u64, hops: u32, miss: bool) -> TraceRecord {
        TraceRecord {
            cycle,
            kind: TraceKind::Load,
            initial: Addr(addr),
            final_addr: Addr(addr + u64::from(hops) * 0x100),
            hops,
            l1_miss: miss,
            dep_cycle: 0,
            complete_cycle: cycle + 1,
        }
    }

    #[test]
    fn bounded_capacity_drops_excess() {
        let mut t = Trace::new(2);
        for i in 0..5 {
            t.push(rec(i, 0x1000, 0, false));
        }
        let (records, dropped) = t.take();
        assert_eq!(records.len(), 2);
        assert_eq!(dropped, 3);
        let (records, dropped) = t.take();
        assert!(records.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn hot_lines_ranked_by_miss_count() {
        let rs = vec![
            rec(0, 0x1000, 0, true),
            rec(1, 0x1008, 0, true),
            rec(2, 0x2000, 0, true),
            rec(3, 0x3000, 0, false), // hit: ignored
        ];
        let hot = hot_miss_lines(&rs, 64, 10);
        assert_eq!(hot[0], (0x1000 / 64, 2));
        assert_eq!(hot[1], (0x2000 / 64, 1));
        assert_eq!(hot.len(), 2);
    }

    #[test]
    fn forwarding_sources_aggregate() {
        let rs = vec![
            rec(0, 0x1000, 1, true),
            rec(1, 0x1004, 1, false), // same word
            rec(2, 0x2000, 2, true),
        ];
        let f = forwarding_sources(&rs);
        assert_eq!(f[0], (Addr(0x1000), 1, 2));
        assert_eq!(f[1], (Addr(0x2000), 2, 1));
    }
}
