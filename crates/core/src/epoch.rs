//! Epoch-based speculative parallel execution.
//!
//! The batched hot path (PR 7) saturates one host core; this module uses
//! the rest. An application hands the machine a group of *tasks* — closures
//! issuing demand references through the [`Demand`] trait — via
//! [`Machine::run_tasks`]. With `SimConfig::epoch_threads > 0`, worker
//! threads execute future tasks **speculatively** against a frozen
//! copy-on-write view of the tagged memory while the calling thread
//! *commits* finished tasks strictly in task order:
//!
//! - Each worker runs a task through `SpecExec`, a purely *functional*
//!   interpreter: it resolves forwarding chains and reads/writes data
//!   through a [`SpecView`] page overlay, recording an **op log** (every
//!   demand reference with its resolved final address and the exact hop
//!   words its walk touched) plus **word-granular** read/write bitmaps.
//! - The committer retires tasks in order. A task is **clean** when its
//!   speculation did not abort and no *word* it read was written by an
//!   earlier task in the group — write/write overlap on distinct words
//!   needs no serialization, because the committer merges each clean
//!   task's writes by patching exactly its written words, in task order
//!   (serial last-writer-wins falls out). A clean task's op log is
//!   **replayed** through the pipeline / cache / dependence-speculation
//!   models — the replay is the general demand path with the functional
//!   half (chain walk, page translation, data movement) already done, so
//!   every counter and cycle comes out exactly as direct execution would
//!   have produced.
//! - A **dirty** task (conflict or abort) is discarded and re-executed
//!   directly on the real machine at its program-order position, which also
//!   re-raises any genuine machine fault exactly as direct execution would.
//!
//! Commit decisions depend only on the task order and each task's
//! deterministic footprint — never on worker scheduling — so the engine is
//! **bit-identical** at every thread count, including `--scalar` runs; only
//! the [`EpochStats`] block distinguishes `epoch_threads == 0` (all zero)
//! from `>= 1`.
//!
//! Tasks must be *token-local*: every [`Token`] consumed by a task must
//! have been produced inside the same task (speculative tokens are
//! symbolic op-log indices). A foreign token makes the interpreter abort
//! the task conservatively, which costs a serial replay but never
//! correctness.

use crate::batch::{BatchDep, BatchOut, RefBatch};
use crate::config::SimConfig;
use crate::machine::Machine;
use crate::stats::{FwdStats, HOPS_BUCKETS};
use memfwd_cache::{AccessKind, Hierarchy};
use memfwd_cpu::{OpClass, Pipeline, SpecQueue, Token};
use memfwd_tagmem::{
    merge_mask, validate_access, Addr, FxHashMap, Page, PageMask, SpecBase, SpecView, WORD_BYTES,
};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// The demand-reference interface a task executes against: either the real
/// [`Machine`] (direct execution, conflict replays) or the speculative
/// interpreter (`SpecExec`) on a worker thread.
///
/// The surface is deliberately the timing-relevant subset of the machine's
/// API — demand loads/stores, batches, prefetch, compute. Allocation,
/// relocation and the ISA extensions stay on [`Machine`]: task bodies do
/// the memory-access work, the host code around [`Machine::run_tasks`]
/// does the structural work.
pub trait Demand {
    /// A demand load with an explicit address dependence; returns the value
    /// and its completion token.
    fn load_dep(&mut self, addr: Addr, size: u64, dep: Token) -> (u64, Token);

    /// A demand store with an explicit dependence; returns the completion
    /// token.
    fn store_dep(&mut self, addr: Addr, size: u64, val: u64, dep: Token) -> Token;

    /// Consumes a whole reference batch, leaving per-op results in `out`
    /// (see [`Machine::run_batch`]).
    fn run_batch(&mut self, batch: &RefBatch, out: &mut BatchOut);

    /// Issues a block prefetch of `lines` cache lines at `addr`.
    fn prefetch(&mut self, addr: Addr, lines: u64);

    /// [`Demand::prefetch`] with an explicit address dependence.
    fn prefetch_dep(&mut self, addr: Addr, lines: u64, dep: Token);

    /// Executes `n` independent single-cycle ALU instructions.
    fn compute(&mut self, n: u64);

    /// Executes `n` dependent ALU instructions consuming `dep`; returns the
    /// last one's token.
    fn compute_dep(&mut self, n: u64, dep: Token) -> Token;

    /// Cache line size in bytes.
    fn line_bytes(&self) -> u64;

    /// Loads one 64-bit word with a dependence token.
    fn load_word_dep(&mut self, addr: Addr, dep: Token) -> (u64, Token) {
        self.load_dep(addr, WORD_BYTES, dep)
    }

    /// Loads a pointer with a dependence token.
    fn load_ptr_dep(&mut self, addr: Addr, dep: Token) -> (Addr, Token) {
        let (v, t) = self.load_dep(addr, WORD_BYTES, dep);
        (Addr(v), t)
    }

    /// Loads one 64-bit word.
    fn load_word(&mut self, addr: Addr) -> u64 {
        self.load_dep(addr, WORD_BYTES, Token::ready()).0
    }

    /// Stores one 64-bit word.
    fn store_word(&mut self, addr: Addr, val: u64) {
        self.store_dep(addr, WORD_BYTES, val, Token::ready());
    }

    /// Stores a pointer.
    fn store_ptr(&mut self, addr: Addr, val: Addr) {
        self.store_dep(addr, WORD_BYTES, val.0, Token::ready());
    }
}

impl Demand for Machine {
    fn load_dep(&mut self, addr: Addr, size: u64, dep: Token) -> (u64, Token) {
        Machine::load_dep(self, addr, size, dep)
    }

    fn store_dep(&mut self, addr: Addr, size: u64, val: u64, dep: Token) -> Token {
        Machine::store_dep(self, addr, size, val, dep)
    }

    fn run_batch(&mut self, batch: &RefBatch, out: &mut BatchOut) {
        Machine::run_batch(self, batch, out)
    }

    fn prefetch(&mut self, addr: Addr, lines: u64) {
        Machine::prefetch(self, addr, lines)
    }

    fn prefetch_dep(&mut self, addr: Addr, lines: u64, dep: Token) {
        Machine::prefetch_dep(self, addr, lines, dep)
    }

    fn compute(&mut self, n: u64) {
        Machine::compute(self, n)
    }

    fn compute_dep(&mut self, n: u64, dep: Token) -> Token {
        Machine::compute_dep(self, n, dep)
    }

    fn line_bytes(&self) -> u64 {
        Machine::line_bytes(self)
    }
}

/// One logged operation of a speculative task. Dependences are symbolic:
/// `dep == 0` means ready-at-dispatch, `dep == k > 0` means "the completion
/// of op `k-1`" — resolved to real cycles during commit replay.
enum Op {
    /// A demand reference, functionally resolved: `final_addr` is where the
    /// forwarding chain ended, `hop_lo..hop_lo+hops` indexes the task's hop
    /// word list (empty under perfect forwarding).
    Demand {
        is_store: bool,
        initial: Addr,
        final_addr: Addr,
        dep: u32,
        hop_lo: u32,
        hops: u32,
    },
    /// `n` independent ALU instructions.
    Compute { n: u64 },
    /// `n` chained ALU instructions consuming `dep`.
    ComputeDep { n: u64, dep: u32 },
    /// A block prefetch.
    Prefetch { addr: Addr, lines: u64, dep: u32 },
}

/// Everything a finished speculative task hands to the committer.
struct SpecResult<R> {
    /// The closure's return value (`None` when the task panicked).
    value: Option<R>,
    /// Word-granular footprint + written page copies.
    delta: memfwd_tagmem::SpecDelta,
    /// The op log, in program order.
    ops: Vec<Op>,
    /// Hop words of all forwarding walks, indexed by [`Op::Demand`].
    hop_words: Vec<u64>,
    /// The interpreter bailed out (fault path, hop budget, foreign token,
    /// panic): the task must be re-executed directly.
    aborted: bool,
}

/// The speculative functional interpreter: executes one task against a
/// [`SpecView`] overlay, logging ops for commit-time timing replay.
struct SpecExec<'a> {
    cfg: &'a SimConfig,
    view: SpecView<'a>,
    ops: Vec<Op>,
    hop_words: Vec<u64>,
    aborted: bool,
    /// Walks longer than this are aborted to the direct path: past
    /// `hop_limit` the real machine charges the accurate cycle check (and
    /// past `hard_hop_budget` it faults), neither of which the replay fold
    /// models.
    hop_cap: u32,
}

impl<'a> SpecExec<'a> {
    fn new(cfg: &'a SimConfig, base: SpecBase<'a>) -> SpecExec<'a> {
        SpecExec {
            cfg,
            view: SpecView::new(base),
            ops: Vec::new(),
            hop_words: Vec::new(),
            aborted: false,
            hop_cap: cfg.hop_limit.min(cfg.hard_hop_budget.unwrap_or(u32::MAX)),
        }
    }

    /// Decodes a task-local token into a symbolic op index (0 = ready).
    /// Foreign tokens — cycles that cannot name an op this task logged —
    /// abort the task.
    fn dep_of(&mut self, dep: Token) -> u32 {
        let c = dep.cycle();
        if c > self.ops.len() as u64 {
            self.aborted = true;
            return 0;
        }
        c as u32
    }

    fn abort(&mut self, hop_lo: usize) -> (u64, Token) {
        self.aborted = true;
        self.hop_words.truncate(hop_lo);
        (0, Token::ready())
    }

    /// The speculative demand reference: functional chain walk through the
    /// overlay, data movement, op logging. Any condition the replay fold
    /// cannot reproduce bit-identically (faults, cycle checks, budget
    /// overruns) aborts the task instead.
    fn demand(
        &mut self,
        is_store: bool,
        addr: Addr,
        size: u64,
        val: u64,
        dep: Token,
    ) -> (u64, Token) {
        if self.aborted {
            return (0, Token::ready());
        }
        let dep = self.dep_of(dep);
        let hop_lo = self.hop_words.len();
        if addr.is_null() || validate_access(addr, size).is_err() {
            return self.abort(hop_lo);
        }
        let mut cur = addr;
        let mut hops = 0u32;
        let final_word;
        loop {
            // Hops and a full-word store's final probe are peeks, not value
            // reads: their outcome depends only on forwarding bits and
            // fbit-set words, both epoch-immutable (tasks write only
            // fbit-clear words and never touch fbits), so recording them
            // would only manufacture false conflicts. Loads and subword
            // stores (which byte-merge into the word) mark the dependence.
            let (word, fbit) = self.view.peek_word_tagged(cur);
            if !fbit {
                if !is_store || size < WORD_BYTES {
                    self.view.mark_read(cur);
                }
                final_word = word;
                break;
            }
            if !self.cfg.perfect_forwarding {
                self.hop_words.push(cur.word_base().0);
            }
            hops += 1;
            if hops > self.hop_cap {
                return self.abort(hop_lo);
            }
            cur = Addr(word) + cur.word_offset();
        }
        let final_addr = cur;
        if final_addr != addr
            && (final_addr.is_null() || validate_access(final_addr, size).is_err())
        {
            return self.abort(hop_lo);
        }
        let out = if is_store {
            self.view.write_data(final_addr, size, val);
            0
        } else if size == WORD_BYTES {
            final_word
        } else {
            (final_word >> (8 * (final_addr.0 & 7))) & ((1u64 << (8 * size)) - 1)
        };
        let hops_logged = if self.cfg.perfect_forwarding { 0 } else { hops };
        self.ops.push(Op::Demand {
            is_store,
            initial: addr,
            final_addr,
            dep,
            hop_lo: hop_lo as u32,
            hops: hops_logged,
        });
        (out, Token::at(self.ops.len() as u64))
    }

    fn into_result<R>(self, value: Option<R>) -> SpecResult<R> {
        SpecResult {
            value,
            delta: self.view.into_delta(),
            ops: self.ops,
            hop_words: self.hop_words,
            aborted: self.aborted,
        }
    }
}

impl Demand for SpecExec<'_> {
    fn load_dep(&mut self, addr: Addr, size: u64, dep: Token) -> (u64, Token) {
        self.demand(false, addr, size, 0, dep)
    }

    fn store_dep(&mut self, addr: Addr, size: u64, val: u64, dep: Token) -> Token {
        self.demand(true, addr, size, val, dep).1
    }

    fn run_batch(&mut self, batch: &RefBatch, out: &mut BatchOut) {
        // The batch path is bit-identical to the scalar sequence by
        // construction, so speculation interprets it *as* the scalar
        // sequence; the replay fold reproduces whichever timing path the
        // direct machine would have picked (they agree to the bit).
        out.reset();
        for i in 0..batch.len() {
            let op = batch.op(i);
            let dep = match op.dep {
                BatchDep::Ready => Token::ready(),
                BatchDep::External(t) => t,
                BatchDep::Prev(j) => out.tok(j as usize),
            };
            let (v, t) = self.demand(op.is_store, op.addr, u64::from(op.size), op.val, dep);
            out.push_result(v, t);
        }
    }

    fn prefetch(&mut self, addr: Addr, lines: u64) {
        Demand::prefetch_dep(self, addr, lines, Token::ready());
    }

    fn prefetch_dep(&mut self, addr: Addr, lines: u64, dep: Token) {
        if self.aborted {
            return;
        }
        let dep = self.dep_of(dep);
        self.ops.push(Op::Prefetch { addr, lines, dep });
    }

    fn compute(&mut self, n: u64) {
        if self.aborted {
            return;
        }
        self.ops.push(Op::Compute { n });
    }

    fn compute_dep(&mut self, n: u64, dep: Token) -> Token {
        if self.aborted {
            return Token::ready();
        }
        let dep = self.dep_of(dep);
        self.ops.push(Op::ComputeDep { n, dep });
        Token::at(self.ops.len() as u64)
    }

    fn line_bytes(&self) -> u64 {
        self.cfg.hierarchy.line_bytes
    }
}

/// Replays one clean task's op log through the timing models. This is the
/// general demand path (`Machine::demand_attempt`) with its functional half
/// — validation, chain walk, page translation, data movement — already
/// performed by the speculative interpreter: the fold below executes the
/// remaining timing statements in the same order with the same arguments,
/// which is what makes the committed run bit-identical to direct execution.
#[allow(clippy::too_many_arguments)]
fn replay_task(
    cfg: &SimConfig,
    pipe: &mut Pipeline,
    hier: &mut Hierarchy,
    spec: &mut SpecQueue,
    stats: &mut FwdStats,
    last_store_resolve: &mut u64,
    ops: &[Op],
    hop_words: &[u64],
    completions: &mut Vec<u64>,
) {
    completions.clear();
    let cycle_of = |completions: &[u64], dep: u32| -> u64 {
        if dep == 0 {
            0
        } else {
            completions[dep as usize - 1]
        }
    };
    for op in ops {
        match *op {
            Op::Demand {
                is_store,
                initial,
                final_addr,
                dep,
                hop_lo,
                hops,
            } => {
                let d = pipe.dispatch();
                let mut start = d.max(cycle_of(completions, dep));
                if !cfg.dependence_speculation && !is_store {
                    start = start.max(*last_store_resolve);
                }
                let mut t = start;
                let mut walk_miss = false;
                for &wb in &hop_words[hop_lo as usize..(hop_lo + hops) as usize] {
                    let acc = hier.access(t, wb, AccessKind::Load);
                    walk_miss |= acc.l1_miss();
                    t = acc.complete_at + cfg.fwd_hop_penalty;
                }
                let fwd_cycles = t - start;
                let kind = if is_store {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                };
                let acc = hier.access(t, final_addr.0, kind);
                let l1_miss = walk_miss || acc.l1_miss();
                let mut complete = acc.complete_at;
                if is_store {
                    spec.on_store(
                        initial.word_base().0,
                        final_addr.word_base().0,
                        acc.complete_at,
                    );
                    *last_store_resolve = (*last_store_resolve).max(acc.complete_at);
                } else if cfg.dependence_speculation {
                    if let Some(v) =
                        spec.check_load(start, initial.word_base().0, final_addr.word_base().0)
                    {
                        stats.misspeculations += 1;
                        pipe.replay(v.store_resolved_at);
                        complete = complete.max(v.store_resolved_at + cfg.pipeline.replay_penalty);
                    }
                }
                let bucket = (hops as usize).min(HOPS_BUCKETS - 1);
                if is_store {
                    stats.stores += 1;
                    stats.store_cycles += complete - start;
                    stats.store_fwd_cycles += fwd_cycles;
                    stats.store_hops[bucket] += 1;
                    if hops > 0 {
                        stats.forwarded_stores += 1;
                    }
                    pipe.complete(OpClass::Store, d, complete, l1_miss);
                } else {
                    stats.loads += 1;
                    stats.load_cycles += complete - start;
                    stats.load_fwd_cycles += fwd_cycles;
                    stats.load_hops[bucket] += 1;
                    if hops > 0 {
                        stats.forwarded_loads += 1;
                    }
                    pipe.complete(OpClass::Load, d, complete, l1_miss);
                }
                completions.push(complete);
            }
            Op::Compute { n } => {
                for _ in 0..n {
                    pipe.compute(0);
                }
                stats.computes += n;
                completions.push(0);
            }
            Op::ComputeDep { n, dep } => {
                let mut t = cycle_of(completions, dep);
                for _ in 0..n {
                    t = pipe.compute(t);
                }
                stats.computes += n;
                completions.push(t);
            }
            Op::Prefetch { addr, lines, dep } => {
                let d = pipe.dispatch();
                hier.prefetch_block(d.max(cycle_of(completions, dep)), addr.0, lines);
                stats.prefetches += 1;
                pipe.complete(OpClass::Prefetch, d, d + 1, false);
                completions.push(d + 1);
            }
        }
    }
}

impl Machine {
    /// Whether the machine's current observer set permits speculative task
    /// execution. The speculative interpreter models none of the optional
    /// observers, so any attached observer sends every task down the direct
    /// path (counted in [`crate::EpochStats::direct`]). Unlike the demand
    /// fast path, `--scalar` does *not* disqualify speculation: the replay
    /// fold mirrors the general path, which is bit-identical to the fast
    /// path under exactly these conditions.
    fn epoch_ok(&self) -> bool {
        self.injector.is_none()
            && self.pages.is_none()
            && self.trace.is_none()
            && !self.traps_enabled
            && self.fault_handler.is_none()
            && self.cfg.store_buffer_entries.is_none()
            && self.cfg.watchdog.stall_cycles.is_none()
            && self.cfg.watchdog.walk_hop_budget.is_none()
    }

    /// Executes `n` independent tasks, in task order as far as any observer
    /// can tell, using up to `SimConfig::epoch_threads` speculation workers.
    ///
    /// Each task receives its index and a [`Demand`] handle; it must confine
    /// itself to that handle (no captured machine access) and to tokens it
    /// produced itself. Tasks need **not** be data-independent — word-level
    /// conflicts are detected and the losing task is transparently
    /// re-executed serially — but conflict-free tasks are what buys
    /// parallel speedup. (Tasks that merely share 4 KiB pages, e.g. nodes
    /// carved from one pool slab, are *not* conflicts: detection and merge
    /// are word-granular.)
    ///
    /// With `epoch_threads == 0` this is exactly a serial loop over
    /// `f(i, self)`; with any thread count ≥ 1 the observable machine state
    /// (memory, heap, every statistic except [`crate::EpochStats`], which
    /// is itself identical across all counts ≥ 1) is bit-identical to the
    /// serial loop.
    ///
    /// # Panics
    ///
    /// A task that panics deterministically (e.g. a demand reference
    /// faulting through the panicking API) is re-executed directly and the
    /// panic propagates from its program-order position, exactly as in the
    /// serial loop.
    pub fn run_tasks<R, F>(&mut self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut dyn Demand) -> R + Sync,
    {
        let threads = self.cfg.epoch_threads.min(n);
        if threads == 0 {
            return (0..n).map(|i| f(i, self)).collect();
        }
        self.epoch_stats.epochs += 1;
        if !self.epoch_ok() {
            self.epoch_stats.direct += n as u64;
            return (0..n).map(|i| f(i, self)).collect();
        }

        let mut parked: Vec<Option<SpecResult<R>>> = (0..n).map(|_| None).collect();
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut committed_writes: FxHashMap<u64, PageMask> = FxHashMap::default();
        let mut pending: Vec<(u64, Box<Page>, PageMask)> = Vec::new();
        let mut completions: Vec<u64> = Vec::new();
        let mut next_commit = 0usize;

        {
            // Split borrows: workers share the memory immutably (the
            // `SpecBase` projection); the committer owns the timing models.
            let m = &mut *self;
            let cfg = &m.cfg;
            let base = m.mem.spec_base();
            let pipe = &mut m.pipe;
            let hier = &mut m.hier;
            let spec = &mut m.spec;
            let stats = &mut m.stats;
            let lsr = &mut m.last_store_resolve;
            let epoch_stats = &mut m.epoch_stats;

            let next_task = AtomicUsize::new(0);
            std::thread::scope(|s| {
                let next = &next_task;
                let f = &f;
                let (tx, rx) = mpsc::channel::<(usize, SpecResult<R>)>();
                for _ in 0..threads {
                    let tx = tx.clone();
                    s.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            return;
                        }
                        let mut ex = SpecExec::new(cfg, base);
                        // A panic inside speculation (stale data steering
                        // the task into an assertion, or the panicking
                        // demand API) is contained: the result is discarded
                        // and the task re-runs directly, where a genuine
                        // panic reproduces at its program-order position.
                        let value =
                            std::panic::catch_unwind(AssertUnwindSafe(|| f(i, &mut ex))).ok();
                        let mut res = ex.into_result(value);
                        res.aborted |= res.value.is_none();
                        if tx.send((i, res)).is_err() {
                            return;
                        }
                    });
                }
                drop(tx);

                // Round 1: retire in task order, eagerly overlapping commit
                // replay with still-running workers. The first dirty task
                // stalls retirement (its serial re-execution needs the real
                // memory, which workers still share) but the channel keeps
                // draining so every worker runs to completion.
                let mut stalled = false;
                for (i, res) in rx {
                    parked[i] = Some(res);
                    if stalled {
                        continue;
                    }
                    while next_commit < n {
                        let Some(r) = parked[next_commit].as_ref() else {
                            break;
                        };
                        if r.aborted || !r.delta.disjoint_from(&committed_writes) {
                            stalled = true;
                            break;
                        }
                        let mut r = parked[next_commit].take().expect("probed above");
                        r.delta.record_writes(&mut committed_writes);
                        pending.append(&mut r.delta.pages);
                        replay_task(
                            cfg,
                            pipe,
                            hier,
                            spec,
                            stats,
                            lsr,
                            &r.ops,
                            &r.hop_words,
                            &mut completions,
                        );
                        epoch_stats.committed += 1;
                        results[next_commit] = Some(r.value.expect("clean task has a value"));
                        next_commit += 1;
                    }
                }
            });
        }

        // The workers are gone; the memory is ours again. Install the words
        // committed so far (later commits appended later, so same-word
        // installs land in commit order), then finish the tail serially.
        for (pno, pg, mask) in pending.drain(..) {
            self.mem.install_words(pno, &pg, &mask);
        }
        for i in next_commit..n {
            let r = parked[i].take().expect("every task sends a result");
            if !r.aborted && r.delta.disjoint_from(&committed_writes) {
                r.delta.record_writes(&mut committed_writes);
                for (pno, pg, mask) in &r.delta.pages {
                    self.mem.install_words(*pno, pg, mask);
                }
                replay_task(
                    &self.cfg,
                    &mut self.pipe,
                    &mut self.hier,
                    &mut self.spec,
                    &mut self.stats,
                    &mut self.last_store_resolve,
                    &r.ops,
                    &r.hop_words,
                    &mut completions,
                );
                self.epoch_stats.committed += 1;
                results[i] = Some(r.value.expect("clean task has a value"));
            } else {
                if r.aborted {
                    self.epoch_stats.aborts += 1;
                } else if r.delta.pure_reads_overlap(&committed_writes) {
                    self.epoch_stats.conflicts_rw += 1;
                } else {
                    self.epoch_stats.conflicts_ww += 1;
                }
                self.epoch_stats.replayed += 1;
                self.mem.set_write_log(true);
                let v = f(i, self);
                for (pno, mask) in self.mem.take_write_log() {
                    merge_mask(&mut committed_writes, pno, &mask);
                }
                results[i] = Some(v);
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("all tasks resolved"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RunStats;
    use crate::RefBatch;

    /// Zeroes the epoch block so a threaded run can be compared field-for-
    /// field against a `threads == 0` run (their only legitimate delta).
    fn sans_epoch(mut s: RunStats) -> RunStats {
        s.epoch = Default::default();
        s
    }

    /// A workload with conflict-free tasks: each task initializes, links
    /// and walks its own region (pages are 4 KiB; regions are page-spaced).
    fn disjoint_workload(m: &mut Machine) -> u64 {
        let bases: Vec<Addr> = (0..8).map(|_| m.malloc(8192)).collect();
        let sums = m.run_tasks(bases.len(), |i, d| {
            let b = bases[i];
            let mut batch = RefBatch::new();
            batch.set_span(b, 16);
            for w in 0..16u64 {
                batch.push_store(
                    b.add_words(w),
                    8,
                    (i as u64) * 100 + w,
                    crate::BatchDep::Ready,
                );
            }
            let mut out = BatchOut::new();
            d.run_batch(&batch, &mut out);
            let mut acc = 0u64;
            let mut tok = Token::ready();
            for w in 0..16u64 {
                let (v, t) = d.load_word_dep(b.add_words(w), tok);
                acc = acc.wrapping_add(v);
                tok = t;
            }
            d.compute_dep(3, tok);
            d.prefetch(b, 2);
            acc
        });
        sums.iter().fold(0u64, |a, &s| a.rotate_left(7) ^ s)
    }

    /// Same ops at any thread count — full `RunStats` equality (epoch block
    /// zeroed on the threaded side).
    #[test]
    fn threaded_matches_direct_bit_for_bit() {
        let run = |threads: usize| {
            let mut m = Machine::new(SimConfig::default().with_epoch_threads(threads));
            let sum = disjoint_workload(&mut m);
            (sum, m.finish())
        };
        let (sum0, direct) = run(0);
        for threads in [1, 2, 4] {
            let (sum, stats) = run(threads);
            assert_eq!(sum, sum0, "threads {threads}");
            assert_eq!(sans_epoch(stats), direct, "threads {threads}");
            assert_eq!(stats.epoch.epochs, 1);
            assert_eq!(stats.epoch.committed, 8);
            assert_eq!(stats.epoch.replayed, 0);
        }
    }

    /// Epoch counters are identical at every worker count ≥ 1: the commit
    /// protocol's decisions depend on task order, not scheduling.
    #[test]
    fn epoch_stats_independent_of_thread_count() {
        let run = |threads: usize| {
            let mut m = Machine::new(SimConfig::default().with_epoch_threads(threads));
            let b = m.malloc(4096);
            // Every task read-modify-writes the *same word*: task 0
            // commits, the rest misread the value an earlier task wrote
            // (and rewrote the word themselves → write/write collision)
            // and replay.
            m.run_tasks(6, |i, d| {
                let v = d.load_word(b);
                d.store_word(b, v + 10 * (i as u64 + 1));
                v
            });
            m.finish()
        };
        let direct = {
            let mut m = Machine::new(SimConfig::default());
            let b = m.malloc(4096);
            m.run_tasks(6, |i, d| {
                let v = d.load_word(b);
                d.store_word(b, v + 10 * (i as u64 + 1));
                v
            });
            m.finish()
        };
        let one = run(1);
        for threads in [2, 4] {
            assert_eq!(run(threads), one, "threads {threads}");
        }
        assert_eq!(sans_epoch(one), direct);
        assert_eq!(one.epoch.committed, 1);
        assert_eq!(one.epoch.replayed, 5);
        assert_eq!(one.epoch.conflicts_ww, 5);
        assert_eq!(one.epoch.conflicts_rw, 0);
    }

    /// Full-word stores carry no value dependence: even same-word
    /// store/store sequences commit cleanly, because in-order masked
    /// installs reproduce the serial last-writer-wins state and a store's
    /// forwarding-bit probe depends only on epoch-immutable state.
    #[test]
    fn same_word_stores_commit_without_conflict() {
        let run = |threads: usize| {
            let mut m = Machine::new(SimConfig::default().with_epoch_threads(threads));
            let b = m.malloc(4096);
            m.run_tasks(6, |i, d| {
                d.store_word(b, 100 + i as u64);
                i
            });
            let last = m.load_word(b);
            (last, m.finish())
        };
        let (last4, s4) = run(4);
        let (last0, s0) = run(0);
        assert_eq!(last4, 105, "last writer wins");
        assert_eq!(last4, last0);
        assert_eq!(sans_epoch(s4), s0);
        assert_eq!(s4.epoch.committed, 6);
        assert_eq!(s4.epoch.replayed, 0);
    }

    /// Tasks that share a 4 KiB page but touch disjoint *words* — the
    /// false-sharing pattern of list nodes carved from one pool slab — all
    /// commit cleanly: conflict detection and merge are word-granular.
    #[test]
    fn shared_page_disjoint_words_all_commit() {
        let run = |threads: usize| {
            let mut m = Machine::new(SimConfig::default().with_epoch_threads(threads));
            let b = m.malloc(4096);
            let vals = m.run_tasks(6, |i, d| {
                let a = b.add_words(2 * i as u64);
                d.store_word(a, 10 + i as u64);
                d.load_word(a.add_words(1)) + 100 * i as u64
            });
            let mem: Vec<u64> = (0..12).map(|w| m.load_word(b.add_words(w))).collect();
            (vals, mem, m.finish())
        };
        let (vals4, mem4, s4) = run(4);
        let (vals0, mem0, s0) = run(0);
        assert_eq!(vals4, vals0);
        assert_eq!(mem4, mem0);
        assert_eq!(sans_epoch(s4), s0);
        assert_eq!(
            s4.epoch.committed, 6,
            "page sharing alone is not a conflict"
        );
        assert_eq!(s4.epoch.replayed, 0);
    }

    /// A read of a word an earlier task wrote is a true-dependence conflict.
    #[test]
    fn read_after_write_conflicts_and_value_is_correct() {
        let run = |threads: usize| {
            let mut m = Machine::new(SimConfig::default().with_epoch_threads(threads));
            let b = m.malloc(4096);
            let vals = m.run_tasks(2, |i, d| {
                if i == 0 {
                    d.store_word(b, 99);
                    0
                } else {
                    d.load_word(b)
                }
            });
            (vals, m.finish())
        };
        let (vals, stats) = run(4);
        assert_eq!(
            vals,
            vec![0, 99],
            "replayed reader sees the committed store"
        );
        assert_eq!(stats.epoch.replayed, 1);
        assert_eq!(stats.epoch.conflicts_rw, 1);
        let (vals1, stats1) = run(1);
        assert_eq!(vals, vals1);
        assert_eq!(stats, stats1);
    }

    /// Foreign (non-task-local) tokens abort speculation conservatively;
    /// the direct re-run handles them fine and results stay identical.
    #[test]
    fn foreign_token_aborts_to_direct() {
        let run = |threads: usize| {
            let mut m = Machine::new(SimConfig::default().with_epoch_threads(threads));
            let b = m.malloc(8192);
            let outside = Token::at(1_000_000);
            let vals = m.run_tasks(2, |i, d| {
                let a = b.add_words(512 * i as u64);
                d.store_word(a, 7 + i as u64);
                d.load_word_dep(a, outside).0
            });
            (vals, m.finish())
        };
        let (vals, stats) = run(2);
        assert_eq!(vals, vec![7, 8]);
        assert_eq!(stats.epoch.aborts, 2);
        assert_eq!(stats.epoch.replayed, 2);
        let mut m = Machine::new(SimConfig::default());
        let b = m.malloc(8192);
        let outside = Token::at(1_000_000);
        let vals0: Vec<u64> = (0..2usize)
            .map(|i| {
                let a = b.add_words(512 * i as u64);
                Demand::store_word(&mut m, a, 7 + i as u64);
                Demand::load_word_dep(&mut m, a, outside).0
            })
            .collect();
        assert_eq!(vals, vals0);
        assert_eq!(sans_epoch(stats), m.finish());
    }

    /// Forwarded references speculate correctly: the interpreter walks the
    /// chain through the overlay and the replay charges the same hops.
    #[test]
    fn forwarding_chains_replay_identically() {
        let run = |threads: usize| {
            let mut m = Machine::new(SimConfig::default().with_epoch_threads(threads));
            let old = m.malloc(4096);
            let new = m.malloc(4096);
            for w in 0..8u64 {
                m.store_word(new.add_words(w), 1000 + w);
                m.unforwarded_write(old.add_words(w), new.add_words(w).0, true);
            }
            let vals = m.run_tasks(1, |_, d| {
                (0..8u64)
                    .map(|w| d.load_word(old.add_words(w)))
                    .sum::<u64>()
            });
            (vals[0], m.finish())
        };
        let (v4, s4) = run(4);
        let (v0, s0) = run(0);
        assert_eq!(v4, v0);
        assert_eq!(v4, (1000..1008).sum::<u64>());
        assert_eq!(sans_epoch(s4), s0);
        assert_eq!(s4.fwd.forwarded_loads, 8);
        assert_eq!(s4.epoch.committed, 1);
    }

    /// An attached observer (user-level traps) routes tasks down the direct
    /// path — still correct, counted as direct.
    #[test]
    fn ineligible_machine_runs_direct() {
        let mut m = Machine::new(SimConfig::default().with_epoch_threads(4));
        m.set_traps_enabled(true);
        let b = m.malloc(4096);
        let vals = m.run_tasks(3, |i, d| {
            d.store_word(b.add_words(i as u64), i as u64);
            d.load_word(b.add_words(i as u64))
        });
        assert_eq!(vals, vec![0, 1, 2]);
        let s = m.finish();
        assert_eq!(s.epoch.direct, 3);
        assert_eq!(s.epoch.committed, 0);
    }

    /// Scalar mode composes with speculation: `--scalar --threads 4` equals
    /// `--scalar` alone, bit for bit.
    #[test]
    fn scalar_and_threads_compose() {
        let run = |threads: usize| {
            let mut m = Machine::new(
                SimConfig::default()
                    .with_scalar_path()
                    .with_epoch_threads(threads),
            );
            let sum = disjoint_workload(&mut m);
            (sum, m.finish())
        };
        let (sum0, s0) = run(0);
        let (sum4, s4) = run(4);
        assert_eq!(sum4, sum0);
        assert_eq!(sans_epoch(s4), s0);
        assert_eq!(s4.epoch.committed, 8);
    }
}
