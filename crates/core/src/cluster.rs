//! Subtree clustering — paper Fig. 9 and the BH optimization (§5.3).
//!
//! Packs the nodes of each subtree into a cache-line-sized group, in the
//! most balanced (breadth-first) form, so that when a traversal descends
//! from a node, the next node visited is likely already in the current
//! cache line. Parent→child links are updated as nodes move; any other
//! pointers into the tree are protected by memory forwarding.

use crate::machine::Machine;
use crate::reloc::relocate;
use memfwd_tagmem::{Addr, Pool};
use std::collections::{HashMap, VecDeque};

/// Shape of a tree node for clustering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeDesc {
    /// Node size in words.
    pub node_words: u64,
    /// Word offsets of the child pointers within a node.
    pub child_words: Vec<u64>,
}

impl TreeDesc {
    /// Node size in bytes.
    pub fn node_bytes(&self) -> u64 {
        self.node_words * 8
    }

    /// How many nodes of this shape fit in one cache line (at least 1).
    pub fn nodes_per_line(&self, line_bytes: u64) -> u64 {
        (line_bytes / self.node_bytes()).max(1)
    }
}

/// Recursively clusters the subtree rooted at `root`, returning the new
/// address of the root. Nodes for which `is_internal` returns `false`
/// (e.g. the leaf nodes of BH, which are linked by their own list) are left
/// in place.
///
/// `capacity` is the number of nodes packed per cluster — normally
/// [`TreeDesc::nodes_per_line`]. Cluster chunks are line-aligned when the
/// pool's slabs are.
///
/// # Panics
///
/// Panics on heap exhaustion or forwarding cycles, or if the tree contains
/// more than `2^22` internal nodes (assumed corrupt).
pub fn subtree_cluster<F>(
    m: &mut Machine,
    root: Addr,
    desc: &TreeDesc,
    capacity: u64,
    pool: &mut Pool,
    is_internal: &mut F,
) -> Addr
where
    F: FnMut(&mut Machine, Addr) -> bool,
{
    assert!(capacity >= 1);
    if root.is_null() || !is_internal(m, root) {
        return root;
    }
    let mut total = 0u64;
    cluster_rec(m, root, desc, capacity, pool, is_internal, &mut total)
}

fn cluster_rec<F>(
    m: &mut Machine,
    root: Addr,
    desc: &TreeDesc,
    capacity: u64,
    pool: &mut Pool,
    is_internal: &mut F,
    total: &mut u64,
) -> Addr
where
    F: FnMut(&mut Machine, Addr) -> bool,
{
    // 1. Collect up to `capacity` internal nodes breadth-first ("the most
    //    balanced form").
    let mut members: Vec<Addr> = Vec::new();
    let mut queue: VecDeque<Addr> = VecDeque::new();
    queue.push_back(root);
    while members.len() < capacity as usize {
        let Some(node) = queue.pop_front() else { break };
        members.push(node);
        for &cw in &desc.child_words {
            let child = m.load_ptr(node.add_words(cw));
            if !child.is_null()
                && members.len() + queue.len() < capacity as usize
                && is_internal(m, child)
            {
                queue.push_back(child);
            }
        }
    }
    *total += members.len() as u64;
    assert!(*total < 1 << 22, "runaway tree during clustering");

    // 2. Relocate the members into one contiguous chunk. When several
    //    nodes share a line (capacity > 1) the chunk is line-aligned so the
    //    cluster occupies exactly the line it was sized for; degenerate
    //    one-node clusters stay densely packed instead (padding them to
    //    line boundaries would bloat the footprint).
    let bytes = members.len() as u64 * desc.node_bytes();
    let chunk = if capacity > 1 {
        m.pool_alloc_aligned(pool, bytes, m.line_bytes())
    } else {
        m.pool_alloc(pool, bytes)
    };
    let mut new_of: HashMap<Addr, Addr> = HashMap::with_capacity(members.len());
    for (i, &old) in members.iter().enumerate() {
        let tgt = chunk.add_words(i as u64 * desc.node_words);
        relocate(m, old, tgt, desc.node_words);
        new_of.insert(old, tgt);
    }

    // 3. Patch child links: in-cluster children point at their new slots,
    //    out-of-cluster internal children are clustered recursively, and
    //    leaves are left where they are.
    for &old in &members {
        let new_node = new_of[&old];
        for &cw in &desc.child_words {
            let slot = new_node.add_words(cw);
            let child = m.load_ptr(slot);
            if child.is_null() {
                continue;
            }
            if let Some(&nc) = new_of.get(&child) {
                m.store_ptr(slot, nc);
            } else if is_internal(m, child) {
                let nc = cluster_rec(m, child, desc, capacity, pool, is_internal, total);
                m.store_ptr(slot, nc);
            }
        }
    }
    new_of[&root]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    const DESC_WORDS: u64 = 4; // [left, right, payload, pad]

    fn desc() -> TreeDesc {
        TreeDesc {
            node_words: DESC_WORDS,
            child_words: vec![0, 1],
        }
    }

    /// Builds a perfect binary tree of the given depth with scattered
    /// allocation (pre-order, with padding), payloads = BFS index.
    fn build_tree(m: &mut Machine, depth: u32) -> Addr {
        fn rec(m: &mut Machine, d: u32, idx: u64) -> Addr {
            let _pad = m.malloc(8 * (idx % 13 + 1));
            let node = m.malloc(DESC_WORDS * 8);
            m.store_word(node.add_words(2), idx);
            if d > 0 {
                let l = rec(m, d - 1, idx * 2 + 1);
                let r = rec(m, d - 1, idx * 2 + 2);
                m.store_ptr(node, l);
                m.store_ptr(node.add_words(1), r);
            } else {
                m.store_ptr(node, Addr::NULL);
                m.store_ptr(node.add_words(1), Addr::NULL);
            }
            node
        }
        rec(m, depth, 0)
    }

    fn checksum(m: &mut Machine, root: Addr) -> u64 {
        fn rec(m: &mut Machine, node: Addr, depth: u64) -> u64 {
            if node.is_null() {
                return 0;
            }
            let v = m.load_word(node.add_words(2));
            let l = m.load_ptr(node);
            let r = m.load_ptr(node.add_words(1));
            v.wrapping_mul(depth + 3)
                .wrapping_add(rec(m, l, depth + 1))
                .wrapping_add(rec(m, r, depth + 1))
        }
        rec(m, root, 0)
    }

    #[test]
    fn clustering_preserves_tree_contents() {
        let mut m = Machine::new(SimConfig::default());
        let root = build_tree(&mut m, 5);
        let before = checksum(&mut m, root);
        let mut pool = m.new_pool();
        let new_root = subtree_cluster(&mut m, root, &desc(), 4, &mut pool, &mut |_, _| true);
        assert_ne!(new_root, root);
        assert_eq!(checksum(&mut m, new_root), before);
    }

    #[test]
    fn stale_root_pointer_forwards() {
        let mut m = Machine::new(SimConfig::default());
        let root = build_tree(&mut m, 3);
        let before = checksum(&mut m, root);
        let mut pool = m.new_pool();
        let _new_root = subtree_cluster(&mut m, root, &desc(), 4, &mut pool, &mut |_, _| true);
        // Traversing through the OLD root still yields the same tree.
        assert_eq!(checksum(&mut m, root), before);
        let s = m.finish();
        assert!(s.fwd.forwarded_loads > 0);
    }

    #[test]
    fn cluster_members_are_contiguous() {
        let mut m = Machine::new(SimConfig::default());
        let root = build_tree(&mut m, 2); // 7 nodes
        let mut pool = m.new_pool();
        let new_root = subtree_cluster(&mut m, root, &desc(), 4, &mut pool, &mut |_, _| true);
        // BFS order: root, left, right in the first cluster of 4 includes
        // one grandchild; the root's immediate children must be adjacent.
        let l = m.load_ptr(new_root);
        let r = m.load_ptr(new_root.add_words(1));
        let span = 4 * DESC_WORDS * 8;
        assert!(l.0 - new_root.0 < span);
        assert!(r.0 - new_root.0 < span);
    }

    #[test]
    fn leaves_stay_in_place() {
        let mut m = Machine::new(SimConfig::default());
        let root = build_tree(&mut m, 2);
        let old_leftmost_leaf = {
            let mut p = root;
            loop {
                let c = m.load_ptr(p);
                if c.is_null() {
                    break p;
                }
                p = c;
            }
        };
        let mut pool = m.new_pool();
        // Internal = has a left child.
        let new_root = subtree_cluster(&mut m, root, &desc(), 4, &mut pool, &mut |m, a| {
            !m.load_ptr(a).is_null()
        });
        // The leftmost leaf is reachable and was not moved.
        let mut p = new_root;
        loop {
            let c = m.load_ptr(p);
            if c.is_null() {
                break;
            }
            p = c;
        }
        assert_eq!(p, old_leftmost_leaf);
        assert!(!m.mem().fbit(old_leftmost_leaf), "leaf not relocated");
    }

    #[test]
    fn nodes_per_line() {
        let d = desc();
        assert_eq!(d.nodes_per_line(128), 4);
        assert_eq!(d.nodes_per_line(32), 1);
        assert_eq!(d.nodes_per_line(16), 1, "never zero");
    }

    #[test]
    fn null_root_is_noop() {
        let mut m = Machine::new(SimConfig::default());
        let mut pool = m.new_pool();
        let r = subtree_cluster(&mut m, Addr::NULL, &desc(), 4, &mut pool, &mut |_, _| true);
        assert!(r.is_null());
    }
}
