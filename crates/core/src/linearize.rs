//! List linearization — paper Fig. 4(b) and the workhorse optimization of
//! the evaluation (Health, MST, Radiosity, VIS, SMV).
//!
//! Relocates the nodes of a linked list into contiguous pool memory so that
//! consecutive nodes share cache lines, and updates the traversal links
//! (head handle and each node's `next`) to point directly at the new
//! locations. Any *other* pointers into the list are not updated — memory
//! forwarding makes that safe.

use crate::machine::Machine;
use crate::reloc::relocate;
use memfwd_cpu::Token;
use memfwd_tagmem::{Addr, Pool};

/// Shape of a list node for linearization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListDesc {
    /// Node size in words.
    pub node_words: u64,
    /// Word offset of the `next` pointer within the node.
    pub next_word: u64,
}

impl ListDesc {
    /// Byte offset of the `next` pointer.
    pub fn next_offset(&self) -> u64 {
        self.next_word * 8
    }
}

/// Outcome of one linearization pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinearizeOutcome {
    /// Nodes relocated.
    pub nodes: u64,
    /// New address of the first node (null for an empty list).
    pub new_head: Addr,
}

/// Linearizes the list whose head pointer is stored at `head_handle`.
///
/// The *address* of the head (rather than its value) is passed so the head
/// can be updated to point at the new first node, exactly as in the paper's
/// `ListLinearize()`; thereafter traversals through the head touch only the
/// new, contiguous locations.
///
/// # Panics
///
/// Panics if the list is longer than `2^20` nodes (assumed corrupt), or on
/// heap exhaustion / forwarding cycles.
pub fn list_linearize(
    m: &mut Machine,
    head_handle: Addr,
    desc: ListDesc,
    pool: &mut Pool,
) -> LinearizeOutcome {
    let mut out = LinearizeOutcome::default();
    let mut prev_slot = head_handle;
    let (mut p, mut tok) = m.load_ptr_dep(head_handle, Token::ready());
    while !p.is_null() {
        let tgt = m.pool_alloc(pool, desc.node_words * 8);
        if out.nodes == 0 {
            out.new_head = tgt;
        }
        // Read the next pointer (through forwarding, dependent on having
        // reached this node) before the node is relocated.
        let (next, ntok) = m.load_ptr_dep(p + desc.next_offset(), tok);
        relocate(m, p, tgt, desc.node_words);
        // Point the previous link at the node's new home.
        m.store_ptr(prev_slot, tgt);
        prev_slot = tgt + desc.next_offset();
        p = next;
        tok = ntok;
        out.nodes += 1;
        assert!(out.nodes < 1 << 20, "runaway list during linearization");
    }
    out
}

/// Walks a list through any demand issuer, applying `visit` to each node
/// address, threading the pointer-chasing dependence. Returns the node
/// count.
///
/// Shared by the applications' traversal kernels and by tests. Generic
/// over [`crate::Demand`] so the same walk runs on a [`Machine`] directly
/// or inside an epoch-parallel task (`Machine::run_tasks`).
pub fn list_walk<M: crate::Demand + ?Sized>(
    m: &mut M,
    head_handle: Addr,
    next_offset: u64,
    mut visit: impl FnMut(&mut M, Addr, Token) -> Token,
) -> u64 {
    let (mut p, mut tok) = m.load_ptr_dep(head_handle, Token::ready());
    let mut n = 0;
    while !p.is_null() {
        tok = visit(m, p, tok);
        let (next, ntok) = m.load_ptr_dep(p + next_offset, tok);
        p = next;
        tok = ntok;
        n += 1;
        assert!(n < 1 << 24, "runaway list walk");
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    const DESC: ListDesc = ListDesc {
        node_words: 4,
        next_word: 0,
    };

    /// Builds a list of `n` nodes with payload `seed + i`, scattered by
    /// interleaving dummy allocations. Returns the head handle.
    fn build_scattered_list(m: &mut Machine, n: u64, seed: u64) -> Addr {
        let head_handle = m.malloc(8);
        m.store_ptr(head_handle, Addr::NULL);
        for i in (0..n).rev() {
            let _pad = m.malloc(8 * ((i * 7) % 23 + 1)); // scatter
            let node = m.malloc(DESC.node_words * 8);
            let old_head = m.load_ptr(head_handle);
            m.store_ptr(node, old_head);
            m.store_word(node + 8, seed + i);
            m.store_ptr(head_handle, node);
        }
        head_handle
    }

    fn payload_sum(m: &mut Machine, head_handle: Addr) -> u64 {
        let mut sum = 0;
        list_walk(m, head_handle, 0, |m, node, tok| {
            let (v, t) = m.load_word_dep(node + 8, tok);
            sum += v;
            t
        });
        sum
    }

    #[test]
    fn linearize_preserves_contents_and_order() {
        let mut m = Machine::new(SimConfig::default());
        let head = build_scattered_list(&mut m, 50, 1000);
        let before = payload_sum(&mut m, head);
        let mut pool = m.new_pool();
        let out = list_linearize(&mut m, head, DESC, &mut pool);
        assert_eq!(out.nodes, 50);
        let after = payload_sum(&mut m, head);
        assert_eq!(before, after);
        let s = m.finish();
        assert_eq!(s.fwd.relocations, 50);
        assert!(s.fwd.relocation_space_bytes >= 50 * 32);
    }

    #[test]
    fn linearized_nodes_are_contiguous() {
        let mut m = Machine::new(SimConfig::default());
        let head = build_scattered_list(&mut m, 10, 0);
        let mut pool = m.new_pool();
        let out = list_linearize(&mut m, head, DESC, &mut pool);
        // Walk and confirm addresses are consecutive.
        let mut addrs = Vec::new();
        list_walk(&mut m, head, 0, |_m, node, tok| {
            addrs.push(node);
            tok
        });
        assert_eq!(addrs[0], out.new_head);
        for w in addrs.windows(2) {
            assert_eq!(w[1].0 - w[0].0, DESC.node_words * 8);
        }
    }

    #[test]
    fn stale_pointer_into_middle_still_works() {
        let mut m = Machine::new(SimConfig::default());
        let head = build_scattered_list(&mut m, 5, 500);
        // Capture a pointer to the third node before linearization.
        let mut third = Addr::NULL;
        let mut i = 0;
        list_walk(&mut m, head, 0, |_m, node, tok| {
            if i == 2 {
                third = node;
            }
            i += 1;
            tok
        });
        let mut pool = m.new_pool();
        list_linearize(&mut m, head, DESC, &mut pool);
        // The stale pointer is forwarded to the node's new home.
        assert_eq!(m.load_word(third + 8), 502);
        let s = m.finish();
        assert!(s.fwd.forwarded_loads >= 1);
    }

    #[test]
    fn empty_list_is_noop() {
        let mut m = Machine::new(SimConfig::default());
        let head = m.malloc(8);
        m.store_ptr(head, Addr::NULL);
        let mut pool = m.new_pool();
        let out = list_linearize(&mut m, head, DESC, &mut pool);
        assert_eq!(out.nodes, 0);
        assert_eq!(out.new_head, Addr::NULL);
    }

    #[test]
    fn traversal_after_linearization_touches_no_old_locations() {
        let mut m = Machine::new(SimConfig::default());
        let head = build_scattered_list(&mut m, 30, 0);
        let mut pool = m.new_pool();
        list_linearize(&mut m, head, DESC, &mut pool);
        let fwd_before = m.fwd_stats().forwarded_loads;
        payload_sum(&mut m, head);
        let s = m.finish();
        assert_eq!(
            s.fwd.forwarded_loads, fwd_before,
            "head-based traversal goes straight to new locations"
        );
    }

    #[test]
    fn repeated_linearization_keeps_list_intact() {
        let mut m = Machine::new(SimConfig::default());
        let head = build_scattered_list(&mut m, 20, 9000);
        let before = payload_sum(&mut m, head);
        let mut pool = m.new_pool();
        for _ in 0..3 {
            let out = list_linearize(&mut m, head, DESC, &mut pool);
            assert_eq!(out.nodes, 20);
        }
        assert_eq!(payload_sum(&mut m, head), before);
    }
}
