//! Run statistics: everything the paper's figures are built from.

use memfwd_cache::{CacheStats, ClassCounts};
use memfwd_cpu::{PipelineStats, SlotCounts};
use memfwd_tagmem::{HeapStats, MemStats, SnapCodecError, SnapDecoder, SnapEncoder};

/// Histogram of forwarding hops per reference. Index = hop count, the last
/// bucket collects everything at or beyond its index.
pub const HOPS_BUCKETS: usize = 9;

/// Counters maintained by the [`crate::Machine`] while the program runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FwdStats {
    /// Demand loads issued.
    pub loads: u64,
    /// Demand stores issued.
    pub stores: u64,
    /// Prefetch instructions issued.
    pub prefetches: u64,
    /// ALU instructions issued.
    pub computes: u64,
    /// `Read_FBit` instructions issued.
    pub fbit_reads: u64,
    /// `Unforwarded_Read`/`Unforwarded_Write` instructions issued.
    pub unforwarded_ops: u64,
    /// Loads that dereferenced at least one forwarding address.
    pub forwarded_loads: u64,
    /// Stores that dereferenced at least one forwarding address.
    pub forwarded_stores: u64,
    /// Hop histogram for loads (Fig. 10(c)).
    pub load_hops: [u64; HOPS_BUCKETS],
    /// Hop histogram for stores (Fig. 10(c)).
    pub store_hops: [u64; HOPS_BUCKETS],
    /// Total cycles from issue to completion over all loads.
    pub load_cycles: u64,
    /// Portion of `load_cycles` spent dereferencing forwarding addresses.
    pub load_fwd_cycles: u64,
    /// Total cycles from issue to completion over all stores.
    pub store_cycles: u64,
    /// Portion of `store_cycles` spent dereferencing forwarding addresses.
    pub store_fwd_cycles: u64,
    /// Data-dependence misspeculations detected.
    pub misspeculations: u64,
    /// Heap allocations.
    pub mallocs: u64,
    /// Heap frees.
    pub frees: u64,
    /// Extra blocks freed by following forwarding chains (§3.3 wrapper).
    pub chain_frees: u64,
    /// Calls to the relocation primitive.
    pub relocations: u64,
    /// Words relocated.
    pub relocated_words: u64,
    /// Final-address pointer comparisons performed (§2.1).
    pub ptr_compares: u64,
    /// User-level traps taken on forwarded references.
    pub traps_taken: u64,
    /// Bytes handed out by relocation pools (Table 1 "space overhead").
    pub relocation_space_bytes: u64,
    /// Page faults taken (only when the paging layer is enabled).
    pub page_faults: u64,
    /// Corruptions injected by the deterministic fault-injection engine.
    pub injected_faults: u64,
    /// Injected corruptions repaired (auto-recovery or a supervisor
    /// handler's `Unforwarded_Write`).
    pub fault_repairs: u64,
    /// Machine faults delivered to a registered supervisor trap handler.
    pub faults_delivered: u64,
}

impl FwdStats {
    /// Fraction of loads that required forwarding (Fig. 10(c)).
    pub fn forwarded_load_fraction(&self) -> f64 {
        ratio(self.forwarded_loads, self.loads)
    }

    /// Fraction of stores that required forwarding (Fig. 10(c)).
    pub fn forwarded_store_fraction(&self) -> f64 {
        ratio(self.forwarded_stores, self.stores)
    }

    /// Average cycles to complete a load, split into (forwarding,
    /// ordinary) — Fig. 10(d).
    pub fn avg_load_cycles(&self) -> (f64, f64) {
        (
            ratio(self.load_fwd_cycles, self.loads),
            ratio(self.load_cycles - self.load_fwd_cycles, self.loads),
        )
    }

    /// Average cycles to complete a store, split into (forwarding,
    /// ordinary) — Fig. 10(d).
    pub fn avg_store_cycles(&self) -> (f64, f64) {
        (
            ratio(self.store_fwd_cycles, self.stores),
            ratio(self.store_cycles - self.store_fwd_cycles, self.stores),
        )
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Accounting for the epoch-parallel execution engine (the `epoch` module).
///
/// Every counter is deterministic: the commit protocol decides each task's
/// fate from program-order state only, so the same run produces the same
/// numbers at any worker count ≥ 1. A run with `epoch_threads == 0` (pure
/// direct execution) leaves the whole block zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EpochStats {
    /// Task groups handed to the epoch engine.
    pub epochs: u64,
    /// Speculative tasks whose results were committed as-is.
    pub committed: u64,
    /// Speculative tasks discarded and re-executed serially.
    pub replayed: u64,
    /// Replays caused by a read overlapping an earlier task's writes.
    pub conflicts_rw: u64,
    /// Replays caused by write/write page overlap (whole-page merge would
    /// clobber the earlier task's data).
    pub conflicts_ww: u64,
    /// Replays caused by the speculative interpreter bailing out (fault
    /// path, hop budget, unsupported operation).
    pub aborts: u64,
    /// Tasks executed directly because the machine configuration is not
    /// epoch-eligible (trap handlers, tracing, fault injection, ...).
    pub direct: u64,
}

impl EpochStats {
    /// Serializes every counter, in declaration order.
    pub fn snapshot_encode(&self, enc: &mut SnapEncoder) {
        enc.u64(self.epochs);
        enc.u64(self.committed);
        enc.u64(self.replayed);
        enc.u64(self.conflicts_rw);
        enc.u64(self.conflicts_ww);
        enc.u64(self.aborts);
        enc.u64(self.direct);
    }

    /// Total decoder matching [`EpochStats::snapshot_encode`].
    ///
    /// # Errors
    ///
    /// [`SnapCodecError::Truncated`] if the input ends early.
    pub fn snapshot_decode(dec: &mut SnapDecoder<'_>) -> Result<EpochStats, SnapCodecError> {
        Ok(EpochStats {
            epochs: dec.u64()?,
            committed: dec.u64()?,
            replayed: dec.u64()?,
            conflicts_rw: dec.u64()?,
            conflicts_ww: dec.u64()?,
            aborts: dec.u64()?,
            direct: dec.u64()?,
        })
    }
}

impl FwdStats {
    /// Serializes every counter, in declaration order. Shared by machine
    /// snapshots ([`crate::snapshot`]) and the farm's campaign journal.
    pub fn snapshot_encode(&self, enc: &mut SnapEncoder) {
        enc.u64(self.loads);
        enc.u64(self.stores);
        enc.u64(self.prefetches);
        enc.u64(self.computes);
        enc.u64(self.fbit_reads);
        enc.u64(self.unforwarded_ops);
        enc.u64(self.forwarded_loads);
        enc.u64(self.forwarded_stores);
        for h in &self.load_hops {
            enc.u64(*h);
        }
        for h in &self.store_hops {
            enc.u64(*h);
        }
        enc.u64(self.load_cycles);
        enc.u64(self.load_fwd_cycles);
        enc.u64(self.store_cycles);
        enc.u64(self.store_fwd_cycles);
        enc.u64(self.misspeculations);
        enc.u64(self.mallocs);
        enc.u64(self.frees);
        enc.u64(self.chain_frees);
        enc.u64(self.relocations);
        enc.u64(self.relocated_words);
        enc.u64(self.ptr_compares);
        enc.u64(self.traps_taken);
        enc.u64(self.relocation_space_bytes);
        enc.u64(self.page_faults);
        enc.u64(self.injected_faults);
        enc.u64(self.fault_repairs);
        enc.u64(self.faults_delivered);
    }

    /// Total decoder matching [`FwdStats::snapshot_encode`].
    ///
    /// # Errors
    ///
    /// [`SnapCodecError::Truncated`] if the input ends early.
    pub fn snapshot_decode(dec: &mut SnapDecoder<'_>) -> Result<FwdStats, SnapCodecError> {
        let mut s = FwdStats {
            loads: dec.u64()?,
            stores: dec.u64()?,
            prefetches: dec.u64()?,
            computes: dec.u64()?,
            fbit_reads: dec.u64()?,
            unforwarded_ops: dec.u64()?,
            forwarded_loads: dec.u64()?,
            forwarded_stores: dec.u64()?,
            ..FwdStats::default()
        };
        for i in 0..HOPS_BUCKETS {
            s.load_hops[i] = dec.u64()?;
        }
        for i in 0..HOPS_BUCKETS {
            s.store_hops[i] = dec.u64()?;
        }
        s.load_cycles = dec.u64()?;
        s.load_fwd_cycles = dec.u64()?;
        s.store_cycles = dec.u64()?;
        s.store_fwd_cycles = dec.u64()?;
        s.misspeculations = dec.u64()?;
        s.mallocs = dec.u64()?;
        s.frees = dec.u64()?;
        s.chain_frees = dec.u64()?;
        s.relocations = dec.u64()?;
        s.relocated_words = dec.u64()?;
        s.ptr_compares = dec.u64()?;
        s.traps_taken = dec.u64()?;
        s.relocation_space_bytes = dec.u64()?;
        s.page_faults = dec.u64()?;
        s.injected_faults = dec.u64()?;
        s.fault_repairs = dec.u64()?;
        s.faults_delivered = dec.u64()?;
        Ok(s)
    }
}

fn encode_class(enc: &mut SnapEncoder, c: &ClassCounts) {
    enc.u64(c.l1_hits);
    enc.u64(c.partial_misses);
    enc.u64(c.full_misses);
}

fn decode_class(dec: &mut SnapDecoder<'_>) -> Result<ClassCounts, SnapCodecError> {
    Ok(ClassCounts {
        l1_hits: dec.u64()?,
        partial_misses: dec.u64()?,
        full_misses: dec.u64()?,
    })
}

impl RunStats {
    /// Serializes the complete statistics block — every counter of every
    /// component — so a finished run's `RunStats` can cross a process
    /// boundary (the sweep farm's worker protocol and campaign journal)
    /// and come back bit-identical.
    pub fn snapshot_encode(&self, enc: &mut SnapEncoder) {
        enc.u64(self.pipeline.cycles);
        enc.u64(self.pipeline.slots.busy);
        enc.u64(self.pipeline.slots.load_stall);
        enc.u64(self.pipeline.slots.store_stall);
        enc.u64(self.pipeline.slots.inst_stall);
        enc.u64(self.pipeline.dispatched);
        enc.u64(self.pipeline.replays);
        encode_class(enc, &self.cache.loads);
        encode_class(enc, &self.cache.stores);
        enc.u64(self.cache.l2_hits);
        enc.u64(self.cache.l2_misses);
        enc.u64(self.cache.prefetches_issued);
        enc.u64(self.cache.prefetches_dropped);
        enc.u64(self.cache.prefetches_redundant);
        enc.u64(self.cache.l1_writebacks);
        enc.u64(self.cache.l2_writebacks);
        enc.u64(self.bytes_l1_l2);
        enc.u64(self.bytes_l2_mem);
        self.fwd.snapshot_encode(enc);
        enc.u64(self.mem.pages);
        enc.u64(self.mem.fbits_set);
        enc.u64(self.heap.live_bytes);
        enc.u64(self.heap.peak_bytes);
        enc.u64(self.heap.total_allocated);
        enc.u64(self.heap.allocations);
        enc.u64(self.heap.frees);
        self.epoch.snapshot_encode(enc);
    }

    /// Total decoder matching [`RunStats::snapshot_encode`].
    ///
    /// # Errors
    ///
    /// [`SnapCodecError::Truncated`] if the input ends early.
    pub fn snapshot_decode(dec: &mut SnapDecoder<'_>) -> Result<RunStats, SnapCodecError> {
        let pipeline = PipelineStats {
            cycles: dec.u64()?,
            slots: SlotCounts {
                busy: dec.u64()?,
                load_stall: dec.u64()?,
                store_stall: dec.u64()?,
                inst_stall: dec.u64()?,
            },
            dispatched: dec.u64()?,
            replays: dec.u64()?,
        };
        let cache = CacheStats {
            loads: decode_class(dec)?,
            stores: decode_class(dec)?,
            l2_hits: dec.u64()?,
            l2_misses: dec.u64()?,
            prefetches_issued: dec.u64()?,
            prefetches_dropped: dec.u64()?,
            prefetches_redundant: dec.u64()?,
            l1_writebacks: dec.u64()?,
            l2_writebacks: dec.u64()?,
        };
        let bytes_l1_l2 = dec.u64()?;
        let bytes_l2_mem = dec.u64()?;
        let fwd = FwdStats::snapshot_decode(dec)?;
        let mem = MemStats {
            pages: dec.u64()?,
            fbits_set: dec.u64()?,
        };
        let heap = HeapStats {
            live_bytes: dec.u64()?,
            peak_bytes: dec.u64()?,
            total_allocated: dec.u64()?,
            allocations: dec.u64()?,
            frees: dec.u64()?,
        };
        let epoch = EpochStats::snapshot_decode(dec)?;
        Ok(RunStats {
            pipeline,
            cache,
            bytes_l1_l2,
            bytes_l2_mem,
            fwd,
            mem,
            heap,
            epoch,
        })
    }
}

/// Complete statistics of one finished run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunStats {
    /// Pipeline totals (cycles, graduation-slot breakdown, replays).
    pub pipeline: PipelineStats,
    /// Cache hit/miss/prefetch counts.
    pub cache: CacheStats,
    /// Bytes moved between L1 and L2 (Fig. 6(b) bottom).
    pub bytes_l1_l2: u64,
    /// Bytes moved between L2 and memory (Fig. 6(b) top).
    pub bytes_l2_mem: u64,
    /// Forwarding and instruction-mix counters.
    pub fwd: FwdStats,
    /// Tagged-memory occupancy.
    pub mem: MemStats,
    /// Heap allocator accounting.
    pub heap: HeapStats,
    /// Epoch-parallel execution accounting (all zero when the engine is
    /// off, i.e. `epoch_threads == 0`).
    pub epoch: EpochStats,
}

impl RunStats {
    /// Total execution cycles.
    pub fn cycles(&self) -> u64 {
        self.pipeline.cycles
    }

    /// A copy with the [`EpochStats`] block zeroed — the simulated result
    /// alone, with the host-execution bookkeeping (how many tasks were
    /// speculated, committed, replayed) removed. Two runs of one workload
    /// are bit-identical here at *every* `epoch_threads` value including
    /// zero; the epoch block itself is only identical across counts >= 1.
    pub fn sans_epoch(&self) -> RunStats {
        let mut s = *self;
        s.epoch = EpochStats::default();
        s
    }

    /// Graduation-slot breakdown.
    pub fn slots(&self) -> SlotCounts {
        self.pipeline.slots
    }

    /// Load D-cache misses split as (partial, full) — Fig. 6(a).
    pub fn load_misses(&self) -> (u64, u64) {
        (
            self.cache.loads.partial_misses,
            self.cache.loads.full_misses,
        )
    }

    /// Speedup of this run relative to a baseline (baseline cycles divided
    /// by this run's cycles), the quantity annotated under Fig. 5's bars.
    pub fn speedup_over(&self, baseline: &RunStats) -> f64 {
        baseline.cycles() as f64 / self.cycles().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_and_averages() {
        let mut f = FwdStats {
            loads: 100,
            forwarded_loads: 8,
            load_cycles: 1000,
            load_fwd_cycles: 200,
            ..FwdStats::default()
        };
        assert!((f.forwarded_load_fraction() - 0.08).abs() < 1e-12);
        let (fwd, ord) = f.avg_load_cycles();
        assert!((fwd - 2.0).abs() < 1e-12);
        assert!((ord - 8.0).abs() < 1e-12);
        f.stores = 0;
        assert_eq!(f.avg_store_cycles(), (0.0, 0.0));
    }

    #[test]
    fn speedup() {
        let mut base = RunStats::default();
        base.pipeline.cycles = 200;
        let mut opt = RunStats::default();
        opt.pipeline.cycles = 100;
        assert!((opt.speedup_over(&base) - 2.0).abs() < 1e-12);
    }

    /// A `RunStats` with a distinct non-zero value in every field, so a
    /// codec that drops, duplicates, or reorders any field fails the
    /// round-trip below.
    fn distinct_run_stats() -> RunStats {
        let mut s = RunStats::default();
        let mut next = 1u64;
        let mut n = || {
            next += 1;
            next
        };
        s.pipeline.cycles = n();
        s.pipeline.slots.busy = n();
        s.pipeline.slots.load_stall = n();
        s.pipeline.slots.store_stall = n();
        s.pipeline.slots.inst_stall = n();
        s.pipeline.dispatched = n();
        s.pipeline.replays = n();
        for c in [&mut s.cache.loads, &mut s.cache.stores] {
            c.l1_hits = n();
            c.partial_misses = n();
            c.full_misses = n();
        }
        s.cache.l2_hits = n();
        s.cache.l2_misses = n();
        s.cache.prefetches_issued = n();
        s.cache.prefetches_dropped = n();
        s.cache.prefetches_redundant = n();
        s.cache.l1_writebacks = n();
        s.cache.l2_writebacks = n();
        s.bytes_l1_l2 = n();
        s.bytes_l2_mem = n();
        s.fwd.loads = n();
        s.fwd.stores = n();
        s.fwd.prefetches = n();
        s.fwd.computes = n();
        s.fwd.fbit_reads = n();
        s.fwd.unforwarded_ops = n();
        s.fwd.forwarded_loads = n();
        s.fwd.forwarded_stores = n();
        for i in 0..HOPS_BUCKETS {
            s.fwd.load_hops[i] = n();
            s.fwd.store_hops[i] = n();
        }
        s.fwd.load_cycles = n();
        s.fwd.load_fwd_cycles = n();
        s.fwd.store_cycles = n();
        s.fwd.store_fwd_cycles = n();
        s.fwd.misspeculations = n();
        s.fwd.mallocs = n();
        s.fwd.frees = n();
        s.fwd.chain_frees = n();
        s.fwd.relocations = n();
        s.fwd.relocated_words = n();
        s.fwd.ptr_compares = n();
        s.fwd.traps_taken = n();
        s.fwd.relocation_space_bytes = n();
        s.fwd.page_faults = n();
        s.fwd.injected_faults = n();
        s.fwd.fault_repairs = n();
        s.fwd.faults_delivered = n();
        s.mem.pages = n();
        s.mem.fbits_set = n();
        s.heap.live_bytes = n();
        s.heap.peak_bytes = n();
        s.heap.total_allocated = n();
        s.heap.allocations = n();
        s.heap.frees = n();
        s.epoch.epochs = n();
        s.epoch.committed = n();
        s.epoch.replayed = n();
        s.epoch.conflicts_rw = n();
        s.epoch.conflicts_ww = n();
        s.epoch.aborts = n();
        s.epoch.direct = n();
        s
    }

    #[test]
    fn run_stats_codec_roundtrips_every_field() {
        let s = distinct_run_stats();
        let mut enc = SnapEncoder::new();
        s.snapshot_encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = SnapDecoder::new(&bytes);
        let back = RunStats::snapshot_decode(&mut dec).expect("decode");
        assert!(dec.is_exhausted(), "decoder consumed every byte");
        assert_eq!(back, s);
    }

    #[test]
    fn run_stats_codec_rejects_truncation_at_every_length() {
        let s = distinct_run_stats();
        let mut enc = SnapEncoder::new();
        s.snapshot_encode(&mut enc);
        let bytes = enc.into_bytes();
        for len in (0..bytes.len()).step_by(64).chain([bytes.len() - 1]) {
            let mut dec = SnapDecoder::new(&bytes[..len]);
            assert_eq!(
                RunStats::snapshot_decode(&mut dec),
                Err(SnapCodecError::Truncated),
                "len {len}"
            );
        }
    }
}
