//! Run statistics: everything the paper's figures are built from.

use memfwd_cache::CacheStats;
use memfwd_cpu::{PipelineStats, SlotCounts};
use memfwd_tagmem::{HeapStats, MemStats};

/// Histogram of forwarding hops per reference. Index = hop count, the last
/// bucket collects everything at or beyond its index.
pub const HOPS_BUCKETS: usize = 9;

/// Counters maintained by the [`crate::Machine`] while the program runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FwdStats {
    /// Demand loads issued.
    pub loads: u64,
    /// Demand stores issued.
    pub stores: u64,
    /// Prefetch instructions issued.
    pub prefetches: u64,
    /// ALU instructions issued.
    pub computes: u64,
    /// `Read_FBit` instructions issued.
    pub fbit_reads: u64,
    /// `Unforwarded_Read`/`Unforwarded_Write` instructions issued.
    pub unforwarded_ops: u64,
    /// Loads that dereferenced at least one forwarding address.
    pub forwarded_loads: u64,
    /// Stores that dereferenced at least one forwarding address.
    pub forwarded_stores: u64,
    /// Hop histogram for loads (Fig. 10(c)).
    pub load_hops: [u64; HOPS_BUCKETS],
    /// Hop histogram for stores (Fig. 10(c)).
    pub store_hops: [u64; HOPS_BUCKETS],
    /// Total cycles from issue to completion over all loads.
    pub load_cycles: u64,
    /// Portion of `load_cycles` spent dereferencing forwarding addresses.
    pub load_fwd_cycles: u64,
    /// Total cycles from issue to completion over all stores.
    pub store_cycles: u64,
    /// Portion of `store_cycles` spent dereferencing forwarding addresses.
    pub store_fwd_cycles: u64,
    /// Data-dependence misspeculations detected.
    pub misspeculations: u64,
    /// Heap allocations.
    pub mallocs: u64,
    /// Heap frees.
    pub frees: u64,
    /// Extra blocks freed by following forwarding chains (§3.3 wrapper).
    pub chain_frees: u64,
    /// Calls to the relocation primitive.
    pub relocations: u64,
    /// Words relocated.
    pub relocated_words: u64,
    /// Final-address pointer comparisons performed (§2.1).
    pub ptr_compares: u64,
    /// User-level traps taken on forwarded references.
    pub traps_taken: u64,
    /// Bytes handed out by relocation pools (Table 1 "space overhead").
    pub relocation_space_bytes: u64,
    /// Page faults taken (only when the paging layer is enabled).
    pub page_faults: u64,
    /// Corruptions injected by the deterministic fault-injection engine.
    pub injected_faults: u64,
    /// Injected corruptions repaired (auto-recovery or a supervisor
    /// handler's `Unforwarded_Write`).
    pub fault_repairs: u64,
    /// Machine faults delivered to a registered supervisor trap handler.
    pub faults_delivered: u64,
}

impl FwdStats {
    /// Fraction of loads that required forwarding (Fig. 10(c)).
    pub fn forwarded_load_fraction(&self) -> f64 {
        ratio(self.forwarded_loads, self.loads)
    }

    /// Fraction of stores that required forwarding (Fig. 10(c)).
    pub fn forwarded_store_fraction(&self) -> f64 {
        ratio(self.forwarded_stores, self.stores)
    }

    /// Average cycles to complete a load, split into (forwarding,
    /// ordinary) — Fig. 10(d).
    pub fn avg_load_cycles(&self) -> (f64, f64) {
        (
            ratio(self.load_fwd_cycles, self.loads),
            ratio(self.load_cycles - self.load_fwd_cycles, self.loads),
        )
    }

    /// Average cycles to complete a store, split into (forwarding,
    /// ordinary) — Fig. 10(d).
    pub fn avg_store_cycles(&self) -> (f64, f64) {
        (
            ratio(self.store_fwd_cycles, self.stores),
            ratio(self.store_cycles - self.store_fwd_cycles, self.stores),
        )
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Complete statistics of one finished run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunStats {
    /// Pipeline totals (cycles, graduation-slot breakdown, replays).
    pub pipeline: PipelineStats,
    /// Cache hit/miss/prefetch counts.
    pub cache: CacheStats,
    /// Bytes moved between L1 and L2 (Fig. 6(b) bottom).
    pub bytes_l1_l2: u64,
    /// Bytes moved between L2 and memory (Fig. 6(b) top).
    pub bytes_l2_mem: u64,
    /// Forwarding and instruction-mix counters.
    pub fwd: FwdStats,
    /// Tagged-memory occupancy.
    pub mem: MemStats,
    /// Heap allocator accounting.
    pub heap: HeapStats,
}

impl RunStats {
    /// Total execution cycles.
    pub fn cycles(&self) -> u64 {
        self.pipeline.cycles
    }

    /// Graduation-slot breakdown.
    pub fn slots(&self) -> SlotCounts {
        self.pipeline.slots
    }

    /// Load D-cache misses split as (partial, full) — Fig. 6(a).
    pub fn load_misses(&self) -> (u64, u64) {
        (
            self.cache.loads.partial_misses,
            self.cache.loads.full_misses,
        )
    }

    /// Speedup of this run relative to a baseline (baseline cycles divided
    /// by this run's cycles), the quantity annotated under Fig. 5's bars.
    pub fn speedup_over(&self, baseline: &RunStats) -> f64 {
        baseline.cycles() as f64 / self.cycles().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_and_averages() {
        let mut f = FwdStats {
            loads: 100,
            forwarded_loads: 8,
            load_cycles: 1000,
            load_fwd_cycles: 200,
            ..FwdStats::default()
        };
        assert!((f.forwarded_load_fraction() - 0.08).abs() < 1e-12);
        let (fwd, ord) = f.avg_load_cycles();
        assert!((fwd - 2.0).abs() < 1e-12);
        assert!((ord - 8.0).abs() < 1e-12);
        f.stores = 0;
        assert_eq!(f.avg_store_cycles(), (0.0, 0.0));
    }

    #[test]
    fn speedup() {
        let mut base = RunStats::default();
        base.pipeline.cycles = 200;
        let mut opt = RunStats::default();
        opt.pipeline.cycles = 100;
        assert!((opt.speedup_over(&base) - 2.0).abs() < 1e-12);
    }
}
