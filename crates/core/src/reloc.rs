//! The relocation primitive — paper Fig. 4(a).
//!
//! `Relocate(src, tgt, n)` moves an `n`-word object from `src` to `tgt`,
//! leaving forwarding addresses behind. For each word it loops until a
//! clear forwarding bit is read, so that `tgt` is appended at the *end* of
//! any existing forwarding chain: relocating an already-relocated object
//! extends the chain rather than corrupting it.

use crate::fault::{record_last_fault, MachineFault};
use crate::machine::Machine;
use memfwd_cpu::Token;
use memfwd_tagmem::Addr;
use std::collections::HashSet;

/// Fallible [`relocate`]: moves `n_words` words from `src` to `tgt`,
/// reporting corruption as a typed fault instead of panicking.
///
/// # Errors
///
/// [`MachineFault::Misaligned`] if `src` or `tgt` is not word-aligned
/// (nothing has moved when this is returned), or
/// [`MachineFault::ForwardingCycle`] if the forwarding chain of a source
/// word is cyclic (words before the faulting one have already been moved —
/// each such word is individually consistent, so stray accesses to them
/// remain safe).
pub fn try_relocate(
    m: &mut Machine,
    src: Addr,
    tgt: Addr,
    n_words: u64,
) -> Result<(), MachineFault> {
    // Record the step (capture is a thread-local no-op when off) before any
    // validation, so a plan captured from a faulting run still contains the
    // step that faulted — the shadow sanitizer matches faults to diagnostics.
    crate::plan::note_reloc_step(src, tgt, n_words);
    if !src.is_aligned(8) {
        return Err(MachineFault::Misaligned { addr: src, size: 8 });
    }
    if !tgt.is_aligned(8) {
        return Err(MachineFault::Misaligned { addr: tgt, size: 8 });
    }
    m.compute(2); // loop setup
    for i in 0..n_words {
        let mut cur = src.add_words(i);
        let t = tgt.add_words(i);
        // First probe outside the chain loop: the overwhelmingly common
        // source word is unforwarded (fresh allocations, first relocation),
        // and that case must not pay for cycle tracking — the old
        // HashSet-per-word bookkeeping was a top host cost of
        // linearization-heavy runs.
        let (val, fbit, tok) = m.unforwarded_read_dep(cur, Token::ready());
        m.compute(1); // branch on the forwarding bit
        if !fbit {
            // Copy the word to its new home, then atomically install the
            // forwarding address and bit in the old home.
            m.store_dep(t, 8, val, tok);
            m.unforwarded_write(cur, t.0, true);
            continue;
        }
        // Forwarded source: append at the end of the existing chain, with
        // full cycle tracking (state-identical to running the tracked loop
        // from the start — the first insert can never report a cycle).
        let mut seen = HashSet::new();
        seen.insert(cur.word_base());
        let mut dep = tok;
        let mut val = val;
        let mut hops = 0u32;
        loop {
            cur = Addr(val);
            hops += 1;
            if !seen.insert(cur.word_base()) {
                return Err(MachineFault::ForwardingCycle {
                    at: cur.word_base(),
                    hops,
                });
            }
            let (v, fbit, tok) = m.unforwarded_read_dep(cur, dep);
            m.compute(1);
            if !fbit {
                m.store_dep(t, 8, v, tok);
                m.unforwarded_write(cur, t.0, true);
                break;
            }
            val = v;
            dep = tok;
        }
    }
    m.note_relocation(n_words);
    Ok(())
}

/// Relocates `n_words` words from `src` to `tgt`, storing forwarding
/// addresses into the chain-terminal old locations.
///
/// Both `src` and `tgt` must be word-aligned (§3.3: relocatable objects are
/// word-aligned so two objects never share a word).
///
/// # Panics
///
/// Panics if `src` or `tgt` is not word-aligned, or if the forwarding chain
/// of a source word is cyclic. [`try_relocate`] is the non-panicking twin.
pub fn relocate(m: &mut Machine, src: Addr, tgt: Addr, n_words: u64) {
    if let Err(fault) = try_relocate(m, src, tgt, n_words) {
        record_last_fault(fault);
        match fault {
            MachineFault::Misaligned { .. } => panic!("relocation must be word-aligned"),
            MachineFault::ForwardingCycle { .. } => {
                panic!("forwarding cycle during relocate: {fault}")
            }
            _ => panic!("{fault}"),
        }
    }
}

/// Relocates several disjoint pieces into one contiguous chunk allocated at
/// `chunk`, returning the new base address of each piece.
///
/// This is the building block of the Eqntott optimization (paper Fig. 8):
/// a `PTERM` record and its array are packed into a single chunk.
///
/// # Panics
///
/// As for [`relocate`].
pub fn relocate_adjacent(m: &mut Machine, pieces: &[(Addr, u64)], chunk: Addr) -> Vec<Addr> {
    let mut out = Vec::with_capacity(pieces.len());
    let mut at = chunk;
    for &(src, words) in pieces {
        relocate(m, src, at, words);
        out.push(at);
        at = at.add_words(words);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn machine() -> Machine {
        Machine::new(SimConfig::default())
    }

    #[test]
    fn relocate_copies_and_forwards() {
        let mut m = machine();
        let src = m.malloc(24);
        let tgt = m.malloc(24);
        for i in 0..3 {
            m.store_word(src.add_words(i), 100 + i);
        }
        relocate(&mut m, src, tgt, 3);
        // Direct access at the new home:
        for i in 0..3 {
            assert_eq!(m.load_word(tgt.add_words(i)), 100 + i);
        }
        // Stray access at the old home is forwarded:
        for i in 0..3 {
            assert_eq!(m.load_word(src.add_words(i)), 100 + i);
        }
        let s = m.finish();
        assert_eq!(s.fwd.relocations, 1);
        assert_eq!(s.fwd.relocated_words, 3);
        assert_eq!(s.fwd.forwarded_loads, 3);
    }

    #[test]
    fn double_relocation_appends_to_chain_end() {
        let mut m = machine();
        let a = m.malloc(8);
        let b = m.malloc(8);
        let c = m.malloc(8);
        m.store_word(a, 7);
        relocate(&mut m, a, b, 1);
        // Relocating via the ORIGINAL address must chase to b and move the
        // live data from b to c.
        relocate(&mut m, a, c, 1);
        assert_eq!(m.load_word(c), 7, "data lives at the chain end");
        assert_eq!(m.load_word(a), 7, "two hops from the oldest address");
        assert_eq!(m.load_word(b), 7, "one hop from the middle");
        let s = m.finish();
        assert_eq!(s.fwd.load_hops[2], 1);
        assert_eq!(s.fwd.load_hops[1], 1);
    }

    #[test]
    fn subword_access_after_relocation() {
        let mut m = machine();
        let src = m.malloc(8);
        let tgt = m.malloc(8);
        m.store(src, 4, 3);
        m.store(src + 4, 4, 47);
        relocate(&mut m, src, tgt, 1);
        assert_eq!(m.load(src + 4, 4), 47, "paper Fig. 1: offset preserved");
    }

    #[test]
    fn relocate_adjacent_packs_pieces() {
        let mut m = machine();
        let rec = m.malloc(16);
        let arr = m.malloc(32);
        m.store_word(rec, 1);
        m.store_word(arr, 2);
        let chunk = m.malloc(48);
        let bases = relocate_adjacent(&mut m, &[(rec, 2), (arr, 4)], chunk);
        assert_eq!(bases, vec![chunk, chunk.add_words(2)]);
        assert_eq!(m.load_word(bases[0]), 1);
        assert_eq!(m.load_word(bases[1]), 2);
        assert_eq!(m.load_word(rec), 1, "old record address forwards");
    }

    #[test]
    #[should_panic(expected = "word-aligned")]
    fn misaligned_relocation_rejected() {
        let mut m = machine();
        let src = m.malloc(16);
        let tgt = m.malloc(16);
        relocate(&mut m, src + 4, tgt, 1);
    }

    #[test]
    fn try_relocate_reports_typed_faults() {
        let mut m = machine();
        let src = m.malloc(16);
        let tgt = m.malloc(16);
        assert_eq!(
            try_relocate(&mut m, src + 4, tgt, 1),
            Err(crate::MachineFault::Misaligned {
                addr: src + 4,
                size: 8
            })
        );
        assert_eq!(
            try_relocate(&mut m, src, tgt + 4, 1),
            Err(crate::MachineFault::Misaligned {
                addr: tgt + 4,
                size: 8
            })
        );
        // A cyclic source chain surfaces as a typed cycle fault.
        let a = m.malloc(8);
        let b = m.malloc(8);
        m.unforwarded_write(a, b.0, true);
        m.unforwarded_write(b, a.0, true);
        let c = m.malloc(8);
        assert!(matches!(
            try_relocate(&mut m, a, c, 1),
            Err(crate::MachineFault::ForwardingCycle { .. })
        ));
        // Valid relocation still works through the fallible path.
        m.store_word(src, 5);
        assert_eq!(try_relocate(&mut m, src, tgt, 1), Ok(()));
        assert_eq!(m.load_word(src), 5);
    }
}
