//! Page-level locality: the paper's §2.2 closing observation that data
//! relocation "is applicable not only to caches but also to the other
//! levels of the memory hierarchy — for example, to improve the spatial
//! locality within pages (and hence on disk) for out-of-core applications."
//!
//! When enabled in [`crate::SimConfig`], every memory reference is also
//! checked against a fixed-size resident set of pages (LRU). A reference
//! to a non-resident page takes a page fault whose cost dwarfs a cache
//! miss, exactly like an out-of-core program paging against disk. Packing
//! an object graph into few pages (e.g. by list linearization) then pays
//! off at a second level of the hierarchy.

use memfwd_tagmem::Addr;
use std::collections::HashMap;

/// Configuration of the paging layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagingConfig {
    /// Page size in bytes (power of two).
    pub page_bytes: u64,
    /// Pages that fit in physical memory.
    pub resident_pages: usize,
    /// Cycles charged per page fault (disk-class latency).
    pub fault_penalty: u64,
}

impl Default for PagingConfig {
    fn default() -> Self {
        PagingConfig {
            page_bytes: 4096,
            resident_pages: 64,
            fault_penalty: 50_000,
        }
    }
}

/// LRU resident set of pages.
#[derive(Debug)]
pub(crate) struct PageCache {
    cfg: PagingConfig,
    /// page number -> last-used stamp
    resident: HashMap<u64, u64>,
    stamp: u64,
    faults: u64,
    accesses: u64,
}

impl PageCache {
    pub(crate) fn new(cfg: PagingConfig) -> PageCache {
        assert!(cfg.page_bytes.is_power_of_two() && cfg.resident_pages > 0);
        PageCache {
            cfg,
            resident: HashMap::new(),
            stamp: 0,
            faults: 0,
            accesses: 0,
        }
    }

    /// Touches the page containing `addr`; returns the fault penalty (0 on
    /// a resident hit).
    pub(crate) fn touch(&mut self, addr: Addr) -> u64 {
        self.accesses += 1;
        self.stamp += 1;
        let page = addr.0 / self.cfg.page_bytes;
        if let Some(t) = self.resident.get_mut(&page) {
            *t = self.stamp;
            return 0;
        }
        self.faults += 1;
        if self.resident.len() >= self.cfg.resident_pages {
            let (&victim, _) = self
                .resident
                .iter()
                .min_by_key(|(_, &t)| t)
                .expect("non-empty resident set");
            self.resident.remove(&victim);
        }
        self.resident.insert(page, self.stamp);
        self.cfg.fault_penalty
    }

    pub(crate) fn faults(&self) -> u64 {
        self.faults
    }

    /// Serializes the resident set (sorted by page number for byte
    /// stability) and the LRU/fault counters. The paging configuration is
    /// covered by the snapshot's config fingerprint, not encoded here.
    pub(crate) fn snapshot_encode(&self, enc: &mut memfwd_tagmem::SnapEncoder) {
        let mut pages: Vec<(u64, u64)> = self.resident.iter().map(|(&p, &t)| (p, t)).collect();
        pages.sort_unstable();
        enc.seq(pages.into_iter(), |e, (p, t)| {
            e.u64(p);
            e.u64(t);
        });
        enc.u64(self.stamp);
        enc.u64(self.faults);
        enc.u64(self.accesses);
    }

    /// Rebuilds a page cache written by [`PageCache::snapshot_encode`].
    pub(crate) fn snapshot_decode(
        dec: &mut memfwd_tagmem::SnapDecoder<'_>,
        cfg: PagingConfig,
    ) -> Result<PageCache, memfwd_tagmem::SnapCodecError> {
        let n = dec.seq_len(16)?;
        if n > cfg.resident_pages {
            return Err(memfwd_tagmem::SnapCodecError::BadValue);
        }
        let mut resident = HashMap::with_capacity(n);
        for _ in 0..n {
            let page = dec.u64()?;
            let stamp = dec.u64()?;
            if resident.insert(page, stamp).is_some() {
                return Err(memfwd_tagmem::SnapCodecError::BadValue);
            }
        }
        Ok(PageCache {
            cfg,
            resident,
            stamp: dec.u64()?,
            faults: dec.u64()?,
            accesses: dec.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(pages: usize) -> PageCache {
        PageCache::new(PagingConfig {
            page_bytes: 4096,
            resident_pages: pages,
            fault_penalty: 1000,
        })
    }

    #[test]
    fn resident_hit_is_free() {
        let mut p = cache(2);
        assert_eq!(p.touch(Addr(0)), 1000);
        assert_eq!(p.touch(Addr(100)), 0, "same page");
        assert_eq!(p.faults(), 1);
    }

    #[test]
    fn lru_eviction() {
        let mut p = cache(2);
        p.touch(Addr(0));
        p.touch(Addr(4096));
        p.touch(Addr(0)); // refresh page 0
        p.touch(Addr(8192)); // evicts page 1
        assert_eq!(p.touch(Addr(0)), 0);
        assert_eq!(p.touch(Addr(4096)), 1000, "page 1 was evicted");
    }

    #[test]
    fn working_set_within_memory_never_faults_twice() {
        let mut p = cache(8);
        for round in 0..3 {
            for i in 0..8u64 {
                let penalty = p.touch(Addr(i * 4096));
                if round > 0 {
                    assert_eq!(penalty, 0);
                }
            }
        }
        assert_eq!(p.faults(), 8);
    }
}
